(* Command-line front end, mirroring the original UniGen tool's usage:
   sample witnesses of a DIMACS CNF file (with optional `c ind`
   sampling-set lines), approximately count models, compute independent
   supports, and emit the bundled benchmark instances. *)

open Cmdliner

let read_formula path =
  try Ok (Cnf.Dimacs.parse_file path) with
  | Cnf.Dimacs.Parse_error msg -> Error msg
  | Sys_error msg -> Error msg

let print_witness m sampling =
  let restricted = Cnf.Model.restrict m sampling in
  let parts = List.map string_of_int (Cnf.Model.to_dimacs restricted) in
  print_endline ("v " ^ String.concat " " parts ^ " 0")

(* ------------------------------------------------------------------ *)
(* Observability plumbing shared by sample and count: --trace FILE
   (Chrome trace_event JSON, load in chrome://tracing or Perfetto),
   --metrics-json FILE (structured run report), --stats (same report,
   as comment lines). Instrumentation is enabled before any solver or
   worker domain exists and the trace sink is closed on every exit
   path. *)

let with_observability ~trace ~metrics_json ~show_stats f =
  if show_stats || metrics_json <> None || trace <> None then
    Obs.Metrics.enable ();
  (match trace with Some path -> Obs.Trace.enable_file path | None -> ());
  Fun.protect ~finally:Obs.Trace.close f

(* Emit the finished report on the channels the flags asked for. *)
let emit_report ~metrics_json ~show_stats sections =
  if show_stats || metrics_json <> None then begin
    let report = Obs.Report.create () in
    List.iter (fun (title, fields) -> Obs.Report.add_section report title fields)
      sections;
    List.iter (fun (title, fields) -> Obs.Report.add_section report title fields)
      (Obs.Report.metrics_sections (Obs.Metrics.snapshot ()));
    if show_stats then Obs.Report.pp Format.std_formatter report;
    match metrics_json with
    | Some path -> Obs.Report.write_json path report
    | None -> ()
  end

let trace_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run (solver \
           calls, XOR layer swaps, BSAT enumerations, ApproxMC \
           iterations, UniGen draws, worker lifecycles) to $(docv); open \
           it in chrome://tracing or Perfetto.")

let metrics_json_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:
          "Write the structured run report (run accounting, solver \
           counters, per-phase wall time, host info) as JSON to $(docv).")

let audit_arg =
  Cmdliner.Arg.(
    value
    & flag
    & info [ "audit" ]
        ~doc:
          "Enable the correctness-audit subsystem: sampled invariant \
           sweeps of the live CDCL/XOR solver state, re-evaluation of \
           every witness against all clauses and XOR constraints, \
           blocking-set disjointness checking, and domain-ownership \
           tracking. A detected violation aborts with a structured \
           state dump. Equivalent to setting UNIGEN_AUDIT=1; tune the \
           sweep sampling period with UNIGEN_AUDIT_PERIOD (default 64).")

let no_gauss_arg =
  Cmdliner.Arg.(
    value
    & flag
    & info [ "no-gauss" ]
        ~doc:
          "Disable in-search Gauss-Jordan elimination over the XOR hash \
           rows and fall back to a static row reduction followed by \
           parity 2-watch propagation (the differential reference \
           engine). Witnesses and counts are bit-identical either way.")

let xor_engine_name ~gauss = if gauss then "gauss" else "2watch"

(* ------------------------------------------------------------------ *)
(* unigen sample *)

let sample_cmd =
  let run file num epsilon seed timeout project_only jobs show_stats
      no_incremental no_gauss audit trace metrics_json =
    if audit then Audit.enable ();
    if jobs < 0 then begin
      Printf.eprintf "error: --jobs must be >= 1\n";
      1
    end
    else
      match read_formula file with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok f ->
          with_observability ~trace ~metrics_json ~show_stats @@ fun () ->
          let rng = Rng.create seed in
          let incremental = not no_incremental in
          let gauss = not no_gauss in
          let deadline = Unix.gettimeofday () +. timeout in
          let prep =
            if jobs > 1 then
              Parallel.Domain_pool.with_pool ~jobs (fun pool ->
                  Sampling.Unigen.prepare ~deadline ~incremental ~gauss ~pool
                    ~rng ~epsilon f)
            else
              Sampling.Unigen.prepare ~deadline ~incremental ~gauss ~rng
                ~epsilon f
          in
          (match prep with
          | Error Sampling.Unigen.Unsat_formula ->
              print_endline "s UNSATISFIABLE";
              2
          | Error Sampling.Unigen.Prepare_timeout | Error Sampling.Unigen.Count_failed ->
              Printf.eprintf "error: preparation timed out\n";
              1
          | Ok prepared ->
              let sampling =
                if project_only then Cnf.Formula.sampling_vars f
                else Array.init f.Cnf.Formula.num_vars (fun i -> i + 1)
              in
              Printf.printf "c UniGen: epsilon=%.2f kappa=%.3f pivot=%d |S|=%d%s%s\n"
                epsilon
                (Sampling.Unigen.kappa prepared)
                (Sampling.Unigen.pivot prepared)
                (Array.length (Cnf.Formula.sampling_vars f))
                (if Sampling.Unigen.is_easy prepared then " (easy case)" else "")
                (if jobs >= 1 then Printf.sprintf " jobs=%d" jobs else "");
              let produced = ref 0 in
              let attempts = ref 0 in
              if jobs >= 1 then begin
                (* batch mode: sample i consumes stream (seed, i), so the
                   printed witness list is bit-identical for every --jobs
                   value (and across reruns with the same seed) *)
                let outcomes =
                  Sampling.Unigen.sample_batch ~deadline ~max_attempts:20 ~jobs
                    ~seed prepared num
                in
                Array.iter
                  (function
                    | Ok m ->
                        incr produced;
                        print_witness m sampling
                    | Error _ -> ())
                  outcomes;
                attempts :=
                  (Sampling.Unigen.stats prepared).Sampling.Sampler.samples_requested
              end
              else
                (* legacy streaming mode: one shared stream, draw until
                   the target count or the deadline *)
                while !produced < num && Unix.gettimeofday () < deadline do
                  incr attempts;
                  match Sampling.Unigen.sample ~deadline ~rng prepared with
                  | Ok m ->
                      incr produced;
                      print_witness m sampling
                  | Error _ -> ()
                done;
              let st = Sampling.Unigen.stats prepared in
              Printf.printf
                "c produced %d/%d witnesses in %d attempts (avg %.4f s, avg xor len %.1f)\n"
                !produced num !attempts
                (Sampling.Sampler.average_seconds_per_sample st)
                (Sampling.Sampler.average_xor_length st);
              emit_report ~metrics_json ~show_stats
                [
                  ( "config",
                    Obs.Report.
                      [
                        ("command", String "sample");
                        ("file", String file);
                        ("epsilon", Float epsilon);
                        ("seed", Int seed);
                        ("jobs", Int jobs);
                        ( "incremental",
                          Bool (Sampling.Unigen.is_incremental prepared) );
                        ( "xor_engine",
                          String
                            (xor_engine_name
                               ~gauss:(Sampling.Unigen.is_gauss prepared)) );
                      ] );
                  ("run", Sampling.Sampler.report_fields st);
                ];
              if !produced = num then 0 else 1)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let num =
    Arg.(value & opt int 10 & info [ "n"; "samples" ] ~doc:"Number of witnesses.")
  in
  let epsilon =
    Arg.(value & opt float 6.0 & info [ "e"; "epsilon" ] ~doc:"Tolerance (> 1.71).")
  in
  let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Random seed.") in
  let timeout =
    Arg.(value & opt float 600.0 & info [ "t"; "timeout" ] ~doc:"Overall timeout (s).")
  in
  let project =
    Arg.(value & flag & info [ "project" ] ~doc:"Print only sampling-set variables.")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ]
             ~doc:"Parallel sampling workers. Any value >= 1 selects the \
                   deterministic batch engine (witness i drawn from stream \
                   (seed, i)); output is bit-identical for every worker \
                   count. Omit for the legacy single-stream loop.")
  in
  let show_stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the structured run report (run accounting, solver \
                   counters including decisions and restarts, per-phase \
                   wall time) as comment lines.")
  in
  let no_incremental =
    Arg.(value & flag
         & info [ "no-incremental" ]
             ~doc:"Rebuild a fresh CDCL solver for every BSAT call instead \
                   of reusing warm solver sessions (the differential \
                   reference path; witnesses are identical either way).")
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Draw almost-uniform witnesses of a DIMACS CNF file")
    Term.(const run $ file $ num $ epsilon $ seed $ timeout $ project $ jobs
          $ show_stats $ no_incremental $ no_gauss_arg $ audit_arg $ trace_arg
          $ metrics_json_arg)

(* ------------------------------------------------------------------ *)
(* unigen count *)

let count_cmd =
  let run file epsilon delta seed timeout jobs show_stats no_incremental
      no_gauss audit trace metrics_json =
    if audit then Audit.enable ();
    match read_formula file with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok f ->
        with_observability ~trace ~metrics_json ~show_stats @@ fun () ->
        let rng = Rng.create seed in
        let incremental = not no_incremental in
        let gauss = not no_gauss in
        let deadline = Unix.gettimeofday () +. timeout in
        let result =
          if jobs >= 1 then
            Counting.Approxmc.count ~deadline ~incremental ~gauss ~jobs ~rng
              ~epsilon ~delta f
          else
            Counting.Approxmc.count ~deadline ~incremental ~gauss ~rng ~epsilon
              ~delta f
        in
        (match result with
        | Error Counting.Approxmc.Unsat ->
            print_endline "s UNSATISFIABLE";
            2
        | Error Counting.Approxmc.Timed_out ->
            Printf.eprintf "error: timed out\n";
            1
        | Ok r ->
            Printf.printf "s mc %.0f\n" r.Counting.Approxmc.estimate;
            Printf.printf "c log2(count) = %.2f%s (%d core iterations, %d failed)\n"
              r.Counting.Approxmc.log2_estimate
              (if r.Counting.Approxmc.exact then ", exact" else "")
              r.Counting.Approxmc.core_iterations r.Counting.Approxmc.failed_iterations;
            let st = r.Counting.Approxmc.solver_stats in
            emit_report ~metrics_json ~show_stats
              [
                ( "config",
                  Obs.Report.
                    [
                      ("command", String "count");
                      ("file", String file);
                      ("epsilon", Float epsilon);
                      ("delta", Float delta);
                      ("seed", Int seed);
                      ("jobs", Int jobs);
                      ("incremental", Bool incremental);
                      ("xor_engine", String (xor_engine_name ~gauss));
                    ] );
                ( "count",
                  Obs.Report.
                    [
                      ("estimate", Float r.Counting.Approxmc.estimate);
                      ("log2_estimate", Float r.Counting.Approxmc.log2_estimate);
                      ("exact", Bool r.Counting.Approxmc.exact);
                      ("core_iterations", Int r.Counting.Approxmc.core_iterations);
                      ( "failed_iterations",
                        Int r.Counting.Approxmc.failed_iterations );
                    ] );
                ( "solver",
                  Obs.Report.
                    [
                      ("conflicts", Int st.Sat.Solver.conflicts);
                      ("decisions", Int st.Sat.Solver.decisions);
                      ("propagations", Int st.Sat.Solver.propagations);
                      ("xor_propagations", Int st.Sat.Solver.xor_propagations);
                      ("restarts", Int st.Sat.Solver.restarts);
                      ("learnts", Int st.Sat.Solver.learnts);
                      ("reuse_hits", Int r.Counting.Approxmc.reuse_hits);
                    ] );
              ];
            0)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let epsilon =
    Arg.(value & opt float 0.8 & info [ "e"; "epsilon" ] ~doc:"Tolerance.")
  in
  let delta =
    Arg.(value & opt float 0.2 & info [ "d"; "delta" ] ~doc:"1 - confidence.")
  in
  let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Random seed.") in
  let timeout =
    Arg.(value & opt float 600.0 & info [ "t"; "timeout" ] ~doc:"Timeout (s).")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ]
             ~doc:"Parallel counting iterations. Any value >= 1 selects the \
                   deterministic stream-per-iteration engine (estimate \
                   identical for every worker count). Omit for the legacy \
                   serial loop.")
  in
  let show_stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the structured run report (estimator output, \
                   solver counters, per-phase wall time) as comment lines.")
  in
  let no_incremental =
    Arg.(value & flag
         & info [ "no-incremental" ]
             ~doc:"Fresh CDCL solver per BSAT call (differential reference \
                   path; the estimate is identical either way).")
  in
  Cmd.v
    (Cmd.info "count" ~doc:"Approximately count witnesses (ApproxMC)")
    Term.(const run $ file $ epsilon $ delta $ seed $ timeout $ jobs
          $ show_stats $ no_incremental $ no_gauss_arg $ audit_arg $ trace_arg
          $ metrics_json_arg)

(* ------------------------------------------------------------------ *)
(* unigen support *)

let support_cmd =
  let run file minimize =
    match read_formula file with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok f ->
        let declared = Array.to_list (Cnf.Formula.sampling_vars f) in
        (match Sat.Indsupport.check f declared with
        | Sat.Indsupport.Dependent ->
            Printf.printf "c declared set of %d variables is NOT an independent support\n"
              (List.length declared);
            1
        | Sat.Indsupport.Unknown ->
            Printf.printf "c could not decide independence within budget\n";
            1
        | Sat.Indsupport.Independent ->
            let final =
              if minimize then Sat.Indsupport.minimize f declared else declared
            in
            Printf.printf "c independent support (%d variables%s)\n"
              (List.length final)
              (if minimize then ", minimized" else "");
            Printf.printf "c ind %s 0\n"
              (String.concat " " (List.map string_of_int final));
            0)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let minimize =
    Arg.(value & flag & info [ "m"; "minimize" ] ~doc:"Greedily minimize the support.")
  in
  Cmd.v
    (Cmd.info "support"
       ~doc:"Verify (and optionally minimize) the declared sampling set")
    Term.(const run $ file $ minimize)

(* ------------------------------------------------------------------ *)
(* unigen bench-gen *)

let bench_gen_cmd =
  let run name out list_only =
    if list_only then begin
      List.iter
        (fun (i : Workload.Suite.instance) ->
          Printf.printf "%-16s %s\n" i.Workload.Suite.name i.Workload.Suite.domain)
        Workload.Suite.table2;
      0
    end
    else
      match name with
      | None ->
          Printf.eprintf "error: provide an instance name or --list\n";
          1
      | Some name -> begin
          match Workload.Suite.by_name name with
          | None ->
              Printf.eprintf "error: unknown instance %s (try --list)\n" name;
              1
          | Some i ->
              let f = Lazy.force i.Workload.Suite.formula in
              let path =
                match out with Some p -> p | None -> name ^ ".cnf"
              in
              Cnf.Dimacs.write_file path f;
              Printf.printf "wrote %s: %d vars, %d clauses, |S|=%d\n" path
                f.Cnf.Formula.num_vars
                (Cnf.Formula.num_clauses f)
                (Array.length (Cnf.Formula.sampling_vars f));
              0
        end
  in
  let inst_name = Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output path.")
  in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List instances.") in
  Cmd.v
    (Cmd.info "bench-gen" ~doc:"Emit a bundled benchmark instance as DIMACS")
    Term.(const run $ inst_name $ out $ list_only)

(* ------------------------------------------------------------------ *)
(* unigen simplify *)

let simplify_cmd =
  let run file out no_bve =
    match read_formula file with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok f -> begin
        match Preprocess.Simplify.run ~eliminate:(not no_bve) f with
        | Error `Unsat ->
            print_endline "s UNSATISFIABLE";
            2
        | Ok r ->
            let path =
              match out with
              | Some p -> p
              | None -> Filename.remove_extension file ^ ".simplified.cnf"
            in
            Cnf.Dimacs.write_file path r.Preprocess.Simplify.simplified;
            Printf.printf
              "wrote %s: %d -> %d clauses, %d forced, %d variables eliminated\n"
              path r.Preprocess.Simplify.clauses_before
              r.Preprocess.Simplify.clauses_after
              (List.length r.Preprocess.Simplify.forced)
              (List.length r.Preprocess.Simplify.eliminated);
            0
      end
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output path.")
  in
  let no_bve =
    Arg.(value & flag & info [ "no-bve" ] ~doc:"Disable bounded variable elimination.")
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:"Sampling-safe preprocessing (projection on the sampling set preserved)")
    Term.(const run $ file $ out $ no_bve)

(* ------------------------------------------------------------------ *)
(* unigen convert: BLIF / AIGER -> CNF with sampling set *)

let convert_cmd =
  let run file out parity seed =
    let netlist =
      try
        if Filename.check_suffix file ".blif" then Ok (Circuits.Blif.parse_file file)
        else if Filename.check_suffix file ".aag" then Ok (Circuits.Aiger.parse_file file)
        else Error "expected a .blif or .aag input"
      with
      | Circuits.Blif.Parse_error msg | Circuits.Aiger.Parse_error msg -> Error msg
      | Sys_error msg -> Error msg
    in
    match netlist with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok nl ->
        let enc =
          if parity then
            Circuits.Tseitin.with_output_parity ~rng:(Rng.create seed) nl
          else Circuits.Tseitin.encode nl
        in
        let f = enc.Circuits.Tseitin.formula in
        let path =
          match out with
          | Some p -> p
          | None -> Filename.remove_extension file ^ ".cnf"
        in
        Cnf.Dimacs.write_file path f;
        Printf.printf
          "wrote %s: %d vars, %d clauses, sampling set = %d circuit inputs\n" path
          f.Cnf.Formula.num_vars (Cnf.Formula.num_clauses f)
          (Array.length enc.Circuits.Tseitin.input_vars);
        0
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output path.")
  in
  let parity =
    Arg.(value & flag
         & info [ "parity" ]
             ~doc:"Add random parity conditions on the outputs (ISCAS-style \
                   instance construction) instead of asserting them true.")
  in
  let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Parity seed.") in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Tseitin-encode a BLIF or ASCII-AIGER circuit to DIMACS with a `c ind` \
             sampling set")
    Term.(const run $ file $ out $ parity $ seed)

(* ------------------------------------------------------------------ *)
(* unigen serve: the long-lived sampling daemon *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix domain socket the daemon listens on (created on start, \
              unlinked on shutdown).")

let serve_cmd =
  let run socket queue_capacity max_batch cache_capacity jobs no_incremental
      no_gauss audit show_stats trace metrics_json log_file slow_ms spill_dir
      spill_budget_mb fleet =
    if audit then Audit.enable ();
    with_observability ~trace ~metrics_json ~show_stats @@ fun () ->
    (* one structured JSON line per request (see Obs.Log): to the given
       file, or stderr so it never interleaves with protocol output *)
    (match log_file with
    | Some path -> Obs.Log.enable_file path
    | None -> Obs.Log.enable_stderr ());
    Fun.protect ~finally:Obs.Log.close @@ fun () ->
    let config =
      {
        Service.Server.socket_path = socket;
        scheduler =
          {
            Service.Scheduler.queue_capacity;
            max_batch;
            cache_capacity;
            jobs;
            incremental = not no_incremental;
            gauss = not no_gauss;
            slow_ms;
            spill_dir;
            spill_budget_bytes = spill_budget_mb * 1024 * 1024;
          };
        log = (fun msg -> Printf.printf "c %s\n%!" msg);
        shard = None;
      }
    in
    match Service.Server.run_fleet ~replicas:fleet config with
    | () ->
        emit_report ~metrics_json ~show_stats
          [
            ( "config",
              Obs.Report.
                [
                  ("command", String "serve");
                  ("socket", String socket);
                  ("queue_capacity", Int queue_capacity);
                  ("max_batch", Int max_batch);
                  ("cache_capacity", Int cache_capacity);
                  ("jobs", Int jobs);
                  ("incremental", Bool (not no_incremental));
                  ( "xor_engine",
                    String (xor_engine_name ~gauss:(not no_gauss)) );
                  ( "spill_dir",
                    String (Option.value spill_dir ~default:"-") );
                  ("fleet", Int fleet);
                ] );
          ];
        0
    | exception Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | exception Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | exception Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "error: %s: %s %s\n" fn (Unix.error_message e) arg;
        1
  in
  let queue_capacity =
    Arg.(value & opt int 64
         & info [ "queue-capacity" ]
             ~doc:"Admission queue bound; further requests are rejected \
                   with a retry-after hint (backpressure).")
  in
  let max_batch =
    Arg.(value & opt int 10_000
         & info [ "max-batch" ] ~doc:"Per-request sample budget.")
  in
  let cache_capacity =
    Arg.(value & opt int 16
         & info [ "cache-capacity" ]
             ~doc:"Prepared-state LRU entries kept hot (0 disables the \
                   cache; every request then re-pays preparation).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains executing requests in parallel, sharded \
                   by formula fingerprint — concurrent clients on distinct \
                   formulas never contend. Witnesses are bit-identical to \
                   --jobs 1 for every value.")
  in
  let no_incremental =
    Arg.(value & flag
         & info [ "no-incremental" ]
             ~doc:"Fresh CDCL solver per BSAT call instead of warm sessions \
                   (differential reference path).")
  in
  let show_stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the structured service report (request, cache and \
                   queue counters) on shutdown.")
  in
  let log_file =
    Arg.(value & opt (some string) None
         & info [ "log-file" ] ~docv:"PATH"
             ~doc:"Write the structured JSON event log (one line per \
                   request: trace id, outcome, queue/prepare/draw \
                   milliseconds) to $(docv) instead of stderr.")
  in
  let slow_ms =
    Arg.(value & opt float 1000.0
         & info [ "slow-ms" ]
             ~doc:"Requests slower than this many milliseconds log at \
                   warn level, so `grep '\"level\":\"warn\"'` finds them.")
  in
  let spill_dir =
    Arg.(value & opt (some string) None
         & info [ "spill-dir" ] ~docv:"DIR"
             ~doc:"Durable prepared-state store: every preparation is \
                   spilled to $(docv) (crash-safe, checksummed) and RAM \
                   cache misses are served from it, so a restarted daemon \
                   — or a fleet sharing the directory — answers known \
                   formulas without re-running the approximate count.")
  in
  let spill_budget_mb =
    Arg.(value & opt int 256
         & info [ "spill-budget-mb" ]
             ~doc:"Disk budget of --spill-dir in MiB; least-recently-used \
                   entries are evicted past it.")
  in
  let fleet =
    Arg.(value & opt int 1
         & info [ "fleet" ] ~docv:"N"
             ~doc:"Fork $(docv) daemon replicas listening on \
                   PATH.0 .. PATH.N-1 (PATH from --socket); clients shard \
                   formulas over them by consistent hashing. Combine with \
                   --spill-dir to make the replicas one durable cache.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the sampling service daemon: content-addressed formula \
             registry, prepared-state cache and deadline-aware scheduler \
             behind a Unix-socket JSON protocol")
    Term.(const run $ socket_arg $ queue_capacity $ max_batch $ cache_capacity
          $ jobs $ no_incremental $ no_gauss_arg $ audit_arg $ show_stats
          $ trace_arg $ metrics_json_arg $ log_file $ slow_ms $ spill_dir
          $ spill_budget_mb $ fleet)

(* ------------------------------------------------------------------ *)
(* unigen client: talk to a running daemon *)

let client_cmd =
  let run sockets file num seed prepare_seed epsilon timeout_s max_attempts pin
      tag trace_id status shutdown cancel retries =
    (* jitter for with_retry's backoff: seeded, so retry schedules are
       reproducible like everything else in the pipeline *)
    let rng = Rng.create seed in
    let call_on socket req =
      try
        Ok
          (Service.Client.with_retry ~max_attempts:(max 1 retries) ~rng
             (fun () -> Service.Client.call ~socket_path:socket req))
      with
      | Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot reach daemon at %s: %s" socket
               (Unix.error_message e))
      | Service.Client.Protocol_error m -> Error ("protocol error: " ^ m)
    in
    let fail msg =
      Printf.eprintf "error: %s\n" msg;
      1
    in
    let many = match sockets with [] | [ _ ] -> false | _ -> true in
    if status then
      List.fold_left
        (fun acc socket ->
          match call_on socket Service.Wire.Status with
          | Error m ->
              ignore (fail m : int);
              1
          | Ok (Service.Wire.Metrics { values; info }) ->
              if many then Printf.printf "c socket = %s\n" socket;
              List.iter (fun (k, v) -> Printf.printf "c %s = %s\n" k v) info;
              List.iter (fun (k, v) -> Printf.printf "c %s = %g\n" k v) values;
              acc
          | Ok _ ->
              ignore (fail "unexpected response to status" : int);
              1)
        0 sockets
    else if shutdown then
      List.fold_left
        (fun acc socket ->
          match call_on socket Service.Wire.Shutdown with
          | Error m ->
              ignore (fail m : int);
              1
          | Ok Service.Wire.Bye ->
              print_endline
                (if many then "c daemon shutting down: " ^ socket
                 else "c daemon shutting down");
              acc
          | Ok _ ->
              ignore (fail "unexpected response to shutdown" : int);
              1)
        0 sockets
    else
      match cancel with
      | Some t ->
          (* the request lives on exactly one replica; ask each in turn *)
          let rec try_cancel = function
            | [] ->
                Printf.printf "c cancel %s: not found\n" t;
                1
            | socket :: rest -> (
                match call_on socket (Service.Wire.Cancel t) with
                | Error m -> fail m
                | Ok (Service.Wire.Cancel_result true) ->
                    Printf.printf "c cancel %s: cancelled\n" t;
                    0
                | Ok (Service.Wire.Cancel_result false) -> try_cancel rest
                | Ok _ -> fail "unexpected response to cancel")
          in
          try_cancel sockets
      | None -> (
          match file with
          | None -> fail "provide a CNF FILE, or --status/--shutdown/--cancel"
          | Some path -> (
              match
                try Ok (In_channel.with_open_bin path In_channel.input_all)
                with Sys_error m -> Error m
              with
              | Error m -> fail m
              | Ok formula_text -> (
                  (* fleet routing: shard by the registry fingerprint —
                     the same content address the daemon interns — so
                     every parameter variation of one formula lands on
                     the one replica holding its prepared state *)
                  let socket =
                    match sockets with
                    | [ s ] -> s
                    | _ ->
                        let key =
                          match Cnf.Dimacs.parse_string formula_text with
                          | f -> Service.Registry.fingerprint f
                          | exception Cnf.Dimacs.Parse_error _ ->
                              formula_text  (* daemon will report the error *)
                        in
                        Service.Client.Fleet.route
                          (Service.Client.Fleet.create sockets)
                          key
                  in
                  let req =
                    {
                      Service.Wire.default_sample_req with
                      Service.Wire.formula_text;
                      n = num;
                      seed;
                      prepare_seed;
                      epsilon;
                      timeout_s;
                      max_attempts;
                      pin;
                      tag;
                      trace_id;
                    }
                  in
                  match call_on socket (Service.Wire.Sample req) with
                  | Error m -> fail m
                  | Ok (Service.Wire.Ok_sample r) ->
                      Printf.printf
                        "c service: fingerprint=%s cache=%s queue_wait=%.1fms \
                         trace_id=%s socket=%s\n"
                        r.Service.Wire.fingerprint
                        (Service.Wire.cache_source_to_string r.Service.Wire.cache)
                        (r.Service.Wire.queue_wait_s *. 1000.0)
                        r.Service.Wire.rsp_trace_id socket;
                      List.iter
                        (fun w ->
                          print_endline
                            ("v "
                            ^ String.concat " " (List.map string_of_int w)
                            ^ " 0"))
                        r.Service.Wire.witnesses;
                      Printf.printf "c produced %d/%d witnesses\n"
                        r.Service.Wire.produced r.Service.Wire.requested;
                      if r.Service.Wire.produced = r.Service.Wire.requested
                      then 0
                      else 1
                  | Ok (Service.Wire.Unsat _) ->
                      print_endline "s UNSATISFIABLE";
                      2
                  | Ok (Service.Wire.Rejected { reason; retry_after_s }) ->
                      Printf.eprintf "rejected: %s (retry after %.0f ms)\n"
                        (Service.Wire.reject_reason_to_string reason)
                        (retry_after_s *. 1000.0);
                      3
                  | Ok (Service.Wire.Deadline_miss _) ->
                      Printf.eprintf "deadline missed\n";
                      4
                  | Ok (Service.Wire.Cancelled _) ->
                      Printf.eprintf "cancelled\n";
                      5
                  | Ok (Service.Wire.Error_msg m) -> fail m
                  | Ok _ -> fail "unexpected response")))
  in
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE") in
  let num =
    Arg.(value & opt int 10 & info [ "n"; "samples" ] ~doc:"Number of witnesses.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "s"; "seed" ]
             ~doc:"Draw seed: witness $(i)i$(i) comes from stream (seed, i), \
                   bit-identical to an offline run with the same seed.")
  in
  let prepare_seed =
    Arg.(value & opt int 1
         & info [ "prepare-seed" ]
             ~doc:"Preparation (ApproxMC) seed. Kept separate from the draw \
                   seed so requests differing only in --seed share one \
                   cached preparation.")
  in
  let epsilon =
    Arg.(value & opt float 6.0 & info [ "e"; "epsilon" ] ~doc:"Tolerance (> 1.71).")
  in
  let timeout_s =
    Arg.(value & opt (some float) None
         & info [ "t"; "timeout" ]
             ~doc:"Request deadline in seconds, measured from admission.")
  in
  let max_attempts =
    Arg.(value & opt int 20
         & info [ "max-attempts" ] ~doc:"Cell-failure retries per witness.")
  in
  let pin =
    Arg.(value & flag
         & info [ "pin" ]
             ~doc:"Pin this formula's prepared state against cache eviction.")
  in
  let tag =
    Arg.(value & opt (some string) None
         & info [ "tag" ] ~docv:"TAG"
             ~doc:"Client-chosen request id, echoed in the response and \
                   usable with --cancel from another connection.")
  in
  let trace_id =
    Arg.(value & opt (some string) None
         & info [ "trace-id" ] ~docv:"ID"
             ~doc:"Correlation id: every span and log line the daemon \
                   produces for this request carries $(docv), so one grep \
                   of the event log or Chrome trace follows the request \
                   across worker domains. Minted server-side when omitted.")
  in
  let status =
    Arg.(value & flag
         & info [ "status" ] ~doc:"Print the daemon's metrics snapshot and exit.")
  in
  let shutdown =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"Ask the daemon to drain in-flight requests and exit.")
  in
  let cancel =
    Arg.(value & opt (some string) None
         & info [ "cancel" ] ~docv:"TAG"
             ~doc:"Cancel the pending request submitted with --tag TAG.")
  in
  let sockets =
    Arg.(
      non_empty
      & opt_all string []
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Daemon socket. Repeat once per fleet replica (e.g. \
                --socket d.sock.0 --socket d.sock.1): sampling requests \
                then route to one replica by consistent hashing of the \
                formula's fingerprint, while --status and --shutdown \
                address every replica.")
  in
  let retries =
    Arg.(value & opt int 1
         & info [ "retries" ]
             ~doc:"Attempts per request: rejections (backpressure) and \
                   transient connection failures retry with the daemon's \
                   retry-after hint and capped exponential backoff, \
                   jittered from --seed. 1 disables retrying.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Submit sampling requests to a running unigen daemon")
    Term.(const run $ sockets $ file $ num $ seed $ prepare_seed $ epsilon
          $ timeout_s $ max_attempts $ pin $ tag $ trace_id $ status $ shutdown
          $ cancel $ retries)

(* ------------------------------------------------------------------ *)
(* unigen monitor: live dashboard over the daemon's rolling window *)

let monitor_cmd =
  let render ~socket (w : Service.Wire.window_report) =
    let b = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    let pct num den =
      if den = 0 then "-" else Printf.sprintf "%d%%" (100 * num / den)
    in
    line "unigen daemon  %s" socket;
    line "up %.0fs  jobs %d  engine %s  ocaml %s" w.Service.Wire.uptime_s
      w.Service.Wire.jobs w.Service.Wire.xor_engine
      w.Service.Wire.ocaml_version;
    line "";
    line "last %.0fs:  %d requests  (%.2f/s)   deadline misses %d"
      w.Service.Wire.window_s w.Service.Wire.w_requests
      w.Service.Wire.rate_per_s w.Service.Wire.w_deadline_misses;
    line "latency ms   p50 %8.1f  p90 %8.1f  p99 %8.1f"
      w.Service.Wire.p50_ms w.Service.Wire.p90_ms w.Service.Wire.p99_ms;
    line "queue ms     p50 %8.1f  p90 %8.1f  p99 %8.1f"
      w.Service.Wire.queue_p50_ms w.Service.Wire.queue_p90_ms
      w.Service.Wire.queue_p99_ms;
    line "cache        %d hits / %d misses  (%s hit)" w.Service.Wire.w_hits
      w.Service.Wire.w_misses
      (pct w.Service.Wire.w_hits
         (w.Service.Wire.w_hits + w.Service.Wire.w_misses));
    line "now          %d in flight, %d queued" w.Service.Wire.w_in_flight
      w.Service.Wire.w_queued;
    if w.Service.Wire.per_fp <> [] then begin
      line "";
      line "%-16s %6s %5s %6s %9s %9s %9s" "fingerprint" "req" "hit" "miss"
        "p50ms" "p90ms" "p99ms";
      List.iteri
        (fun i (f : Service.Wire.fp_window) ->
          if i < 16 then
            let short =
              if String.length f.Service.Wire.fp > 16 then
                String.sub f.Service.Wire.fp 0 16
              else f.Service.Wire.fp
            in
            line "%-16s %6d %5d %6d %9.1f %9.1f %9.1f" short
              f.Service.Wire.fp_requests f.Service.Wire.fp_hits
              f.Service.Wire.fp_misses f.Service.Wire.fp_p50_ms
              f.Service.Wire.fp_p90_ms f.Service.Wire.fp_p99_ms)
        w.Service.Wire.per_fp;
      let n = List.length w.Service.Wire.per_fp in
      if n > 16 then line "... and %d more fingerprints" (n - 16)
    end;
    Buffer.contents b
  in
  let run socket once interval =
    let fetch () =
      try Ok (Service.Client.call ~socket_path:socket Service.Wire.Window) with
      | Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot reach daemon at %s: %s" socket
               (Unix.error_message e))
      | Service.Client.Protocol_error m -> Error ("protocol error: " ^ m)
    in
    let rec loop first =
      match fetch () with
      | Error m ->
          Printf.eprintf "error: %s\n" m;
          1
      | Ok (Service.Wire.Window_report w) ->
          let body = render ~socket w in
          if once then print_string body
          else begin
            (* ANSI clear-and-home between refreshes; the first frame
               clears too so a scrolled terminal starts clean *)
            ignore first;
            print_string "\027[2J\027[H";
            print_string body;
            flush stdout
          end;
          if once then 0
          else begin
            Unix.sleepf interval;
            loop false
          end
      | Ok _ ->
          Printf.eprintf "error: unexpected response to metrics\n";
          1
    in
    loop true
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Print one report and exit instead of refreshing.")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let socket_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOCKET"
          ~doc:"Unix domain socket of the running daemon.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Live dashboard over a running daemon: request rate, rolling \
             p50/p90/p99 latency, deadline misses, cache hit ratio and the \
             busiest formula fingerprints, via the `metrics` wire op")
    Term.(const run $ socket_pos $ once $ interval)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "almost-uniform SAT witness generation (UniGen, DAC 2014)" in
  let info = Cmd.info "unigen" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ sample_cmd; count_cmd; support_cmd; bench_gen_cmd; simplify_cmd;
            convert_cmd; serve_cmd; client_cmd; monitor_cmd ]))

(* Thin driver over [lib/analysis]: the repo lint with token-stream
   rules, severities, the allowlist (with staleness enforcement), JSON
   on stdout and optional SARIF 2.1.0 for CI annotation.

   The rules encode correctness conventions the type checker cannot
   see but that the sampler's determinism and parallel safety depend
   on — all randomness through Rng, no shared tables escaping into
   Domain_pool/Executor closures, no blocking calls on the owner loop,
   paired spans and registered metric names. The full catalogue
   (name, severity, rationale) lives in DESIGN.md's "Static analysis"
   section and in each rule's [doc] field, which SARIF surfaces as
   rule metadata.

   Exit status: 0 clean (info-only or allowlisted findings included),
   1 blocking findings, 2 usage/parse errors. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let root = ref "." in
  let sarif = ref "" in
  let args =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default .)");
      ("--sarif", Arg.Set_string sarif, "FILE also write SARIF 2.1.0 to FILE");
    ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "lint [--root DIR] [--sarif FILE]";
  let root = !root in
  let allowlist =
    match
      Analysis.Allowlist.load (Filename.concat root "scripts/lint_allowlist.txt")
    with
    | Ok al -> { al with Analysis.Allowlist.path = "scripts/lint_allowlist.txt" }
    | Error msg ->
        prerr_endline ("lint: " ^ msg);
        exit 2
  in
  let design_doc =
    let p = Filename.concat root "DESIGN.md" in
    if Sys.file_exists p then Some (read_file p) else None
  in
  let sources = Analysis.Engine.load_repo ~root in
  if sources = [] then begin
    prerr_endline ("lint: no .ml files found under " ^ root);
    exit 2
  end;
  let report =
    Analysis.Engine.analyze ~allowlist ?design_doc
      ~rules:Analysis.Engine.default_rules sources
  in
  print_string (Analysis.Findings.list_to_json report.findings);
  if !sarif <> "" then begin
    let oc = open_out !sarif in
    output_string oc
      (Analysis.Sarif.to_string ~rules:Analysis.Engine.default_rules
         report.findings);
    close_out oc
  end;
  Printf.eprintf "lint: %d findings (%d allowlisted, %d blocking) in %d files\n"
    (List.length report.findings)
    report.allowlisted report.blocking report.files;
  if report.blocking > 0 then exit 1

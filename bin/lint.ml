(* Repo-specific lint pass (pure stdlib, no build-system integration
   beyond [dune exec bin/lint]).

   The rules encode correctness conventions that the type checker
   cannot see but that the sampler's determinism and parallel safety
   depend on:

   - [random-outside-prng]: all randomness must flow through [Rng]
     streams ([lib/prng]) so runs are reproducible under any worker
     count. A stray [Random.] call silently breaks witness determinism.
   - [poly-compare-hot]: polymorphic [compare] / [Hashtbl.hash] on the
     solver hot path ([lib/sat], [lib/cnf]) is both slow (generic
     traversal) and wrong on cyclic or functional values; use
     [Int.compare] / [String.compare] / module-specific comparators.
     Definition sites ([let compare a b = ...]) are exempt.
   - [global-mutable-table]: a top-level [Hashtbl.create] in [lib/]
     is shared mutable state that can escape into [Domain_pool] tasks
     without domain-local storage. Tables that are mutex-guarded by
     construction are allowlisted with a justification.
   - [missing-mli]: every [lib/**/*.ml] must have a matching [.mli];
     unabstracted modules leak representation details across layers.
   - [print-hot-path]: no [Printf.] / [Format.] in the solver's inner
     modules — observability goes through [lib/obs] so output cost is
     gated behind the metrics/tracing switches. Pretty-printers kept
     for debugging are allowlisted.
   - [unmatched-span]: async trace spans ([Trace.span_begin] /
     [Trace.span_end]) are paired by name across call sites, not
     lexically scoped; a begin whose name has no end site anywhere in
     the repo renders as a span that never closes in the Chrome trace.
     Checked globally over literal span names.

   Findings are emitted as a JSON array on stdout. Allowlisted
   findings are reported but do not affect the exit status; any
   unallowlisted finding exits 1. The allowlist lives at
   [scripts/lint_allowlist.txt], one [rule path] pair per line. *)

type finding = {
  rule : string;
  file : string;
  line : int;
  message : string;
  mutable allowlisted : bool;
}

let findings : finding list ref = ref []

let report rule file line message =
  findings := { rule; file; line; message; allowlisted = false } :: !findings

(* ------------------------------------------------------------------ *)
(* Source loading and masking *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Blank out comments, string literals and char literals, preserving
   every newline so line numbers survive. OCaml comments nest, and a
   string inside a comment must still be skipped as a string (its
   contents may contain an unbalanced comment closer). *)
let mask_source src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let depth = ref 0 in
  (* j points at the opening quote; returns index past the closing one *)
  let skip_string j =
    let j = ref (j + 1) in
    let esc = ref false in
    while !j < n && (!esc || src.[!j] <> '"') do
      esc := (not !esc) && src.[!j] = '\\';
      incr j
    done;
    min n (!j + 1)
  in
  while !i < n do
    let c = src.[!i] in
    if !depth > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i; blank (!i + 1); incr depth; i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i; blank (!i + 1); decr depth; i := !i + 2
      end
      else if c = '"' then begin
        let stop = skip_string !i in
        for k = !i to stop - 1 do blank k done;
        i := stop
      end
      else begin blank !i; incr i end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i; blank (!i + 1); depth := 1; i := !i + 2
    end
    else if c = '"' then begin
      let stop = skip_string !i in
      for k = !i to stop - 1 do blank k done;
      i := stop
    end
    else if c = '\'' && !i + 2 < n && src.[!i + 1] = '\\' then begin
      (* escaped char literal: '\n', '\\', '\123', '\xFF' *)
      let j = ref (!i + 2) in
      while !j < n && src.[!j] <> '\'' do incr j done;
      for k = !i to min (n - 1) !j do blank k done;
      i := !j + 1
    end
    else if c = '\'' && !i + 2 < n && src.[!i + 2] = '\'' then begin
      (* plain char literal 'x' (leaves type variables 'a alone) *)
      blank !i; blank (!i + 1); blank (!i + 2); i := !i + 3
    end
    else begin
      incr i
    end
  done;
  Bytes.to_string out

let line_of src pos =
  let l = ref 1 in
  for k = 0 to pos - 1 do
    if src.[k] = '\n' then incr l
  done;
  !l

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9') || c = '_' || c = '\''

(* Occurrences of [token] as a standalone word; [qualified] additionally
   accepts a preceding '.' (for [Module.f] patterns the token already
   contains the dot). *)
let word_occurrences masked token =
  let n = String.length masked and t = String.length token in
  let acc = ref [] in
  let i = ref 0 in
  while !i + t <= n do
    if String.sub masked !i t = token then begin
      let pre_ok = !i = 0 || not (is_ident_char masked.[!i - 1] || masked.[!i - 1] = '.') in
      let post_ok = !i + t >= n || not (is_ident_char masked.[!i + t]) in
      if pre_ok && post_ok then acc := !i :: !acc;
      i := !i + t
    end
    else incr i
  done;
  List.rev !acc

(* The identifier (if any) immediately before position [pos], used to
   recognise definition sites such as [let compare] / [and compare]. *)
let preceding_word masked pos =
  let j = ref (pos - 1) in
  while !j >= 0 && (masked.[!j] = ' ' || masked.[!j] = '\t') do decr j done;
  if !j < 0 || not (is_ident_char masked.[!j]) then ""
  else begin
    let stop = !j in
    while !j >= 0 && is_ident_char masked.[!j] do decr j done;
    String.sub masked (!j + 1) (stop - !j)
  end

(* ------------------------------------------------------------------ *)
(* Repo walking *)

let ml_files root =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.is_directory abs then
      Array.iter
        (fun entry ->
          if entry <> "_build" && entry.[0] <> '.' then
            walk (if rel = "" then entry else rel ^ "/" ^ entry))
        (Sys.readdir abs)
    else if Filename.check_suffix rel ".ml" then acc := rel :: !acc
  in
  List.iter (fun d -> if Sys.file_exists (Filename.concat root d) then walk d)
    [ "lib"; "bin"; "test" ];
  List.sort String.compare !acc

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Rules *)

let in_lib f = starts_with "lib/" f
let in_prng f = starts_with "lib/prng/" f
let in_hot f = starts_with "lib/sat/" f || starts_with "lib/cnf/" f

(* Inner-loop modules where even buffered formatting is off-budget. *)
let print_hot_files =
  [ "lib/sat/solver.ml"; "lib/sat/vec.ml"; "lib/sat/order_heap.ml";
    "lib/sat/gauss.ml"; "lib/sat/bsat.ml"; "lib/cnf/lit.ml";
    "lib/cnf/clause.ml"; "lib/cnf/model.ml" ]

let rule_random file masked src =
  if (in_lib file || starts_with "bin/" file) && not (in_prng file) then
    List.iter
      (fun pos ->
        report "random-outside-prng" file (line_of src pos)
          "use of stdlib Random outside lib/prng breaks deterministic seeding")
      (word_occurrences masked "Random")

let rule_poly_compare file masked src =
  if in_hot file then begin
    List.iter
      (fun pos ->
        match preceding_word masked pos with
        | "let" | "and" -> () (* definition of a monomorphic comparator *)
        | _ ->
            report "poly-compare-hot" file (line_of src pos)
              "polymorphic compare on the solver hot path; use a typed comparator")
      (word_occurrences masked "compare");
    List.iter
      (fun pos ->
        report "poly-compare-hot" file (line_of src pos)
          "polymorphic Hashtbl.hash on the solver hot path; supply a typed hash")
      (word_occurrences masked "Hashtbl.hash")
  end

let rule_global_table file masked src =
  if in_lib file then
    List.iter
      (fun pos ->
        (* top-level bindings only: the line containing the call must
           itself be a column-0 [let ] (the repo style keeps top-level
           table bindings on one line). An indented [Hashtbl.create] is
           per-call state inside a function, not a shared table. *)
        let bol =
          let j = ref pos in
          while !j > 0 && masked.[!j - 1] <> '\n' do decr j done;
          !j
        in
        if bol + 4 <= String.length masked && String.sub masked bol 4 = "let "
        then
          report "global-mutable-table" file (line_of src pos)
            "top-level mutable Hashtbl shared across domains; use Domain.DLS or justify in the allowlist")
      (word_occurrences masked "Hashtbl.create")

let rule_missing_mli root file =
  if in_lib file && not (Sys.file_exists (Filename.concat root (file ^ "i"))) then
    report "missing-mli" file 1
      "library module without an interface; add a .mli to pin the public surface"

let rule_print_hot file masked src =
  if List.mem file print_hot_files then
    List.iter
      (fun token ->
        List.iter
          (fun pos ->
            report "print-hot-path" file (line_of src pos)
              (token ^ " on a solver hot path; route output through lib/obs"))
          (word_occurrences masked token))
      [ "Printf"; "Format" ]

(* Like [word_occurrences] but accepting a qualifying dot before the
   token, so [Obs.Trace.span_begin] matches token [span_begin]. *)
let method_occurrences masked token =
  let n = String.length masked and t = String.length token in
  let acc = ref [] in
  let i = ref 0 in
  while !i + t <= n do
    if String.sub masked !i t = token then begin
      let pre_ok = !i = 0 || not (is_ident_char masked.[!i - 1]) in
      let post_ok = !i + t >= n || not (is_ident_char masked.[!i + t]) in
      if pre_ok && post_ok then acc := !i :: !acc;
      i := !i + t
    end
    else incr i
  done;
  List.rev !acc

(* The span-name literal of a [span_begin]/[span_end] call at [pos]:
   the first string literal after the call that is a positional
   argument — i.e. not preceded by ':' (a ~cat:"..." label), '('/','
   (inside an ~args list) or '=' (the definition's default value).
   The masked source blanks literals, so the text is read from the raw
   source; positions align. *)
let span_name_after src pos =
  let n = String.length src in
  let limit = min n (pos + 400) in
  let rec prev_nonspace j =
    if j < 0 then ' '
    else
      match src.[j] with
      | ' ' | '\t' | '\n' | '\r' -> prev_nonspace (j - 1)
      | c -> c
  in
  let rec find i =
    if i >= limit then None
    else if src.[i] = '"' then begin
      match prev_nonspace (i - 1) with
      | ':' | '(' | ',' | '=' | '^' -> find (skip_literal i)
      | _ ->
          let j = ref (i + 1) in
          while !j < n && src.[!j] <> '"' do incr j done;
          if !j < n then Some (String.sub src (i + 1) (!j - i - 1)) else None
    end
    else find (i + 1)
  and skip_literal i =
    let j = ref (i + 1) in
    while !j < n && src.[!j] <> '"' do incr j done;
    !j + 1
  in
  find pos

(* name -> (file, line) of one site; filled across all files, compared
   in [main] once every file has been scanned *)
let span_begins : (string * (string * int)) list ref = ref []
let span_ends : (string * (string * int)) list ref = ref []

let rule_span_pairs file masked src =
  let collect token acc =
    List.iter
      (fun pos ->
        match span_name_after src pos with
        | Some name -> acc := (name, (file, line_of src pos)) :: !acc
        | None -> () (* definition site or computed name *))
      (method_occurrences masked token)
  in
  collect "span_begin" span_begins;
  collect "span_end" span_ends

let check_span_pairs () =
  let names l = List.map fst l in
  let missing from against verb =
    List.iter
      (fun (name, (file, line)) ->
        if not (List.mem name (names against)) then
          report "unmatched-span" file line
            (Printf.sprintf
               "async span %S has no %s site; the Chrome trace pair 'b'/'e' \
                never closes" name verb))
      from
  in
  missing !span_begins !span_ends "span_end";
  missing !span_ends !span_begins "span_begin"

(* ------------------------------------------------------------------ *)
(* Allowlist *)

let load_allowlist path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let acc = ref [] in
    (try
       while true do
         let line = input_line ic in
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         match String.split_on_char ' ' (String.trim line)
               |> List.filter (fun s -> s <> "")
         with
         | [ rule; file ] -> acc := (rule, file) :: !acc
         | [] -> ()
         | _ ->
             prerr_endline ("lint: malformed allowlist line: " ^ line);
             exit 2
       done
     with End_of_file -> ());
    close_in ic;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Output *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_findings fs =
  print_string "[";
  List.iteri
    (fun i f ->
      if i > 0 then print_string ",";
      Printf.printf
        "\n  {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"allowlisted\": %b, \"message\": \"%s\"}"
        (json_escape f.rule) (json_escape f.file) f.line f.allowlisted
        (json_escape f.message))
    fs;
  print_string (if fs = [] then "]\n" else "\n]\n")

(* ------------------------------------------------------------------ *)

let () =
  let root = ref "." in
  let args = [ ("--root", Arg.Set_string root, "DIR repository root (default .)") ] in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "lint [--root DIR]";
  let root = !root in
  let files = ml_files root in
  if files = [] then begin
    prerr_endline ("lint: no .ml files found under " ^ root);
    exit 2
  end;
  List.iter
    (fun file ->
      let src = read_file (Filename.concat root file) in
      let masked = mask_source src in
      rule_random file masked src;
      rule_poly_compare file masked src;
      rule_global_table file masked src;
      rule_missing_mli root file;
      rule_print_hot file masked src;
      rule_span_pairs file masked src)
    files;
  check_span_pairs ();
  let allow = load_allowlist (Filename.concat root "scripts/lint_allowlist.txt") in
  let fs =
    List.sort
      (fun a b ->
        match String.compare a.file b.file with
        | 0 -> Int.compare a.line b.line
        | c -> c)
      !findings
  in
  List.iter
    (fun f -> if List.mem (f.rule, f.file) allow then f.allowlisted <- true)
    fs;
  print_findings fs;
  let bad = List.filter (fun f -> not f.allowlisted) fs in
  Printf.eprintf "lint: %d findings (%d allowlisted, %d blocking) in %d files\n"
    (List.length fs)
    (List.length fs - List.length bad)
    (List.length bad) (List.length files);
  if bad <> [] then exit 1

let energy (f : Cnf.Formula.t) values =
  let violated = ref 0 in
  Array.iter
    (fun c -> if not (Cnf.Clause.eval (fun v -> values.(v - 1)) c) then incr violated)
    f.Cnf.Formula.clauses;
  Array.iter
    (fun x -> if not (Cnf.Xor_clause.eval (fun v -> values.(v - 1)) x) then incr violated)
    f.Cnf.Formula.xors;
  !violated

(* Energy delta of flipping variable [v] — recomputed locally over the
   clauses mentioning v would be faster; at benchmark scale the direct
   recomputation keeps the code obvious. *)
let delta f values v =
  let before = energy f values in
  values.(v - 1) <- not values.(v - 1);
  let after = energy f values in
  values.(v - 1) <- not values.(v - 1);
  after - before

let sample ?(steps = 10_000) ?(temperature = 0.4) ?(restarts = 5) ?stats ~rng
    (f : Cnf.Formula.t) =
  let stats = match stats with Some s -> s | None -> Sampler.fresh_stats () in
  stats.Sampler.samples_requested <- stats.Sampler.samples_requested + 1;
  let start = Unix.gettimeofday () in
  let n = f.Cnf.Formula.num_vars in
  let finish outcome =
    stats.Sampler.wall_seconds <-
      stats.Sampler.wall_seconds +. (Unix.gettimeofday () -. start);
    (match outcome with
    | Ok _ -> stats.Sampler.samples_produced <- stats.Sampler.samples_produced + 1
    | Error Sampler.Cell_failure ->
        stats.Sampler.cell_failures <- stats.Sampler.cell_failures + 1
    | Error _ -> ());
    outcome
  in
  let rec attempt r =
    if r = 0 then finish (Error Sampler.Cell_failure)
    else begin
      let values = Array.init n (fun _ -> Rng.bool rng) in
      let e = ref (energy f values) in
      let remaining = ref steps in
      while !e > 0 && !remaining > 0 do
        decr remaining;
        let v = 1 + Rng.int rng n in
        let d = delta f values v in
        if d <= 0 || Rng.float rng 1.0 < Float.exp (-.float_of_int d /. temperature)
        then begin
          values.(v - 1) <- not values.(v - 1);
          e := !e + d
        end
      done;
      if !e = 0 then begin
        (* keep walking inside the solution space for a short mixing
           phase: only moves that stay satisfying are accepted *)
        let mix = ref (steps / 10) in
        while !mix > 0 do
          decr mix;
          let v = 1 + Rng.int rng n in
          if delta f values v = 0 then values.(v - 1) <- not values.(v - 1)
        done;
        finish (Ok (Cnf.Model.of_bool_array values))
      end
      else attempt (r - 1)
    end
  in
  if n = 0 then finish (Error Sampler.Cell_failure) else attempt restarts

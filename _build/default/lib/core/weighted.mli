(** Weighted (distribution-aware) sampling — the extension the UniGen
    line of work developed next (WeightGen / the weighted-to-unweighted
    reduction of Chakraborty et al.), built here on top of the
    unweighted UniGen core.

    Literal weights are dyadic rationals: P(v = true) = num / 2^m.
    Each weighted variable [v] is tied to [m] fresh "coin" variables
    through the constraint v ↔ ([coins]₂ < num), so a witness with
    v = true has exactly [num] coin extensions and one with v = false
    has 2^m − num. Uniform sampling of the lifted formula therefore
    induces the weighted distribution on the original variables, and
    UniGen's (1+ε) uniformity bounds carry over multiplicatively. *)

type weight = { num : int; log_denom : int }
(** [num / 2^log_denom], with [0 < num < 2^log_denom] and
    [log_denom <= 10] (the encoding enumerates the 2^log_denom coin
    patterns). *)

val weight_of_float : ?log_denom:int -> float -> weight
(** Nearest dyadic weight with the given denominator (default 2^6).
    @raise Invalid_argument if the rounded weight degenerates
    to 0 or 1 — constrain the variable with a unit clause instead. *)

val probability : weight -> float

type lifted = {
  formula : Cnf.Formula.t;
      (** the unweighted lift; its sampling set replaces each weighted
          variable by that variable's coins (the weighted variable
          itself becomes dependent) *)
  original_vars : int;
  coins : (int * int list) list;  (** weighted var -> its coin vars *)
}

val lift : Cnf.Formula.t -> (int * weight) list -> lifted
(** @raise Invalid_argument on repeated or out-of-range variables, or
    weights on variables outside the sampling set (weights must apply
    to independent-support variables for the guarantee to carry). *)

val project : lifted -> Cnf.Model.t -> Cnf.Model.t
(** Restrict a witness of the lifted formula to the original
    variables. *)

val expected_probability :
  lifted -> (int * weight) list -> Cnf.Model.t -> float
(** The analytic probability of a projected witness under the target
    weighted distribution, up to the normalizing constant: the product
    of its literal weights. Used by the statistical tests. *)

(** ComputeKappaPivot (Algorithm 2 of the paper).

    Given the user-facing tolerance ε > 1.71, find κ ∈ [0, 1) such
    that ε = (1 + κ)(2.23 + 0.48/(1 − κ)²) − 1, and set
    pivot = ⌈3·e^(1/2)·(1 + 1/κ)²⌉. κ controls how far a cell's size
    may deviate from pivot; the constants come from the paper's
    Lemmas 4 and 6. *)

val min_epsilon : float
(** 1.71 — below this no κ ∈ [0, 1) exists (Appendix of the paper). *)

val compute : float -> float * int
(** [compute epsilon] is [(kappa, pivot)].
    @raise Invalid_argument when [epsilon <= min_epsilon]. *)

val hi_thresh : kappa:float -> pivot:int -> float
(** 1 + (1 + κ)·pivot — upper cell-size threshold. *)

val lo_thresh : kappa:float -> pivot:int -> float
(** pivot/(1 + κ) — lower cell-size threshold. *)

type t = { witnesses : Cnf.Model.t array }

let create ?(limit = 1 lsl 20) f =
  let out = Sat.Bsat.enumerate ~limit:(limit + 1) f in
  let witnesses = Array.of_list out.Sat.Bsat.models in
  if Array.length witnesses = 0 then raise Not_found;
  if not out.Sat.Bsat.exhausted then
    failwith
      (Printf.sprintf "Us.create: more than %d witnesses, not enumerable" limit);
  { witnesses }

let size t = Array.length t.witnesses
let exact_count f = Counting.Exact_counter.count f
let sample ~rng t = Rng.choose rng t.witnesses
let sample_index ~rng t = Rng.int rng (Array.length t.witnesses)

(** US — the ideal uniform sampler of the paper's Figure 1 experiment.

    The paper's US determines |R_F| with an exact model counter and
    then "generates" a witness by drawing a uniform index in
    {1..|R_F|}. Ours additionally materialises the witnesses (via
    exhaustive BSAT enumeration) so it can return real models; for
    histogram-only experiments {!sample_index} reproduces the paper's
    cheaper index-drawing variant. Only usable on formulas whose
    (projected) witness set is small enough to enumerate. *)

type t

val create : ?limit:int -> Cnf.Formula.t -> t
(** Enumerate all witnesses (distinct on the sampling set), up to
    [limit] (default 2^20).
    @raise Failure if the formula has more witnesses than [limit].
    @raise Not_found if the formula is unsatisfiable. *)

val size : t -> int
(** |R_F| (projected on the sampling set). *)

val exact_count : Cnf.Formula.t -> int
(** Independent exact count through the DPLL counter (not through
    enumeration); tests use it to cross-check {!size}. Counts over all
    variables. *)

val sample : rng:Rng.t -> t -> Cnf.Model.t
(** A perfectly uniform witness. *)

val sample_index : rng:Rng.t -> t -> int
(** A uniform index in [0, size), the paper's US formulation. *)

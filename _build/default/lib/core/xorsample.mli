(** XORSample′ (Gomes, Sabharwal, Selman — NIPS 2007): the earlier
    hashing-based near-uniform generator discussed in the paper's
    related work. Unlike UniGen and UniWit it requires the user to
    supply the number [s] of XOR constraints — a difficult-to-estimate
    parameter (too small: huge cells and skew; too large: empty
    cells). It hashes over the full support.

    Included as a baseline for the related-work comparison benches. *)

val sample :
  ?deadline:float ->
  ?cell_cutoff:int ->
  ?stats:Sampler.run_stats ->
  rng:Rng.t ->
  s:int ->
  Cnf.Formula.t ->
  Sampler.outcome
(** Add [s] random XORs, enumerate the surviving cell exhaustively (up
    to [cell_cutoff], default 4096 — beyond it the attempt is treated
    as a failure, mirroring the practical need for [s] to be close to
    log2 |R_F|), and pick a witness uniformly from the cell. *)

(** Markov-chain Monte Carlo witness sampling — the practical
    heuristic family (Kitchen & Kuehlmann, ICCAD 2007; Wei & Selman)
    the paper's related-work section contrasts with UniGen.

    A Metropolis walk over full assignments with energy = number of
    violated constraints: downhill moves are always accepted, uphill
    moves with probability e^(−ΔE/T). When the walk reaches energy 0
    within its step budget the assignment is returned as a witness.

    MCMC convergence to the uniform distribution over witnesses is
    only guaranteed in the limit; with practical budgets the
    distribution is skewed towards "wide basin" witnesses — exactly
    the weakness the paper cites. The [bench baselines] target
    measures that skew against UniGen and US. *)

val sample :
  ?steps:int ->
  ?temperature:float ->
  ?restarts:int ->
  ?stats:Sampler.run_stats ->
  rng:Rng.t ->
  Cnf.Formula.t ->
  Sampler.outcome
(** [steps] per restart (default 10_000), [temperature] (default 0.4),
    [restarts] (default 5). Fails with [Cell_failure] when no
    satisfying state is reached. *)

type weight = { num : int; log_denom : int }

let validate_weight w =
  if w.log_denom < 1 || w.log_denom > 10 then
    invalid_arg "Weighted: log_denom must be in 1..10";
  if w.num <= 0 || w.num >= 1 lsl w.log_denom then
    invalid_arg "Weighted: weight must lie strictly between 0 and 1"

let weight_of_float ?(log_denom = 6) p =
  let denom = 1 lsl log_denom in
  let num = int_of_float (Float.round (p *. float_of_int denom)) in
  let w = { num; log_denom } in
  validate_weight w;
  w

let probability w = float_of_int w.num /. float_of_int (1 lsl w.log_denom)

type lifted = {
  formula : Cnf.Formula.t;
  original_vars : int;
  coins : (int * int list) list;
}

let lift (f : Cnf.Formula.t) weights =
  let n = f.Cnf.Formula.num_vars in
  let sampling = Cnf.Formula.sampling_vars f in
  let in_sampling = Array.make (n + 1) false in
  Array.iter (fun v -> in_sampling.(v) <- true) sampling;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (v, w) ->
      validate_weight w;
      if v < 1 || v > n then invalid_arg "Weighted.lift: variable out of range";
      if Hashtbl.mem seen v then invalid_arg "Weighted.lift: repeated variable";
      if not in_sampling.(v) then
        invalid_arg "Weighted.lift: weights must target sampling-set variables";
      Hashtbl.add seen v ())
    weights;
  let next = ref (n + 1) in
  let clauses = ref [] in
  let coins =
    List.map
      (fun (v, w) ->
        let m = w.log_denom in
        let coin_vars = List.init m (fun _ ->
            let c = !next in
            incr next;
            c)
        in
        (* v ↔ ([coins]₂ < num): one clause per coin pattern, forcing
           v to the comparison outcome under that pattern *)
        for pattern = 0 to (1 lsl m) - 1 do
          let pattern_lits =
            List.mapi
              (fun i c ->
                (* coin i is bit i of the pattern; the clause negates
                   the pattern so it only bites when it matches *)
                if pattern land (1 lsl i) <> 0 then Cnf.Lit.neg c else Cnf.Lit.pos c)
              coin_vars
          in
          let forced = Cnf.Lit.make v (pattern < w.num) in
          clauses := Cnf.Clause.of_list (forced :: pattern_lits) :: !clauses
        done;
        (v, coin_vars))
      weights
  in
  let total_vars = !next - 1 in
  (* sampling set: original minus weighted vars, plus all coins *)
  let weighted = Hashtbl.create 16 in
  List.iter (fun (v, _) -> Hashtbl.replace weighted v ()) coins;
  let new_sampling =
    (Array.to_list sampling |> List.filter (fun v -> not (Hashtbl.mem weighted v)))
    @ List.concat_map snd coins
  in
  let base =
    Cnf.Formula.create_with_xors ~num_vars:total_vars
      (Array.to_list f.Cnf.Formula.clauses @ !clauses)
      (Array.to_list f.Cnf.Formula.xors)
  in
  let formula = Cnf.Formula.with_sampling_set base new_sampling in
  { formula; original_vars = n; coins }

let project lifted m =
  Cnf.Model.restrict m (Array.init lifted.original_vars (fun i -> i + 1))

let expected_probability _lifted weights m =
  List.fold_left
    (fun acc (v, w) ->
      let p = probability w in
      acc *. (if Cnf.Model.value m v then p else 1.0 -. p))
    1.0 weights

(** Statistical machinery for the uniformity experiments (Figure 1 of
    the paper and the ε-knob study). *)

type histogram = (string, int) Hashtbl.t
(** Occurrence counts keyed by witness identity. *)

val histogram_of_keys : string list -> histogram

val occurrence_distribution : ?support_size:int -> histogram -> (int * int) list
(** The Figure 1 series: pairs (c, w) meaning "w distinct witnesses
    were each generated exactly c times", sorted by c ascending. When
    [support_size] (the true |R_F|) is given, witnesses never sampled
    contribute to the c = 0 bucket. *)

val chi_square_uniform : num_outcomes:int -> num_samples:int -> histogram -> float
(** Pearson's χ² statistic of the sample against the uniform
    distribution over [num_outcomes] outcomes. *)

val chi_square_pvalue : dof:int -> float -> float
(** Upper-tail p-value of a χ² statistic with [dof] degrees of
    freedom, via the regularized incomplete gamma function. *)

val uniformity_pvalue : num_outcomes:int -> num_samples:int -> histogram -> float
(** Convenience: p-value of the χ² uniformity test (dof =
    num_outcomes − 1). Values very close to 0 reject uniformity. *)

val total_variation_from_uniform :
  num_outcomes:int -> num_samples:int -> histogram -> float
(** ½ Σ |p̂(y) − 1/n| over all outcomes (unsampled ones included). *)

val kl_from_uniform : num_outcomes:int -> num_samples:int -> histogram -> float
(** Kullback–Leibler divergence D(p̂ ‖ uniform) in bits; unsampled
    outcomes contribute 0 by the 0·log 0 = 0 convention. *)

val mean : float list -> float
val stddev : float list -> float

val log_gamma : float -> float
(** ln Γ(x), Lanczos approximation (exposed for tests). *)

val regularized_gamma_p : float -> float -> float
(** P(a, x), the lower regularized incomplete gamma function
    (exposed for tests). *)

type histogram = (string, int) Hashtbl.t

let histogram_of_keys keys =
  let h = Hashtbl.create 1024 in
  List.iter
    (fun k -> Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
    keys;
  h

let occurrence_distribution ?support_size h =
  let buckets = Hashtbl.create 64 in
  let bump c =
    Hashtbl.replace buckets c (1 + Option.value ~default:0 (Hashtbl.find_opt buckets c))
  in
  Hashtbl.iter (fun _ c -> bump c) h;
  (match support_size with
  | Some n ->
      let unseen = n - Hashtbl.length h in
      if unseen > 0 then Hashtbl.replace buckets 0 unseen
  | None -> ());
  Hashtbl.fold (fun c w acc -> (c, w) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let chi_square_uniform ~num_outcomes ~num_samples h =
  if num_outcomes <= 0 then invalid_arg "chi_square_uniform: no outcomes";
  let expected = float_of_int num_samples /. float_of_int num_outcomes in
  let sampled = Hashtbl.fold (fun _ c acc -> acc + c) h 0 in
  if sampled <> num_samples then
    invalid_arg "chi_square_uniform: histogram does not sum to num_samples";
  let stat = ref 0.0 in
  Hashtbl.iter
    (fun _ c ->
      let d = float_of_int c -. expected in
      stat := !stat +. (d *. d /. expected))
    h;
  (* outcomes never sampled each contribute expected *)
  let unseen = num_outcomes - Hashtbl.length h in
  stat := !stat +. (float_of_int unseen *. expected);
  !stat

(* Lanczos approximation of ln Γ. *)
let rec log_gamma x =
  let g = 7.0 in
  let coefficients =
    [|
      0.99999999999980993; 676.5203681218851; -1259.1392167224028;
      771.32342877765313; -176.61502916214059; 12.507343278686905;
      -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
    |]
  in
  if x < 0.5 then
    (* reflection formula *)
    Float.log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma_pos (1.0 -. x) g coefficients
  else log_gamma_pos x g coefficients

and log_gamma_pos x g coefficients =
  let x = x -. 1.0 in
  let a = ref coefficients.(0) in
  let t = x +. g +. 0.5 in
  for i = 1 to 8 do
    a := !a +. (coefficients.(i) /. (x +. float_of_int i))
  done;
  (0.5 *. Float.log (2.0 *. Float.pi))
  +. ((x +. 0.5) *. Float.log t)
  -. t +. Float.log !a

(* Lower regularized incomplete gamma P(a, x): series for x < a+1,
   continued fraction otherwise (Numerical Recipes 6.2). *)
let regularized_gamma_p a x =
  if a <= 0.0 then invalid_arg "regularized_gamma_p: a <= 0";
  if x < 0.0 then invalid_arg "regularized_gamma_p: x < 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then begin
    (* series representation *)
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    (try
       for _ = 1 to 500 do
         ap := !ap +. 1.0;
         del := !del *. x /. !ap;
         sum := !sum +. !del;
         if Float.abs !del < Float.abs !sum *. 1e-14 then raise Exit
       done
     with Exit -> ());
    !sum *. Float.exp ((-.x) +. (a *. Float.log x) -. log_gamma a)
  end
  else begin
    (* continued fraction for Q(a,x), then P = 1 - Q *)
    let tiny = 1e-300 in
    let b = ref (x +. 1.0 -. a) in
    let c = ref (1.0 /. tiny) in
    let d = ref (1.0 /. !b) in
    let h = ref !d in
    (try
       for i = 1 to 500 do
         let an = -.float_of_int i *. (float_of_int i -. a) in
         b := !b +. 2.0;
         d := (an *. !d) +. !b;
         if Float.abs !d < tiny then d := tiny;
         c := !b +. (an /. !c);
         if Float.abs !c < tiny then c := tiny;
         d := 1.0 /. !d;
         let del = !d *. !c in
         h := !h *. del;
         if Float.abs (del -. 1.0) < 1e-14 then raise Exit
       done
     with Exit -> ());
    let q = Float.exp ((-.x) +. (a *. Float.log x) -. log_gamma a) *. !h in
    1.0 -. q
  end

let chi_square_pvalue ~dof stat =
  if dof <= 0 then invalid_arg "chi_square_pvalue: dof <= 0";
  if stat <= 0.0 then 1.0
  else 1.0 -. regularized_gamma_p (float_of_int dof /. 2.0) (stat /. 2.0)

let uniformity_pvalue ~num_outcomes ~num_samples h =
  chi_square_pvalue ~dof:(num_outcomes - 1)
    (chi_square_uniform ~num_outcomes ~num_samples h)

let total_variation_from_uniform ~num_outcomes ~num_samples h =
  let n = float_of_int num_samples in
  let u = 1.0 /. float_of_int num_outcomes in
  let acc = ref 0.0 in
  Hashtbl.iter (fun _ c -> acc := !acc +. Float.abs ((float_of_int c /. n) -. u)) h;
  let unseen = num_outcomes - Hashtbl.length h in
  acc := !acc +. (float_of_int unseen *. u);
  0.5 *. !acc

let kl_from_uniform ~num_outcomes ~num_samples h =
  let n = float_of_int num_samples in
  let u = 1.0 /. float_of_int num_outcomes in
  let acc = ref 0.0 in
  Hashtbl.iter
    (fun _ c ->
      let p = float_of_int c /. n in
      if p > 0.0 then acc := !acc +. (p *. (Float.log (p /. u) /. Float.log 2.0)))
    h;
  !acc

let mean l =
  match l with
  | [] -> Float.nan
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l
        /. float_of_int (List.length l - 1)
      in
      Float.sqrt var

let min_epsilon = 1.71

let epsilon_of_kappa kappa =
  ((1.0 +. kappa) *. (2.23 +. (0.48 /. ((1.0 -. kappa) ** 2.0)))) -. 1.0

let compute epsilon =
  if epsilon <= min_epsilon then
    invalid_arg
      (Printf.sprintf "Kappa_pivot.compute: epsilon must exceed %.2f" min_epsilon);
  (* epsilon_of_kappa is strictly increasing on [0, 1): bisect. *)
  let rec bisect lo hi iter =
    if iter = 0 then (lo +. hi) /. 2.0
    else
      let mid = (lo +. hi) /. 2.0 in
      if epsilon_of_kappa mid < epsilon then bisect mid hi (iter - 1)
      else bisect lo mid (iter - 1)
  in
  let kappa = bisect 0.0 0.999_999 80 in
  let pivot =
    int_of_float
      (Float.ceil (3.0 *. Float.exp 0.5 *. ((1.0 +. (1.0 /. kappa)) ** 2.0)))
  in
  (kappa, pivot)

let hi_thresh ~kappa ~pivot = 1.0 +. ((1.0 +. kappa) *. float_of_int pivot)
let lo_thresh ~kappa ~pivot = float_of_int pivot /. (1.0 +. kappa)

lib/core/sampler.ml: Cnf Float Format Hashing Result

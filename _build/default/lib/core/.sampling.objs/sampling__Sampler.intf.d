lib/core/sampler.mli: Cnf Format Hashing Result

lib/core/weighted.mli: Cnf

lib/core/kappa_pivot.ml: Float Printf

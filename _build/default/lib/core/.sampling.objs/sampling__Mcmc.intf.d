lib/core/mcmc.mli: Cnf Rng Sampler

lib/core/us.ml: Array Cnf Counting Printf Rng Sat

lib/core/uniwit.ml: Array Cnf Hashing Rng Sampler Sat Unix

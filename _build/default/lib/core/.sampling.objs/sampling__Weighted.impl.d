lib/core/weighted.ml: Array Cnf Float Hashtbl List

lib/core/unigen.ml: Array Cnf Counting Float Fun Hashing Kappa_pivot Parallel Rng Sampler Sat Unix

lib/core/unigen.ml: Array Cnf Counting Float Hashing Kappa_pivot Rng Sampler Sat Unix

lib/core/us.mli: Cnf Rng

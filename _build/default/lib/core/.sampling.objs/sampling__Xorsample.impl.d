lib/core/xorsample.ml: Array Cnf Hashing Rng Sampler Sat Unix

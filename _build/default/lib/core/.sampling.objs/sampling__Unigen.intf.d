lib/core/unigen.mli: Cnf Result Rng Sampler

lib/core/unigen.mli: Cnf Parallel Result Rng Sampler

lib/core/stats.mli: Hashtbl

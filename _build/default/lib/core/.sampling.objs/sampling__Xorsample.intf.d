lib/core/xorsample.mli: Cnf Rng Sampler

lib/core/stats.ml: Array Float Hashtbl Int List Option

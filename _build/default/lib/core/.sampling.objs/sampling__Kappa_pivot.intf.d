lib/core/kappa_pivot.mli:

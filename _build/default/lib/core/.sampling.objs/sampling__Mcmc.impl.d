lib/core/mcmc.ml: Array Cnf Float Rng Sampler Unix

lib/core/uniwit.mli: Cnf Rng Sampler

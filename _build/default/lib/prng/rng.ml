type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand a seed into the four xoshiro words,
   as recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create seed

(* Stream derivation: whiten the master seed through one splitmix64
   step, then offset the whitened state by [index] times an odd 64-bit
   constant (odd multipliers are injective mod 2^64, so distinct
   indices give distinct splitmix states) and expand through four more
   splitmix64 steps, exactly as [create] expands a raw seed.  Stream
   [index] therefore depends only on [(seed, index)], never on how many
   other streams were derived — the property the parallel sampling
   engine relies on for jobs-count-invariant reproducibility. *)
let of_stream ~seed index =
  if index < 0 then invalid_arg "Rng.of_stream: negative stream index";
  let state = ref (Int64.of_int seed) in
  let whitened = splitmix64 state in
  let state =
    ref (Int64.add whitened (Int64.mul (Int64.of_int index) 0xD1B54A32D192ED03L))
  in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let bool t = Int64.compare (bits64 t) 0L < 0

(* Non-negative integer in [0, max_int]. *)
let positive t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the largest multiple of [bound] that fits;
     note 1 lsl 62 would overflow the 63-bit OCaml int. *)
  let limit = max_int / bound * bound in
  let rec draw () =
    let v = positive t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (mantissa *. 0x1p-53)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let bernoulli t p = float t 1.0 < p

let self_test () =
  (* Reference behaviour: xoshiro256** seeded via splitmix64(0) must be
     deterministic and must not repeat within a short window. *)
  let g = create 0 in
  let a = bits64 g and b = bits64 g and c = bits64 g in
  let g' = create 0 in
  let a' = bits64 g' in
  a = a' && a <> b && b <> c && a <> c

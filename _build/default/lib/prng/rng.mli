(** Deterministic, splittable pseudo-random number generator.

    The paper's implementation uses C++ [random_device]; we substitute a
    seeded xoshiro256** generator (public-domain algorithm by Blackman
    and Vigna) so that every experiment in this repository is exactly
    reproducible from its seed.  Streams can be {!split} so that
    independent components (hash selection, cell selection, witness
    selection) consume independent randomness. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed, expanding it
    through splitmix64 so that nearby seeds yield unrelated streams. *)

val split : t -> t
(** [split t] derives a new generator whose future output is
    statistically independent of [t]'s, advancing [t]. Successive
    splits from one parent yield pairwise-independent streams; use
    this when the number of consumers is discovered dynamically. *)

val of_stream : seed:int -> int -> t
(** [of_stream ~seed index] is the [index]-th member of the stream
    family keyed by [seed] (a pure function of the pair — unlike
    {!split} it does not advance any parent state). The master seed is
    whitened through splitmix64 and offset by [index] times an odd
    constant before the usual four-word expansion, so streams with
    nearby indices are as unrelated as generators from independent
    seeds, and stream [index] is identical no matter how many sibling
    streams exist or in what order they are created. This is the
    seeding discipline of the parallel sampling engine: sample [i]
    always consumes stream [(seed, i)], making batch output invariant
    under the worker count.
    @raise Invalid_argument when [index < 0]. *)

val copy : t -> t
(** Duplicate the current state (both copies then produce the same
    stream — useful in tests). *)

val bits64 : t -> int64
(** 64 uniformly random bits. *)

val bool : t -> bool
(** A uniformly random boolean. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound); requires [bound > 0].
    Uses rejection sampling, so there is no modulo bias. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniformly random element of a non-empty list. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val self_test : unit -> bool
(** Checks the generator against the reference xoshiro256** vectors. *)

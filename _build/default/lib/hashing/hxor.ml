type t = {
  vars : int array;
  rows : int array array; (* row i: variables with coefficient 1 *)
  offsets : bool array; (* a(i,0) *)
  alpha : bool array; (* target cell *)
}

let sample ?(density = 0.5) rng ~vars ~m =
  if m < 0 then invalid_arg "Hxor.sample: m < 0";
  if density <= 0.0 || density > 1.0 then invalid_arg "Hxor.sample: bad density";
  if m > 0 && Array.length vars = 0 then
    invalid_arg "Hxor.sample: empty variable set";
  let row () =
    Array.to_list vars
    |> List.filter (fun _ ->
           if density = 0.5 then Rng.bool rng else Rng.bernoulli rng density)
    |> Array.of_list
  in
  {
    vars;
    rows = Array.init m (fun _ -> row ());
    offsets = Array.init m (fun _ -> Rng.bool rng);
    alpha = Array.init m (fun _ -> Rng.bool rng);
  }

let m t = Array.length t.rows
let alpha t = Array.copy t.alpha

let constraints t =
  (* h(y)[i] = a(i,0) ⊕ ⊕ y[k]  must equal α[i], i.e.
     ⊕ y[k] = α[i] ⊕ a(i,0). *)
  Array.to_list
    (Array.mapi
       (fun i row ->
         let rhs = t.alpha.(i) <> t.offsets.(i) in
         Cnf.Xor_clause.make (Array.to_list row) rhs)
       t.rows)

let apply t value =
  Array.mapi
    (fun i row ->
      Array.fold_left (fun p v -> if value v then not p else p) t.offsets.(i) row)
    t.rows

let in_cell t value =
  let h = apply t value in
  let ok = ref true in
  Array.iteri (fun i b -> if b <> t.alpha.(i) then ok := false) h;
  !ok

let total_xor_length t =
  Array.fold_left (fun acc row -> acc + Array.length row) 0 t.rows

let average_xor_length t =
  if Array.length t.rows = 0 then 0.0
  else float_of_int (total_xor_length t) /. float_of_int (Array.length t.rows)

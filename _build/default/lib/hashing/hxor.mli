(** The [Hxor(n, m, 3)] family of 3-wise independent hash functions
    from {0,1}^n to {0,1}^m (Gomes, Sabharwal, Selman 2007), realized
    as random XOR constraints:

      h(y)[i] = a(i,0) ⊕ (⊕_k a(i,k) · y[k])

    with every coefficient drawn uniformly and independently. This is
    the hash family at the heart of UniGen, ApproxMC, UniWit and
    XORSample′.

    A hash is sampled over an explicit variable set — the paper's key
    insight is to hash over a small independent support [S] rather
    than the full support [X], so that each XOR row mentions ~|S|/2
    variables instead of ~|X|/2.

    The [density] parameter generalizes the family to sparse XORs
    (each variable included with probability q < 1/2, after Gomes et
    al. 2007 "Short XORs"): faster to solve, but 3-wise independence —
    and with it UniGen's guarantees — is lost. It exists for the
    ablation study only. *)

type t
(** A sampled hash function together with a target value α, i.e. the
    constraint [h(y) = α]. *)

val sample : ?density:float -> Rng.t -> vars:int array -> m:int -> t
(** Draw [h] uniformly from the family over the given variables, with
    [m] output bits, and draw α uniformly from {0,1}^m.
    @raise Invalid_argument if [m < 0], [vars] is empty while [m > 0],
    or [density] is outside (0, 1]. *)

val m : t -> int
(** Number of output bits / XOR rows. *)

val constraints : t -> Cnf.Xor_clause.t list
(** The XOR clauses encoding [h(y) = α]; conjoin them to a formula to
    restrict it to the cell α. Rows whose coefficient vector came out
    empty appear as 0-arity XORs (trivially true or false) — exactly
    the semantics of the algebraic definition. *)

val apply : t -> (int -> bool) -> bool array
(** [apply h value] computes h(y) for the assignment [value]. *)

val in_cell : t -> (int -> bool) -> bool
(** Whether the assignment lands in the selected cell (h(y) = α). *)

val alpha : t -> bool array
(** The target cell. *)

val total_xor_length : t -> int
(** Sum of row arities. *)

val average_xor_length : t -> float
(** Mean number of variables per XOR row — the "Avg XOR len" column of
    the paper's tables. 0 when [m = 0]. *)

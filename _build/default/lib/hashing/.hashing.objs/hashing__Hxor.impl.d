lib/hashing/hxor.ml: Array Cnf List Rng

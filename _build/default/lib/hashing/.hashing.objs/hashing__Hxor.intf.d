lib/hashing/hxor.mli: Cnf Rng

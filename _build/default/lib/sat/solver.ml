(* Literals are raw ints throughout the solver: the positive literal of
   variable v is 2v, the negative one 2v + 1 (the Cnf.Lit encoding).
   Variable truth values are coded 1 (true), -1 (false), 0 (unassigned). *)

type clause = {
  lits : int array; (* positions 0 and 1 are the watched literals *)
  learnt : bool;
  mutable activity : float;
  mutable deleted : bool;
}

type xor_constraint = {
  xvars : int array;
  xrhs : bool;
  mutable wa : int; (* watched position in xvars *)
  mutable wb : int;
}

type reason = No_reason | R_clause of clause | R_xor of xor_constraint

type conflict = C_clause of clause | C_xor of xor_constraint

type result = Sat | Unsat | Unknown

let dummy_clause = { lits = [||]; learnt = false; activity = 0.; deleted = true }
let dummy_xor = { xvars = [||]; xrhs = false; wa = 0; wb = 0 }

type t = {
  nvars : int;
  assigns : int array; (* var -> 1 / -1 / 0 *)
  level : int array; (* var -> decision level of its assignment *)
  reason : reason array; (* var -> why it was assigned *)
  polarity : bool array; (* var -> saved phase *)
  activity : float array; (* var -> VSIDS score *)
  seen : bool array; (* scratch for conflict analysis *)
  watches : clause Vec.t array; (* lit -> clauses watching it *)
  xwatches : xor_constraint Vec.t array; (* var -> xors watching it *)
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  xors : xor_constraint Vec.t;
  trail : int Vec.t; (* assigned literals, chronological *)
  trail_lim : int Vec.t; (* trail position at each decision *)
  order : Order_heap.t;
  mutable qhead : int;
  mutable ok : bool;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable model_valid : bool;
  mutable saved_model : Cnf.Model.t option;
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable max_learnts : float;
  mutable proof : Drat.step list option; (* reversed; None = disabled *)
}

let lit_to_dimacs l = if l land 1 = 0 then l lsr 1 else -(l lsr 1)

let log_proof t lits =
  match t.proof with
  | None -> ()
  | Some steps -> t.proof <- Some (Drat.Add (List.map lit_to_dimacs lits) :: steps)

(* The empty clause may be derivable before logging was even enabled
   (top-level conflict during clause loading); emit it at most once. *)
let log_proof_empty_once t =
  match t.proof with
  | Some steps when not (List.mem (Drat.Add []) steps) ->
      t.proof <- Some (Drat.Add [] :: steps)
  | _ -> ()

let log_delete t lits =
  match t.proof with
  | None -> ()
  | Some steps ->
      t.proof <- Some (Drat.Delete (List.map lit_to_dimacs lits) :: steps)

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999
let restart_base = 100

let lit_var l = l lsr 1
let lit_neg l = l lxor 1
let lit_is_pos l = l land 1 = 0
let lit_of_var v positive = (v lsl 1) lor (if positive then 0 else 1)

let value_var t v = t.assigns.(v)
let value_lit t l =
  let a = t.assigns.(l lsr 1) in
  if l land 1 = 0 then a else -a

let decision_level t = Vec.size t.trail_lim

let create_empty nvars =
  let activity = Array.make (nvars + 1) 0. in
  let t =
    {
      nvars;
      assigns = Array.make (nvars + 1) 0;
      level = Array.make (nvars + 1) 0;
      reason = Array.make (nvars + 1) No_reason;
      polarity = Array.make (nvars + 1) false;
      activity;
      seen = Array.make (nvars + 1) false;
      watches = Array.init ((2 * nvars) + 2) (fun _ -> Vec.create ~dummy:dummy_clause ());
      xwatches = Array.init (nvars + 1) (fun _ -> Vec.create ~dummy:dummy_xor ());
      clauses = Vec.create ~dummy:dummy_clause ();
      learnts = Vec.create ~dummy:dummy_clause ();
      xors = Vec.create ~dummy:dummy_xor ();
      trail = Vec.create ~dummy:0 ();
      trail_lim = Vec.create ~dummy:0 ();
      order = Order_heap.create nvars activity;
      qhead = 0;
      ok = true;
      var_inc = 1.0;
      cla_inc = 1.0;
      model_valid = false;
      saved_model = None;
      n_conflicts = 0;
      n_decisions = 0;
      n_propagations = 0;
      n_restarts = 0;
      max_learnts = 0.;
      proof = None;
    }
  in
  for v = 1 to nvars do
    Order_heap.insert t.order v
  done;
  t

let okay t = t.ok
let num_vars t = t.nvars
let conflicts t = t.n_conflicts
let decisions t = t.n_decisions
let propagations t = t.n_propagations
let restarts t = t.n_restarts
let num_clauses t = Vec.size t.clauses
let num_learnts t = Vec.size t.learnts

(* ------------------------------------------------------------------ *)
(* Activity                                                            *)

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 1 to t.nvars do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Order_heap.update t.order v

let var_decay_all t = t.var_inc <- t.var_inc *. var_decay

let clause_bump t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (cl : clause) -> cl.activity <- cl.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let clause_decay_all t = t.cla_inc <- t.cla_inc *. clause_decay

(* ------------------------------------------------------------------ *)
(* Assignment management                                               *)

let enqueue t l reason =
  match value_lit t l with
  | 1 -> true
  | -1 -> false
  | _ ->
      let v = lit_var l in
      t.assigns.(v) <- (if lit_is_pos l then 1 else -1);
      t.level.(v) <- decision_level t;
      t.reason.(v) <- reason;
      Vec.push t.trail l;
      true

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = lit_var l in
      t.polarity.(v) <- lit_is_pos l;
      t.assigns.(v) <- 0;
      t.reason.(v) <- No_reason;
      Order_heap.insert t.order v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

(* ------------------------------------------------------------------ *)
(* Clause attachment                                                   *)

let attach_clause t c =
  Vec.push t.watches.(c.lits.(0)) c;
  Vec.push t.watches.(c.lits.(1)) c

let attach_xor t x =
  Vec.push t.xwatches.(x.xvars.(x.wa)) x;
  Vec.push t.xwatches.(x.xvars.(x.wb)) x

(* ------------------------------------------------------------------ *)
(* Propagation                                                         *)

exception Found_conflict of conflict

let xor_parity_assigned t x ~except =
  (* Parity of the assigned variables of [x], skipping position [except]
     (pass -1 to include everything). Unassigned variables contribute 0. *)
  let p = ref false in
  Array.iteri
    (fun i v ->
      if i <> except && t.assigns.(v) = 1 then p := not !p)
    x.xvars;
  !p

let propagate_clauses t p =
  (* [p] just became true: visit clauses watching ¬p. *)
  let false_lit = lit_neg p in
  let ws = t.watches.(false_lit) in
  let i = ref 0 and j = ref 0 in
  let n = Vec.size ws in
  (try
     while !i < n do
       let c = Vec.get ws !i in
       incr i;
       if c.deleted then () (* drop lazily *)
       else begin
         let lits = c.lits in
         if lits.(0) = false_lit then begin
           lits.(0) <- lits.(1);
           lits.(1) <- false_lit
         end;
         if value_lit t lits.(0) = 1 then begin
           Vec.set ws !j c;
           incr j
         end
         else begin
           (* look for a new literal to watch *)
           let len = Array.length lits in
           let k = ref 2 in
           while !k < len && value_lit t lits.(!k) = -1 do
             incr k
           done;
           if !k < len then begin
             lits.(1) <- lits.(!k);
             lits.(!k) <- false_lit;
             Vec.push t.watches.(lits.(1)) c
             (* not kept in this watch list *)
           end
           else begin
             (* unit or conflicting *)
             Vec.set ws !j c;
             incr j;
             if value_lit t lits.(0) = -1 then begin
               (* keep the remaining watches before failing *)
               while !i < n do
                 Vec.set ws !j (Vec.get ws !i);
                 incr i;
                 incr j
               done;
               Vec.shrink ws !j;
               raise (Found_conflict (C_clause c))
             end
             else ignore (enqueue t lits.(0) (R_clause c))
           end
         end
       end
     done;
     Vec.shrink ws !j
   with Found_conflict _ as e -> raise e)

let propagate_xors t p =
  let v0 = lit_var p in
  let ws = t.xwatches.(v0) in
  let i = ref 0 and j = ref 0 in
  let n = Vec.size ws in
  (try
     while !i < n do
       let x = Vec.get ws !i in
       incr i;
       let pos = if x.xvars.(x.wa) = v0 then x.wa else x.wb in
       let other_pos = if pos = x.wa then x.wb else x.wa in
       (* search for an unassigned replacement variable *)
       let len = Array.length x.xvars in
       let repl = ref (-1) in
       let k = ref 0 in
       while !repl < 0 && !k < len do
         if !k <> x.wa && !k <> x.wb && t.assigns.(x.xvars.(!k)) = 0 then repl := !k;
         incr k
       done;
       if !repl >= 0 then begin
         (* move this watch to the replacement *)
         if pos = x.wa then x.wa <- !repl else x.wb <- !repl;
         Vec.push t.xwatches.(x.xvars.(!repl)) x
       end
       else begin
         (* every variable except possibly [other] is assigned *)
         Vec.set ws !j x;
         incr j;
         let other = x.xvars.(other_pos) in
         if t.assigns.(other) = 0 then begin
           let parity_rest = xor_parity_assigned t x ~except:other_pos in
           let implied = if x.xrhs then not parity_rest else parity_rest in
           ignore (enqueue t (lit_of_var other implied) (R_xor x))
         end
         else begin
           let parity = xor_parity_assigned t x ~except:(-1) in
           if parity <> x.xrhs then begin
             while !i < n do
               Vec.set ws !j (Vec.get ws !i);
               incr i;
               incr j
             done;
             Vec.shrink ws !j;
             raise (Found_conflict (C_xor x))
           end
         end
       end
     done;
     Vec.shrink ws !j
   with Found_conflict _ as e -> raise e)

let propagate t =
  try
    while t.qhead < Vec.size t.trail do
      let p = Vec.get t.trail t.qhead in
      t.qhead <- t.qhead + 1;
      t.n_propagations <- t.n_propagations + 1;
      propagate_clauses t p;
      propagate_xors t p
    done;
    None
  with Found_conflict c ->
    t.qhead <- Vec.size t.trail;
    Some c

(* ------------------------------------------------------------------ *)
(* Reasons as literal arrays (for conflict analysis)                   *)

(* For an XOR-implied literal, the reason clause is
     p ∨ ¬(u1 = b1) ∨ ... — every other variable of the XOR negated as
   currently assigned. The same construction with no implied literal
   yields the conflict clause of a violated XOR. *)
let xor_reason_lits t x ~implied =
  let acc = ref [] in
  Array.iter
    (fun v ->
      if implied < 0 || v <> lit_var implied then begin
        let a = t.assigns.(v) in
        (* the literal that is FALSE under the current assignment *)
        acc := lit_of_var v (a <> 1) :: !acc
      end)
    x.xvars;
  let others = Array.of_list !acc in
  if implied >= 0 then Array.append [| implied |] others else others

let conflict_lits t = function
  | C_clause c -> c.lits
  | C_xor x -> xor_reason_lits t x ~implied:(-1)

let reason_lits t v =
  match t.reason.(v) with
  | No_reason -> invalid_arg "Solver.reason_lits: decision variable"
  | R_clause c -> c.lits (* invariant: c.lits.(0) is the implied literal *)
  | R_xor x ->
      let a = t.assigns.(v) in
      let implied = lit_of_var v (a = 1) in
      xor_reason_lits t x ~implied

(* ------------------------------------------------------------------ *)
(* Conflict analysis (first UIP) with simple clause minimization       *)

let analyze t confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size t.trail - 1) in
  let current = decision_level t in
  let bump_reason_clause = function
    | C_clause c when c.learnt -> clause_bump t c
    | _ -> ()
  in
  bump_reason_clause confl;
  let process_lits lits start =
    let len = Array.length lits in
    for k = start to len - 1 do
      let q = lits.(k) in
      let v = lit_var q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        var_bump t v;
        if t.level.(v) >= current then incr counter
        else learnt := q :: !learnt
      end
    done
  in
  process_lits (conflict_lits t confl) 0;
  let continue = ref true in
  while !continue do
    (* find the next seen literal on the trail *)
    while not t.seen.(lit_var (Vec.get t.trail !index)) do
      decr index
    done;
    let lit = Vec.get t.trail !index in
    decr index;
    let v = lit_var lit in
    t.seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      p := lit;
      continue := false
    end
    else begin
      (match t.reason.(v) with
      | R_clause c when c.learnt -> clause_bump t c
      | _ -> ());
      process_lits (reason_lits t v) 1
    end
  done;
  let asserting = lit_neg !p in
  (* simple minimization: a literal is redundant if its reason is fully
     subsumed by the other literals of the learnt clause *)
  let learnt_list = !learnt in
  List.iter (fun q -> t.seen.(lit_var q) <- true) learnt_list;
  let redundant q =
    let v = lit_var q in
    match t.reason.(v) with
    | No_reason -> false
    | _ ->
        let lits = reason_lits t v in
        let ok = ref true in
        Array.iteri
          (fun k r ->
            if k > 0 then begin
              let u = lit_var r in
              if t.level.(u) > 0 && not t.seen.(u) then ok := false
            end)
          lits;
        !ok
  in
  let kept = List.filter (fun q -> not (redundant q)) learnt_list in
  List.iter (fun q -> t.seen.(lit_var q) <- false) learnt_list;
  (* backtrack level = max level among kept literals *)
  let blevel = List.fold_left (fun acc q -> max acc t.level.(lit_var q)) 0 kept in
  (asserting, kept, blevel)

(* ------------------------------------------------------------------ *)
(* Learnt clause recording                                             *)

let record_learnt t asserting others blevel =
  log_proof t (asserting :: others);
  cancel_until t blevel;
  match others with
  | [] ->
      (* unit learnt: asserting at level 0 *)
      if not (enqueue t asserting No_reason) then begin
        t.ok <- false;
        log_proof t []
      end
  | _ ->
      (* place a literal of the backtrack level in watch position 1 *)
      let arr = Array.of_list (asserting :: others) in
      let best = ref 1 in
      for k = 2 to Array.length arr - 1 do
        if t.level.(lit_var arr.(k)) > t.level.(lit_var arr.(!best)) then best := k
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!best);
      arr.(!best) <- tmp;
      let c = { lits = arr; learnt = true; activity = 0.; deleted = false } in
      clause_bump t c;
      attach_clause t c;
      Vec.push t.learnts c;
      ignore (enqueue t asserting (R_clause c))

(* ------------------------------------------------------------------ *)
(* Learnt database reduction                                           *)

let is_reason t c =
  Array.length c.lits > 0
  &&
  let v = lit_var c.lits.(0) in
  t.assigns.(v) <> 0
  && (match t.reason.(v) with R_clause c' -> c' == c | _ -> false)

let reduce_db t =
  Vec.sort (fun (a : clause) (b : clause) -> Float.compare a.activity b.activity) t.learnts;
  let n = Vec.size t.learnts in
  let limit = n / 2 in
  let removed = ref 0 in
  for i = 0 to n - 1 do
    let c = Vec.get t.learnts i in
    if
      !removed < limit
      && Array.length c.lits > 2
      && not (is_reason t c)
    then begin
      c.deleted <- true;
      log_delete t (Array.to_list c.lits);
      incr removed
    end
  done;
  Vec.filter_in_place (fun c -> not c.deleted) t.learnts
(* deleted clauses are skipped and dropped lazily during propagation *)

(* ------------------------------------------------------------------ *)
(* Adding constraints (decision level 0 only)                          *)

let add_clause t lits =
  assert (decision_level t = 0);
  if t.ok then begin
    let raw = List.map (fun l -> (Cnf.Lit.to_index l : int)) lits in
    (* normalize: sort, dedup, detect tautology, drop false literals *)
    let sorted = List.sort_uniq Int.compare raw in
    let rec scan acc = function
      | [] -> Some (List.rev acc)
      | l :: rest ->
          if List.mem (lit_neg l) rest then None
          else
            match value_lit t l with
            | 1 -> None (* satisfied at level 0 *)
            | -1 -> scan acc rest
            | _ -> scan (l :: acc) rest
    in
    match scan [] sorted with
    | None -> ()
    | Some [] ->
        t.ok <- false;
        log_proof t []
    | Some [ l ] ->
        if not (enqueue t l No_reason) then begin
          t.ok <- false;
          log_proof t []
        end
        else if propagate t <> None then begin
          t.ok <- false;
          log_proof t []
        end
    | Some (l0 :: l1 :: rest) ->
        let c =
          {
            lits = Array.of_list (l0 :: l1 :: rest);
            learnt = false;
            activity = 0.;
            deleted = false;
          }
        in
        attach_clause t c;
        Vec.push t.clauses c
  end

let add_xor t (x : Cnf.Xor_clause.t) =
  assert (decision_level t = 0);
  if t.proof <> None then
    invalid_arg "Solver.add_xor: proof logging excludes XOR constraints";
  if t.ok then begin
    (* substitute level-0 assignments *)
    let rhs = ref x.rhs in
    let vars =
      Array.to_list x.vars
      |> List.filter (fun v ->
             match value_var t v with
             | 1 ->
                 rhs := not !rhs;
                 false
             | -1 -> false
             | _ -> true)
    in
    match vars with
    | [] -> if !rhs then t.ok <- false
    | [ v ] ->
        if not (enqueue t (lit_of_var v !rhs) No_reason) then t.ok <- false
        else if propagate t <> None then t.ok <- false
    | _ :: _ :: _ ->
        let xc = { xvars = Array.of_list vars; xrhs = !rhs; wa = 0; wb = 1 } in
        attach_xor t xc;
        Vec.push t.xors xc
  end

let create (f : Cnf.Formula.t) =
  let t = create_empty f.num_vars in
  Array.iter (fun c -> add_clause t (Array.to_list c)) f.clauses;
  Array.iter (fun x -> add_xor t x) f.xors;
  t

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

let pick_branch_var t =
  let rec go () =
    match Order_heap.pop_max t.order with
    | None -> None
    | Some v -> if t.assigns.(v) = 0 then Some v else go ()
  in
  go ()

type search_outcome = S_sat | S_unsat | S_restart | S_timeout

let search t ~budget ~deadline =
  let local_conflicts = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    match propagate t with
    | Some confl ->
        t.n_conflicts <- t.n_conflicts + 1;
        incr local_conflicts;
        if decision_level t = 0 then begin
          log_proof t [];
          outcome := Some S_unsat
        end
        else begin
          let asserting, others, blevel = analyze t confl in
          record_learnt t asserting others blevel;
          if not t.ok then outcome := Some S_unsat
          else begin
            var_decay_all t;
            clause_decay_all t
          end
        end
    | None ->
        if !local_conflicts >= budget then begin
          cancel_until t 0;
          outcome := Some S_restart
        end
        else if
          (match deadline with
          | Some d -> t.n_decisions land 255 = 0 && Unix.gettimeofday () > d
          | None -> false)
        then begin
          cancel_until t 0;
          outcome := Some S_timeout
        end
        else begin
          if float_of_int (Vec.size t.learnts) > t.max_learnts then reduce_db t;
          match pick_branch_var t with
          | None -> outcome := Some S_sat
          | Some v ->
              t.n_decisions <- t.n_decisions + 1;
              Vec.push t.trail_lim (Vec.size t.trail);
              ignore (enqueue t (lit_of_var v t.polarity.(v)) No_reason)
        end
  done;
  match !outcome with Some o -> o | None -> assert false

let solve ?(conflict_limit = max_int) ?deadline t =
  t.model_valid <- false;
  if not t.ok then begin
    log_proof_empty_once t;
    Unsat
  end
  else begin
    match propagate t with
    | Some _ ->
        t.ok <- false;
        log_proof t [];
        Unsat
    | None ->
        t.max_learnts <-
          max 1000. (float_of_int (Vec.size t.clauses) /. 3.);
        let start_conflicts = t.n_conflicts in
        let rec run i =
          if t.n_conflicts - start_conflicts >= conflict_limit then begin
            cancel_until t 0;
            Unknown
          end
          else begin
            let budget = Luby.budget ~base:restart_base i in
            match search t ~budget ~deadline with
            | S_sat ->
                let m =
                  Cnf.Model.make t.nvars (fun v -> t.assigns.(v) = 1)
                in
                t.saved_model <- Some m;
                t.model_valid <- true;
                cancel_until t 0;
                t.max_learnts <- t.max_learnts *. 1.1;
                Sat
            | S_unsat ->
                t.ok <- false;
                Unsat
            | S_timeout -> Unknown
            | S_restart ->
                t.n_restarts <- t.n_restarts + 1;
                run (i + 1)
          end
        in
        run 1
  end

let model t =
  match (t.model_valid, t.saved_model) with
  | true, Some m -> m
  | _ -> invalid_arg "Solver.model: last solve was not Sat"

let enable_proof_logging t =
  if Vec.size t.xors > 0 then
    invalid_arg "Solver.enable_proof_logging: XOR constraints present";
  if t.proof = None then t.proof <- Some []

let proof t = match t.proof with None -> [] | Some steps -> List.rev steps

type outcome = {
  models : Cnf.Model.t list;
  exhausted : bool;
  timed_out : bool;
  conflicts : int;
}

(* Row-reduce the XOR system before loading the solver: RREF preserves
   the solution set exactly and typically shortens dense hash rows a
   lot (a random m×n system in RREF has rows of expected length
   1 + (n − m)/2), which is where most of the CDCL search effort on
   hash-constrained formulas goes. This is the static counterpart of
   CryptoMiniSAT's in-search Gaussian elimination. *)
let reduce_xors (f : Cnf.Formula.t) =
  if Array.length f.Cnf.Formula.xors < 2 then `Reduced f
  else
    match Cnf.Xor_gauss.eliminate (Array.to_list f.Cnf.Formula.xors) with
    | Error `Unsat -> `Unsat
    | Ok r ->
        `Reduced
          { f with Cnf.Formula.xors = Array.of_list r.Cnf.Xor_gauss.rows }

let enumerate ?deadline ?blocking_vars ~limit (f : Cnf.Formula.t) =
  let blocking =
    match blocking_vars with
    | Some vs -> vs
    | None -> Cnf.Formula.sampling_vars f
  in
  match reduce_xors f with
  | `Unsat ->
      { models = []; exhausted = true; timed_out = false; conflicts = 0 }
  | `Reduced reduced ->
  let solver = Solver.create reduced in
  let rec loop acc found =
    if found >= limit then
      { models = List.rev acc; exhausted = false; timed_out = false;
        conflicts = Solver.conflicts solver }
    else
      match Solver.solve ?deadline solver with
      | Solver.Unsat ->
          { models = List.rev acc; exhausted = true; timed_out = false;
            conflicts = Solver.conflicts solver }
      | Solver.Unknown ->
          { models = List.rev acc; exhausted = false; timed_out = true;
            conflicts = Solver.conflicts solver }
      | Solver.Sat ->
          let m = Solver.model solver in
          if not (Cnf.Model.satisfies f m) then
            failwith "Bsat.enumerate: solver returned a non-model (internal bug)";
          (* block this witness on the projection *)
          let block =
            Array.to_list blocking
            |> List.map (fun v -> Cnf.Lit.make v (not (Cnf.Model.value m v)))
          in
          Solver.add_clause solver block;
          loop (m :: acc) (found + 1)
  in
  loop [] 0

let count_upto ?deadline ~limit f =
  List.length (enumerate ?deadline ~limit f).models

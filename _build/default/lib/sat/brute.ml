let check_size (f : Cnf.Formula.t) =
  if f.num_vars > 24 then
    invalid_arg "Brute: formula too large for exhaustive enumeration"

let iter_solutions f k =
  check_size f;
  let n = f.Cnf.Formula.num_vars in
  for mask = 0 to (1 lsl n) - 1 do
    let value v = mask land (1 lsl (v - 1)) <> 0 in
    if Cnf.Formula.eval f value then k value
  done

let is_sat f =
  let found = ref false in
  (try iter_solutions f (fun _ -> found := true; raise Exit) with Exit -> ());
  !found

let count f =
  let c = ref 0 in
  iter_solutions f (fun _ -> incr c);
  !c

let solutions ?(limit = max_int) f =
  let acc = ref [] in
  let n = f.Cnf.Formula.num_vars in
  let remaining = ref limit in
  (try
     iter_solutions f (fun value ->
         if !remaining = 0 then raise Exit;
         decr remaining;
         acc := Cnf.Model.make n value :: !acc)
   with Exit -> ());
  List.rev !acc

let count_projected f vars =
  let seen = Hashtbl.create 64 in
  let n = f.Cnf.Formula.num_vars in
  iter_solutions f (fun value ->
      let m = Cnf.Model.restrict (Cnf.Model.make n value) vars in
      Hashtbl.replace seen (Cnf.Model.key m) ());
  Hashtbl.length seen

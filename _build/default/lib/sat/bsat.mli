(** Bounded model enumeration — the [BSAT(F, N)] subroutine of the
    paper: returns up to [N] distinct witnesses of [F].

    Distinctness (and the blocking clauses enforcing it) is measured
    on the [blocking_vars] projection, which defaults to the formula's
    sampling set. When the sampling set is an independent support this
    is exactly the paper's optimization of "blocking clauses restricted
    to variables in S": the enumerated witnesses are still pairwise
    distinct as full assignments, but the blocking clauses are short. *)

type outcome = {
  models : Cnf.Model.t list;  (** in discovery order *)
  exhausted : bool;  (** [true] iff no further witness exists *)
  timed_out : bool;  (** [true] iff the deadline interrupted the search *)
  conflicts : int;  (** solver conflicts spent on this enumeration *)
}

val enumerate :
  ?deadline:float ->
  ?blocking_vars:int array ->
  limit:int ->
  Cnf.Formula.t ->
  outcome
(** Every returned model is verified against the formula; a violation
    (a solver soundness bug) raises [Failure]. *)

val count_upto : ?deadline:float -> limit:int -> Cnf.Formula.t -> int
(** [count_upto ~limit f] is [min (number of distinct projected
    witnesses) limit]; convenience wrapper over {!enumerate}. *)

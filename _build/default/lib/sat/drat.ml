type step = Add of int list | Delete of int list

(* Scan-based unit propagation over a clause database: adequate for
   proof checking (the checker is the trusted base, so simplicity
   beats speed). Returns true iff propagating the given assumptions
   reaches a conflict. *)
let rup_conflict clauses assumptions =
  let value = Hashtbl.create 64 in
  let conflict = ref false in
  let assign l =
    match Hashtbl.find_opt value (abs l) with
    | Some b -> if b <> (l > 0) then conflict := true
    | None -> Hashtbl.add value (abs l) (l > 0)
  in
  List.iter assign assumptions;
  let progress = ref true in
  while !progress && not !conflict do
    progress := false;
    List.iter
      (fun clause ->
        if not !conflict then begin
          let unassigned = ref [] in
          let satisfied = ref false in
          List.iter
            (fun l ->
              match Hashtbl.find_opt value (abs l) with
              | Some b -> if b = (l > 0) then satisfied := true
              | None -> unassigned := l :: !unassigned)
            clause;
          if not !satisfied then
            match !unassigned with
            | [] -> conflict := true
            | [ l ] ->
                assign l;
                progress := true
            | _ -> ()
        end)
      clauses
  done;
  !conflict

let check (f : Cnf.Formula.t) proof =
  if Array.length f.Cnf.Formula.xors > 0 then
    invalid_arg "Drat.check: XOR constraints have no DRAT representation";
  let db =
    ref
      (Array.to_list f.Cnf.Formula.clauses
      |> List.map (fun c -> List.sort_uniq Int.compare (Cnf.Clause.to_dimacs c)))
  in
  let ok = ref true in
  List.iter
    (fun step ->
      if !ok then
        match step with
        | Delete _ -> () (* keeping deleted clauses is sound *)
        | Add clause ->
            let clause = List.sort_uniq Int.compare clause in
            let negation = List.map (fun l -> -l) clause in
            if rup_conflict !db negation then db := clause :: !db
            else ok := false)
    proof;
  !ok

let refutes f proof =
  check f proof
  && List.exists (function Add [] -> true | _ -> false) proof

let to_string proof =
  let buf = Buffer.create 4096 in
  List.iter
    (fun step ->
      let lits, prefix =
        match step with Add c -> (c, "") | Delete c -> (c, "d ")
      in
      Buffer.add_string buf prefix;
      List.iter (fun l -> Printf.bprintf buf "%d " l) lits;
      Buffer.add_string buf "0\n")
    proof;
  Buffer.contents buf

let of_string text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = 'c' then None
         else begin
           let deletion = String.length line > 1 && line.[0] = 'd' in
           let body =
             if deletion then String.sub line 1 (String.length line - 1) else line
           in
           let ints =
             String.split_on_char ' ' body
             |> List.filter (fun s -> s <> "")
             |> List.map (fun s ->
                    match int_of_string_opt s with
                    | Some i -> i
                    | None -> failwith ("Drat.of_string: bad literal " ^ s))
           in
           match List.rev ints with
           | 0 :: rev ->
               let lits = List.rev rev in
               Some (if deletion then Delete lits else Add lits)
           | _ -> failwith "Drat.of_string: line not terminated by 0"
         end)

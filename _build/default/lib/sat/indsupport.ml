type verdict = Independent | Dependent | Unknown

(* Build the self-composition query for candidate set [s]. Variables of
   the copy are shifted by n; per dependent variable d we add a fresh
   "difference" variable diff_d ↔ (d ⊕ d') and require some diff_d. *)
let self_composition (f : Cnf.Formula.t) s =
  let f = Cnf.Formula.blast_xors f in
  let n = f.Cnf.Formula.num_vars in
  let in_s = Array.make (n + 1) false in
  List.iter
    (fun v ->
      if v < 1 || v > n then invalid_arg "Indsupport: variable out of range";
      in_s.(v) <- true)
    s;
  let shift l =
    let v = Cnf.Lit.var l and sign = Cnf.Lit.sign l in
    Cnf.Lit.make (v + n) sign
  in
  let copy_clauses =
    Array.to_list f.Cnf.Formula.clauses |> List.map (Array.map shift)
  in
  let dependents =
    List.init n (fun i -> i + 1) |> List.filter (fun v -> not in_s.(v))
  in
  let next = ref ((2 * n) + 1) in
  let equalities = ref [] in
  List.iter
    (fun v ->
      if in_s.(v) then begin
        (* v = v' *)
        equalities :=
          Cnf.Clause.of_dimacs [ -v; v + n ]
          :: Cnf.Clause.of_dimacs [ v; -(v + n) ]
          :: !equalities
      end)
    (List.init n (fun i -> i + 1));
  let diff_clauses = ref [] in
  let diff_lits =
    List.map
      (fun d ->
        let diff = !next in
        incr next;
        let d' = d + n in
        (* diff ↔ (d ⊕ d') *)
        diff_clauses :=
          Cnf.Clause.of_dimacs [ -diff; d; d' ]
          :: Cnf.Clause.of_dimacs [ -diff; -d; -d' ]
          :: Cnf.Clause.of_dimacs [ diff; -d; d' ]
          :: Cnf.Clause.of_dimacs [ diff; d; -d' ]
          :: !diff_clauses;
        Cnf.Lit.pos diff)
      dependents
  in
  let some_difference =
    match diff_lits with
    | [] -> [ Cnf.Clause.of_dimacs [] ] (* S = X: trivially independent *)
    | lits -> [ Cnf.Clause.of_list lits ]
  in
  Cnf.Formula.create ~num_vars:(!next - 1)
    (Array.to_list f.Cnf.Formula.clauses
    @ copy_clauses @ !equalities @ !diff_clauses @ some_difference)

let check ?(conflict_limit = 500_000) ?deadline f s =
  let query = self_composition f s in
  let solver = Solver.create query in
  match Solver.solve ~conflict_limit ?deadline solver with
  | Solver.Unsat -> Independent
  | Solver.Sat -> Dependent
  | Solver.Unknown -> Unknown

let minimize ?conflict_limit ?deadline f s =
  (match check ?conflict_limit ?deadline f s with
  | Independent -> ()
  | Dependent -> invalid_arg "Indsupport.minimize: set is not independent"
  | Unknown -> invalid_arg "Indsupport.minimize: could not verify input set");
  let rec go kept = function
    | [] -> List.rev kept
    | v :: rest -> begin
        let candidate = List.rev_append kept rest in
        match check ?conflict_limit ?deadline f candidate with
        | Independent -> go kept rest
        | Dependent | Unknown -> go (v :: kept) rest
      end
  in
  go [] (List.sort_uniq Int.compare s)

let of_formula ?conflict_limit ?deadline (f : Cnf.Formula.t) =
  minimize ?conflict_limit ?deadline f
    (List.init f.Cnf.Formula.num_vars (fun i -> i + 1))

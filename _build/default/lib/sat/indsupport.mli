(** Independent-support checking and minimization.

    The paper assumes a (not necessarily minimal) independent support
    is supplied with each benchmark and notes that computing one
    algorithmically is "beyond the scope of this paper". This module
    provides that missing piece, as the later MIS line of work did:

    [S] is an independent support of [F] iff the self-composition

      F(X) ∧ F(X') ∧ (∧_{s ∈ S} s = s') ∧ (∨_{d ∉ S} d ≠ d')

    is unsatisfiable — two witnesses agreeing on [S] cannot differ
    elsewhere. *)

type verdict = Independent | Dependent | Unknown
(** [Unknown] when the SAT query exhausted its budget. *)

val check :
  ?conflict_limit:int -> ?deadline:float -> Cnf.Formula.t -> int list -> verdict
(** Decide whether the given variable set is an independent support.
    Native XORs are CNF-blasted for the self-composition (the blast's
    fresh variables are dependent, which cannot affect the answer
    for a candidate set drawn from the original variables). *)

val minimize :
  ?conflict_limit:int -> ?deadline:float -> Cnf.Formula.t -> int list -> int list
(** Greedily drop variables from a known independent support while it
    stays independent (one SAT query per candidate). The input set
    must be independent; the result is a (locally) minimal independent
    support. Variables whose removal yields [Unknown] are kept. *)

val of_formula :
  ?conflict_limit:int -> ?deadline:float -> Cnf.Formula.t -> int list
(** [minimize] starting from all variables — computes an independent
    support from scratch. *)

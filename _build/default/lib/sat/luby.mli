(** The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    Restart budgets that follow this sequence are within a constant
    factor of the optimal universal restart strategy (Luby, Sinclair,
    Zuckerman 1993); every modern CDCL solver uses it. *)

val term : int -> int
(** [term i] is the i-th element of the sequence, [i >= 1]. *)

val budget : base:int -> int -> int
(** [budget ~base i] is [base * term i], the conflict budget of the
    i-th restart. *)

(** Brute-force reference solver: exhaustive enumeration over all
    2^n assignments. Only usable for small supports; serves as the
    test oracle for the CDCL solver, the counters and the samplers. *)

val is_sat : Cnf.Formula.t -> bool
(** Requires [num_vars <= 24]. *)

val count : Cnf.Formula.t -> int
(** Number of witnesses; requires [num_vars <= 24]. *)

val solutions : ?limit:int -> Cnf.Formula.t -> Cnf.Model.t list
(** All witnesses in lexicographic order (variable 1 = least
    significant bit), up to [limit]; requires [num_vars <= 24]. *)

val count_projected : Cnf.Formula.t -> int array -> int
(** Number of distinct projections of witnesses onto the given
    variable set. *)

(* luby(i) = 2^(k-1)                    if i = 2^k - 1
   luby(i) = luby(i - 2^(k-1) + 1)      if 2^(k-1) <= i < 2^k - 1 *)
let rec term i =
  if i < 1 then invalid_arg "Luby.term";
  (* smallest k with i < 2^k, i.e. 2^(k-1) <= i < 2^k *)
  let rec find_k k pow = if i < pow then k else find_k (k + 1) (pow * 2) in
  let k = find_k 1 2 in
  if i = (1 lsl k) - 1 then 1 lsl (k - 1)
  else term (i - (1 lsl (k - 1)) + 1)

let budget ~base i = base * term i

(** CDCL SAT solver with native XOR-constraint propagation.

    This is the CryptoMiniSAT stand-in the paper's implementation
    section calls for: a conflict-driven clause-learning solver
    (two-watched-literal propagation, first-UIP clause learning with
    minimization, VSIDS decision heuristic, phase saving, Luby
    restarts, activity-based learnt-clause deletion) extended with a
    parity engine that propagates XOR constraints through a
    two-watched-variable scheme, generating reason clauses on demand
    so that XOR-derived implications take part in clause learning.

    Clauses and XORs may only be added at decision level 0 (the solver
    backtracks to the root on every [solve] return, so interleaving
    [solve] / [add_clause] — the blocking-clause loop of BSAT — is
    always legal). *)

type t

type result = Sat | Unsat | Unknown
(** [Unknown] is returned when a conflict budget or deadline expires. *)

val create : Cnf.Formula.t -> t
(** Load a formula (clauses and XORs). *)

val create_empty : int -> t
(** [create_empty n] is a solver over variables [1 .. n] with no
    constraints yet. *)

val okay : t -> bool
(** [false] once the clause set is known unsatisfiable at level 0. *)

val num_vars : t -> int

val add_clause : t -> Cnf.Lit.t list -> unit
(** May set [okay t = false]. Tautologies are ignored. *)

val add_xor : t -> Cnf.Xor_clause.t -> unit

val solve : ?conflict_limit:int -> ?deadline:float -> t -> result
(** [deadline] is an absolute [Unix.gettimeofday] instant. *)

val model : t -> Cnf.Model.t
(** The satisfying assignment found by the last [solve]; raises
    [Invalid_argument] if the last call did not return [Sat]. *)

(** {2 Proof logging} *)

val enable_proof_logging : t -> unit
(** Start recording learnt clauses as DRAT/RUP steps; an UNSAT verdict
    then ends the log with the empty clause, checkable by
    {!Drat.refutes} against the original formula. Only meaningful for
    one-shot solving of a pure-CNF formula: XOR constraints are
    refused, and clauses added {e after} a [solve] (blocking-clause
    loops) are new axioms the proof does not account for.
    @raise Invalid_argument if the solver holds XOR constraints. *)

val proof : t -> Drat.step list
(** Chronological proof log (empty when logging is disabled). *)

(** Solver statistics, cumulative across [solve] calls. *)

val conflicts : t -> int
val decisions : t -> int
val propagations : t -> int
val restarts : t -> int
val num_clauses : t -> int
val num_learnts : t -> int

(** Clausal proof logging and checking (DRAT, restricted to the RUP
    fragment that CDCL clause learning emits).

    When proof logging is enabled on a {!Solver}, every learnt clause
    is recorded, and an UNSAT verdict ends the log with the empty
    clause. {!check} replays the log against the original formula: a
    step is accepted iff it is a {e reverse unit propagation} (RUP)
    consequence — propagating the negation of the clause over
    everything derived so far yields a conflict. A verified log ending
    in the empty clause is a machine-checkable unsatisfiability proof,
    independent of the solver's implementation.

    Proofs cover CNF reasoning only; native XOR constraints have no
    DRAT representation (CryptoMiniSAT has the same restriction for
    its Gaussian elimination), so proof logging refuses formulas with
    XOR clauses. *)

type step =
  | Add of int list
      (** a derived clause, as signed DIMACS literals; [Add []] is the
          final empty clause *)
  | Delete of int list  (** clause removed by DB reduction (informational) *)

val check : Cnf.Formula.t -> step list -> bool
(** [check f proof] verifies every [Add] step by RUP against [f] plus
    the previously accepted steps. [Delete] steps are ignored (the
    checker keeps all clauses, which is sound). Returns [false] on the
    first non-RUP step. A complete refutation additionally requires
    the last [Add] to be empty — use {!refutes}. *)

val refutes : Cnf.Formula.t -> step list -> bool
(** [check] and the proof derives the empty clause. *)

val to_string : step list -> string
(** Standard DRAT text format ([d] lines for deletions). *)

val of_string : string -> step list
(** Parses the text format. @raise Failure on malformed input. *)

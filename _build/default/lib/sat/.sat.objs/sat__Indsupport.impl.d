lib/sat/indsupport.ml: Array Cnf Int List Solver

lib/sat/luby.ml:

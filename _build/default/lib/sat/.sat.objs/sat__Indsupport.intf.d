lib/sat/indsupport.mli: Cnf

lib/sat/luby.mli:

lib/sat/brute.ml: Cnf Hashtbl List

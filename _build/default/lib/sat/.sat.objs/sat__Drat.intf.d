lib/sat/drat.mli: Cnf

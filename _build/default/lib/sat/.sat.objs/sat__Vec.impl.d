lib/sat/vec.ml: Array List

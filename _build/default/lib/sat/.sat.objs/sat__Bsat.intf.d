lib/sat/bsat.mli: Cnf

lib/sat/brute.mli: Cnf

lib/sat/solver.mli: Cnf Drat

lib/sat/drat.ml: Array Buffer Cnf Hashtbl Int List Printf String

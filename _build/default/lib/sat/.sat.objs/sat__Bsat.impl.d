lib/sat/bsat.ml: Array Cnf List Solver

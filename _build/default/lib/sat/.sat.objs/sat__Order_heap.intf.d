lib/sat/order_heap.mli:

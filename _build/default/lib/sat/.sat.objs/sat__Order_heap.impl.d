lib/sat/order_heap.ml: Array List Vec

lib/sat/vec.mli:

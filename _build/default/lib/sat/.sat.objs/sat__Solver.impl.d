lib/sat/solver.ml: Array Cnf Drat Float Int List Luby Order_heap Unix Vec

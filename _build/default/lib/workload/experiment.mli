(** Experiment harnesses regenerating the paper's tables and figure.

    Every harness takes explicit sample budgets and timeouts so the
    bench binary can run a faithful (slow) or scaled (fast) variant of
    each experiment; EXPERIMENTS.md records which settings produced
    the committed outputs. *)

(** One row of Table 1 / Table 2. *)
type row = {
  name : string;
  num_vars : int;
  sampling_size : int;
  unigen_success : float;
  unigen_avg_seconds : float;
  unigen_avg_xor_len : float;
  uniwit_success : float;
  uniwit_avg_seconds : float;
  uniwit_avg_xor_len : float;
  unigen_failed : bool;  (** no witness produced within the budget *)
  uniwit_failed : bool;
}

val run_row :
  ?epsilon:float ->
  ?unigen_samples:int ->
  ?uniwit_samples:int ->
  ?per_call_timeout:float ->
  ?overall_timeout:float ->
  ?count_iterations:int ->
  rng:Rng.t ->
  Suite.instance ->
  row
(** Runs UniGen (one preparation, then [unigen_samples] draws) and
    UniWit ([uniwit_samples] draws — typically far fewer, it is orders
    of magnitude slower) on the instance. Timeouts are in seconds:
    [per_call_timeout] bounds each sample attempt, [overall_timeout]
    bounds each generator's total budget (the paper used 2500 s and
    20 h respectively). *)

val pp_table : Format.formatter -> row list -> unit
(** Renders rows in the layout of the paper's Table 1. *)

(** Figure 1: witness-count distributions of UniGen vs the ideal
    sampler US. *)
type uniformity_result = {
  witness_count : int;  (** |R_F| *)
  samples : int;
  unigen_series : (int * int) list;
      (** (occurrence count c, number of witnesses generated c times) *)
  us_series : (int * int) list;
  unigen_pvalue : float;  (** χ² uniformity test p-value *)
  us_pvalue : float;
  unigen_tv : float;  (** total variation distance from uniform *)
  us_tv : float;
}

val run_uniformity :
  ?epsilon:float ->
  ?samples:int ->
  ?count_iterations:int ->
  rng:Rng.t ->
  Cnf.Formula.t ->
  uniformity_result

val pp_uniformity : Format.formatter -> uniformity_result -> unit

(** The benchmark suite: named synthetic analogs of the instances in
    the paper's Tables 1 and 2, spanning the same four domains —
    bit-blasted circuit/BMC constraints, "Squaring" equivalence
    constraints, ISCAS89-style circuits with parity conditions, and
    program-synthesis sketches — plus large Tseitin formulas with
    small independent supports ("tutorial3"-style).

    Instance sizes are scaled down from the paper (whose substrate was
    a tuned C++ CryptoMiniSAT on a cluster with 20-hour timeouts); the
    DESIGN.md substitution table explains why the paper's comparative
    claims survive the scaling. Every instance is satisfiable and its
    sampling set is an independent support by construction. *)

type instance = {
  name : string;
  domain : string;
  formula : Cnf.Formula.t Lazy.t;
      (** generation is deterministic: same name → same formula *)
}

val table1 : instance list
(** Analogs of the 12 rows of Table 1. *)

val table2 : instance list
(** The extended suite (Table 2 analog; superset of {!table1}). *)

val quick : instance list
(** A small subset for smoke tests and CI. *)

val uniformity_case : instance
(** The "case110" analog of Figure 1: a formula whose full witness set
    is enumerable (on the order of 2^10), used for the uniformity
    comparison against the ideal sampler US. *)

val by_name : string -> instance option

val num_vars : instance -> int
val sampling_set_size : instance -> int

lib/workload/experiment.mli: Cnf Format Rng Suite

lib/workload/suite.mli: Cnf Lazy

lib/workload/experiment.ml: Array Cnf Float Format Int Lazy List Option Rng Sampling String Suite Unix

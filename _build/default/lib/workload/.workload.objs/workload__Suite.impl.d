lib/workload/suite.ml: Array Circuits Cnf Hashtbl Lazy List Printf Rng Sat

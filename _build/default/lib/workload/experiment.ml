type row = {
  name : string;
  num_vars : int;
  sampling_size : int;
  unigen_success : float;
  unigen_avg_seconds : float;
  unigen_avg_xor_len : float;
  uniwit_success : float;
  uniwit_avg_seconds : float;
  uniwit_avg_xor_len : float;
  unigen_failed : bool;
  uniwit_failed : bool;
}

let now () = Unix.gettimeofday ()

let run_row ?(epsilon = 6.0) ?(unigen_samples = 50) ?(uniwit_samples = 5)
    ?(per_call_timeout = 20.0) ?(overall_timeout = 120.0) ?count_iterations ~rng
    (instance : Suite.instance) =
  let f = Lazy.force instance.Suite.formula in
  let num_vars = f.Cnf.Formula.num_vars in
  let sampling_size = Array.length (Cnf.Formula.sampling_vars f) in
  (* --- UniGen: prepare once, then draw --- *)
  let unigen_rng = Rng.split rng in
  let ug_deadline = now () +. overall_timeout in
  let ug_stats, ug_failed =
    match
      Sampling.Unigen.prepare ~deadline:ug_deadline ?count_iterations
        ~rng:unigen_rng ~epsilon f
    with
    | Error _ -> (Sampling.Sampler.fresh_stats (), true)
    | Ok prepared ->
        let rec draw i =
          if i > unigen_samples || now () > ug_deadline then ()
          else begin
            let deadline = min ug_deadline (now () +. per_call_timeout) in
            ignore (Sampling.Unigen.sample ~deadline ~rng:unigen_rng prepared);
            draw (i + 1)
          end
        in
        draw 1;
        let st = Sampling.Unigen.stats prepared in
        (st, st.Sampling.Sampler.samples_produced = 0)
  in
  (* --- UniWit: every sample from scratch --- *)
  let uniwit_rng = Rng.split rng in
  let uw_stats = Sampling.Sampler.fresh_stats () in
  let uw_deadline = now () +. overall_timeout in
  let rec draw i =
    if i > uniwit_samples || now () > uw_deadline then ()
    else begin
      let deadline = min uw_deadline (now () +. per_call_timeout) in
      ignore (Sampling.Uniwit.sample ~deadline ~stats:uw_stats ~rng:uniwit_rng f);
      draw (i + 1)
    end
  in
  draw 1;
  let uw_failed = uw_stats.Sampling.Sampler.samples_produced = 0 in
  {
    name = instance.Suite.name;
    num_vars;
    sampling_size;
    unigen_success = Sampling.Sampler.success_probability ug_stats;
    unigen_avg_seconds = Sampling.Sampler.average_seconds_per_sample ug_stats;
    unigen_avg_xor_len = Sampling.Sampler.average_xor_length ug_stats;
    uniwit_success = Sampling.Sampler.success_probability uw_stats;
    uniwit_avg_seconds = Sampling.Sampler.average_seconds_per_sample uw_stats;
    uniwit_avg_xor_len = Sampling.Sampler.average_xor_length uw_stats;
    unigen_failed = ug_failed;
    uniwit_failed = uw_failed;
  }

let pp_cell_f fmt v failed =
  if failed || Float.is_nan v then Format.fprintf fmt "%10s" "-"
  else Format.fprintf fmt "%10.3f" v

let pp_table fmt rows =
  Format.fprintf fmt
    "%-14s %8s %5s | %8s %10s %8s | %8s %10s %8s@."
    "Benchmark" "|X|" "|S|" "UG succ" "UG s/samp" "UG xlen" "UW succ"
    "UW s/samp" "UW xlen";
  Format.fprintf fmt "%s@." (String.make 95 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt "%-14s %8d %5d | " r.name r.num_vars r.sampling_size;
      if r.unigen_failed then Format.fprintf fmt "%8s %10s %8s | " "-" "-" "-"
      else
        Format.fprintf fmt "%8.2f %a %8.1f | " r.unigen_success
          (fun fmt v -> pp_cell_f fmt v r.unigen_failed)
          r.unigen_avg_seconds r.unigen_avg_xor_len;
      if r.uniwit_failed then Format.fprintf fmt "%8s %10s %8s@." "-" "-" "-"
      else
        Format.fprintf fmt "%8.2f %a %8.1f@." r.uniwit_success
          (fun fmt v -> pp_cell_f fmt v r.uniwit_failed)
          r.uniwit_avg_seconds r.uniwit_avg_xor_len)
    rows

type uniformity_result = {
  witness_count : int;
  samples : int;
  unigen_series : (int * int) list;
  us_series : (int * int) list;
  unigen_pvalue : float;
  us_pvalue : float;
  unigen_tv : float;
  us_tv : float;
}

let run_uniformity ?(epsilon = 6.0) ?(samples = 100_000) ?count_iterations ~rng f =
  let sampling = Cnf.Formula.sampling_vars f in
  let key_of m = Cnf.Model.key (Cnf.Model.restrict m sampling) in
  (* ideal sampler *)
  let us = Sampling.Us.create f in
  let rf = Sampling.Us.size us in
  let us_rng = Rng.split rng in
  let us_keys =
    List.init samples (fun _ -> key_of (Sampling.Us.sample ~rng:us_rng us))
  in
  (* UniGen *)
  let ug_rng = Rng.split rng in
  let prepared =
    match Sampling.Unigen.prepare ?count_iterations ~rng:ug_rng ~epsilon f with
    | Ok p -> p
    | Error _ -> failwith "run_uniformity: UniGen preparation failed"
  in
  let rec draw acc n =
    if n = 0 then acc
    else
      match Sampling.Unigen.sample_retrying ~max_attempts:50 ~rng:ug_rng prepared with
      | Ok m -> draw (key_of m :: acc) (n - 1)
      | Error _ -> failwith "run_uniformity: UniGen failed to produce a witness"
  in
  let ug_keys = draw [] samples in
  let summarize keys =
    let h = Sampling.Stats.histogram_of_keys keys in
    ( Sampling.Stats.occurrence_distribution ~support_size:rf h,
      Sampling.Stats.uniformity_pvalue ~num_outcomes:rf ~num_samples:samples h,
      Sampling.Stats.total_variation_from_uniform ~num_outcomes:rf
        ~num_samples:samples h )
  in
  let ug_series, ug_p, ug_tv = summarize ug_keys in
  let us_series, us_p, us_tv = summarize us_keys in
  {
    witness_count = rf;
    samples;
    unigen_series = ug_series;
    us_series;
    unigen_pvalue = ug_p;
    us_pvalue = us_p;
    unigen_tv = ug_tv;
    us_tv = us_tv;
  }

let pp_uniformity fmt r =
  Format.fprintf fmt
    "|R_F| = %d, %d samples each@.χ² p-value: UniGen %.3f / US %.3f; TV from uniform: UniGen %.4f / US %.4f@."
    r.witness_count r.samples r.unigen_pvalue r.us_pvalue r.unigen_tv r.us_tv;
  Format.fprintf fmt "%8s %12s %12s@." "count" "#wit UniGen" "#wit US";
  let all_counts =
    List.sort_uniq Int.compare
      (List.map fst r.unigen_series @ List.map fst r.us_series)
  in
  List.iter
    (fun c ->
      let find series = Option.value ~default:0 (List.assoc_opt c series) in
      Format.fprintf fmt "%8d %12d %12d@." c (find r.unigen_series)
        (find r.us_series))
    all_counts

type instance = {
  name : string;
  domain : string;
  formula : Cnf.Formula.t Lazy.t;
}

(* Deterministic per-instance randomness: the instance name seeds the
   generator, so the suite is stable across runs and machines. *)
let seed_of_name name = Hashtbl.hash name land 0xFFFFFF

(* Some generators can produce unsatisfiable instances (e.g. parity
   conditions that contradict the circuit). Bump the seed until the
   instance is satisfiable so the suite is usable unconditionally. *)
let ensure_sat ~name build =
  let rec go seed attempts =
    if attempts > 50 then
      failwith (Printf.sprintf "Suite.%s: no satisfiable seed found" name);
    let f = build (Rng.create seed) in
    let solver = Sat.Solver.create f in
    match Sat.Solver.solve ~conflict_limit:200_000 solver with
    | Sat.Solver.Sat -> f
    | Sat.Solver.Unsat | Sat.Solver.Unknown -> go (seed + 1) (attempts + 1)
  in
  go (seed_of_name name) 0

let make name domain build =
  { name; domain; formula = lazy (ensure_sat ~name build) }

(* --- "case*" family: random circuits with output parity conditions *)

let case name ~inputs ~gates =
  make name "circuit-parity" (fun rng ->
      Circuits.Generators.case_formula ~rng ~num_inputs:inputs ~num_gates:gates)

(* --- "Squaring*" family: x² ≡ residue (mod 2^k) equivalence circuits *)

let squaring name ~bits ~residue ~modulus_bits =
  make name "squaring" (fun _rng ->
      let nl =
        Circuits.Generators.squaring_equivalence ~bits ~residue ~modulus_bits
      in
      (Circuits.Tseitin.encode nl).Circuits.Tseitin.formula)

(* --- ISCAS89-style: sequential circuits unrolled, parity conditions *)

let iscas name ~kind ~width ~steps ~conditions =
  make name "iscas-parity" (fun rng ->
      let seq =
        match kind with
        | `Lfsr ->
            Circuits.Generators.lfsr ~name ~width
              ~taps:[ 0; (width / 2) - 1; width - 1 ]
        | `Fsm -> Circuits.Generators.nonlinear_fsm ~rng ~name ~width
      in
      let unrolled = Circuits.Sequential.unroll ~observe_last_only:false ~steps seq in
      (Circuits.Tseitin.with_output_parity ~rng ~num_conditions:conditions unrolled)
        .Circuits.Tseitin.formula)

(* --- program-synthesis sketches *)

let sketch name ~controls ~data ~tests =
  make name "synthesis" (fun rng ->
      let nl =
        Circuits.Generators.sketch ~rng ~name ~control_bits:controls
          ~data_bits:data ~num_tests:tests
      in
      (Circuits.Tseitin.encode nl).Circuits.Tseitin.formula)

(* --- large Tseitin formulas with small independent support
       ("tutorial3" / "LLReverse" analogs) *)

let large_tseitin name ~inputs ~gates ~outputs ~conditions =
  make name "large-tseitin" (fun rng ->
      let nl =
        Circuits.Generators.random_dag ~rng ~name ~num_inputs:inputs
          ~num_gates:gates ~num_outputs:outputs
      in
      (Circuits.Tseitin.with_output_parity ~rng ~num_conditions:conditions nl)
        .Circuits.Tseitin.formula)

(* --- multiplier equivalence ("Karatsuba" flavour) *)

let multiplier name ~bits =
  make name "equivalence" (fun _rng ->
      let nl = Circuits.Generators.multiplier_equivalence ~bits in
      (Circuits.Tseitin.encode nl).Circuits.Tseitin.formula)

(* ------------------------------------------------------------------ *)

let table2 =
  [
    (* small case circuits (Table 2 rows case121 .. case35) *)
    case "case_s1" ~inputs:14 ~gates:50;
    case "case_s2" ~inputs:16 ~gates:70;
    case "case_m1" ~inputs:18 ~gates:110;
    case "case_m2" ~inputs:20 ~gates:140;
    (* squaring family *)
    (* the first two stay below hiThresh (UniGen's easy case); the
       larger two have 2^(bits-1) witnesses and exercise the hashed
       path on a deep multiplier circuit *)
    squaring "squaring_5" ~bits:5 ~residue:1 ~modulus_bits:3;
    squaring "squaring_6" ~bits:6 ~residue:4 ~modulus_bits:4;
    squaring "squaring_7" ~bits:7 ~residue:1 ~modulus_bits:2;
    squaring "squaring_8" ~bits:8 ~residue:1 ~modulus_bits:2;
    (* ISCAS89-style sequential + parity *)
    iscas "s_lfsr16_3" ~kind:`Lfsr ~width:16 ~steps:3 ~conditions:3;
    iscas "s_lfsr20_4" ~kind:`Lfsr ~width:20 ~steps:4 ~conditions:4;
    iscas "s_fsm12_3" ~kind:`Fsm ~width:12 ~steps:3 ~conditions:2;
    iscas "s_fsm16_4" ~kind:`Fsm ~width:16 ~steps:4 ~conditions:3;
    iscas "s_fsm20_3" ~kind:`Fsm ~width:20 ~steps:3 ~conditions:3;
    (* synthesis sketches *)
    sketch "sk_login" ~controls:16 ~data:6 ~tests:2;
    sketch "sk_enqueue" ~controls:20 ~data:6 ~tests:3;
    sketch "sk_sort" ~controls:24 ~data:7 ~tests:3;
    sketch "sk_karatsuba" ~controls:28 ~data:8 ~tests:4;
    (* equivalence checking *)
    multiplier "mult_eq_4" ~bits:4;
    (* big Tseitin, small support *)
    large_tseitin "ll_reverse" ~inputs:20 ~gates:3000 ~outputs:10 ~conditions:4;
    large_tseitin "tutorial_xl" ~inputs:24 ~gates:6000 ~outputs:12 ~conditions:5;
  ]

let table1 =
  let names =
    [
      "squaring_7"; "squaring_8"; "squaring_6"; "s_lfsr16_3"; "s_lfsr20_4";
      "s_fsm16_4"; "sk_enqueue"; "sk_login"; "ll_reverse"; "sk_sort";
      "sk_karatsuba"; "tutorial_xl";
    ]
  in
  List.filter (fun i -> List.mem i.name names) table2

let quick =
  List.filter
    (fun i -> List.mem i.name [ "case_s1"; "squaring_5"; "s_fsm12_3"; "sk_login" ])
    table2

let uniformity_case =
  case "case_uniformity" ~inputs:11 ~gates:40

let by_name name =
  if name = uniformity_case.name then Some uniformity_case
  else List.find_opt (fun i -> i.name = name) table2

let num_vars i = (Lazy.force i.formula).Cnf.Formula.num_vars

let sampling_set_size i =
  Array.length (Cnf.Formula.sampling_vars (Lazy.force i.formula))

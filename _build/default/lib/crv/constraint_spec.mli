(** Declarative constrained-random-stimulus specifications — the
    front end a verification engineer writes (the paper's Section 1:
    "the verification engineer declaratively specifies a set of
    constraints on the values of circuit inputs; a constraint solver
    is then used to generate random values").

    A spec declares named bit-vector {e fields} (the stimulus) and
    constrains them with bit-vector predicates; {!compile} lowers the
    spec through the circuit substrate to a CNF formula whose sampling
    set is exactly the stimulus bits, ready for UniGen (see
    {!Testbench}). *)

type spec
type field
type bv
(** A bit-vector expression over the fields. *)

type pred
(** A boolean predicate over bit-vector expressions. *)

val create : string -> spec
val field : spec -> name:string -> width:int -> field
(** Declare a stimulus field (1–30 bits). Names must be unique.
    @raise Invalid_argument otherwise, or after {!compile}. *)

(** {2 Bit-vector expressions} — operands of binary operations must
    have equal widths. *)

val var : field -> bv
val const : width:int -> int -> bv
val add : bv -> bv -> bv  (** modulo 2^width *)

val band : bv -> bv -> bv
val bor : bv -> bv -> bv
val bxor : bv -> bv -> bv
val bnot : bv -> bv
val zero_extend : bv -> width:int -> bv
val width : bv -> int

(** {2 Predicates} *)

val eq : bv -> bv -> pred
val ne : bv -> bv -> pred
val ult : bv -> bv -> pred  (** unsigned < *)

val ule : bv -> bv -> pred
val parity_odd : bv -> pred
val bit : bv -> int -> pred  (** the i-th bit is set *)

val ptrue : pred
val pand : pred -> pred -> pred
val por : pred -> pred -> pred
val pnot : pred -> pred
val implies : pred -> pred -> pred

val constrain : spec -> pred -> unit
(** Conjoin a constraint. *)

(** {2 Compilation} *)

type compiled

val compile : spec -> compiled
(** Lower to CNF (Tseitin over the generated circuit); the spec
    becomes immutable. The formula's sampling set is the stimulus
    bits — an independent support by construction. *)

val formula : compiled -> Cnf.Formula.t
val fields : compiled -> field list
val field_name : field -> string
val field_width : field -> int
val field_value : compiled -> Cnf.Model.t -> field -> int
(** Decode a field from a witness of {!formula}. *)

val decode : compiled -> Cnf.Model.t -> (string * int) list
(** All fields, in declaration order. *)

val stimulus_bits : compiled -> int
(** Total width of the sampling set. *)

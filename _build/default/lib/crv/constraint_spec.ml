type field = { fid : int; fname : string; fwidth : int }

type bv =
  | Var of field
  | Const of int * int (* value, width *)
  | Add of bv * bv
  | Band of bv * bv
  | Bor of bv * bv
  | Bxor of bv * bv
  | Bnot of bv
  | Zext of bv * int

type pred =
  | Ptrue
  | Eq of bv * bv
  | Ult of bv * bv
  | Ule of bv * bv
  | Parity of bv
  | Bit of bv * int
  | Pand of pred * pred
  | Por of pred * pred
  | Pnot of pred

type spec = {
  sname : string;
  mutable sfields : field list; (* reversed *)
  mutable constraints : pred list;
  mutable sealed : bool;
}

let create sname = { sname; sfields = []; constraints = []; sealed = false }

let field spec ~name ~width =
  if spec.sealed then invalid_arg "Constraint_spec.field: spec already compiled";
  if width < 1 || width > 30 then invalid_arg "Constraint_spec.field: width 1..30";
  if List.exists (fun f -> f.fname = name) spec.sfields then
    invalid_arg (Printf.sprintf "Constraint_spec.field: duplicate name %s" name);
  let f = { fid = List.length spec.sfields; fname = name; fwidth = width } in
  spec.sfields <- f :: spec.sfields;
  f

let rec width = function
  | Var f -> f.fwidth
  | Const (_, w) -> w
  | Add (a, _) | Band (a, _) | Bor (a, _) | Bxor (a, _) | Bnot a -> width a
  | Zext (_, w) -> w

let check_same_width op a b =
  if width a <> width b then
    invalid_arg (Printf.sprintf "Constraint_spec.%s: width mismatch (%d vs %d)" op (width a) (width b))

let var f = Var f

let const ~width:w v =
  if w < 1 || w > 30 then invalid_arg "Constraint_spec.const: width 1..30";
  if v < 0 || v >= 1 lsl w then
    invalid_arg (Printf.sprintf "Constraint_spec.const: %d does not fit in %d bits" v w);
  Const (v, w)

let add a b = check_same_width "add" a b; Add (a, b)
let band a b = check_same_width "band" a b; Band (a, b)
let bor a b = check_same_width "bor" a b; Bor (a, b)
let bxor a b = check_same_width "bxor" a b; Bxor (a, b)
let bnot a = Bnot a

let zero_extend a ~width:w =
  if w < width a then invalid_arg "Constraint_spec.zero_extend: narrower target";
  Zext (a, w)

let eq a b = check_same_width "eq" a b; Eq (a, b)
let ne a b = check_same_width "ne" a b; Pnot (Eq (a, b))
let ult a b = check_same_width "ult" a b; Ult (a, b)
let ule a b = check_same_width "ule" a b; Ule (a, b)
let parity_odd a = Parity a

let bit a i =
  if i < 0 || i >= width a then invalid_arg "Constraint_spec.bit: index out of range";
  Bit (a, i)

let ptrue = Ptrue
let pand a b = Pand (a, b)
let por a b = Por (a, b)
let pnot a = Pnot a
let implies a b = Por (Pnot a, b)

let constrain spec p =
  if spec.sealed then invalid_arg "Constraint_spec.constrain: spec already compiled";
  spec.constraints <- p :: spec.constraints

(* ------------------------------------------------------------------ *)
(* Compilation through the circuit substrate                           *)

module B = Circuits.Netlist.Builder

type compiled = {
  cformula : Cnf.Formula.t;
  cfields : field list; (* declaration order *)
  offsets : int array; (* field id -> first input index *)
  input_vars : int array; (* input index -> CNF variable *)
}

let compile spec =
  spec.sealed <- true;
  let fields_ordered = List.rev spec.sfields in
  let b = B.create spec.sname in
  let offsets = Array.make (List.length fields_ordered) 0 in
  (* allocate the stimulus inputs, remembering each field's offset *)
  let next_input = ref 0 in
  let field_words =
    List.map
      (fun f ->
        offsets.(f.fid) <- !next_input;
        next_input := !next_input + f.fwidth;
        (f.fid, Circuits.Arith.input_word b ~width:f.fwidth))
      fields_ordered
  in
  let word_of_field fid = List.assoc fid field_words in
  let rec lower_bv = function
    | Var f -> word_of_field f.fid
    | Const (v, w) -> Circuits.Arith.constant b ~width:w v
    | Add (x, y) ->
        let sum = Circuits.Arith.ripple_adder b (lower_bv x) (lower_bv y) in
        (* drop the carry to stay modulo 2^w *)
        List.filteri (fun i _ -> i < width x) sum
    | Band (x, y) -> List.map2 (B.and_ b) (lower_bv x) (lower_bv y)
    | Bor (x, y) -> List.map2 (B.or_ b) (lower_bv x) (lower_bv y)
    | Bxor (x, y) -> List.map2 (B.xor_ b) (lower_bv x) (lower_bv y)
    | Bnot x -> List.map (B.not_ b) (lower_bv x)
    | Zext (x, w) ->
        let base = lower_bv x in
        base @ List.init (w - width x) (fun _ -> B.const b false)
  in
  let rec lower_pred = function
    | Ptrue -> B.const b true
    | Eq (x, y) -> Circuits.Arith.equal b (lower_bv x) (lower_bv y)
    | Ult (x, y) -> Circuits.Arith.less_than b (lower_bv x) (lower_bv y)
    | Ule (x, y) -> B.not_ b (Circuits.Arith.less_than b (lower_bv y) (lower_bv x))
    | Parity x -> Circuits.Arith.parity b (lower_bv x)
    | Bit (x, i) -> List.nth (lower_bv x) i
    | Pand (p, q) -> B.and_ b (lower_pred p) (lower_pred q)
    | Por (p, q) -> B.or_ b (lower_pred p) (lower_pred q)
    | Pnot p -> B.not_ b (lower_pred p)
  in
  let all =
    List.fold_left (fun acc p -> B.and_ b acc (lower_pred p))
      (B.const b true) (List.rev spec.constraints)
  in
  B.output b all;
  let nl = B.finish b in
  let enc = Circuits.Tseitin.encode nl in
  {
    cformula = enc.Circuits.Tseitin.formula;
    cfields = fields_ordered;
    offsets;
    input_vars = enc.Circuits.Tseitin.input_vars;
  }

let formula c = c.cformula
let fields c = c.cfields
let field_name f = f.fname
let field_width f = f.fwidth

let field_value c m f =
  let base = c.offsets.(f.fid) in
  Circuits.Arith.to_int
    (Array.init f.fwidth (fun i -> Cnf.Model.value m c.input_vars.(base + i)))

let decode c m = List.map (fun f -> (f.fname, field_value c m f)) c.cfields
let stimulus_bits c = Array.length c.input_vars

(** Stimulus generation from a compiled constraint spec: the CRV
    testbench loop. Wraps UniGen preparation and sampling, decoding
    every witness back into named field values. *)

type t

type error =
  | Unsatisfiable_constraints
  | Preparation_failed

val create :
  ?epsilon:float -> ?seed:int -> ?count_iterations:int ->
  Constraint_spec.compiled -> (t, error) Result.t
(** Prepares UniGen once (ε defaults to the paper's experimental
    setting, 6). [count_iterations] trades the internal ApproxMC
    confidence for preparation speed; the default (15) suits
    interactive testbenches — pass the faithful
    [Counting.Approxmc.iterations_of_delta 0.2] (137) for the full
    guarantee. *)

val next : ?deadline:float -> t -> (string * int) list option
(** Draw one stimulus (retrying on cell failures); [None] only on
    timeout or exhausted retries. *)

val estimated_stimulus_space : t -> float
(** ApproxMC's estimate of the number of legal stimuli. *)

val stats : t -> Sampling.Sampler.run_stats

type bin = { label : string; lo : int; hi : int }

type coverpoint = {
  cfield : string;
  bins : bin array;
  counts : int array; (* aligned with bins *)
}

type cross_cov = {
  a : string;
  b : string;
  cross_counts : (string * string, int) Hashtbl.t;
}

type t = {
  mutable points : coverpoint list; (* declaration order, reversed *)
  mutable crosses : cross_cov list;
  mutable recorded : int;
}

let create () = { points = []; crosses = []; recorded = 0 }

let find_point t field = List.find_opt (fun p -> p.cfield = field) t.points

let coverpoint t ~field bins =
  if find_point t field <> None then
    invalid_arg (Printf.sprintf "Coverage.coverpoint: duplicate for %s" field);
  List.iter
    (fun b ->
      if b.lo > b.hi then
        invalid_arg (Printf.sprintf "Coverage.coverpoint: empty bin %s" b.label))
    bins;
  let sorted = List.sort (fun a b -> Int.compare a.lo b.lo) bins in
  let rec overlaps = function
    | a :: (b :: _ as rest) -> a.hi >= b.lo || overlaps rest
    | _ -> false
  in
  if overlaps sorted then
    invalid_arg (Printf.sprintf "Coverage.coverpoint: overlapping bins for %s" field);
  let bins = Array.of_list bins in
  t.points <-
    { cfield = field; bins; counts = Array.make (Array.length bins) 0 } :: t.points

let auto_bins ?count ~width () =
  let space = 1 lsl width in
  let count = match count with Some c -> c | None -> min 16 space in
  if count < 1 || count > space then invalid_arg "Coverage.auto_bins: bad count";
  let per = space / count in
  List.init count (fun i ->
      let lo = i * per in
      let hi = if i = count - 1 then space - 1 else lo + per - 1 in
      { label = Printf.sprintf "[%d:%d]" lo hi; lo; hi })

let cross t a b =
  if find_point t a = None || find_point t b = None then
    invalid_arg "Coverage.cross: both coverpoints must be declared";
  t.crosses <- { a; b; cross_counts = Hashtbl.create 64 } :: t.crosses

let bin_of point v =
  let found = ref None in
  Array.iteri
    (fun i b -> if !found = None && v >= b.lo && v <= b.hi then found := Some i)
    point.bins;
  !found

let record t stimulus =
  t.recorded <- t.recorded + 1;
  let hit_label = Hashtbl.create 8 in
  List.iter
    (fun (field, v) ->
      match find_point t field with
      | None -> ()
      | Some p -> (
          match bin_of p v with
          | None -> ()
          | Some i ->
              p.counts.(i) <- p.counts.(i) + 1;
              Hashtbl.replace hit_label field p.bins.(i).label))
    stimulus;
  List.iter
    (fun c ->
      match (Hashtbl.find_opt hit_label c.a, Hashtbl.find_opt hit_label c.b) with
      | Some la, Some lb ->
          let key = (la, lb) in
          Hashtbl.replace c.cross_counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt c.cross_counts key))
      | _ -> ())
    t.crosses

let hits t ~field =
  match find_point t field with
  | None -> invalid_arg (Printf.sprintf "Coverage.hits: no coverpoint for %s" field)
  | Some p ->
      Array.to_list (Array.mapi (fun i b -> (b.label, p.counts.(i))) p.bins)

let cross_bin_total t c =
  match (find_point t c.a, find_point t c.b) with
  | Some pa, Some pb -> Array.length pa.bins * Array.length pb.bins
  | _ -> 0

let coverage t =
  let point_bins =
    List.fold_left (fun acc p -> acc + Array.length p.bins) 0 t.points
  in
  let point_hit =
    List.fold_left
      (fun acc p -> acc + Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 p.counts)
      0 t.points
  in
  let cross_bins = List.fold_left (fun acc c -> acc + cross_bin_total t c) 0 t.crosses in
  let cross_hit =
    List.fold_left (fun acc c -> acc + Hashtbl.length c.cross_counts) 0 t.crosses
  in
  let total = point_bins + cross_bins in
  if total = 0 then 1.0
  else float_of_int (point_hit + cross_hit) /. float_of_int total

let unhit t =
  let from_points =
    List.concat_map
      (fun p ->
        Array.to_list p.bins
        |> List.mapi (fun i b -> (i, b))
        |> List.filter_map (fun (i, b) ->
               if p.counts.(i) = 0 then Some (p.cfield ^ "." ^ b.label) else None))
      (List.rev t.points)
  in
  let from_crosses =
    List.concat_map
      (fun c ->
        match (find_point t c.a, find_point t c.b) with
        | Some pa, Some pb ->
            Array.to_list pa.bins
            |> List.concat_map (fun ba ->
                   Array.to_list pb.bins
                   |> List.filter_map (fun bb ->
                          if Hashtbl.mem c.cross_counts (ba.label, bb.label) then
                            None
                          else
                            Some
                              (Printf.sprintf "%s.x.%s.%s*%s" c.a c.b ba.label
                                 bb.label)))
        | _ -> [])
      (List.rev t.crosses)
  in
  from_points @ from_crosses

let stimuli_recorded t = t.recorded

let pp fmt t =
  Format.fprintf fmt "coverage %.1f%% after %d stimuli@."
    (100.0 *. coverage t) t.recorded;
  List.iter
    (fun p ->
      Format.fprintf fmt "  %s:@." p.cfield;
      Array.iteri
        (fun i b -> Format.fprintf fmt "    %-12s %d@." b.label p.counts.(i))
        p.bins)
    (List.rev t.points);
  match unhit t with
  | [] -> Format.fprintf fmt "  all bins hit@."
  | missing ->
      Format.fprintf fmt "  unhit: %s@." (String.concat ", " missing)

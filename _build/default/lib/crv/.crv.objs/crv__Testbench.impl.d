lib/crv/testbench.ml: Constraint_spec Rng Sampling

lib/crv/coverage.mli: Format

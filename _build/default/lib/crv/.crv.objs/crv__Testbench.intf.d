lib/crv/testbench.mli: Constraint_spec Result Sampling

lib/crv/constraint_spec.mli: Cnf

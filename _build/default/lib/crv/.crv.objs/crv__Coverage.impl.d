lib/crv/coverage.ml: Array Format Hashtbl Int List Option Printf String

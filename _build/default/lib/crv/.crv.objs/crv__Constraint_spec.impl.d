lib/crv/constraint_spec.ml: Array Circuits Cnf List Printf

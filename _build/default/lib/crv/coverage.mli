(** Functional-coverage bookkeeping for constrained-random testbenches
    — the closure metric that motivates uniform stimulus generation
    (every coverage bin must be hit by some stimulus; a skewed
    generator leaves bins unreached).

    A coverpoint partitions one field's values into named bins; a
    cross tracks the Cartesian product of two coverpoints. Stimuli (as
    decoded by {!Constraint_spec.decode}) are recorded and per-bin hit
    counts reported. *)

type t

type bin = { label : string; lo : int; hi : int }
(** A value range [lo, hi], inclusive. *)

val create : unit -> t

val coverpoint : t -> field:string -> bin list -> unit
(** Declare bins over a named field. Bins may not overlap.
    @raise Invalid_argument on overlaps, empty ranges, or a duplicate
    coverpoint for the same field. *)

val auto_bins : ?count:int -> width:int -> unit -> bin list
(** Equal-width bins covering [0, 2^width); [count] defaults to
    min(16, 2^width). *)

val cross : t -> string -> string -> unit
(** Track the product of two declared coverpoints.
    @raise Invalid_argument if either coverpoint is missing. *)

val record : t -> (string * int) list -> unit
(** Record one stimulus; fields without coverpoints are ignored.
    Values falling in no declared bin are counted as misses. *)

val hits : t -> field:string -> (string * int) list
(** Hit count per bin label. *)

val coverage : t -> float
(** Fraction of all bins (coverpoints and crosses) hit at least once,
    in [0, 1]; 1.0 when nothing is declared. *)

val unhit : t -> string list
(** Labels of bins never hit, as ["field.bin"] or
    ["fieldA.x.fieldB.binA*binB"]. *)

val stimuli_recorded : t -> int

val pp : Format.formatter -> t -> unit
(** Human-readable coverage report. *)

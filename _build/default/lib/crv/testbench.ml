type t = {
  compiled : Constraint_spec.compiled;
  prepared : Sampling.Unigen.prepared;
  rng : Rng.t;
}

type error = Unsatisfiable_constraints | Preparation_failed

let create ?(epsilon = 6.0) ?(seed = 1) ?(count_iterations = 15) compiled =
  let rng = Rng.create seed in
  match
    Sampling.Unigen.prepare ~count_iterations ~rng ~epsilon
      (Constraint_spec.formula compiled)
  with
  | Ok prepared -> Ok { compiled; prepared; rng }
  | Error Sampling.Unigen.Unsat_formula -> Error Unsatisfiable_constraints
  | Error _ -> Error Preparation_failed

let next ?deadline t =
  match
    Sampling.Unigen.sample_retrying ?deadline ~max_attempts:20 ~rng:t.rng
      t.prepared
  with
  | Ok m -> Some (Constraint_spec.decode t.compiled m)
  | Error _ -> None

let estimated_stimulus_space t = Sampling.Unigen.count_estimate t.prepared
let stats t = Sampling.Unigen.stats t.prepared

(* Clauses are processed as sorted lists of signed DIMACS literals. *)

type result = {
  simplified : Cnf.Formula.t;
  forced : (int * bool) list;
  eliminated : int list;
  recovery : (int * int list list) list;
  clauses_before : int;
  clauses_after : int;
}

exception Unsat_exn

let normalize_clause c =
  let sorted = List.sort_uniq Int.compare c in
  if List.exists (fun l -> List.mem (-l) sorted) sorted then None else Some sorted

(* ------------------------------------------------------------------ *)
(* Unit propagation over clause lists + XOR substitution               *)

let propagate_units clauses xors =
  (* returns (forced assignments, remaining clauses, remaining xors) *)
  let assignment = Hashtbl.create 64 in
  let assign l =
    let v = abs l and b = l > 0 in
    match Hashtbl.find_opt assignment v with
    | Some b' -> if b <> b' then raise Unsat_exn
    | None -> Hashtbl.add assignment v b
  in
  let value l =
    match Hashtbl.find_opt assignment (abs l) with
    | None -> None
    | Some b -> Some (if l > 0 then b else not b)
  in
  let simplify_clause c =
    (* None = satisfied; Some c' = residual *)
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | l :: rest -> (
          match value l with
          | Some true -> None
          | Some false -> go acc rest
          | None -> go (l :: acc) rest)
    in
    go [] c
  in
  let simplify_xor (x : Cnf.Xor_clause.t) =
    let rhs = ref x.rhs in
    let vars =
      Array.to_list x.vars
      |> List.filter (fun v ->
             match Hashtbl.find_opt assignment v with
             | Some true ->
                 rhs := not !rhs;
                 false
             | Some false -> false
             | None -> true)
    in
    (vars, !rhs)
  in
  let clauses = ref clauses and xors = ref xors in
  let changed = ref true in
  while !changed do
    changed := false;
    let next_clauses = ref [] in
    List.iter
      (fun c ->
        match simplify_clause c with
        | None -> changed := true
        | Some [] -> raise Unsat_exn
        | Some [ l ] ->
            assign l;
            changed := true
        | Some c' ->
            if List.length c' <> List.length c then changed := true;
            next_clauses := c' :: !next_clauses)
      !clauses;
    clauses := List.rev !next_clauses;
    let next_xors = ref [] in
    List.iter
      (fun x ->
        match simplify_xor x with
        | [], true -> raise Unsat_exn
        | [], false -> changed := true
        | [ v ], rhs ->
            assign (if rhs then v else -v);
            changed := true
        | vars, rhs ->
            let x' = Cnf.Xor_clause.make vars rhs in
            if Cnf.Xor_clause.arity x' <> Cnf.Xor_clause.arity x then changed := true;
            next_xors := x' :: !next_xors)
      !xors;
    xors := List.rev !next_xors
  done;
  let forced = Hashtbl.fold (fun v b acc -> (v, b) :: acc) assignment [] in
  (List.sort compare forced, !clauses, !xors)

(* ------------------------------------------------------------------ *)
(* Subsumption and self-subsumption                                    *)

let subset a b =
  (* both sorted *)
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' ->
        if x = y then go a' b' else if x > y then go a b' else false
  in
  go a b

let subsumption clauses =
  (* quadratic with a length sort; adequate at benchmark scale *)
  let sorted =
    List.sort (fun a b -> Int.compare (List.length a) (List.length b)) clauses
  in
  let kept = ref [] in
  List.iter
    (fun c ->
      if not (List.exists (fun k -> subset k c) !kept) then kept := c :: !kept)
    sorted;
  List.rev !kept

let self_subsume clauses =
  (* strengthen c2 by c1 when c1 ⊆ c2 modulo one flipped literal:
     remove that literal from c2 *)
  let arr = Array.of_list clauses in
  let changed = ref false in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let c1 = arr.(i) and c2 = arr.(j) in
        if List.length c1 <= List.length c2 then
          (* find the unique literal of c1 whose negation is in c2 and
             the rest of c1 is a subset of c2 *)
          let flips =
            List.filter (fun l -> List.mem (-l) c2) c1
          in
          match flips with
          | [ l ] ->
              let rest = List.filter (fun x -> x <> l) c1 in
              if subset rest c2 then begin
                arr.(j) <- List.filter (fun x -> x <> -l) c2;
                changed := true
              end
          | _ -> ()
      end
    done
  done;
  (Array.to_list arr, !changed)

(* ------------------------------------------------------------------ *)
(* Bounded variable elimination                                        *)

let resolve c1 c2 v =
  (* c1 contains v, c2 contains -v *)
  let merged =
    List.filter (fun l -> l <> v) c1 @ List.filter (fun l -> l <> -v) c2
  in
  normalize_clause merged

let eliminate_variable clauses v ~max_resolvents =
  let pos, rest = List.partition (fun c -> List.mem v c) clauses in
  let neg, rest = List.partition (fun c -> List.mem (-v) c) rest in
  if pos = [] || neg = [] then
    (* pure in the clause part: eliminating it just drops its clauses
       (every assignment of the rest extends by a suitable v) *)
    Some (rest, pos @ neg)
  else begin
    let resolvents =
      List.concat_map (fun c1 -> List.filter_map (fun c2 -> resolve c1 c2 v) neg) pos
    in
    let original = List.length pos + List.length neg in
    if List.length resolvents > original + max_resolvents then None
    else Some (resolvents @ rest, pos @ neg)
  end

(* ------------------------------------------------------------------ *)

let run ?(max_resolvents = 16) ?(eliminate = true) (f : Cnf.Formula.t) =
  let clauses_before = Cnf.Formula.num_clauses f in
  try
    let raw =
      Array.to_list f.Cnf.Formula.clauses
      |> List.filter_map (fun c -> normalize_clause (Cnf.Clause.to_dimacs c))
    in
    (* alternate unit propagation with GF(2) elimination of the XOR
       system until neither produces new facts *)
    let rec fixpoint clauses xors acc_forced =
      let forced, clauses, xors = propagate_units clauses xors in
      let acc_forced = forced @ acc_forced in
      match Cnf.Xor_gauss.eliminate xors with
      | Error `Unsat -> raise Unsat_exn
      | Ok g ->
          let xors = g.Cnf.Xor_gauss.rows in
          if g.Cnf.Xor_gauss.units = [] then (acc_forced, clauses, xors)
          else
            let unit_clauses =
              List.map (fun (v, b) -> [ (if b then v else -v) ]) g.Cnf.Xor_gauss.units
            in
            fixpoint (unit_clauses @ clauses) xors acc_forced
    in
    let forced, clauses, xors =
      fixpoint raw (Array.to_list f.Cnf.Formula.xors) []
    in
    let forced = List.sort_uniq compare forced in
    let clauses = subsumption (List.sort_uniq compare clauses) in
    let clauses, _ = self_subsume clauses in
    let clauses = subsumption (List.sort_uniq compare clauses) in
    (* BVE candidates: outside the sampling set, outside every XOR,
       not already forced *)
    let protected = Hashtbl.create 64 in
    Array.iter (fun v -> Hashtbl.replace protected v ()) (Cnf.Formula.sampling_vars f);
    List.iter (fun (x : Cnf.Xor_clause.t) -> Array.iter (fun v -> Hashtbl.replace protected v ()) x.vars) xors;
    List.iter (fun (v, _) -> Hashtbl.replace protected v ()) forced;
    let clauses = ref clauses in
    let eliminated = ref [] and recovery = ref [] in
    if eliminate && f.Cnf.Formula.sampling_set <> None then begin
      let progress = ref true in
      while !progress do
        progress := false;
        let occ = Hashtbl.create 128 in
        List.iter
          (List.iter (fun l ->
               let v = abs l in
               Hashtbl.replace occ v (1 + Option.value ~default:0 (Hashtbl.find_opt occ v))))
          !clauses;
        (* try cheapest variables first *)
        let candidates =
          Hashtbl.fold
            (fun v c acc -> if Hashtbl.mem protected v then acc else (c, v) :: acc)
            occ []
          |> List.sort compare |> List.map snd
        in
        List.iter
          (fun v ->
            if not (Hashtbl.mem protected v) then
              match eliminate_variable !clauses v ~max_resolvents with
              | None -> ()
              | Some (next, removed) ->
                  clauses := subsumption (List.sort_uniq compare next);
                  eliminated := v :: !eliminated;
                  recovery := (v, removed) :: !recovery;
                  Hashtbl.replace protected v ();
                  progress := true)
          candidates
      done
    end;
    (* keep forced assignments as unit clauses so witnesses are
       unchanged on those variables *)
    let units = List.map (fun (v, b) -> [ (if b then v else -v) ]) forced in
    let final_clauses =
      List.map Cnf.Clause.of_dimacs (units @ !clauses)
    in
    let sampling_set =
      Option.map Array.to_list f.Cnf.Formula.sampling_set
    in
    let simplified =
      Cnf.Formula.create_with_xors ?sampling_set ~num_vars:f.Cnf.Formula.num_vars
        final_clauses xors
    in
    Ok
      {
        simplified;
        forced;
        eliminated = List.rev !eliminated;
        recovery = !recovery (* most recently eliminated first *);
        clauses_before;
        clauses_after = Cnf.Formula.num_clauses simplified;
      }
  with Unsat_exn -> Error `Unsat

let extend result m =
  if not (Cnf.Model.satisfies result.simplified m) then
    failwith "Simplify.extend: not a witness of the simplified formula";
  let n = Cnf.Model.num_vars m in
  let values = Array.init n (fun i -> Cnf.Model.value m (i + 1)) in
  (* recovery is ordered most-recently-eliminated first, which is the
     correct order to undo BVE (later eliminations may depend on
     earlier-eliminated variables) *)
  List.iter
    (fun (v, clauses) ->
      let lit_true l =
        let b = values.(abs l - 1) in
        if l > 0 then b else not b
      in
      (* v must satisfy every stored clause: forced true if some clause
         containing v has all other literals false, forced false
         symmetrically; otherwise free *)
      let forced_true =
        List.exists
          (fun c -> List.mem v c && not (List.exists (fun l -> l <> v && lit_true l) c))
          clauses
      in
      values.(v - 1) <- forced_true)
    result.recovery;
  Cnf.Model.of_bool_array values

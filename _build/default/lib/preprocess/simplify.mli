(** Sampling-safe CNF preprocessing.

    Ordinary SAT preprocessing only needs to preserve satisfiability;
    a preprocessor in front of a witness *sampler* must preserve the
    witness set — more precisely its projection on the sampling set,
    which is all UniGen ever looks at. Every transformation here is
    projection-preserving:

    - top-level unit propagation (forced assignments are recorded and
      re-applied when witnesses are extended back),
    - tautology and duplicate-literal removal,
    - duplicate-clause removal and (self-)subsumption,
    - bounded variable elimination (BVE) restricted to variables
      outside the sampling set: resolving a variable away replaces the
      formula by the projection of its witness set onto the remaining
      variables, so the projected witness set on S is untouched.

    The result carries enough bookkeeping ({!extend}) to lift a model
    of the simplified formula back to a model of the original formula
    — eliminated variables are re-derived with a unit-propagation +
    polarity-repair pass. *)

type result = {
  simplified : Cnf.Formula.t;
      (** same [num_vars] as the input; forced assignments are kept as
          unit clauses, eliminated variables become unconstrained (the
          projection on the sampling set is what is preserved) *)
  forced : (int * bool) list;  (** top-level forced assignments *)
  eliminated : int list;  (** variables removed by BVE, in order *)
  recovery : (int * int list list) list;
      (** per eliminated variable, its original clauses (DIMACS
          lists) — used by {!extend}; treat as opaque *)
  clauses_before : int;
  clauses_after : int;
}

val run :
  ?max_resolvents:int ->
  ?eliminate:bool ->
  Cnf.Formula.t ->
  (result, [ `Unsat ]) Result.t
(** [max_resolvents] (default 16) bounds the clause growth allowed
    when eliminating one variable (the "bounded" of BVE);
    [eliminate false] turns BVE off, leaving only the
    equivalence-preserving cleanups. Native XOR clauses are preserved
    untouched (variables occurring in XORs are never eliminated). *)

val extend : result -> Cnf.Model.t -> Cnf.Model.t
(** Lift a witness of [simplified] to a witness of the original
    formula (same [num_vars]): re-applies forced assignments and
    recovers eliminated variables.
    @raise Failure if the input is not actually a witness of the
    simplified formula. *)

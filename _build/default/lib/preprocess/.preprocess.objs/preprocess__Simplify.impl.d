lib/preprocess/simplify.ml: Array Cnf Hashtbl Int List Option

lib/preprocess/simplify.mli: Cnf Result

type result = Exact of int | At_least of int

let count ?deadline ?(limit = 1 lsl 20) f vars =
  let out = Sat.Bsat.enumerate ?deadline ~blocking_vars:vars ~limit f in
  let n = List.length out.Sat.Bsat.models in
  if out.Sat.Bsat.exhausted then Exact n else At_least n

let count_on_sampling_set ?deadline ?limit f =
  count ?deadline ?limit f (Cnf.Formula.sampling_vars f)

type result = {
  estimate : float;
  log2_estimate : float;
  exact : bool;
  core_iterations : int;
  failed_iterations : int;
}

type error = Unsat | Timed_out

let pivot_of_epsilon epsilon =
  if epsilon <= 0.0 then invalid_arg "Approxmc: epsilon must be positive";
  int_of_float (Float.ceil (2.0 *. Float.exp 1.5 *. ((1.0 +. (1.0 /. epsilon)) ** 2.0)))

let iterations_of_delta delta =
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Approxmc: delta in (0,1)";
  int_of_float (Float.ceil (35.0 *. (Float.log (3.0 /. delta) /. Float.log 2.0)))

let median l =
  match List.sort Float.compare l with
  | [] -> invalid_arg "median of empty list"
  | sorted ->
      let n = List.length sorted in
      List.nth sorted (n / 2)

exception Deadline

let check_deadline deadline =
  match deadline with
  | Some d when Unix.gettimeofday () > d -> raise Deadline
  | _ -> ()

(* One ApproxMCCore run: returns Some count-estimate or None (failure). *)
let core ?deadline ~rng ~pivot ~start f =
  let sampling = Cnf.Formula.sampling_vars f in
  let n = Array.length sampling in
  let rec try_size i =
    check_deadline deadline;
    if i > n then None
    else begin
      let h = Hashing.Hxor.sample rng ~vars:sampling ~m:i in
      let g = Cnf.Formula.add_xors f (Hashing.Hxor.constraints h) in
      let out = Sat.Bsat.enumerate ?deadline ~limit:(pivot + 1) g in
      if out.Sat.Bsat.timed_out then raise Deadline;
      let count = List.length out.Sat.Bsat.models in
      if count >= 1 && count <= pivot && out.Sat.Bsat.exhausted then
        Some (float_of_int count *. (2.0 ** float_of_int i), i)
      else try_size (i + 1)
    end
  in
  try_size start

(* The t ApproxMCCore iterations are mutually independent XOR-hashed
   counts, so they parallelise without changing the estimator: run
   iteration [i] on the private stream (master, i) and take the median
   over the index-ordered successes. The estimate is then a pure
   function of the master seed — identical for every worker count. *)
let iterate_parallel ?deadline ?jobs ?pool ~rng ~pivot ~t f =
  let master = Int64.to_int (Rng.bits64 rng) land max_int in
  let one index =
    let rng = Rng.of_stream ~seed:master index in
    match core ?deadline ~rng ~pivot ~start:1 f with
    | Some e -> `Estimate e
    | None -> `Failed
    | exception Deadline -> `Deadline
  in
  let indices = Array.init t Fun.id in
  match (pool, jobs) with
  | Some p, _ -> Parallel.Domain_pool.map p one indices
  | None, Some jobs when jobs > 1 ->
      Parallel.Domain_pool.with_pool ~jobs (fun p ->
          Parallel.Domain_pool.map p one indices)
  | None, _ -> Array.map one indices

let count ?deadline ?(leapfrog = false) ?iterations ?jobs ?pool ~rng ~epsilon
    ~delta f =
  (match jobs with
  | Some j when j < 1 -> invalid_arg "Approxmc.count: jobs must be >= 1"
  | _ -> ());
  let pivot = pivot_of_epsilon epsilon in
  let t = match iterations with Some t -> t | None -> iterations_of_delta delta in
  try
    (* Easy case: few enough witnesses to enumerate exactly. *)
    let out = Sat.Bsat.enumerate ?deadline ~limit:(pivot + 1) f in
    if out.Sat.Bsat.timed_out then Error Timed_out
    else begin
      let n0 = List.length out.Sat.Bsat.models in
      if n0 = 0 then Error Unsat
      else if out.Sat.Bsat.exhausted then
        Ok
          {
            estimate = float_of_int n0;
            log2_estimate = Float.log (float_of_int n0) /. Float.log 2.0;
            exact = true;
            core_iterations = 0;
            failed_iterations = 0;
          }
      else begin
        let estimates = ref [] in
        let failures = ref 0 in
        if (jobs <> None || pool <> None) && not leapfrog then begin
          (* deterministic stream-per-iteration discipline; leapfrog is
             inherently sequential (each start depends on the previous
             iteration) and keeps the serial path below *)
          let outcomes = iterate_parallel ?deadline ?jobs ?pool ~rng ~pivot ~t f in
          Array.iter
            (function
              | `Estimate (e, _) -> estimates := e :: !estimates
              | `Failed -> incr failures
              | `Deadline -> raise Deadline)
            outcomes
        end
        else begin
          let prev_i = ref 1 in
          for _ = 1 to t do
            let start = if leapfrog then max 1 (!prev_i - 1) else 1 in
            match core ?deadline ~rng ~pivot ~start f with
            | Some (e, i) ->
                prev_i := i;
                estimates := e :: !estimates
            | None -> incr failures
          done
        end;
        match !estimates with
        | [] -> Error Timed_out (* all iterations failed: no usable estimate *)
        | es ->
            let est = median es in
            Ok
              {
                estimate = est;
                log2_estimate = Float.log est /. Float.log 2.0;
                exact = false;
                core_iterations = List.length es;
                failed_iterations = !failures;
              }
      end
    end
  with Deadline -> Error Timed_out

lib/counting/approxmc.ml: Array Cnf Float Fun Hashing Int64 List Parallel Rng Sat Unix

lib/counting/approxmc.ml: Array Cnf Float Hashing List Sat Unix

lib/counting/approxmc.mli: Cnf Parallel Result Rng

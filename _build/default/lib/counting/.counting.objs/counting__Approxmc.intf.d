lib/counting/approxmc.mli: Cnf Result Rng

lib/counting/exact_counter.mli: Cnf

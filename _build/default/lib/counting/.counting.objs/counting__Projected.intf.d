lib/counting/projected.mli: Cnf

lib/counting/projected.ml: Cnf List Sat

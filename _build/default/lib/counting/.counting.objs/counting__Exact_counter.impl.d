lib/counting/exact_counter.ml: Array Cnf Hashtbl Int List Option String

(** Projected model counting: the number of distinct witness
    projections onto a variable set (∃-counting). When the set is an
    independent support this equals the full model count — the
    identity UniGen's use of ApproxMC relies on; this module computes
    the projected count {e exactly}, by blocking-clause enumeration,
    for sets small enough to enumerate. *)

type result = Exact of int | At_least of int  (** enumeration limit hit *)

val count :
  ?deadline:float -> ?limit:int -> Cnf.Formula.t -> int array -> result
(** [count f vars] enumerates distinct projections onto [vars] (limit
    defaults to 2^20). *)

val count_on_sampling_set : ?deadline:float -> ?limit:int -> Cnf.Formula.t -> result
(** Projection onto the formula's sampling set. *)

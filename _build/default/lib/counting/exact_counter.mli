(** Exact model counting (#SAT) — the sharpSAT stand-in used by the
    ideal uniform sampler [US] of the paper's Figure 1 experiment.

    The algorithm is DPLL-style counting with the three standard
    ingredients of modern exact counters: unit propagation,
    connected-component decomposition (disjoint sub-formulas multiply),
    and component caching. Native XOR clauses are CNF-blasted first;
    the fresh chaining variables are functionally determined, so the
    count is unchanged. *)

exception Overflow
(** The count does not fit in an OCaml [int] (≥ 2^62). *)

val count : ?max_decisions:int -> Cnf.Formula.t -> int
(** Number of witnesses over all [num_vars] variables.
    @param max_decisions safety valve on search-tree size (default
    10^7 branching steps); exceeding it raises [Failure]. *)

val count_restricted : ?max_decisions:int -> Cnf.Formula.t -> Cnf.Lit.t list -> int
(** [count_restricted f assumptions] counts witnesses of [f] that agree
    with the given literals. Used by tests and by self-composition
    style queries. *)

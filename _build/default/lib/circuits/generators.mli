(** Benchmark-circuit generators: synthetic analogs of the four
    benchmark domains of the paper's experimental section (Section 5).

    Each generator produces either a netlist or directly a CNF formula
    whose sampling set is an independent support by construction. *)

val lfsr : name:string -> width:int -> taps:int list -> Sequential.t
(** A linear-feedback shift register step circuit with a nonlinear
    observation (AND-mixed parity), standing in for ISCAS89 sequential
    benchmarks. State shifts left; the new low bit is the XOR of the
    tap positions; observables are two mixed parity bits. *)

val nonlinear_fsm : rng:Rng.t -> name:string -> width:int -> Sequential.t
(** A random nonlinear next-state function built from AND/XOR/MUX
    layers — a denser ISCAS-style state machine. *)

val random_dag :
  rng:Rng.t -> name:string -> num_inputs:int -> num_gates:int -> num_outputs:int ->
  Netlist.t
(** Random combinational logic. Every gate draws its operands from
    earlier nodes (biased towards recent ones to get depth). *)

val squaring_equivalence : bits:int -> residue:int -> modulus_bits:int -> Netlist.t
(** The "SquaringK"-family analog: inputs x, output asserts that the
    low [modulus_bits] bits of x² equal [residue]. Input bits form the
    independent support; solution counts vary with [residue]. *)

val multiplier_equivalence : bits:int -> Netlist.t
(** Inputs x, y and z; output asserts x·y = z on the low 2·bits.
    Used as a "Karatsuba"-flavoured equivalence-checking constraint
    (z is also an input, so the support is x ∪ y ∪ z). *)

(** Program-synthesis sketch: find control bits making a small
    bit-vector ALU agree with a hidden specification on a set of test
    vectors — the analog of the paper's program-synthesis constraints
    (EnqueueSeqSK, Karatsuba, Sort, ...). *)
val sketch :
  rng:Rng.t ->
  name:string ->
  control_bits:int ->
  data_bits:int ->
  num_tests:int ->
  Netlist.t
(** The netlist's primary inputs are exactly the control bits (test
    vectors are baked in as constants); its single output asserts that
    the sketch matches the specification on every test. Solutions =
    consistent control assignments. *)

val case_formula : rng:Rng.t -> num_inputs:int -> num_gates:int -> Cnf.Formula.t
(** A "case*"-style small benchmark: random DAG with parity conditions
    on outputs; sampling set = circuit inputs. *)

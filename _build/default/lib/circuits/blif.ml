exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let to_string (nl : Netlist.t) =
  let buf = Buffer.create 4096 in
  let node_name i =
    match nl.Netlist.nodes.(i) with
    | Netlist.Input k -> Printf.sprintf "i%d" k
    | _ -> Printf.sprintf "n%d" i
  in
  Printf.bprintf buf ".model %s\n" nl.Netlist.name;
  Buffer.add_string buf ".inputs";
  for k = 0 to nl.Netlist.num_inputs - 1 do
    Printf.bprintf buf " i%d" k
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ".outputs";
  Array.iteri (fun k _ -> Printf.bprintf buf " o%d" k) nl.Netlist.outputs;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i node ->
      let me = node_name i in
      match node with
      | Netlist.Input _ -> ()
      | Netlist.Const b ->
          Printf.bprintf buf ".names %s\n" me;
          if b then Buffer.add_string buf "1\n"
      | Netlist.Not a ->
          Printf.bprintf buf ".names %s %s\n0 1\n" (node_name a) me
      | Netlist.And (a, b) ->
          Printf.bprintf buf ".names %s %s %s\n11 1\n" (node_name a) (node_name b) me
      | Netlist.Or (a, b) ->
          Printf.bprintf buf ".names %s %s %s\n1- 1\n-1 1\n" (node_name a)
            (node_name b) me
      | Netlist.Xor (a, b) ->
          Printf.bprintf buf ".names %s %s %s\n10 1\n01 1\n" (node_name a)
            (node_name b) me
      | Netlist.Mux (s, a, b) ->
          Printf.bprintf buf ".names %s %s %s %s\n11- 1\n0-1 1\n" (node_name s)
            (node_name a) (node_name b) me)
    nl.Netlist.nodes;
  (* output aliases *)
  Array.iteri
    (fun k o -> Printf.bprintf buf ".names %s o%d\n1 1\n" (node_name o) k)
    nl.Netlist.outputs;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  output_string oc (to_string nl);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type raw_names = { inputs : string list; output : string; rows : (string * char) list }

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* Join continuation lines ending in '\' and drop comments. *)
let logical_lines text =
  let lines = String.split_on_char '\n' text in
  let lines =
    List.map
      (fun l -> match String.index_opt l '#' with
        | Some i -> String.sub l 0 i
        | None -> l)
      lines
  in
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | l :: rest ->
        let l = pending ^ l in
        let trimmed = String.trim l in
        if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '\\'
        then join acc (String.sub trimmed 0 (String.length trimmed - 1) ^ " ") rest
        else join (trimmed :: acc) "" rest
  in
  join [] "" lines |> List.filter (fun l -> l <> "")

let parse_structure text =
  let model = ref "" in
  let inputs = ref [] and outputs = ref [] in
  let names = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some n -> names := n :: !names; current := None
    | None -> ()
  in
  List.iter
    (fun line ->
      match tokenize line with
      | ".model" :: name :: _ ->
          flush ();
          model := name
      | ".inputs" :: ins ->
          flush ();
          inputs := !inputs @ ins
      | ".outputs" :: outs ->
          flush ();
          outputs := !outputs @ outs
      | ".names" :: signals -> begin
          flush ();
          match List.rev signals with
          | out :: rev_ins ->
              current := Some { inputs = List.rev rev_ins; output = out; rows = [] }
          | [] -> fail ".names with no signals"
        end
      | ".end" :: _ -> flush ()
      | [ ".latch" ] | ".latch" :: _ -> fail "latches are not supported (unroll first)"
      | ".subckt" :: _ -> fail "subcircuits are not supported"
      | tok :: rest -> begin
          match !current with
          | None -> fail "unexpected line %S" line
          | Some n ->
              let pattern, value =
                match rest with
                | [ v ] -> (tok, v)
                | [] ->
                    (* single-column row of a constant .names *)
                    ("", tok)
                | _ -> fail "malformed cover row %S" line
              in
              if String.length value <> 1 || (value.[0] <> '0' && value.[0] <> '1')
              then fail "bad cover output %S" value;
              if String.length pattern <> List.length n.inputs then
                fail "cover width mismatch in %S" line;
              current := Some { n with rows = (pattern, value.[0]) :: n.rows }
        end
      | [] -> ())
    (logical_lines text);
  flush ();
  if !model = "" then fail "missing .model";
  (!inputs, !outputs, List.rev !names)

(* Build a sum-of-products for a .names cover. *)
let build_cover b signal_of (n : raw_names) =
  let module B = Netlist.Builder in
  let arity = List.length n.inputs in
  if arity > 12 then fail ".names arity %d exceeds the supported 12" arity;
  let in_signals = List.map signal_of n.inputs in
  match n.rows with
  | [] ->
      (* no rows: constant 0 *)
      B.const b false
  | rows ->
      let polarity =
        match List.sort_uniq compare (List.map snd rows) with
        | [ '1' ] -> `On
        | [ '0' ] -> `Off
        | [] -> `On
        | _ -> fail "mixed 0/1 covers in one .names are not supported"
      in
      let row_term (pattern, _) =
        if pattern = "" then B.const b true
        else
          let lits =
            List.mapi
              (fun i s ->
                match pattern.[i] with
                | '1' -> Some s
                | '0' -> Some (B.not_ b s)
                | '-' -> None
                | c -> fail "bad cover character %c" c)
              in_signals
            |> List.filter_map Fun.id
          in
          B.and_list b lits
      in
      let sum = B.or_list b (List.map row_term rows) in
      (match polarity with `On -> sum | `Off -> B.not_ b sum)

let of_string text =
  let module B = Netlist.Builder in
  let input_names, output_names, names = parse_structure text in
  let b = B.create "blif" in
  let env = Hashtbl.create 64 in
  List.iter
    (fun name ->
      if Hashtbl.mem env name then fail "duplicate input %s" name;
      Hashtbl.add env name (B.input b))
    input_names;
  (* .names may reference signals defined later; process in dependency
     order with a simple multi-pass loop *)
  let remaining = ref names in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let next = ref [] in
    List.iter
      (fun n ->
        if List.for_all (Hashtbl.mem env) n.inputs then begin
          if Hashtbl.mem env n.output then fail "signal %s defined twice" n.output;
          Hashtbl.add env n.output (build_cover b (Hashtbl.find env) n);
          progress := true
        end
        else next := n :: !next)
      !remaining;
    remaining := List.rev !next
  done;
  (match !remaining with
  | [] -> ()
  | n :: _ -> fail "undefined or cyclic signal feeding %s" n.output);
  List.iter
    (fun name ->
      match Hashtbl.find_opt env name with
      | Some s -> B.output b s
      | None -> fail "undefined output %s" name)
    output_names;
  B.finish b

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  of_string content

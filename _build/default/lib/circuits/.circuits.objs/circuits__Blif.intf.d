lib/circuits/blif.mli: Netlist

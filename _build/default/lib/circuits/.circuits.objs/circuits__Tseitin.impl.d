lib/circuits/tseitin.ml: Array Cnf Fun List Netlist Rng

lib/circuits/sequential.ml: Array List Netlist Printf

lib/circuits/netlist.ml: Array List Printf

lib/circuits/netlist.mli:

lib/circuits/sequential.mli: Netlist

lib/circuits/aiger.ml: Array Buffer List Netlist Printf String

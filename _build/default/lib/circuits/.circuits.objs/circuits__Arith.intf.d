lib/circuits/arith.mli: Netlist

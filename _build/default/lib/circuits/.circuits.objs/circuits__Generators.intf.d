lib/circuits/generators.mli: Cnf Netlist Rng Sequential

lib/circuits/arith.ml: Array List Netlist

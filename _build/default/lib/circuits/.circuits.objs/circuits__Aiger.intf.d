lib/circuits/aiger.mli: Netlist

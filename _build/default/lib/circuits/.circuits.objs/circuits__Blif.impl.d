lib/circuits/blif.ml: Array Buffer Fun Hashtbl List Netlist Printf String

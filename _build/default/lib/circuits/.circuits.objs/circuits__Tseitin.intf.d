lib/circuits/tseitin.mli: Cnf Netlist Rng

lib/circuits/generators.ml: Arith Array List Netlist Printf Rng Sequential Tseitin

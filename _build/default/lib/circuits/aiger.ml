exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Netlist -> AIG                                                      *)

type aig = {
  mutable next_var : int;
  mutable ands : (int * int * int) list; (* reversed: lhs, rhs0, rhs1 *)
}

let aig_not l = l lxor 1

let aig_and g a b =
  if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else if a = b then a
  else if a = aig_not b then 0
  else begin
    let v = g.next_var in
    g.next_var <- v + 1;
    let lhs = 2 * v in
    g.ands <- (lhs, max a b, min a b) :: g.ands;
    lhs
  end

let aig_or g a b = aig_not (aig_and g (aig_not a) (aig_not b))

let aig_xor g a b =
  aig_not (aig_and g (aig_not (aig_and g a (aig_not b)))
             (aig_not (aig_and g (aig_not a) b)))

let aig_mux g s a b = aig_or g (aig_and g s a) (aig_and g (aig_not s) b)

let to_string (nl : Netlist.t) =
  let num_inputs = nl.Netlist.num_inputs in
  let g = { next_var = num_inputs + 1; ands = [] } in
  let input_lit = Array.init num_inputs (fun k -> 2 * (k + 1)) in
  let lit = Array.make (Array.length nl.Netlist.nodes) 0 in
  Array.iteri
    (fun i node ->
      lit.(i) <-
        (match node with
        | Netlist.Input k -> input_lit.(k)
        | Netlist.Const b -> if b then 1 else 0
        | Netlist.Not a -> aig_not lit.(a)
        | Netlist.And (a, b) -> aig_and g lit.(a) lit.(b)
        | Netlist.Or (a, b) -> aig_or g lit.(a) lit.(b)
        | Netlist.Xor (a, b) -> aig_xor g lit.(a) lit.(b)
        | Netlist.Mux (s, a, b) -> aig_mux g lit.(s) lit.(a) lit.(b)))
    nl.Netlist.nodes;
  let ands = List.rev g.ands in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "aag %d %d 0 %d %d\n" (g.next_var - 1) num_inputs
    (Array.length nl.Netlist.outputs)
    (List.length ands);
  Array.iter (fun l -> Printf.bprintf buf "%d\n" l) input_lit;
  Array.iter (fun o -> Printf.bprintf buf "%d\n" lit.(o)) nl.Netlist.outputs;
  List.iter (fun (l, a, b) -> Printf.bprintf buf "%d %d %d\n" l a b) ands;
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  output_string oc (to_string nl);
  close_out oc

(* ------------------------------------------------------------------ *)
(* AIG -> Netlist                                                      *)

let of_string text =
  let module B = Netlist.Builder in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> 'c')
  in
  let ints line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some i -> i
           | None -> fail "bad integer %S" s)
  in
  match lines with
  | [] -> fail "empty file"
  | header :: rest -> begin
      let m, i, l, o, a =
        match String.split_on_char ' ' header |> List.filter (fun s -> s <> "") with
        | [ "aag"; m; i; l; o; a ] -> begin
            try
              ( int_of_string m, int_of_string i, int_of_string l, int_of_string o,
                int_of_string a )
            with _ -> fail "bad header %S" header
          end
        | "aig" :: _ -> fail "binary aig format not supported; use aag"
        | _ -> fail "bad header %S" header
      in
      if l <> 0 then fail "latches not supported (unroll first)";
      if List.length rest < i + o + a then fail "truncated file";
      let take n lst =
        let rec go n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> fail "truncated file"
          | x :: rest -> go (n - 1) (x :: acc) rest
        in
        go n [] lst
      in
      let input_lines, rest = take i rest in
      let output_lines, rest = take o rest in
      let and_lines, _symbols = take a rest in
      let b = B.create "aiger" in
      (* literal -> signal table indexed by variable *)
      let signal = Array.make (m + 1) (-1) in
      let const_false = B.const b false in
      signal.(0) <- const_false;
      let inputs =
        List.map
          (fun line ->
            match ints line with
            | [ lit ] ->
                if lit land 1 <> 0 || lit = 0 then fail "bad input literal %d" lit;
                lit / 2
            | _ -> fail "bad input line %S" line)
          input_lines
      in
      List.iter
        (fun v ->
          if v > m then fail "input variable %d exceeds M" v;
          if signal.(v) >= 0 then fail "duplicate definition of variable %d" v;
          signal.(v) <- B.input b)
        inputs;
      let parsed_ands =
        List.map
          (fun line ->
            match ints line with
            | [ lhs; r0; r1 ] ->
                if lhs land 1 <> 0 then fail "and lhs %d is negated" lhs;
                (lhs / 2, r0, r1)
            | _ -> fail "bad and line %S" line)
          and_lines
      in
      let lit_signal lit =
        let v = lit / 2 in
        if v > m then fail "literal %d exceeds M" lit;
        let s = signal.(v) in
        if s < 0 then raise Not_found;
        if lit land 1 = 0 then s else B.not_ b s
      in
      (* ands may reference forward in pathological files: multi-pass *)
      let remaining = ref parsed_ands in
      let progress = ref true in
      while !remaining <> [] && !progress do
        progress := false;
        let next = ref [] in
        List.iter
          (fun (v, r0, r1) ->
            match (lit_signal r0, lit_signal r1) with
            | s0, s1 ->
                if signal.(v) >= 0 then fail "duplicate definition of variable %d" v;
                signal.(v) <- B.and_ b s0 s1;
                progress := true
            | exception Not_found -> next := (v, r0, r1) :: !next)
          !remaining;
        remaining := List.rev !next
      done;
      if !remaining <> [] then fail "cyclic or undefined and gates";
      List.iter
        (fun line ->
          match ints line with
          | [ lit ] -> begin
              match lit_signal lit with
              | s -> B.output b s
              | exception Not_found -> fail "undefined output literal %d" lit
            end
          | _ -> fail "bad output line %S" line)
        output_lines;
      B.finish b
    end

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  of_string content

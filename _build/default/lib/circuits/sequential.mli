(** Sequential circuits and bounded-model-checking unrolling.

    A sequential circuit is described by its combinational step
    netlist under the convention:

    - netlist inputs: current state bits (first [state_width] inputs),
      then the external inputs of one step;
    - netlist outputs: next state bits (first [state_width] outputs),
      then the observable outputs of one step.

    {!unroll} composes [steps] copies of the step netlist into one
    combinational netlist whose primary inputs are the initial state
    followed by each step's external inputs — exactly the bit-blasted
    BMC construction behind the paper's "s1196a_7_4"-style benchmarks
    (an ISCAS89 circuit unrolled 7 times with properties over 4
    steps, etc.). *)

type t = {
  name : string;
  step : Netlist.t;
  state_width : int;
  input_width : int;  (** external inputs per step *)
  observable_width : int;
}

val create : name:string -> state_width:int -> input_width:int -> Netlist.t -> t
(** Validates the in/out arity convention. *)

val instantiate :
  Netlist.Builder.t -> Netlist.t -> int array -> int array
(** Splice a copy of a netlist into a builder, wiring its inputs to
    the given signals; returns the signals of its outputs. Exposed
    because benchmark generators use it to compose circuits. *)

val unroll : ?observe_last_only:bool -> steps:int -> t -> Netlist.t
(** Combinational unrolling. Outputs are every step's observables (or
    only the final step's when [observe_last_only], default) followed
    by the final state bits. *)

type t = {
  name : string;
  step : Netlist.t;
  state_width : int;
  input_width : int;
  observable_width : int;
}

module B = Netlist.Builder

let create ~name ~state_width ~input_width step =
  if step.Netlist.num_inputs <> state_width + input_width then
    invalid_arg "Sequential.create: step inputs must be state + inputs";
  let outs = Array.length step.Netlist.outputs in
  if outs < state_width then
    invalid_arg "Sequential.create: step must output the next state";
  { name; step; state_width; input_width; observable_width = outs - state_width }

let instantiate b (nl : Netlist.t) inputs =
  if Array.length inputs <> nl.Netlist.num_inputs then
    invalid_arg "Sequential.instantiate: input arity mismatch";
  let signal = Array.make (Array.length nl.Netlist.nodes) (-1) in
  Array.iteri
    (fun i node ->
      signal.(i) <-
        (match node with
        | Netlist.Input k -> inputs.(k)
        | Netlist.Const v -> B.const b v
        | Netlist.Not a -> B.not_ b signal.(a)
        | Netlist.And (x, y) -> B.and_ b signal.(x) signal.(y)
        | Netlist.Or (x, y) -> B.or_ b signal.(x) signal.(y)
        | Netlist.Xor (x, y) -> B.xor_ b signal.(x) signal.(y)
        | Netlist.Mux (s, x, y) -> B.mux b ~sel:signal.(s) signal.(x) signal.(y)))
    nl.Netlist.nodes;
  Array.map (fun o -> signal.(o)) nl.Netlist.outputs

let unroll ?(observe_last_only = true) ~steps t =
  if steps < 1 then invalid_arg "Sequential.unroll: steps < 1";
  let b = B.create (Printf.sprintf "%s_unrolled_%d" t.name steps) in
  let state = ref (Array.init t.state_width (fun _ -> B.input b)) in
  let observables = ref [] in
  for step = 1 to steps do
    let ext = Array.init t.input_width (fun _ -> B.input b) in
    let outs = instantiate b t.step (Array.append !state ext) in
    state := Array.sub outs 0 t.state_width;
    let obs = Array.sub outs t.state_width t.observable_width in
    if (not observe_last_only) || step = steps then
      observables := obs :: !observables
  done;
  List.iter (Array.iter (B.output b)) (List.rev !observables);
  Array.iter (B.output b) !state;
  B.finish b

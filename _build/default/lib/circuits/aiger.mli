(** AIGER (ASCII [aag]) reader/writer — the standard exchange format
    for And-Inverter Graphs used by model checkers and the HWMCC
    benchmark suites, from which the paper's BMC-style instances
    descend.

    An AIG literal is [2v] (variable v) or [2v + 1] (its negation);
    literal 0 is constant false, 1 constant true. Only combinational
    AIGs are supported here ([L = 0]); unroll sequential designs
    first. *)

exception Parse_error of string

val to_string : Netlist.t -> string
(** Converts the netlist to an AIG (OR/XOR/MUX are decomposed into
    AND/NOT via De Morgan) and renders it in [aag] format. *)

val of_string : string -> Netlist.t
(** Parses an [aag] file with no latches.
    @raise Parse_error otherwise. *)

val write_file : string -> Netlist.t -> unit
val parse_file : string -> Netlist.t

type node =
  | Input of int
  | Const of bool
  | Not of int
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Mux of int * int * int

type t = {
  name : string;
  nodes : node array;
  outputs : int array;
  num_inputs : int;
}

let eval_all t inputs =
  if Array.length inputs <> t.num_inputs then
    invalid_arg
      (Printf.sprintf "Netlist.simulate(%s): expected %d inputs, got %d" t.name
         t.num_inputs (Array.length inputs));
  let values = Array.make (Array.length t.nodes) false in
  Array.iteri
    (fun i node ->
      values.(i) <-
        (match node with
        | Input k -> inputs.(k)
        | Const b -> b
        | Not a -> not values.(a)
        | And (a, b) -> values.(a) && values.(b)
        | Or (a, b) -> values.(a) || values.(b)
        | Xor (a, b) -> values.(a) <> values.(b)
        | Mux (s, a, b) -> if values.(s) then values.(a) else values.(b)))
    t.nodes;
  values

let simulate t inputs =
  let values = eval_all t inputs in
  Array.map (fun o -> values.(o)) t.outputs

let eval_node t inputs i = (eval_all t inputs).(i)

let num_gates t =
  Array.fold_left
    (fun acc n -> match n with Input _ | Const _ -> acc | _ -> acc + 1)
    0 t.nodes

module Builder = struct
  type t = {
    bname : string;
    mutable bnodes : node list; (* reversed *)
    mutable size : int;
    mutable boutputs : int list; (* reversed *)
    mutable inputs : int;
  }

  let create name = { bname = name; bnodes = []; size = 0; boutputs = []; inputs = 0 }

  let add b node =
    b.bnodes <- node :: b.bnodes;
    b.size <- b.size + 1;
    b.size - 1

  let check b s =
    if s < 0 || s >= b.size then invalid_arg "Netlist.Builder: dangling signal"

  let input b =
    let k = b.inputs in
    b.inputs <- k + 1;
    add b (Input k)

  let const b v = add b (Const v)

  let not_ b a =
    check b a;
    add b (Not a)

  let and_ b x y =
    check b x;
    check b y;
    add b (And (x, y))

  let or_ b x y =
    check b x;
    check b y;
    add b (Or (x, y))

  let xor_ b x y =
    check b x;
    check b y;
    add b (Xor (x, y))

  let mux b ~sel x y =
    check b sel;
    check b x;
    check b y;
    add b (Mux (sel, x, y))

  let nand_ b x y = not_ b (and_ b x y)
  let xnor_ b x y = not_ b (xor_ b x y)

  let fold_balanced op b = function
    | [] -> invalid_arg "Netlist.Builder: empty signal list"
    | first :: rest -> List.fold_left (op b) first rest

  let and_list b = function [] -> const b true | l -> fold_balanced and_ b l
  let or_list b = function [] -> const b false | l -> fold_balanced or_ b l
  let xor_list b = function [] -> const b false | l -> fold_balanced xor_ b l

  let output b s =
    check b s;
    b.boutputs <- s :: b.boutputs

  let finish b =
    {
      name = b.bname;
      nodes = Array.of_list (List.rev b.bnodes);
      outputs = Array.of_list (List.rev b.boutputs);
      num_inputs = b.inputs;
    }
end

module B = Netlist.Builder

let lfsr ~name ~width ~taps =
  if width < 2 then invalid_arg "Generators.lfsr: width < 2";
  List.iter
    (fun t -> if t < 0 || t >= width then invalid_arg "Generators.lfsr: bad tap")
    taps;
  let b = B.create name in
  let state = Array.init width (fun _ -> B.input b) in
  let ext = B.input b in
  (* feedback = xor of taps xor external input *)
  let feedback =
    B.xor_ b ext (B.xor_list b (List.map (fun t -> state.(t)) taps))
  in
  (* next state: shift left, feedback enters at bit 0 *)
  let next = Array.init width (fun i -> if i = 0 then feedback else state.(i - 1)) in
  Array.iter (B.output b) next;
  (* nonlinear observables: AND-mixed parities of the two halves *)
  let half = width / 2 in
  let low = Array.to_list (Array.sub state 0 half) in
  let high = Array.to_list (Array.sub state half (width - half)) in
  B.output b (B.and_ b (B.xor_list b low) (B.or_list b high));
  B.output b (B.xor_ b (B.and_list b (Array.to_list (Array.sub state 0 (min 3 width)))) (B.xor_list b high));
  let step = B.finish b in
  Sequential.create ~name ~state_width:width ~input_width:1 step

let nonlinear_fsm ~rng ~name ~width =
  if width < 2 then invalid_arg "Generators.nonlinear_fsm: width < 2";
  let b = B.create name in
  let state = Array.init width (fun _ -> B.input b) in
  let ext = B.input b in
  let pick () = state.(Rng.int rng width) in
  let next =
    Array.init width (fun i ->
        let a = pick () and c = pick () and d = pick () in
        match Rng.int rng 3 with
        | 0 -> B.xor_ b state.(i) (B.and_ b a c)
        | 1 -> B.mux b ~sel:a c (B.xor_ b d ext)
        | _ -> B.xor_ b (B.or_ b a c) (B.and_ b d state.((i + 1) mod width)))
  in
  Array.iter (B.output b) next;
  B.output b (B.xor_list b (Array.to_list state));
  let step = B.finish b in
  Sequential.create ~name ~state_width:width ~input_width:1 step

let random_dag ~rng ~name ~num_inputs ~num_gates ~num_outputs =
  if num_inputs < 1 then invalid_arg "Generators.random_dag: no inputs";
  let b = B.create name in
  let signals = ref (List.init num_inputs (fun _ -> B.input b)) in
  let count = ref num_inputs in
  let pick () =
    (* bias towards recent nodes so the circuit gains depth *)
    let l = !signals in
    let n = !count in
    let idx = min (n - 1) (Rng.int rng ((n / 2) + 1)) in
    List.nth l idx
  in
  for _ = 1 to num_gates do
    let x = pick () and y = pick () in
    let g =
      match Rng.int rng 4 with
      | 0 -> B.and_ b x y
      | 1 -> B.or_ b x y
      | 2 -> B.xor_ b x y
      | _ -> B.not_ b x
    in
    signals := g :: !signals;
    incr count
  done;
  let arr = Array.of_list !signals in
  for _ = 1 to num_outputs do
    B.output b arr.(Rng.int rng (min (Array.length arr) (num_gates + 1)))
  done;
  B.finish b

let squaring_equivalence ~bits ~residue ~modulus_bits =
  if modulus_bits > 2 * bits then
    invalid_arg "Generators.squaring_equivalence: modulus too wide";
  let b = B.create (Printf.sprintf "squaring%d" bits) in
  let x = Arith.input_word b ~width:bits in
  let square = Arith.squarer b x in
  let low = List.filteri (fun i _ -> i < modulus_bits) square in
  let target = Arith.constant b ~width:modulus_bits residue in
  B.output b (Arith.equal b low target);
  B.finish b

let multiplier_equivalence ~bits =
  let b = B.create (Printf.sprintf "multiplier%d" bits) in
  let x = Arith.input_word b ~width:bits in
  let y = Arith.input_word b ~width:bits in
  let z = Arith.input_word b ~width:(2 * bits) in
  let product = Arith.multiplier b x y in
  B.output b (Arith.equal b product z);
  B.finish b

(* A small bit-vector ALU whose behaviour is selected by control bits:
   each output bit goes through a mux tree driven by the controls. *)
let sketch ~rng ~name ~control_bits ~data_bits ~num_tests =
  if control_bits < 1 then invalid_arg "Generators.sketch: no control bits";
  let b = B.create name in
  let controls = List.init control_bits (fun _ -> B.input b) in
  let carr = Array.of_list controls in
  (* the hidden specification: a fixed random affine-ish function;
     rotation limited to the sketch's reach so the instance is
     realizable (satisfiable) by construction *)
  let spec_mask = Rng.int rng (1 lsl data_bits) in
  let spec_rot = Rng.int rng 2 in
  let spec x =
    let rotated = Array.init data_bits (fun i -> x.((i + spec_rot) mod data_bits)) in
    Array.mapi
      (fun i bit -> if spec_mask land (1 lsl i) <> 0 then not bit else bit)
      rotated
  in
  (* the sketch: per output bit, a mux tree over candidate functions of
     the test inputs, steered by control bits. The selector wiring is
     fixed once — the same sketch circuit is checked on every test. *)
  let selectors =
    Array.init data_bits (fun _ ->
        (carr.(Rng.int rng control_bits), carr.(Rng.int rng control_bits)))
  in
  let sketch_output x_sigs =
    List.init data_bits (fun i ->
        let cand1 = x_sigs.(i) in
        let cand2 = B.not_ b x_sigs.(i) in
        let cand3 = x_sigs.((i + 1) mod data_bits) in
        let cand4 = B.not_ b x_sigs.((i + 1) mod data_bits) in
        let s0, s1 = selectors.(i) in
        let m0 = B.mux b ~sel:s0 cand1 cand2 in
        let m1 = B.mux b ~sel:s0 cand3 cand4 in
        B.mux b ~sel:s1 m0 m1)
  in
  let checks =
    List.init num_tests (fun _ ->
        let bits = Array.init data_bits (fun _ -> Rng.bool rng) in
        let expected = spec bits in
        let x_sigs = Array.map (fun v -> B.const b v) bits in
        let out = sketch_output x_sigs in
        let want =
          Array.to_list expected |> List.map (fun v -> B.const b v)
        in
        Arith.equal b out want)
  in
  B.output b (B.and_list b checks);
  B.finish b

let case_formula ~rng ~num_inputs ~num_gates =
  let name = Printf.sprintf "case_%d_%d" num_inputs num_gates in
  let nl =
    random_dag ~rng ~name ~num_inputs ~num_gates
      ~num_outputs:(max 2 (num_inputs / 2))
  in
  (Tseitin.with_output_parity ~rng nl).Tseitin.formula

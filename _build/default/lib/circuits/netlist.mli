(** Gate-level combinational netlists.

    This is the circuit substrate standing in for the paper's
    benchmark sources: bit-blasted BMC problems, ISCAS89 circuits with
    parity conditions, and program-synthesis sketches are all built as
    netlists here and Tseitin-encoded to CNF (see {!Tseitin}), which
    by construction yields formulas whose primary inputs form an
    independent support — the property UniGen exploits.

    Nodes are stored in topological order: a gate may only reference
    earlier nodes, so simulation is a single left-to-right pass. *)

type node =
  | Input of int  (** primary input, by input index *)
  | Const of bool
  | Not of int
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Mux of int * int * int  (** [Mux (sel, a, b)] = if sel then a else b *)

type t = private {
  name : string;
  nodes : node array;
  outputs : int array;  (** node indices *)
  num_inputs : int;
}

val simulate : t -> bool array -> bool array
(** Evaluate the outputs for the given input vector.
    @raise Invalid_argument on an input vector of the wrong length. *)

val eval_node : t -> bool array -> int -> bool
(** Value of an individual node under the given inputs. *)

val num_gates : t -> int
(** Number of non-input, non-constant nodes. *)

(** Imperative netlist construction. Signals are node indices. *)
module Builder : sig
  type netlist := t
  type t

  val create : string -> t
  val input : t -> int
  (** Allocate the next primary input; returns its signal. *)

  val const : t -> bool -> int
  val not_ : t -> int -> int
  val and_ : t -> int -> int -> int
  val or_ : t -> int -> int -> int
  val xor_ : t -> int -> int -> int
  val mux : t -> sel:int -> int -> int -> int
  val nand_ : t -> int -> int -> int
  val xnor_ : t -> int -> int -> int

  val and_list : t -> int list -> int
  (** Conjunction of a signal list (true for the empty list). *)

  val or_list : t -> int list -> int
  val xor_list : t -> int list -> int

  val output : t -> int -> unit
  (** Mark a signal as a circuit output, in call order. *)

  val finish : t -> netlist
end

(** Tseitin encoding of netlists to CNF.

    Every node gets a CNF variable; gate semantics become 2–4 clauses
    each. The resulting formula's sampling set is the set of primary
    input variables: as the paper observes for Tseitin-encoded
    formulas, "the variables introduced by the encoding form a
    dependent support", i.e. the inputs are an independent support. *)

type encoded = {
  formula : Cnf.Formula.t;
      (** sampling set = input variables; outputs asserted true unless
          overridden *)
  input_vars : int array;  (** CNF variable of each primary input *)
  output_vars : int array;  (** CNF variable of each output *)
  node_vars : int array;  (** CNF variable of every node *)
}

val encode : ?assert_outputs:bool -> Netlist.t -> encoded
(** [assert_outputs] (default [true]) adds a unit clause per output,
    constraining the circuit to input vectors that drive every output
    to 1 — the standard shape of a CRV constraint block or a BMC
    property. With [false] the formula only defines the circuit; add
    custom constraints on [output_vars] afterwards. *)

val with_output_parity :
  rng:Rng.t -> ?num_conditions:int -> Netlist.t -> encoded
(** ISCAS89-style instance construction from the paper's experimental
    section: encode the circuit without asserting outputs, then add
    parity (XOR) conditions on randomly chosen subsets of the outputs.
    [num_conditions] defaults to half the output count (at least 1). *)

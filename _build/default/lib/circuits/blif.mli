(** BLIF (Berkeley Logic Interchange Format) reader/writer for
    combinational netlists — the lingua franca of academic logic
    synthesis tools (SIS, ABC, mockturtle), so benchmark circuits can
    be exchanged with a standard EDA flow.

    Supported subset: [.model], [.inputs], [.outputs], single-output
    [.names] with 1-covers (the common output of ABC's [write_blif]),
    and [.end]. Latches and subcircuits are not supported — unroll
    sequential designs first (see {!Sequential.unroll}). *)

exception Parse_error of string

val to_string : Netlist.t -> string
(** Gates are emitted as 2-input [.names] covers; inputs are named
    [i0, i1, ...], internal nodes [n<k>], outputs aliased [o0, ...]. *)

val of_string : string -> Netlist.t
(** Parses the supported subset. [.names] covers may have up to 12
    inputs; both 1-covers and 0-covers are accepted, ['-'] means
    don't-care.
    @raise Parse_error on malformed or unsupported input. *)

val write_file : string -> Netlist.t -> unit
val parse_file : string -> Netlist.t

type encoded = {
  formula : Cnf.Formula.t;
  input_vars : int array;
  output_vars : int array;
  node_vars : int array;
}

let encode ?(assert_outputs = true) (nl : Netlist.t) =
  let n = Array.length nl.Netlist.nodes in
  let node_vars = Array.init n (fun i -> i + 1) in
  let clauses = ref [] in
  let emit lits = clauses := Cnf.Clause.of_dimacs lits :: !clauses in
  Array.iteri
    (fun i node ->
      let g = node_vars.(i) in
      match node with
      | Netlist.Input _ -> ()
      | Netlist.Const b -> emit [ (if b then g else -g) ]
      | Netlist.Not a ->
          let a = node_vars.(a) in
          emit [ -g; -a ];
          emit [ g; a ]
      | Netlist.And (a, b) ->
          let a = node_vars.(a) and b = node_vars.(b) in
          emit [ -g; a ];
          emit [ -g; b ];
          emit [ g; -a; -b ]
      | Netlist.Or (a, b) ->
          let a = node_vars.(a) and b = node_vars.(b) in
          emit [ g; -a ];
          emit [ g; -b ];
          emit [ -g; a; b ]
      | Netlist.Xor (a, b) ->
          let a = node_vars.(a) and b = node_vars.(b) in
          emit [ -g; a; b ];
          emit [ -g; -a; -b ];
          emit [ g; -a; b ];
          emit [ g; a; -b ]
      | Netlist.Mux (s, a, b) ->
          let s = node_vars.(s) and a = node_vars.(a) and b = node_vars.(b) in
          (* g = s ? a : b *)
          emit [ -g; -s; a ];
          emit [ g; -s; -a ];
          emit [ -g; s; b ];
          emit [ g; s; -b ])
    nl.Netlist.nodes;
  let input_vars =
    Array.to_list nl.Netlist.nodes
    |> List.mapi (fun i node ->
           match node with Netlist.Input k -> Some (k, node_vars.(i)) | _ -> None)
    |> List.filter_map Fun.id
    |> List.sort compare
    |> List.map snd
    |> Array.of_list
  in
  let output_vars = Array.map (fun o -> node_vars.(o)) nl.Netlist.outputs in
  if assert_outputs then
    Array.iter (fun v -> emit [ v ]) output_vars;
  let formula =
    Cnf.Formula.create
      ~sampling_set:(Array.to_list input_vars)
      ~num_vars:n (List.rev !clauses)
  in
  { formula; input_vars; output_vars; node_vars }

let with_output_parity ~rng ?num_conditions (nl : Netlist.t) =
  let enc = encode ~assert_outputs:false nl in
  let outs = enc.output_vars in
  if Array.length outs = 0 then invalid_arg "with_output_parity: no outputs";
  let k =
    match num_conditions with
    | Some k -> k
    | None -> max 1 (Array.length outs / 2)
  in
  let xors =
    List.init k (fun _ ->
        let chosen =
          Array.to_list outs |> List.filter (fun _ -> Rng.bool rng)
        in
        (* guarantee non-trivial conditions *)
        let chosen =
          if chosen = [] then [ outs.(Rng.int rng (Array.length outs)) ]
          else chosen
        in
        Cnf.Xor_clause.make chosen (Rng.bool rng))
  in
  { enc with formula = Cnf.Formula.add_xors enc.formula xors }

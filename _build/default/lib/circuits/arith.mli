(** Bit-vector arithmetic circuit constructors, used to build the
    "Squaring"-family benchmarks (combinational equivalence /
    multiplier circuits) of the paper's experimental suite.

    All word operands are little-endian signal lists (bit 0 first)
    inside a {!Netlist.Builder}. *)

type word = int list
(** Little-endian list of builder signals. *)

val constant : Netlist.Builder.t -> width:int -> int -> word
(** [constant b ~width v] builds the [width]-bit constant [v]. *)

val input_word : Netlist.Builder.t -> width:int -> word
(** Allocate [width] fresh primary inputs. *)

val ripple_adder : Netlist.Builder.t -> ?carry_in:int -> word -> word -> word
(** Sum of two equal-width words, one bit wider (carry out kept). *)

val multiplier : Netlist.Builder.t -> word -> word -> word
(** Array multiplier; result has width |x| + |y|. *)

val squarer : Netlist.Builder.t -> word -> word
(** [squarer b x] = multiplier b x x, width 2|x|. *)

val equal : Netlist.Builder.t -> word -> word -> int
(** Single signal: words are bit-for-bit equal (widths must match). *)

val less_than : Netlist.Builder.t -> word -> word -> int
(** Unsigned comparison x < y (equal widths). *)

val parity : Netlist.Builder.t -> word -> int
(** XOR of all bits. *)

val to_int : bool array -> int
(** Interpret a little-endian simulation output as an integer. *)

val of_int : width:int -> int -> bool array
(** Little-endian bit vector of an integer. *)

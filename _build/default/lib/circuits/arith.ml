type word = int list

module B = Netlist.Builder

let constant b ~width v =
  List.init width (fun i -> B.const b (v land (1 lsl i) <> 0))

let input_word b ~width = List.init width (fun _ -> B.input b)

let full_adder b x y c =
  let xy = B.xor_ b x y in
  let sum = B.xor_ b xy c in
  let carry = B.or_ b (B.and_ b x y) (B.and_ b xy c) in
  (sum, carry)

let ripple_adder b ?carry_in x y =
  if List.length x <> List.length y then
    invalid_arg "Arith.ripple_adder: width mismatch";
  let c0 = match carry_in with Some c -> c | None -> B.const b false in
  let rec go acc c = function
    | [], [] -> List.rev (c :: acc)
    | xb :: xs, yb :: ys ->
        let sum, carry = full_adder b xb yb c in
        go (sum :: acc) carry (xs, ys)
    | _ -> assert false
  in
  go [] c0 (x, y)

(* Classic array multiplier: sum shifted partial products. *)
let multiplier b x y =
  let nx = List.length x and ny = List.length y in
  let width = nx + ny in
  let pad w = w @ List.init (width - List.length w) (fun _ -> B.const b false) in
  let shifted_product i yb =
    let row = List.map (fun xb -> B.and_ b xb yb) x in
    pad (List.init i (fun _ -> B.const b false) @ row)
  in
  let partials = List.mapi shifted_product y in
  match partials with
  | [] -> constant b ~width 0
  | first :: rest ->
      List.fold_left
        (fun acc p ->
          (* drop the adder's carry-out to stay at [width] bits; the
             true product always fits in nx + ny bits, so nothing is
             lost *)
          let s = ripple_adder b acc p in
          List.filteri (fun i _ -> i < width) s)
        first rest

let squarer b x = multiplier b x x

let equal b x y =
  if List.length x <> List.length y then invalid_arg "Arith.equal: width mismatch";
  B.and_list b (List.map2 (fun xb yb -> B.xnor_ b xb yb) x y)

let less_than b x y =
  if List.length x <> List.length y then
    invalid_arg "Arith.less_than: width mismatch";
  (* scan from least to most significant:
     lt_i = (¬x_i ∧ y_i) ∨ (x_i = y_i ∧ lt_{i-1}) *)
  List.fold_left2
    (fun lt xb yb ->
      let here = B.and_ b (B.not_ b xb) yb in
      let same = B.xnor_ b xb yb in
      B.or_ b here (B.and_ b same lt))
    (B.const b false) x y

let parity b x = B.xor_list b x

let to_int bits =
  Array.to_list bits
  |> List.mapi (fun i v -> if v then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let of_int ~width v = Array.init width (fun i -> v land (1 lsl i) <> 0)

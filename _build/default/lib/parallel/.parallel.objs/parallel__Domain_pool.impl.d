lib/parallel/domain_pool.ml: Array Atomic Condition Domain Fun Mutex Printexc

lib/parallel/domain_pool.mli:

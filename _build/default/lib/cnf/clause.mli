(** Disjunctive clauses over {!Lit.t}. *)

type t = Lit.t array
(** A clause is an array of literals, interpreted as their disjunction.
    The empty clause is unsatisfiable. *)

val of_list : Lit.t list -> t
val of_dimacs : int list -> t
val to_dimacs : t -> int list

val normalize : t -> t option
(** Sort, remove duplicate literals; [None] if the clause is a
    tautology (contains both polarities of some variable). *)

val is_tautology : t -> bool

val eval : (int -> bool) -> t -> bool
(** [eval value c] evaluates [c] under the total assignment [value]
    (mapping variable to truth value). *)

val vars : t -> int list
(** Variables occurring in the clause, deduplicated, ascending. *)

val max_var : t -> int
(** 0 for the empty clause. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

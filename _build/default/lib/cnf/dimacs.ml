exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokens_of_line line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref (-1) in
  let declared_clauses = ref (-1) in
  let clauses = ref [] in
  let xors = ref [] in
  let sampling = ref [] in
  let have_sampling = ref false in
  let parse_ints what toks =
    List.map
      (fun s ->
        match int_of_string_opt s with
        | Some i -> i
        | None -> fail "bad integer %S in %s line" s what)
      toks
  in
  let add_clause toks =
    let ints = parse_ints "clause" toks in
    match List.rev ints with
    | 0 :: rev_lits ->
        let lits = List.rev_map Lit.of_dimacs rev_lits in
        clauses := Array.of_list lits :: !clauses
    | _ -> fail "clause line not terminated by 0"
  in
  let add_xor toks =
    let ints = parse_ints "xor" toks in
    match List.rev ints with
    | 0 :: rev_lits ->
        (* Each negative literal flips the right-hand side once:
           ¬a ⊕ b = c  ⇔  a ⊕ b = ¬c. *)
        let vars = List.rev_map abs rev_lits in
        let flips = List.length (List.filter (fun i -> i < 0) rev_lits) in
        let rhs = flips mod 2 = 0 in
        xors := Xor_clause.make vars rhs :: !xors
    | _ -> fail "xor line not terminated by 0"
  in
  let add_sampling toks =
    let ints = parse_ints "c ind" toks in
    match List.rev ints with
    | 0 :: rev_vars ->
        have_sampling := true;
        sampling := List.rev_append rev_vars !sampling
    | [] -> ()
    | _ -> fail "c ind line not terminated by 0"
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" then ()
      else
        match tokens_of_line line with
        | [] -> ()
        | "c" :: "ind" :: rest -> add_sampling rest
        | "c" :: _ -> ()
        | "p" :: "cnf" :: nv :: nc :: _ ->
            num_vars := (try int_of_string nv with _ -> fail "bad var count %S" nv);
            declared_clauses := (try int_of_string nc with _ -> fail "bad clause count %S" nc)
        | "p" :: _ -> fail "unsupported problem line %S" line
        | "x" :: rest -> add_xor rest
        | toks -> add_clause toks)
    lines;
  if !num_vars < 0 then fail "missing p cnf header";
  ignore !declared_clauses;
  let sampling_set = if !have_sampling then Some (List.rev !sampling) else None in
  Formula.create_with_xors ?sampling_set ~num_vars:!num_vars
    (List.rev !clauses) (List.rev !xors)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  try parse_string content
  with Parse_error msg -> raise (Parse_error (path ^ ": " ^ msg))

let to_string (f : Formula.t) =
  let buf = Buffer.create 4096 in
  (* empty XORs with rhs=false are tautologies and have no DIMACS
     rendering; drop them (and count only what is emitted) *)
  let emitted_xors =
    Array.to_list f.xors
    |> List.filter (fun (x : Xor_clause.t) -> Array.length x.vars > 0 || x.rhs)
  in
  Printf.bprintf buf "p cnf %d %d\n" f.num_vars
    (Array.length f.clauses + List.length emitted_xors);
  (match f.sampling_set with
  | None -> ()
  | Some s ->
      Buffer.add_string buf "c ind";
      Array.iter (fun v -> Printf.bprintf buf " %d" v) s;
      Buffer.add_string buf " 0\n");
  Array.iter
    (fun c ->
      Array.iter (fun l -> Printf.bprintf buf "%d " (Lit.to_dimacs l)) c;
      Buffer.add_string buf "0\n")
    f.clauses;
  List.iter
    (fun (x : Xor_clause.t) ->
      Buffer.add_char buf 'x';
      (* Encode rhs=false by negating the first variable. An emitted
         empty XOR necessarily has rhs=true ("x 0" = unsatisfiable). *)
      Array.iteri
        (fun i v ->
          let signed = if i = 0 && not x.rhs then -v else v in
          Printf.bprintf buf " %d" signed)
        x.vars;
      Buffer.add_string buf " 0\n")
    emitted_xors;
  Buffer.contents buf

let write_file path f =
  let oc = open_out path in
  output_string oc (to_string f);
  close_out oc

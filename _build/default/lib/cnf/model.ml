type t = {
  vars : int array; (* sorted ascending *)
  values : bool array; (* aligned with [vars] *)
  contiguous : bool; (* vars = [|1; 2; ...; n|], enabling O(1) lookup *)
}

let make n value =
  {
    vars = Array.init n (fun i -> i + 1);
    values = Array.init n (fun i -> value (i + 1));
    contiguous = true;
  }

let of_bool_array a =
  {
    vars = Array.init (Array.length a) (fun i -> i + 1);
    values = Array.copy a;
    contiguous = true;
  }

let num_vars t = Array.length t.vars

let find_slot t v =
  let rec search lo hi =
    if lo > hi then raise (Invalid_argument (Printf.sprintf "Model.value: variable %d absent" v))
    else
      let mid = (lo + hi) / 2 in
      if t.vars.(mid) = v then mid
      else if t.vars.(mid) < v then search (mid + 1) hi
      else search lo (mid - 1)
  in
  search 0 (Array.length t.vars - 1)

let value t v =
  if t.contiguous then begin
    if v < 1 || v > Array.length t.values then
      invalid_arg (Printf.sprintf "Model.value: variable %d absent" v);
    t.values.(v - 1)
  end
  else t.values.(find_slot t v)

let restrict t vars =
  let vars = Array.copy vars in
  Array.sort Int.compare vars;
  let values = Array.map (fun v -> value t v) vars in
  let n = Array.length vars in
  let contiguous =
    n > 0 && vars.(0) = 1 && vars.(n - 1) = n
  in
  { vars; values; contiguous }

let key t =
  (* One bit per variable, packed; prefixed by the variable list so
     models over different supports never collide. *)
  let buf = Buffer.create (Array.length t.vars / 8 + 16) in
  Array.iter (fun v -> Buffer.add_string buf (string_of_int v); Buffer.add_char buf ',') t.vars;
  Buffer.add_char buf '|';
  let byte = ref 0 and used = ref 0 in
  Array.iter
    (fun b ->
      byte := (!byte lsl 1) lor (if b then 1 else 0);
      incr used;
      if !used = 8 then begin
        Buffer.add_char buf (Char.chr !byte);
        byte := 0;
        used := 0
      end)
    t.values;
  if !used > 0 then Buffer.add_char buf (Char.chr !byte);
  Buffer.contents buf

let to_dimacs t =
  Array.to_list
    (Array.mapi (fun i v -> if t.values.(i) then v else -v) t.vars)

let satisfies f t = Formula.eval f (fun v -> value t v)

let equal a b = a.vars = b.vars && a.values = b.values

let pp fmt t =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Format.pp_print_int)
    (to_dimacs t)

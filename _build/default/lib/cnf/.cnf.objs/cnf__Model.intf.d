lib/cnf/model.mli: Format Formula

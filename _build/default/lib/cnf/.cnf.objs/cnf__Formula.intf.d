lib/cnf/formula.mli: Clause Format Xor_clause

lib/cnf/clause.ml: Array Bool Format Int List Lit

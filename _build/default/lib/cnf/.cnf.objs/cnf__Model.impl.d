lib/cnf/model.ml: Array Buffer Char Format Formula Int Printf

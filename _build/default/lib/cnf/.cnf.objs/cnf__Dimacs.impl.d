lib/cnf/dimacs.ml: Array Buffer Formula List Lit Printf String Xor_clause

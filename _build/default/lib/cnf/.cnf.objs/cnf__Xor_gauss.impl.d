lib/cnf/xor_gauss.ml: Array Hashtbl Int List Xor_clause

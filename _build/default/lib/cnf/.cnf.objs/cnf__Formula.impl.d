lib/cnf/formula.ml: Array Clause Format Int List Lit Option Printf Xor_clause

lib/cnf/xor_gauss.mli: Result Xor_clause

lib/cnf/xor_clause.ml: Array Bool Format Int List Lit

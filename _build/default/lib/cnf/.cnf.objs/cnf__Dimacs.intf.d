lib/cnf/dimacs.mli: Formula

lib/cnf/xor_clause.mli: Clause Format

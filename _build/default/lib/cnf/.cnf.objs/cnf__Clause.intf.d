lib/cnf/clause.mli: Format Lit

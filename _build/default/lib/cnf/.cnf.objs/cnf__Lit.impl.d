lib/cnf/lit.ml: Format Int

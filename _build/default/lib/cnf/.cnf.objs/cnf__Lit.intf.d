lib/cnf/lit.mli: Format

(** Propositional literals.

    Variables are positive integers [1 .. n] (the DIMACS convention).
    A literal packs a variable and a polarity into a single immediate
    integer so that solver-internal arrays can be indexed by literal:
    positive literal of [v] is [2v], negative is [2v + 1]. *)

type t = private int

val make : int -> bool -> t
(** [make v positive] is the literal over variable [v] (≥ 1). *)

val pos : int -> t
(** Positive literal of a variable. *)

val neg : int -> t
(** Negative literal of a variable. *)

val var : t -> int
(** Underlying variable. *)

val sign : t -> bool
(** [true] iff the literal is positive. *)

val negate : t -> t
(** Flip the polarity. *)

val to_index : t -> int
(** Dense index in [2 .. 2n+1], suitable for watch lists. *)

val of_index : int -> t
(** Inverse of {!to_index}. *)

val of_dimacs : int -> t
(** From a signed DIMACS integer (non-zero). *)

val to_dimacs : t -> int
(** To a signed DIMACS integer. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

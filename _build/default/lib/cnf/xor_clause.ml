type t = { vars : int array; rhs : bool }

let make vars rhs =
  (* x ⊕ x = 0: variables appearing an even number of times vanish. *)
  let sorted = List.sort Int.compare vars in
  let rec cancel acc = function
    | a :: b :: rest when a = b -> cancel acc rest
    | a :: rest -> cancel (a :: acc) rest
    | [] -> List.rev acc
  in
  let kept = cancel [] sorted in
  List.iter (fun v -> if v < 1 then invalid_arg "Xor_clause.make: bad var") kept;
  { vars = Array.of_list kept; rhs }

let eval value x =
  let parity = Array.fold_left (fun p v -> if value v then not p else p) false x.vars in
  Bool.equal parity x.rhs

let arity x = Array.length x.vars
let max_var x = Array.fold_left max 0 x.vars
let equal a b = a.rhs = b.rhs && a.vars = b.vars

(* Expand a short XOR (k ≤ ~6) directly: a clause for every assignment
   of the variables with the wrong parity, negated. *)
let expand_small vars rhs =
  let k = Array.length vars in
  if k = 0 then if rhs then [ [||] ] else []
  else begin
    let clauses = ref [] in
    for mask = 0 to (1 lsl k) - 1 do
      (* mask bit i set = variable i assigned true in the forbidden row *)
      let parity = ref false in
      for i = 0 to k - 1 do
        if mask land (1 lsl i) <> 0 then parity := not !parity
      done;
      if Bool.equal !parity (not rhs) then begin
        (* forbid this row: clause of negations *)
        let lits =
          Array.to_list
            (Array.mapi
               (fun i v ->
                 if mask land (1 lsl i) <> 0 then Lit.neg v else Lit.pos v)
               vars)
        in
        clauses := Array.of_list lits :: !clauses
      end
    done;
    !clauses
  end

let to_cnf ~fresh ?(chunk = 4) x =
  if chunk < 2 then invalid_arg "Xor_clause.to_cnf: chunk must be >= 2";
  let vars = Array.to_list x.vars in
  (* Cut v1 ⊕ ... ⊕ vn = rhs into (v1 ⊕ ... ⊕ v_{c-1} ⊕ t1 = 0),
     (t1 ⊕ v_c ⊕ ... = 0), ..., last chunk carries rhs. *)
  let rec chunks acc current count = function
    | [] -> List.rev (List.rev current :: acc)
    | v :: rest ->
        if count = chunk - 1 && rest <> [] then
          chunks (List.rev (v :: current) :: acc) [] 0 rest
        else chunks acc (v :: current) (count + 1) rest
  in
  match vars with
  | [] -> expand_small [||] x.rhs
  | _ ->
      let groups = chunks [] [] 0 vars in
      let rec link carry acc = function
        | [] -> acc
        | [ last ] ->
            let vs = match carry with None -> last | Some t -> t :: last in
            expand_small (Array.of_list vs) x.rhs @ acc
        | group :: rest ->
            let t = fresh () in
            let vs = match carry with None -> group | Some c -> c :: group in
            (* group ⊕ t = 0  ⇔  t = parity(group) *)
            let cls = expand_small (Array.of_list (t :: vs)) false in
            link (Some t) (cls @ acc) rest
      in
      link None [] groups

let pp fmt x =
  Format.fprintf fmt "(%a = %b)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ⊕ ") Format.pp_print_int)
    (Array.to_list x.vars)
    x.rhs

(** XOR (parity) constraints: [v1 ⊕ v2 ⊕ ... ⊕ vk = rhs].

    These are the constraints produced by the {!Hxor} hash family; the
    SAT solver propagates them natively (the CryptoMiniSAT behaviour
    the paper relies on) rather than through a CNF expansion. *)

type t = { vars : int array; rhs : bool }
(** Variables must be distinct; the constraint asserts that the parity
    (number of true variables mod 2) equals [rhs]. The empty XOR with
    [rhs = true] is unsatisfiable; with [rhs = false] it is trivially
    true. *)

val make : int list -> bool -> t
(** Builds a normalized constraint: duplicate variables cancel in
    pairs (x ⊕ x = 0). *)

val eval : (int -> bool) -> t -> bool
val arity : t -> int
val max_var : t -> int
val equal : t -> t -> bool

val to_cnf : fresh:(unit -> int) -> ?chunk:int -> t -> Clause.t list
(** CNF expansion used by solvers without native XOR support and as a
    test oracle: long XORs are cut into chunks of at most [chunk]
    (default 4) variables linked through fresh variables obtained from
    [fresh], and each small XOR is expanded into its 2^(k-1) clauses.
    The fresh variables are functionally determined by the originals
    (they form a dependent support). *)

val pp : Format.formatter -> t -> unit

type row = { vars : int list; (* sorted ascending *) rhs : bool }

type result = {
  rows : Xor_clause.t list;
  units : (int * bool) list;
  equivalences : (int * int * bool) list;
  rank : int;
}

(* symmetric difference of two sorted variable lists *)
let rec symdiff a b =
  match (a, b) with
  | [], r | r, [] -> r
  | x :: a', y :: b' ->
      if x = y then symdiff a' b'
      else if x < y then x :: symdiff a' b
      else y :: symdiff a b'

let xor_rows r1 r2 = { vars = symdiff r1.vars r2.vars; rhs = r1.rhs <> r2.rhs }

let row_of_clause (x : Xor_clause.t) =
  { vars = List.sort Int.compare (Array.to_list x.vars); rhs = x.rhs }

let clause_of_row r = Xor_clause.make r.vars r.rhs

exception Inconsistent

(* Forward elimination into a pivot table: pivot variable -> row whose
   smallest variable is that pivot. *)
let reduce pivots row =
  let rec go row =
    match row.vars with
    | [] -> row
    | p :: _ -> (
        match Hashtbl.find_opt pivots p with
        | None -> row
        | Some basis -> go (xor_rows row basis))
  in
  go row

let insert pivots row =
  let row = reduce pivots row in
  match row.vars with
  | [] -> if row.rhs then raise Inconsistent
  | p :: _ -> Hashtbl.replace pivots p row

let eliminate clauses =
  let pivots = Hashtbl.create 64 in
  try
    List.iter (fun x -> insert pivots (row_of_clause x)) clauses;
    (* back substitution from the largest pivot down: after forward
       elimination every row's variables exceed its pivot, so cleaning
       a row only consults rows that are already fully reduced *)
    let descending =
      Hashtbl.fold (fun p r acc -> (p, r) :: acc) pivots []
      |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
    in
    let clean_table = Hashtbl.create 64 in
    let cleaned_desc =
      List.map
        (fun (p, r) ->
          let rec clean r =
            match
              List.find_opt (fun v -> v <> p && Hashtbl.mem clean_table v) r.vars
            with
            | None -> r
            | Some v -> clean (xor_rows r (Hashtbl.find clean_table v))
          in
          let r = clean r in
          Hashtbl.replace clean_table p r;
          (p, r))
        descending
    in
    let rows = List.rev_map snd cleaned_desc in
    let units =
      List.filter_map
        (fun r -> match r.vars with [ v ] -> Some (v, r.rhs) | _ -> None)
        rows
    in
    let equivalences =
      List.filter_map
        (fun r -> match r.vars with [ x; y ] -> Some (x, y, r.rhs) | _ -> None)
        rows
    in
    Ok
      {
        rows = List.map clause_of_row rows;
        units;
        equivalences;
        rank = List.length rows;
      }
  with Inconsistent -> Error `Unsat

let solutions_log2 ~num_vars clauses =
  match eliminate clauses with
  | Error `Unsat -> None
  | Ok r -> Some (float_of_int (num_vars - r.rank))

let implies system x =
  match eliminate system with
  | Error `Unsat -> true (* vacuous *)
  | Ok r ->
      let pivots = Hashtbl.create 64 in
      List.iter
        (fun c ->
          let row = row_of_clause c in
          match row.vars with
          | p :: _ -> Hashtbl.replace pivots p row
          | [] -> ())
        r.rows;
      let residue = reduce pivots (row_of_clause x) in
      residue.vars = [] && not residue.rhs

type t = {
  num_vars : int;
  clauses : Clause.t array;
  xors : Xor_clause.t array;
  sampling_set : int array option;
}

let check_var num_vars v =
  if v < 1 || v > num_vars then
    invalid_arg
      (Printf.sprintf "Formula: variable %d out of range 1..%d" v num_vars)

let check_clause num_vars c = Array.iter (fun l -> check_var num_vars (Lit.var l)) c
let check_xor num_vars (x : Xor_clause.t) = Array.iter (check_var num_vars) x.vars

let create_with_xors ?sampling_set ~num_vars clauses xors =
  List.iter (check_clause num_vars) clauses;
  List.iter (check_xor num_vars) xors;
  let sampling_set =
    Option.map
      (fun s ->
        List.iter (check_var num_vars) s;
        Array.of_list (List.sort_uniq Int.compare s))
      sampling_set
  in
  {
    num_vars;
    clauses = Array.of_list clauses;
    xors = Array.of_list xors;
    sampling_set;
  }

let create ?sampling_set ~num_vars clauses =
  create_with_xors ?sampling_set ~num_vars clauses []

let add_clauses t clauses =
  List.iter (check_clause t.num_vars) clauses;
  { t with clauses = Array.append t.clauses (Array.of_list clauses) }

let add_xors t xors =
  List.iter (check_xor t.num_vars) xors;
  { t with xors = Array.append t.xors (Array.of_list xors) }

let with_sampling_set t s =
  List.iter (check_var t.num_vars) s;
  { t with sampling_set = Some (Array.of_list (List.sort_uniq Int.compare s)) }

let sampling_vars t =
  match t.sampling_set with
  | Some s -> s
  | None -> Array.init t.num_vars (fun i -> i + 1)

let num_clauses t = Array.length t.clauses

let eval t value =
  Array.for_all (Clause.eval value) t.clauses
  && Array.for_all (Xor_clause.eval value) t.xors

let blast_xors t =
  if Array.length t.xors = 0 then t
  else begin
    let next = ref (t.num_vars + 1) in
    let fresh () =
      let v = !next in
      incr next;
      v
    in
    let extra =
      Array.to_list t.xors
      |> List.concat_map (fun x -> Xor_clause.to_cnf ~fresh x)
    in
    {
      num_vars = !next - 1;
      clauses = Array.append t.clauses (Array.of_list extra);
      xors = [||];
      sampling_set = t.sampling_set;
    }
  end

let map_clauses t ~f =
  let kept = Array.to_list t.clauses |> List.filter_map f in
  { t with clauses = Array.of_list kept }

let pp fmt t =
  Format.fprintf fmt "@[<v>p cnf %d %d" t.num_vars (Array.length t.clauses);
  Array.iter (fun c -> Format.fprintf fmt "@,%a" Clause.pp c) t.clauses;
  Array.iter (fun x -> Format.fprintf fmt "@,%a" Xor_clause.pp x) t.xors;
  Format.fprintf fmt "@]"

type t = int

let make v positive =
  if v < 1 then invalid_arg "Lit.make: variable must be >= 1";
  (v lsl 1) lor (if positive then 0 else 1)

let pos v = make v true
let neg v = make v false
let var l = l lsr 1
let sign l = l land 1 = 0
let negate l = l lxor 1
let to_index l = l
let of_index i =
  if i < 2 then invalid_arg "Lit.of_index";
  i

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: zero";
  if i > 0 then pos i else neg (-i)

let to_dimacs l = if sign l then var l else -(var l)
let compare = Int.compare
let equal = Int.equal
let hash l = l
let pp fmt l = Format.fprintf fmt "%d" (to_dimacs l)

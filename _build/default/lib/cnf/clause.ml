type t = Lit.t array

let of_list lits = Array.of_list lits
let of_dimacs ints = Array.of_list (List.map Lit.of_dimacs ints)
let to_dimacs c = Array.to_list (Array.map Lit.to_dimacs c)

let normalize c =
  let sorted = Array.copy c in
  Array.sort Lit.compare sorted;
  let n = Array.length sorted in
  let rec scan i acc =
    if i >= n then Some (Array.of_list (List.rev acc))
    else
      let l = sorted.(i) in
      match acc with
      | prev :: _ when Lit.equal prev l -> scan (i + 1) acc
      | prev :: _ when Lit.equal prev (Lit.negate l) -> None
      | _ -> scan (i + 1) (l :: acc)
  in
  scan 0 []

let is_tautology c = normalize c = None

let eval value c =
  Array.exists (fun l -> Bool.equal (value (Lit.var l)) (Lit.sign l)) c

let vars c =
  Array.to_list c
  |> List.map Lit.var
  |> List.sort_uniq Int.compare

let max_var c = Array.fold_left (fun acc l -> max acc (Lit.var l)) 0 c

let equal a b = Array.length a = Array.length b && Array.for_all2 Lit.equal a b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Lit.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let pp fmt c =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ∨ ") Lit.pp)
    (Array.to_list c)

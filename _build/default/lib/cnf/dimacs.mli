(** DIMACS CNF reader/writer.

    Supports the extended conventions used by the UniGen/ApproxMC tool
    family:
    - [c ind v1 v2 ... 0] comment lines declare the sampling set,
    - lines starting with [x] declare native XOR clauses ([x 1 -2 3 0]
      means [v1 ⊕ ¬v2 ⊕ v3 = true], i.e. [v1 ⊕ v2 ⊕ v3 = rhs] with the
      rhs flipped once per negative literal — the CryptoMiniSAT
      convention). *)

exception Parse_error of string

val parse_string : string -> Formula.t
val parse_file : string -> Formula.t
val to_string : Formula.t -> string
val write_file : string -> Formula.t -> unit

(** CNF formulas, possibly with native XOR constraints and a declared
    sampling set (independent support). *)

type t = {
  num_vars : int;
  clauses : Clause.t array;
  xors : Xor_clause.t array;
  sampling_set : int array option;
      (** Declared independent support (the [S] of the paper), if any.
          By convention this is what a [c ind] DIMACS line declares. *)
}

val create :
  ?sampling_set:int list -> num_vars:int -> Clause.t list -> t
(** Plain CNF. Raises [Invalid_argument] if a clause or the sampling
    set mentions a variable above [num_vars]. *)

val create_with_xors :
  ?sampling_set:int list ->
  num_vars:int ->
  Clause.t list ->
  Xor_clause.t list ->
  t

val add_clauses : t -> Clause.t list -> t
val add_xors : t -> Xor_clause.t list -> t

val with_sampling_set : t -> int list -> t
val sampling_vars : t -> int array
(** The declared sampling set, or all variables when none declared. *)

val num_clauses : t -> int

val eval : t -> (int -> bool) -> bool
(** Evaluate under a total assignment. *)

val blast_xors : t -> t
(** Replace every native XOR by its CNF expansion over fresh variables
    (see {!Xor_clause.to_cnf}); the sampling set is preserved, and the
    fresh variables are dependent on the originals. Used by the
    reference solver and for the "no native XOR engine" ablation. *)

val map_clauses : t -> f:(Clause.t -> Clause.t option) -> t
(** Keep clauses for which [f] returns [Some]; used by simplifiers. *)

val pp : Format.formatter -> t -> unit

(** Gaussian elimination over GF(2) for systems of XOR constraints —
    the reasoning CryptoMiniSAT applies to the very XOR clauses the
    hash family produces.

    Row-reducing the XOR system preserves its solution set exactly, so
    the transformation is sampling-safe. Elimination discovers:
    - inconsistency (0 = 1 rows): the formula is UNSAT,
    - unit rows (x = b): forced assignments,
    - binary rows (x ⊕ y = b): variable equivalences,
    and leaves a reduced-row-echelon basis that is never larger than
    the input system. *)

type result = {
  rows : Xor_clause.t list;  (** reduced basis, pivots ascending *)
  units : (int * bool) list;  (** variables forced by unit rows *)
  equivalences : (int * int * bool) list;
      (** [(x, y, b)] from binary rows: x = y ⊕ b *)
  rank : int;
}

val eliminate : Xor_clause.t list -> (result, [ `Unsat ]) Result.t

val solutions_log2 : num_vars:int -> Xor_clause.t list -> float option
(** Number of solutions of the pure XOR system over [num_vars]
    variables, as log2: [Some (num_vars - rank)], or [None] when the
    system is inconsistent. This is the algebraic fact behind hash
    cells having expected size |R_F| / 2^m. *)

val implies : Xor_clause.t list -> Xor_clause.t -> bool
(** [implies system x] — does every solution of [system] satisfy [x]?
    Decided by reducing [x] against the eliminated basis. *)

(** Total truth assignments (witnesses). *)

type t
(** An assignment to variables [1 .. n]. *)

val make : int -> (int -> bool) -> t
(** [make n value] tabulates [value] over [1 .. n]. *)

val of_bool_array : bool array -> t
(** The array is indexed from 0 with slot [v] holding variable [v+1]. *)

val num_vars : t -> int
val value : t -> int -> bool

val restrict : t -> int array -> t
(** Projection onto a variable subset: returns a packed assignment
    whose key (see {!key}) identifies the projected witness. The
    projected model still answers {!value} for the selected variables
    and raises [Invalid_argument] for others. *)

val key : t -> string
(** A canonical byte string identifying the assignment (used to
    deduplicate and histogram witnesses). Two models over the same
    variable set have equal keys iff they agree on every variable. *)

val to_dimacs : t -> int list
(** Signed-integer rendering over the model's variables, ascending. *)

val satisfies : Formula.t -> t -> bool
(** Checks the model against every clause and XOR of the formula. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(* Tests for the exact counter and ApproxMC, cross-checked against the
   brute-force counter. *)

let clause = Cnf.Clause.of_dimacs

(* ------------------------------------------------------------------ *)
(* Exact counter *)

let test_exact_free_vars () =
  let f = Cnf.Formula.create ~num_vars:10 [] in
  Alcotest.(check int) "2^10" 1024 (Counting.Exact_counter.count f)

let test_exact_simple () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2 ] ] in
  (* (v1 ∨ v2) over 3 vars: 3/4 * 8 = 6 *)
  Alcotest.(check int) "count" 6 (Counting.Exact_counter.count f)

let test_exact_unsat () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1 ]; clause [ -1 ] ] in
  Alcotest.(check int) "zero" 0 (Counting.Exact_counter.count f)

let test_exact_unit_chain () =
  let chain = List.init 9 (fun i -> clause [ -(i + 1); i + 2 ]) in
  let f = Cnf.Formula.create ~num_vars:10 (clause [ 1 ] :: chain) in
  Alcotest.(check int) "unique model" 1 (Counting.Exact_counter.count f)

let test_exact_components_multiply () =
  (* (v1 ∨ v2) and (v3 ∨ v4) are disjoint: 3 * 3 = 9 *)
  let f = Cnf.Formula.create ~num_vars:4 [ clause [ 1; 2 ]; clause [ 3; 4 ] ] in
  Alcotest.(check int) "9" 9 (Counting.Exact_counter.count f)

let test_exact_with_xors () =
  (* one xor over 4 variables halves the space *)
  let f =
    Cnf.Formula.create_with_xors ~num_vars:4 []
      [ Cnf.Xor_clause.make [ 1; 2; 3; 4 ] true ]
  in
  Alcotest.(check int) "8" 8 (Counting.Exact_counter.count f)

let test_exact_restricted () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2 ] ] in
  Alcotest.(check int) "v1=T" 4
    (Counting.Exact_counter.count_restricted f [ Cnf.Lit.pos 1 ]);
  Alcotest.(check int) "v1=F" 2
    (Counting.Exact_counter.count_restricted f [ Cnf.Lit.neg 1 ])

let test_exact_budget () =
  (* ten disjoint ternary clauses force at least one branching step per
     component, so a budget of 2 must be exhausted *)
  let clauses =
    List.init 10 (fun i ->
        let base = 3 * i in
        clause [ base + 1; base + 2; base + 3 ])
  in
  let f = Cnf.Formula.create ~num_vars:30 clauses in
  Alcotest.(check bool) "budget exhausts" true
    (try
       ignore (Counting.Exact_counter.count ~max_decisions:2 f);
       false
     with Failure _ -> true)

let prop_exact_matches_brute =
  QCheck2.Test.make ~count:300 ~name:"exact counter = brute count"
    Test_util.Gen.formula_spec
    (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      Counting.Exact_counter.count f = Sat.Brute.count f)

(* ------------------------------------------------------------------ *)
(* Projected counting *)

let test_projected_exact () =
  (* v3 = v1: projecting onto {1,2} halves nothing, onto {2,3} nothing,
     onto {2} gives 2 *)
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ -1; 3 ]; clause [ 1; -3 ] ] in
  Alcotest.(check bool) "onto {1,2}" true
    (Counting.Projected.count f [| 1; 2 |] = Counting.Projected.Exact 4);
  Alcotest.(check bool) "onto {2}" true
    (Counting.Projected.count f [| 2 |] = Counting.Projected.Exact 2)

let test_projected_limit () =
  let f = Cnf.Formula.create ~num_vars:12 [] in
  match Counting.Projected.count ~limit:100 f [| 1; 2; 3; 4; 5; 6; 7; 8 |] with
  | Counting.Projected.At_least n -> Alcotest.(check int) "hit limit" 100 n
  | Counting.Projected.Exact _ -> Alcotest.fail "2^8 > 100: limit must hit"

let test_projected_sampling_set () =
  let f =
    Cnf.Formula.create ~sampling_set:[ 1; 2 ] ~num_vars:4 [ clause [ 1; 2 ] ]
  in
  Alcotest.(check bool) "3 projections" true
    (Counting.Projected.count_on_sampling_set f = Counting.Projected.Exact 3)

let prop_projected_matches_brute =
  QCheck2.Test.make ~count:150 ~name:"projected count = brute projected count"
    QCheck2.Gen.(pair Test_util.Gen.formula_spec (int_bound 100000))
    (fun (spec, pseed) ->
      let f = Test_util.Gen.build_spec spec in
      let nv = f.Cnf.Formula.num_vars in
      let rng = Rng.create pseed in
      let proj =
        List.filter (fun _ -> Rng.bool rng) (List.init nv (fun i -> i + 1))
      in
      let proj = Array.of_list (if proj = [] then [ 1 ] else proj) in
      Counting.Projected.count f proj
      = Counting.Projected.Exact (Sat.Brute.count_projected f proj))

(* ------------------------------------------------------------------ *)
(* ApproxMC parameters *)

let test_pivot_formula () =
  (* pivot(0.8) = ⌈2 e^1.5 (1 + 1/0.8)²⌉ = ⌈45.38⌉ = 46 *)
  Alcotest.(check int) "pivot(0.8)" 46 (Counting.Approxmc.pivot_of_epsilon 0.8)

let test_iterations_formula () =
  (* t(0.2) = ⌈35 log2 15⌉ = 137 *)
  Alcotest.(check int) "t(0.2)" 137 (Counting.Approxmc.iterations_of_delta 0.2)

let test_params_invalid () =
  Alcotest.(check bool) "bad epsilon" true
    (try
       ignore (Counting.Approxmc.pivot_of_epsilon 0.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad delta" true
    (try
       ignore (Counting.Approxmc.iterations_of_delta 1.5);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* ApproxMC behaviour *)

let approx ?iterations f =
  let rng = Rng.create 1234 in
  Counting.Approxmc.count ?iterations ~rng ~epsilon:0.8 ~delta:0.8 f

let test_approx_unsat () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1 ]; clause [ -1 ] ] in
  match approx f with
  | Error Counting.Approxmc.Unsat -> ()
  | _ -> Alcotest.fail "expected Unsat"

let test_approx_exact_below_pivot () =
  let f = Cnf.Formula.create ~num_vars:5 [ clause [ 1 ] ] in
  (* 16 witnesses < pivot 46: must be exact *)
  match approx f with
  | Ok r ->
      Alcotest.(check bool) "exact" true r.Counting.Approxmc.exact;
      Alcotest.(check (float 0.01)) "16" 16.0 r.Counting.Approxmc.estimate
  | Error _ -> Alcotest.fail "unexpected error"

let test_approx_within_tolerance () =
  (* 2^10 witnesses; the (0.8, 0.8) estimate should fall within a
     factor 1.8 of 1024 with good probability; with 9 iterations and a
     fixed seed this is deterministic *)
  let f = Cnf.Formula.create ~num_vars:10 [] in
  match approx ~iterations:9 f with
  | Ok r ->
      let e = r.Counting.Approxmc.estimate in
      Alcotest.(check bool)
        (Printf.sprintf "estimate %.0f within [569, 1844]" e)
        true
        (e >= 1024.0 /. 1.8 && e <= 1024.0 *. 1.8)
  | Error _ -> Alcotest.fail "unexpected error"

let test_approx_respects_sampling_set () =
  (* v2..v5 duplicate v1: projected on {1}, count = 2 *)
  let eq a b = [ clause [ -a; b ]; clause [ a; -b ] ] in
  let f =
    Cnf.Formula.create ~sampling_set:[ 1 ] ~num_vars:5
      (List.concat_map (fun v -> eq 1 v) [ 2; 3; 4; 5 ])
  in
  match approx f with
  | Ok r -> Alcotest.(check (float 0.01)) "2 cells" 2.0 r.Counting.Approxmc.estimate
  | Error _ -> Alcotest.fail "unexpected error"

let test_approx_leapfrog_matches () =
  let f = Cnf.Formula.create ~num_vars:9 [ clause [ 1; 2; 3 ] ] in
  let rng = Rng.create 77 in
  match
    Counting.Approxmc.count ~leapfrog:true ~iterations:9 ~rng ~epsilon:0.8
      ~delta:0.8 f
  with
  | Ok r ->
      let truth = float_of_int (Sat.Brute.count f) in
      let e = r.Counting.Approxmc.estimate in
      Alcotest.(check bool) "leapfrog estimate sane" true
        (e >= truth /. 1.8 && e <= truth *. 1.8)
  | Error _ -> Alcotest.fail "unexpected error"

let prop_approx_envelope =
  (* Statistical envelope check: the estimate should usually fall
     within the tolerance; we allow a conservative error margin since
     delta = 0.8 only promises 20%... but the median construction does
     much better in practice. We tolerate up to 15% envelope misses. *)
  QCheck2.Test.make ~count:40 ~name:"approxmc envelope (statistical)"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 7 11))
    (fun (seed, nv) ->
      let rng = Rng.create seed in
      let f =
        Test_util.Gen.random_cnf rng ~num_vars:nv ~num_clauses:(nv / 2) ~width:3
      in
      let truth = Sat.Brute.count f in
      match
        Counting.Approxmc.count ~iterations:9 ~rng ~epsilon:0.8 ~delta:0.8 f
      with
      | Error Counting.Approxmc.Unsat -> truth = 0
      | Error Counting.Approxmc.Timed_out -> false
      | Ok r ->
          let e = r.Counting.Approxmc.estimate in
          let t = float_of_int truth in
          (* generous envelope: factor 4 covers the randomness of a
             9-iteration median at these sizes *)
          e >= t /. 4.0 && e <= t *. 4.0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_exact_matches_brute; prop_approx_envelope ]

let () =
  Alcotest.run "counting"
    [
      ( "exact",
        [
          Alcotest.test_case "free vars" `Quick test_exact_free_vars;
          Alcotest.test_case "simple" `Quick test_exact_simple;
          Alcotest.test_case "unsat" `Quick test_exact_unsat;
          Alcotest.test_case "unit chain" `Quick test_exact_unit_chain;
          Alcotest.test_case "components multiply" `Quick test_exact_components_multiply;
          Alcotest.test_case "with xors" `Quick test_exact_with_xors;
          Alcotest.test_case "restricted" `Quick test_exact_restricted;
          Alcotest.test_case "budget" `Quick test_exact_budget;
        ] );
      ( "projected",
        [
          Alcotest.test_case "exact" `Quick test_projected_exact;
          Alcotest.test_case "limit" `Quick test_projected_limit;
          Alcotest.test_case "sampling set" `Quick test_projected_sampling_set;
        ] );
      ( "approxmc",
        [
          Alcotest.test_case "pivot formula" `Quick test_pivot_formula;
          Alcotest.test_case "iterations formula" `Quick test_iterations_formula;
          Alcotest.test_case "invalid params" `Quick test_params_invalid;
          Alcotest.test_case "unsat" `Quick test_approx_unsat;
          Alcotest.test_case "exact below pivot" `Quick test_approx_exact_below_pivot;
          Alcotest.test_case "within tolerance" `Quick test_approx_within_tolerance;
          Alcotest.test_case "sampling set" `Quick test_approx_respects_sampling_set;
          Alcotest.test_case "leapfrog" `Quick test_approx_leapfrog_matches;
        ] );
      ("properties", qcheck_cases);
    ]

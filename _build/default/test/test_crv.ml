(* Tests for the constrained-random-verification front end. *)

module C = Crv.Constraint_spec

(* enumerate all stimuli satisfying the compiled spec, by brute force
   over the stimulus bits *)
let all_stimuli compiled =
  let f = C.formula compiled in
  let out = Sat.Bsat.enumerate ~limit:100_000 f in
  if not out.Sat.Bsat.exhausted then failwith "too many stimuli";
  List.map (C.decode compiled) out.Sat.Bsat.models

let test_single_field_range () =
  let spec = C.create "range" in
  let x = C.field spec ~name:"x" ~width:4 in
  C.constrain spec (C.ult (C.var x) (C.const ~width:4 5));
  let compiled = C.compile spec in
  let stimuli = all_stimuli compiled in
  Alcotest.(check int) "5 legal values" 5 (List.length stimuli);
  List.iter
    (fun s -> Alcotest.(check bool) "x < 5" true (List.assoc "x" s < 5))
    stimuli

let test_arith_constraint () =
  let spec = C.create "sum" in
  let a = C.field spec ~name:"a" ~width:3 in
  let b = C.field spec ~name:"b" ~width:3 in
  (* a + b = 5 (mod 8) *)
  C.constrain spec (C.eq (C.add (C.var a) (C.var b)) (C.const ~width:3 5));
  let compiled = C.compile spec in
  let stimuli = all_stimuli compiled in
  Alcotest.(check int) "8 solutions" 8 (List.length stimuli);
  List.iter
    (fun s ->
      Alcotest.(check int) "sum" 5 ((List.assoc "a" s + List.assoc "b" s) mod 8))
    stimuli

let test_bitwise_and_predicates () =
  let spec = C.create "bits" in
  let v = C.field spec ~name:"v" ~width:4 in
  (* bit 0 set, parity odd, v != 1: v ∈ {x odd with odd popcount} \ {1} *)
  C.constrain spec (C.bit (C.var v) 0);
  C.constrain spec (C.parity_odd (C.var v));
  C.constrain spec (C.ne (C.var v) (C.const ~width:4 1));
  let compiled = C.compile spec in
  let values = List.map (fun s -> List.assoc "v" s) (all_stimuli compiled) in
  let expected =
    List.filter
      (fun v ->
        v land 1 = 1
        && (let rec pop v = if v = 0 then 0 else (v land 1) + pop (v lsr 1) in
            pop v mod 2 = 1)
        && v <> 1)
      (List.init 16 Fun.id)
  in
  Alcotest.(check (list int)) "values" expected (List.sort compare values)

let test_implication_and_bool_ops () =
  let spec = C.create "impl" in
  let op = C.field spec ~name:"op" ~width:2 in
  let len = C.field spec ~name:"len" ~width:2 in
  (* op = 3 -> len >= 2 *)
  C.constrain spec
    (C.implies
       (C.eq (C.var op) (C.const ~width:2 3))
       (C.ule (C.const ~width:2 2) (C.var len)));
  let compiled = C.compile spec in
  let stimuli = all_stimuli compiled in
  (* 3 free ops x 4 lens + op=3 x 2 lens = 14 *)
  Alcotest.(check int) "14 solutions" 14 (List.length stimuli);
  List.iter
    (fun s ->
      if List.assoc "op" s = 3 then
        Alcotest.(check bool) "len >= 2" true (List.assoc "len" s >= 2))
    stimuli

let test_bv_ops_semantics () =
  let spec = C.create "ops" in
  let a = C.field spec ~name:"a" ~width:3 in
  let b = C.field spec ~name:"b" ~width:3 in
  (* (a AND b) = 0, (a OR b) = 7, i.e. b = NOT a: 8 solutions *)
  C.constrain spec (C.eq (C.band (C.var a) (C.var b)) (C.const ~width:3 0));
  C.constrain spec (C.eq (C.bor (C.var a) (C.var b)) (C.const ~width:3 7));
  let compiled = C.compile spec in
  let stimuli = all_stimuli compiled in
  Alcotest.(check int) "8 complements" 8 (List.length stimuli);
  List.iter
    (fun s ->
      Alcotest.(check int) "b = ~a" (7 - List.assoc "a" s) (List.assoc "b" s))
    stimuli

let test_xor_and_not () =
  let spec = C.create "xor" in
  let a = C.field spec ~name:"a" ~width:4 in
  C.constrain spec
    (C.eq (C.bxor (C.var a) (C.bnot (C.var a))) (C.const ~width:4 15));
  let compiled = C.compile spec in
  (* tautology: all 16 values *)
  Alcotest.(check int) "16" 16 (List.length (all_stimuli compiled))

let test_zero_extend () =
  let spec = C.create "zext" in
  let a = C.field spec ~name:"a" ~width:2 in
  C.constrain spec
    (C.eq (C.zero_extend (C.var a) ~width:4) (C.const ~width:4 2));
  let compiled = C.compile spec in
  let stimuli = all_stimuli compiled in
  Alcotest.(check int) "unique" 1 (List.length stimuli);
  Alcotest.(check int) "a = 2" 2 (List.assoc "a" (List.hd stimuli))

let test_validation () =
  let spec = C.create "bad" in
  let a = C.field spec ~name:"a" ~width:3 in
  Alcotest.(check bool) "duplicate name" true
    (try
       ignore (C.field spec ~name:"a" ~width:2);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "width mismatch" true
    (try
       ignore (C.eq (C.var a) (C.const ~width:4 0));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "const too wide" true
    (try
       ignore (C.const ~width:2 4);
       false
     with Invalid_argument _ -> true);
  ignore (C.compile spec);
  Alcotest.(check bool) "sealed" true
    (try
       ignore (C.field spec ~name:"b" ~width:2);
       false
     with Invalid_argument _ -> true)

let test_sampling_set_is_stimulus () =
  let spec = C.create "ss" in
  let _ = C.field spec ~name:"a" ~width:5 in
  let _ = C.field spec ~name:"b" ~width:3 in
  C.constrain spec C.ptrue;
  let compiled = C.compile spec in
  Alcotest.(check int) "8 stimulus bits" 8 (C.stimulus_bits compiled);
  Alcotest.(check int) "sampling set = stimulus" 8
    (Array.length (Cnf.Formula.sampling_vars (C.formula compiled)))

(* ------------------------------------------------------------------ *)
(* Testbench *)

let test_testbench_stimuli_satisfy_constraints () =
  let spec = C.create "tb" in
  let op = C.field spec ~name:"op" ~width:4 in
  let addr = C.field spec ~name:"addr" ~width:6 in
  C.constrain spec (C.ult (C.var op) (C.const ~width:4 10));
  C.constrain spec (C.ne (C.var addr) (C.const ~width:6 0));
  let compiled = C.compile spec in
  match Crv.Testbench.create ~seed:5 ~count_iterations:5 compiled with
  | Error _ -> Alcotest.fail "testbench creation failed"
  | Ok tb ->
      Alcotest.(check bool) "space estimate sensible" true
        (Crv.Testbench.estimated_stimulus_space tb > 100.0);
      for _ = 1 to 25 do
        match Crv.Testbench.next tb with
        | None -> Alcotest.fail "stimulus generation failed"
        | Some s ->
            Alcotest.(check bool) "op < 10" true (List.assoc "op" s < 10);
            Alcotest.(check bool) "addr != 0" true (List.assoc "addr" s <> 0)
      done

let test_testbench_unsat () =
  let spec = C.create "unsat" in
  let a = C.field spec ~name:"a" ~width:2 in
  C.constrain spec (C.ult (C.var a) (C.const ~width:2 0));
  let compiled = C.compile spec in
  match Crv.Testbench.create compiled with
  | Error Crv.Testbench.Unsatisfiable_constraints -> ()
  | _ -> Alcotest.fail "expected Unsatisfiable_constraints"

let test_testbench_spreads_stimuli () =
  let spec = C.create "spread" in
  let v = C.field spec ~name:"v" ~width:6 in
  C.constrain spec (C.parity_odd (C.var v));
  let compiled = C.compile spec in
  match Crv.Testbench.create ~seed:6 ~count_iterations:5 compiled with
  | Error _ -> Alcotest.fail "testbench creation failed"
  | Ok tb ->
      let seen = Hashtbl.create 32 in
      for _ = 1 to 200 do
        match Crv.Testbench.next tb with
        | Some s -> Hashtbl.replace seen (List.assoc "v" s) ()
        | None -> ()
      done;
      (* 32 legal values; uniform sampling should reach most of them *)
      Alcotest.(check bool)
        (Printf.sprintf "%d/32 values seen" (Hashtbl.length seen))
        true
        (Hashtbl.length seen >= 25)

(* ------------------------------------------------------------------ *)
(* Coverage *)

let test_coverage_basic () =
  let cov = Crv.Coverage.create () in
  Crv.Coverage.coverpoint cov ~field:"op"
    [
      { Crv.Coverage.label = "low"; lo = 0; hi = 3 };
      { Crv.Coverage.label = "high"; lo = 4; hi = 7 };
    ];
  Crv.Coverage.record cov [ ("op", 2) ];
  Crv.Coverage.record cov [ ("op", 3) ];
  Alcotest.(check (list (pair string int)))
    "hits" [ ("low", 2); ("high", 0) ]
    (Crv.Coverage.hits cov ~field:"op");
  Alcotest.(check (float 1e-9)) "half covered" 0.5 (Crv.Coverage.coverage cov);
  Alcotest.(check (list string)) "unhit" [ "op.high" ] (Crv.Coverage.unhit cov);
  Crv.Coverage.record cov [ ("op", 7) ];
  Alcotest.(check (float 1e-9)) "full" 1.0 (Crv.Coverage.coverage cov);
  Alcotest.(check int) "recorded" 3 (Crv.Coverage.stimuli_recorded cov)

let test_coverage_auto_bins () =
  let bins = Crv.Coverage.auto_bins ~count:4 ~width:4 () in
  Alcotest.(check int) "4 bins" 4 (List.length bins);
  let covers v = List.exists (fun b -> v >= b.Crv.Coverage.lo && v <= b.Crv.Coverage.hi) bins in
  for v = 0 to 15 do
    Alcotest.(check bool) (Printf.sprintf "v%d covered" v) true (covers v)
  done

let test_coverage_validation () =
  let cov = Crv.Coverage.create () in
  Alcotest.(check bool) "overlap rejected" true
    (try
       Crv.Coverage.coverpoint cov ~field:"f"
         [
           { Crv.Coverage.label = "a"; lo = 0; hi = 5 };
           { Crv.Coverage.label = "b"; lo = 5; hi = 9 };
         ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cross needs points" true
    (try
       Crv.Coverage.cross cov "x" "y";
       false
     with Invalid_argument _ -> true)

let test_coverage_cross () =
  let cov = Crv.Coverage.create () in
  let two field =
    Crv.Coverage.coverpoint cov ~field
      [
        { Crv.Coverage.label = "0"; lo = 0; hi = 0 };
        { Crv.Coverage.label = "1"; lo = 1; hi = 1 };
      ]
  in
  two "a";
  two "b";
  Crv.Coverage.cross cov "a" "b";
  Crv.Coverage.record cov [ ("a", 0); ("b", 1) ];
  Crv.Coverage.record cov [ ("a", 1); ("b", 1) ];
  (* point bins: 3/4 hit (a.0, a.1, b.1); cross bins: 2/4 *)
  Alcotest.(check (float 1e-9)) "coverage" (5.0 /. 8.0) (Crv.Coverage.coverage cov);
  let missing = Crv.Coverage.unhit cov in
  Alcotest.(check int) "3 unhit" 3 (List.length missing)

let test_coverage_with_testbench () =
  let spec = C.create "cov_tb" in
  let v = C.field spec ~name:"v" ~width:5 in
  C.constrain spec (C.parity_odd (C.var v));
  let compiled = C.compile spec in
  match Crv.Testbench.create ~seed:8 ~count_iterations:5 compiled with
  | Error _ -> Alcotest.fail "testbench failed"
  | Ok tb ->
      let cov = Crv.Coverage.create () in
      Crv.Coverage.coverpoint cov ~field:"v" (Crv.Coverage.auto_bins ~count:8 ~width:5 ());
      let budget = ref 300 in
      while Crv.Coverage.coverage cov < 1.0 && !budget > 0 do
        decr budget;
        match Crv.Testbench.next tb with
        | Some s -> Crv.Coverage.record cov s
        | None -> ()
      done;
      Alcotest.(check (float 1e-9)) "closure reached" 1.0 (Crv.Coverage.coverage cov)

let () =
  Alcotest.run "crv"
    [
      ( "spec",
        [
          Alcotest.test_case "range" `Quick test_single_field_range;
          Alcotest.test_case "arith" `Quick test_arith_constraint;
          Alcotest.test_case "bitwise + predicates" `Quick test_bitwise_and_predicates;
          Alcotest.test_case "implication" `Quick test_implication_and_bool_ops;
          Alcotest.test_case "bv ops" `Quick test_bv_ops_semantics;
          Alcotest.test_case "xor/not" `Quick test_xor_and_not;
          Alcotest.test_case "zero extend" `Quick test_zero_extend;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "sampling set" `Quick test_sampling_set_is_stimulus;
        ] );
      ( "testbench",
        [
          Alcotest.test_case "constraints hold" `Slow test_testbench_stimuli_satisfy_constraints;
          Alcotest.test_case "unsat" `Quick test_testbench_unsat;
          Alcotest.test_case "spreads" `Slow test_testbench_spreads_stimuli;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "basic" `Quick test_coverage_basic;
          Alcotest.test_case "auto bins" `Quick test_coverage_auto_bins;
          Alcotest.test_case "validation" `Quick test_coverage_validation;
          Alcotest.test_case "cross" `Quick test_coverage_cross;
          Alcotest.test_case "closure with testbench" `Slow test_coverage_with_testbench;
        ] );
    ]

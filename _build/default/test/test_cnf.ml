(* Tests for the CNF substrate: literals, clauses, XOR clauses,
   formulas, models, DIMACS. *)

let lit = Alcotest.testable Cnf.Lit.pp Cnf.Lit.equal

(* ------------------------------------------------------------------ *)
(* Literals *)

let test_lit_basics () =
  let p = Cnf.Lit.pos 5 and n = Cnf.Lit.neg 5 in
  Alcotest.(check int) "var pos" 5 (Cnf.Lit.var p);
  Alcotest.(check int) "var neg" 5 (Cnf.Lit.var n);
  Alcotest.(check bool) "sign pos" true (Cnf.Lit.sign p);
  Alcotest.(check bool) "sign neg" false (Cnf.Lit.sign n);
  Alcotest.check lit "negate pos" n (Cnf.Lit.negate p);
  Alcotest.check lit "negate neg" p (Cnf.Lit.negate n);
  Alcotest.check lit "double negate" p (Cnf.Lit.negate (Cnf.Lit.negate p))

let test_lit_dimacs_roundtrip () =
  List.iter
    (fun i ->
      Alcotest.(check int) "roundtrip" i Cnf.Lit.(to_dimacs (of_dimacs i)))
    [ 1; -1; 7; -7; 100000; -100000 ]

let test_lit_index_roundtrip () =
  List.iter
    (fun l ->
      Alcotest.check lit "roundtrip" l Cnf.Lit.(of_index (to_index l)))
    [ Cnf.Lit.pos 1; Cnf.Lit.neg 1; Cnf.Lit.pos 42; Cnf.Lit.neg 42 ]

let test_lit_invalid () =
  Alcotest.check_raises "var 0" (Invalid_argument "Lit.make: variable must be >= 1")
    (fun () -> ignore (Cnf.Lit.pos 0));
  Alcotest.check_raises "dimacs 0" (Invalid_argument "Lit.of_dimacs: zero")
    (fun () -> ignore (Cnf.Lit.of_dimacs 0))

(* ------------------------------------------------------------------ *)
(* Clauses *)

let test_clause_normalize_dedup () =
  let c = Cnf.Clause.of_dimacs [ 1; 2; 1; 2 ] in
  match Cnf.Clause.normalize c with
  | None -> Alcotest.fail "not a tautology"
  | Some c' -> Alcotest.(check int) "deduplicated" 2 (Array.length c')

let test_clause_normalize_tautology () =
  let c = Cnf.Clause.of_dimacs [ 1; -1; 2 ] in
  Alcotest.(check bool) "tautology" true (Cnf.Clause.normalize c = None);
  Alcotest.(check bool) "is_tautology" true (Cnf.Clause.is_tautology c)

let test_clause_eval () =
  let c = Cnf.Clause.of_dimacs [ 1; -2 ] in
  Alcotest.(check bool) "1=T" true (Cnf.Clause.eval (fun v -> v = 1) c);
  Alcotest.(check bool) "2=F satisfies -2" true (Cnf.Clause.eval (fun _ -> false) c);
  Alcotest.(check bool) "1=F 2=T falsifies" false (Cnf.Clause.eval (fun v -> v = 2) c)

let test_clause_vars () =
  let c = Cnf.Clause.of_dimacs [ 3; -1; 2; -3 ] in
  Alcotest.(check (list int)) "vars sorted uniq" [ 1; 2; 3 ] (Cnf.Clause.vars c);
  Alcotest.(check int) "max var" 3 (Cnf.Clause.max_var c)

let test_empty_clause () =
  let c = Cnf.Clause.of_dimacs [] in
  Alcotest.(check bool) "empty never satisfied" false (Cnf.Clause.eval (fun _ -> true) c);
  Alcotest.(check int) "max var 0" 0 (Cnf.Clause.max_var c)

(* ------------------------------------------------------------------ *)
(* XOR clauses *)

let test_xor_make_cancels_pairs () =
  let x = Cnf.Xor_clause.make [ 1; 2; 1 ] true in
  Alcotest.(check int) "x ⊕ x cancels" 1 (Cnf.Xor_clause.arity x)

let test_xor_eval () =
  let x = Cnf.Xor_clause.make [ 1; 2; 3 ] true in
  Alcotest.(check bool) "odd parity" true
    (Cnf.Xor_clause.eval (fun v -> v = 1) x);
  Alcotest.(check bool) "even parity" false
    (Cnf.Xor_clause.eval (fun v -> v = 1 || v = 2) x);
  Alcotest.(check bool) "all true, odd arity" true
    (Cnf.Xor_clause.eval (fun _ -> true) x)

let test_xor_empty () =
  let t = Cnf.Xor_clause.make [] true and f = Cnf.Xor_clause.make [] false in
  Alcotest.(check bool) "rhs=true unsat" false (Cnf.Xor_clause.eval (fun _ -> true) t);
  Alcotest.(check bool) "rhs=false taut" true (Cnf.Xor_clause.eval (fun _ -> true) f)

(* The CNF expansion of an XOR must have exactly the same solutions as
   the XOR on the original variables (projected over the original
   variables — fresh chaining variables are functionally determined). *)
let check_xor_cnf_equivalence vars rhs =
  let x = Cnf.Xor_clause.make vars rhs in
  let n = List.fold_left max 0 vars in
  let next = ref (n + 1) in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let clauses = Cnf.Xor_clause.to_cnf ~fresh ~chunk:3 x in
  let total = !next - 1 in
  let f = Cnf.Formula.create ~num_vars:(max total 1) clauses in
  (* enumerate original assignments; extension over fresh vars must
     exist iff the xor holds, and must be unique *)
  for mask = 0 to (1 lsl n) - 1 do
    let base v = mask land (1 lsl (v - 1)) <> 0 in
    let extensions = ref 0 in
    let aux_count = total - n in
    for aux = 0 to (1 lsl aux_count) - 1 do
      let value v = if v <= n then base v else aux land (1 lsl (v - n - 1)) <> 0 in
      if Cnf.Formula.eval f value then incr extensions
    done;
    let expected = if Cnf.Xor_clause.eval base x then 1 else 0 in
    if !extensions <> expected then
      Alcotest.failf "mask %d: %d extensions, expected %d" mask !extensions expected
  done

let test_xor_to_cnf_small () = check_xor_cnf_equivalence [ 1; 2 ] true
let test_xor_to_cnf_medium () = check_xor_cnf_equivalence [ 1; 2; 3; 4; 5 ] false
let test_xor_to_cnf_long () = check_xor_cnf_equivalence [ 1; 2; 3; 4; 5; 6; 7; 8 ] true

(* ------------------------------------------------------------------ *)
(* Formulas *)

let test_formula_eval () =
  let f =
    Cnf.Formula.create ~num_vars:3
      [ Cnf.Clause.of_dimacs [ 1; 2 ]; Cnf.Clause.of_dimacs [ -1; 3 ] ]
  in
  Alcotest.(check bool) "model" true (Cnf.Formula.eval f (fun v -> v <> 2));
  Alcotest.(check bool) "non-model" false
    (Cnf.Formula.eval f (fun v -> v = 1))

let test_formula_range_check () =
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Cnf.Formula.create ~num_vars:2 [ Cnf.Clause.of_dimacs [ 3 ] ]);
       false
     with Invalid_argument _ -> true)

let test_formula_sampling_set () =
  let f =
    Cnf.Formula.create ~sampling_set:[ 2; 1 ] ~num_vars:3
      [ Cnf.Clause.of_dimacs [ 1; 2; 3 ] ]
  in
  Alcotest.(check (array int)) "sorted" [| 1; 2 |] (Cnf.Formula.sampling_vars f);
  let g = Cnf.Formula.create ~num_vars:3 [] in
  Alcotest.(check (array int)) "default = all" [| 1; 2; 3 |]
    (Cnf.Formula.sampling_vars g)

let test_formula_blast_xors () =
  let f =
    Cnf.Formula.create_with_xors ~num_vars:4 []
      [ Cnf.Xor_clause.make [ 1; 2; 3; 4 ] true ]
  in
  let g = Cnf.Formula.blast_xors f in
  Alcotest.(check int) "no xors left" 0 (Array.length g.Cnf.Formula.xors);
  (* projected solutions agree: count assignments of vars 1..4 that
     extend to a solution of g *)
  let count_orig = ref 0 and count_blasted = ref 0 in
  for mask = 0 to 15 do
    let base v = mask land (1 lsl (v - 1)) <> 0 in
    if Cnf.Formula.eval f base then incr count_orig;
    let aux_bits = g.Cnf.Formula.num_vars - 4 in
    let found = ref false in
    for aux = 0 to (1 lsl aux_bits) - 1 do
      let value v = if v <= 4 then base v else aux land (1 lsl (v - 5)) <> 0 in
      if Cnf.Formula.eval g value then found := true
    done;
    if !found then incr count_blasted
  done;
  Alcotest.(check int) "same projected count" !count_orig !count_blasted

(* ------------------------------------------------------------------ *)
(* Models *)

let test_model_basics () =
  let m = Cnf.Model.make 4 (fun v -> v mod 2 = 0) in
  Alcotest.(check int) "num vars" 4 (Cnf.Model.num_vars m);
  Alcotest.(check bool) "v2" true (Cnf.Model.value m 2);
  Alcotest.(check bool) "v3" false (Cnf.Model.value m 3);
  Alcotest.(check (list int)) "dimacs" [ -1; 2; -3; 4 ] (Cnf.Model.to_dimacs m)

let test_model_restrict () =
  let m = Cnf.Model.make 5 (fun v -> v >= 3) in
  let r = Cnf.Model.restrict m [| 4; 2 |] in
  Alcotest.(check int) "restricted size" 2 (Cnf.Model.num_vars r);
  Alcotest.(check bool) "v4 kept" true (Cnf.Model.value r 4);
  Alcotest.(check bool) "v2 kept" false (Cnf.Model.value r 2);
  Alcotest.(check bool) "v3 absent" true
    (try
       ignore (Cnf.Model.value r 3);
       false
     with Invalid_argument _ -> true)

let test_model_keys () =
  let m1 = Cnf.Model.make 10 (fun v -> v = 3) in
  let m2 = Cnf.Model.make 10 (fun v -> v = 3) in
  let m3 = Cnf.Model.make 10 (fun v -> v = 4) in
  Alcotest.(check string) "equal models equal keys" (Cnf.Model.key m1) (Cnf.Model.key m2);
  Alcotest.(check bool) "different models differ" true
    (Cnf.Model.key m1 <> Cnf.Model.key m3)

let test_model_restricted_keys_distinguish_support () =
  let m = Cnf.Model.make 6 (fun _ -> false) in
  let a = Cnf.Model.restrict m [| 1; 2 |] and b = Cnf.Model.restrict m [| 3; 4 |] in
  Alcotest.(check bool) "different supports differ" true
    (Cnf.Model.key a <> Cnf.Model.key b)

let test_model_satisfies () =
  let f =
    Cnf.Formula.create_with_xors ~num_vars:3
      [ Cnf.Clause.of_dimacs [ 1 ] ]
      [ Cnf.Xor_clause.make [ 2; 3 ] true ]
  in
  let good = Cnf.Model.make 3 (fun v -> v <= 2) in
  let bad = Cnf.Model.make 3 (fun _ -> true) in
  Alcotest.(check bool) "good" true (Cnf.Model.satisfies f good);
  Alcotest.(check bool) "bad" false (Cnf.Model.satisfies f bad)

(* ------------------------------------------------------------------ *)
(* DIMACS *)

let test_dimacs_roundtrip () =
  let f =
    Cnf.Formula.create_with_xors ~sampling_set:[ 1; 3 ] ~num_vars:4
      [ Cnf.Clause.of_dimacs [ 1; -2 ]; Cnf.Clause.of_dimacs [ 3; 4; -1 ] ]
      [ Cnf.Xor_clause.make [ 1; 4 ] false; Cnf.Xor_clause.make [ 2; 3 ] true ]
  in
  let g = Cnf.Dimacs.parse_string (Cnf.Dimacs.to_string f) in
  Alcotest.(check int) "vars" f.Cnf.Formula.num_vars g.Cnf.Formula.num_vars;
  Alcotest.(check int) "clauses" (Array.length f.Cnf.Formula.clauses)
    (Array.length g.Cnf.Formula.clauses);
  Alcotest.(check int) "xors" (Array.length f.Cnf.Formula.xors)
    (Array.length g.Cnf.Formula.xors);
  Alcotest.(check (array int)) "sampling set" (Cnf.Formula.sampling_vars f)
    (Cnf.Formula.sampling_vars g);
  (* semantic equality over all assignments *)
  for mask = 0 to 15 do
    let value v = mask land (1 lsl (v - 1)) <> 0 in
    Alcotest.(check bool) "same evaluation" (Cnf.Formula.eval f value)
      (Cnf.Formula.eval g value)
  done

let test_dimacs_parse_basic () =
  let f =
    Cnf.Dimacs.parse_string "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n"
  in
  Alcotest.(check int) "vars" 3 f.Cnf.Formula.num_vars;
  Alcotest.(check int) "clauses" 2 (Array.length f.Cnf.Formula.clauses)

let test_dimacs_parse_ind_line () =
  let f = Cnf.Dimacs.parse_string "p cnf 4 1\nc ind 1 2 0\n1 2 3 4 0\n" in
  Alcotest.(check (array int)) "sampling" [| 1; 2 |] (Cnf.Formula.sampling_vars f)

let test_dimacs_parse_xor_line () =
  let f = Cnf.Dimacs.parse_string "p cnf 3 1\nx 1 -2 3 0\n" in
  Alcotest.(check int) "one xor" 1 (Array.length f.Cnf.Formula.xors);
  let x = f.Cnf.Formula.xors.(0) in
  (* x 1 -2 3 0 means 1 ⊕ 2 ⊕ 3 = false (one negation flips rhs) *)
  Alcotest.(check bool) "rhs flipped" false x.Cnf.Xor_clause.rhs;
  Alcotest.(check int) "arity" 3 (Cnf.Xor_clause.arity x)

let test_dimacs_errors () =
  let expect_error s =
    try
      ignore (Cnf.Dimacs.parse_string s);
      Alcotest.failf "expected parse error on %S" s
    with Cnf.Dimacs.Parse_error _ -> ()
  in
  expect_error "1 2 0\n";
  (* missing header *)
  expect_error "p cnf 2 1\n1 2\n";
  (* missing terminator *)
  expect_error "p cnf 2 1\n1 x 0\n";
  (* bad token *)
  expect_error "p qbf 2 1\n1 0\n"

let test_dimacs_file_io () =
  let f = Cnf.Formula.create ~num_vars:2 [ Cnf.Clause.of_dimacs [ 1; 2 ] ] in
  let path = Filename.temp_file "unigen_test" ".cnf" in
  Cnf.Dimacs.write_file path f;
  let g = Cnf.Dimacs.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "vars" 2 g.Cnf.Formula.num_vars

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let prop_clause_normalize_preserves_semantics =
  QCheck2.Test.make ~count:200 ~name:"clause normalize preserves semantics"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 1 6))
    (fun (seed, nv) ->
      let rng = Rng.create seed in
      let c = Test_util.Gen.random_clause rng ~num_vars:nv ~width:5 in
      let same_eval value =
        match Cnf.Clause.normalize c with
        | None -> Cnf.Clause.eval value c (* tautology: must eval true *)
        | Some c' -> Bool.equal (Cnf.Clause.eval value c) (Cnf.Clause.eval value c')
      in
      let ok = ref true in
      for mask = 0 to (1 lsl nv) - 1 do
        let value v = mask land (1 lsl (v - 1)) <> 0 in
        if not (same_eval value) then ok := false
      done;
      !ok)

let prop_xor_cnf_projection_equivalent =
  QCheck2.Test.make ~count:100 ~name:"xor to_cnf projection-equivalent"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 1 7))
    (fun (seed, nv) ->
      let rng = Rng.create seed in
      let x = Test_util.Gen.random_xor rng ~num_vars:nv in
      let next = ref (nv + 1) in
      let fresh () =
        let v = !next in
        incr next;
        v
      in
      let clauses = Cnf.Xor_clause.to_cnf ~fresh ~chunk:3 x in
      let f = Cnf.Formula.create ~num_vars:(max (!next - 1) 1) clauses in
      let aux_bits = !next - 1 - nv in
      let ok = ref true in
      for mask = 0 to (1 lsl nv) - 1 do
        let base v = mask land (1 lsl (v - 1)) <> 0 in
        let extends = ref false in
        for aux = 0 to (1 lsl aux_bits) - 1 do
          let value v =
            if v <= nv then base v else aux land (1 lsl (v - nv - 1)) <> 0
          in
          if Cnf.Formula.eval f value then extends := true
        done;
        if Bool.equal !extends (Cnf.Xor_clause.eval base x) then ()
        else ok := false
      done;
      !ok)

let prop_dimacs_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"dimacs roundtrip"
    Test_util.Gen.formula_spec
    (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      let g = Cnf.Dimacs.parse_string (Cnf.Dimacs.to_string f) in
      let nv = f.Cnf.Formula.num_vars in
      if g.Cnf.Formula.num_vars <> nv then false
      else begin
        let ok = ref true in
        let trials = min 256 (1 lsl nv) in
        for mask = 0 to trials - 1 do
          let value v = mask land (1 lsl (v - 1)) <> 0 in
          if not (Bool.equal (Cnf.Formula.eval f value) (Cnf.Formula.eval g value))
          then ok := false
        done;
        !ok
      end)

let prop_model_key_injective =
  QCheck2.Test.make ~count:200 ~name:"model keys injective"
    QCheck2.Gen.(triple (int_bound 100000) (int_bound 100000) (int_range 1 16))
    (fun (s1, s2, nv) ->
      let r1 = Rng.create s1 and r2 = Rng.create s2 in
      let m1 = Cnf.Model.make nv (fun _ -> Rng.bool r1) in
      let m2 = Cnf.Model.make nv (fun _ -> Rng.bool r2) in
      Bool.equal
        (String.equal (Cnf.Model.key m1) (Cnf.Model.key m2))
        (Cnf.Model.equal m1 m2))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_clause_normalize_preserves_semantics;
      prop_xor_cnf_projection_equivalent;
      prop_dimacs_roundtrip;
      prop_model_key_injective;
    ]

let () =
  Alcotest.run "cnf"
    [
      ( "lit",
        [
          Alcotest.test_case "basics" `Quick test_lit_basics;
          Alcotest.test_case "dimacs roundtrip" `Quick test_lit_dimacs_roundtrip;
          Alcotest.test_case "index roundtrip" `Quick test_lit_index_roundtrip;
          Alcotest.test_case "invalid" `Quick test_lit_invalid;
        ] );
      ( "clause",
        [
          Alcotest.test_case "normalize dedup" `Quick test_clause_normalize_dedup;
          Alcotest.test_case "normalize tautology" `Quick test_clause_normalize_tautology;
          Alcotest.test_case "eval" `Quick test_clause_eval;
          Alcotest.test_case "vars" `Quick test_clause_vars;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
        ] );
      ( "xor",
        [
          Alcotest.test_case "make cancels pairs" `Quick test_xor_make_cancels_pairs;
          Alcotest.test_case "eval" `Quick test_xor_eval;
          Alcotest.test_case "empty" `Quick test_xor_empty;
          Alcotest.test_case "to_cnf small" `Quick test_xor_to_cnf_small;
          Alcotest.test_case "to_cnf medium" `Quick test_xor_to_cnf_medium;
          Alcotest.test_case "to_cnf long" `Quick test_xor_to_cnf_long;
        ] );
      ( "formula",
        [
          Alcotest.test_case "eval" `Quick test_formula_eval;
          Alcotest.test_case "range check" `Quick test_formula_range_check;
          Alcotest.test_case "sampling set" `Quick test_formula_sampling_set;
          Alcotest.test_case "blast xors" `Quick test_formula_blast_xors;
        ] );
      ( "model",
        [
          Alcotest.test_case "basics" `Quick test_model_basics;
          Alcotest.test_case "restrict" `Quick test_model_restrict;
          Alcotest.test_case "keys" `Quick test_model_keys;
          Alcotest.test_case "restricted keys" `Quick
            test_model_restricted_keys_distinguish_support;
          Alcotest.test_case "satisfies" `Quick test_model_satisfies;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "parse basic" `Quick test_dimacs_parse_basic;
          Alcotest.test_case "parse ind" `Quick test_dimacs_parse_ind_line;
          Alcotest.test_case "parse xor" `Quick test_dimacs_parse_xor_line;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
          Alcotest.test_case "file io" `Quick test_dimacs_file_io;
        ] );
      ("properties", qcheck_cases);
    ]

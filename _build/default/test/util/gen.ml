(* Random-formula generators shared by the test suites. *)

let random_clause rng ~num_vars ~width =
  let k = 1 + Rng.int rng width in
  List.init k (fun _ -> Cnf.Lit.make (1 + Rng.int rng num_vars) (Rng.bool rng))
  |> Cnf.Clause.of_list

let random_cnf rng ~num_vars ~num_clauses ~width =
  let clauses =
    List.init num_clauses (fun _ -> random_clause rng ~num_vars ~width)
  in
  Cnf.Formula.create ~num_vars clauses

let random_xor rng ~num_vars =
  let vars =
    List.filter (fun _ -> Rng.bool rng) (List.init num_vars (fun i -> i + 1))
  in
  Cnf.Xor_clause.make vars (Rng.bool rng)

let random_formula_with_xors rng ~num_vars ~num_clauses ~num_xors ~width =
  let f = random_cnf rng ~num_vars ~num_clauses ~width in
  let xors = List.init num_xors (fun _ -> random_xor rng ~num_vars) in
  Cnf.Formula.add_xors f xors

(* QCheck generator producing (seed, num_vars, num_clauses, num_xors):
   the formula itself is rebuilt from the seed inside the property so
   that shrinking stays meaningful. *)
let formula_spec =
  QCheck2.Gen.(
    map
      (fun (seed, nv, nc, nx) -> (seed, 1 + nv, nc, nx))
      (tup4 (int_bound 1_000_000) (int_bound 11) (int_bound 30) (int_bound 4)))

let build_spec (seed, num_vars, num_clauses, num_xors) =
  let rng = Rng.create seed in
  random_formula_with_xors rng ~num_vars ~num_clauses ~num_xors ~width:3

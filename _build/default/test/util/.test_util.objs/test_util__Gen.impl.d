test/util/gen.ml: Cnf List QCheck2 Rng

(* Tests for the sampling-safe preprocessor: every transformation must
   preserve the witness-set projection on the sampling set. *)

let clause = Cnf.Clause.of_dimacs

let projected_keys (f : Cnf.Formula.t) vars =
  (* set of projected witnesses, via brute force *)
  let keys = Hashtbl.create 64 in
  let n = f.Cnf.Formula.num_vars in
  for mask = 0 to (1 lsl n) - 1 do
    let value v = mask land (1 lsl (v - 1)) <> 0 in
    if Cnf.Formula.eval f value then begin
      let m = Cnf.Model.restrict (Cnf.Model.make n value) vars in
      Hashtbl.replace keys (Cnf.Model.key m) ()
    end
  done;
  keys

let same_projection f g vars =
  let a = projected_keys f vars and b = projected_keys g vars in
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem b k) a true

let run ?eliminate f =
  match Preprocess.Simplify.run ?eliminate f with
  | Ok r -> r
  | Error `Unsat -> Alcotest.fail "unexpected Unsat"

(* ------------------------------------------------------------------ *)

let test_unit_propagation () =
  let f =
    Cnf.Formula.create ~num_vars:3
      [ clause [ 1 ]; clause [ -1; 2 ]; clause [ -2; -3 ] ]
  in
  let r = run f in
  Alcotest.(check (list (pair int bool)))
    "all three forced"
    [ (1, true); (2, true); (3, false) ]
    (List.sort compare r.Preprocess.Simplify.forced)

let test_unsat_detection () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1 ]; clause [ -1 ] ] in
  Alcotest.(check bool) "unsat" true (Preprocess.Simplify.run f = Error `Unsat)

let test_unsat_via_xor () =
  let f =
    Cnf.Formula.create_with_xors ~num_vars:2 [ clause [ 1 ]; clause [ 2 ] ]
      [ Cnf.Xor_clause.make [ 1; 2 ] true ]
  in
  Alcotest.(check bool) "xor unsat" true (Preprocess.Simplify.run f = Error `Unsat)

let test_subsumption () =
  let f =
    Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2 ]; clause [ 1; 2; 3 ] ]
  in
  let r = run f in
  Alcotest.(check int) "subsumed away" 1 r.Preprocess.Simplify.clauses_after

let test_self_subsumption () =
  (* (1 ∨ 2) and (1 ∨ ¬2 ∨ 3) strengthen to (1 ∨ 3) *)
  let f =
    Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2 ]; clause [ 1; -2; 3 ] ]
  in
  let r = run f in
  let has_strengthened =
    Array.exists
      (fun c -> List.sort compare (Cnf.Clause.to_dimacs c) = [ 1; 3 ])
      r.Preprocess.Simplify.simplified.Cnf.Formula.clauses
  in
  Alcotest.(check bool) "strengthened clause present" true has_strengthened

let test_projection_preserved_with_bve () =
  (* v3 is a Tseitin-style定 AND output; sampling set {1,2} *)
  let f =
    Cnf.Formula.create ~sampling_set:[ 1; 2 ] ~num_vars:3
      [ clause [ -3; 1 ]; clause [ -3; 2 ]; clause [ 3; -1; -2 ]; clause [ 3 ] ]
  in
  let r = run f in
  Alcotest.(check bool) "projection preserved" true
    (same_projection f r.Preprocess.Simplify.simplified [| 1; 2 |])

let test_bve_respects_sampling_set () =
  let f =
    Cnf.Formula.create ~sampling_set:[ 1; 2 ] ~num_vars:4
      [ clause [ -3; 1 ]; clause [ 3; -1 ]; clause [ 4; 2 ]; clause [ -4; 1; 2 ] ]
  in
  let r = run f in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "sampling var %d kept" v)
        false
        (List.mem v r.Preprocess.Simplify.eliminated))
    [ 1; 2 ]

let test_no_elimination_without_sampling_set () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2; 3 ] ] in
  let r = run f in
  Alcotest.(check (list int)) "nothing eliminated" [] r.Preprocess.Simplify.eliminated

let test_eliminate_flag_off () =
  let f =
    Cnf.Formula.create ~sampling_set:[ 1 ] ~num_vars:2
      [ clause [ -2; 1 ]; clause [ 2; -1 ] ]
  in
  let r = run ~eliminate:false f in
  Alcotest.(check (list int)) "bve disabled" [] r.Preprocess.Simplify.eliminated

let test_xor_variables_protected () =
  let f =
    Cnf.Formula.create_with_xors ~sampling_set:[ 1 ] ~num_vars:3
      [ clause [ 1; 2; 3 ] ]
      [ Cnf.Xor_clause.make [ 2; 3 ] true ]
  in
  let r = run f in
  Alcotest.(check (list int)) "xor vars kept" [] r.Preprocess.Simplify.eliminated

let test_extend_recovers_witness () =
  let f =
    Cnf.Formula.create ~sampling_set:[ 1; 2 ] ~num_vars:4
      [
        clause [ -3; 1 ]; clause [ -3; 2 ]; clause [ 3; -1; -2 ];
        (* v4 = ¬v1 *)
        clause [ 4; 1 ]; clause [ -4; -1 ];
        (* constraint touching only S *)
        clause [ 1; 2 ];
      ]
  in
  let r = run f in
  (* find any witness of the simplified formula by brute force and
     extend it *)
  let n = r.Preprocess.Simplify.simplified.Cnf.Formula.num_vars in
  let found = ref false in
  for mask = 0 to (1 lsl n) - 1 do
    if not !found then begin
      let value v = mask land (1 lsl (v - 1)) <> 0 in
      if Cnf.Formula.eval r.Preprocess.Simplify.simplified value then begin
        found := true;
        let m = Cnf.Model.make n value in
        let extended = Preprocess.Simplify.extend r m in
        Alcotest.(check bool) "extended satisfies original" true
          (Cnf.Model.satisfies f extended)
      end
    end
  done;
  Alcotest.(check bool) "a witness exists" true !found

let test_extend_rejects_non_witness () =
  let f =
    Cnf.Formula.create ~sampling_set:[ 1 ] ~num_vars:2
      [ clause [ 1 ]; clause [ -2; 1 ] ]
  in
  let r = run f in
  let bad = Cnf.Model.make 2 (fun _ -> false) in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Preprocess.Simplify.extend r bad);
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_projection_preserved =
  QCheck2.Test.make ~count:300 ~name:"simplify preserves projected witnesses"
    QCheck2.Gen.(pair Test_util.Gen.formula_spec (int_bound 1000000))
    (fun (spec, sseed) ->
      let f = Test_util.Gen.build_spec spec in
      let nv = f.Cnf.Formula.num_vars in
      let rng = Rng.create sseed in
      (* random non-empty sampling set *)
      let s =
        List.filter (fun _ -> Rng.bool rng) (List.init nv (fun i -> i + 1))
      in
      let s = if s = [] then [ 1 ] else s in
      let f = Cnf.Formula.with_sampling_set f s in
      match Preprocess.Simplify.run f with
      | Error `Unsat -> not (Sat.Brute.is_sat f)
      | Ok r ->
          same_projection f r.Preprocess.Simplify.simplified (Array.of_list s))

let prop_extended_witnesses_satisfy_original =
  QCheck2.Test.make ~count:150 ~name:"extend lifts every simplified witness"
    QCheck2.Gen.(pair Test_util.Gen.formula_spec (int_bound 1000000))
    (fun (spec, sseed) ->
      let f = Test_util.Gen.build_spec spec in
      let nv = f.Cnf.Formula.num_vars in
      let rng = Rng.create sseed in
      let s =
        List.filter (fun _ -> Rng.bool rng) (List.init nv (fun i -> i + 1))
      in
      let s = if s = [] then [ 1 ] else s in
      let f = Cnf.Formula.with_sampling_set f s in
      match Preprocess.Simplify.run f with
      | Error `Unsat -> true
      | Ok r ->
          let ok = ref true in
          let n = r.Preprocess.Simplify.simplified.Cnf.Formula.num_vars in
          for mask = 0 to (1 lsl n) - 1 do
            let value v = mask land (1 lsl (v - 1)) <> 0 in
            if Cnf.Formula.eval r.Preprocess.Simplify.simplified value then begin
              let extended =
                Preprocess.Simplify.extend r (Cnf.Model.make n value)
              in
              if not (Cnf.Model.satisfies f extended) then ok := false
            end
          done;
          !ok)

let prop_clause_count_never_grows =
  QCheck2.Test.make ~count:200 ~name:"simplify never grows the clause count"
    Test_util.Gen.formula_spec
    (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      match Preprocess.Simplify.run f with
      | Error `Unsat -> true
      | Ok r ->
          r.Preprocess.Simplify.clauses_after
          <= r.Preprocess.Simplify.clauses_before
             + List.length r.Preprocess.Simplify.forced)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_projection_preserved;
      prop_extended_witnesses_satisfy_original;
      prop_clause_count_never_grows;
    ]

let () =
  Alcotest.run "preprocess"
    [
      ( "simplify",
        [
          Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
          Alcotest.test_case "unsat" `Quick test_unsat_detection;
          Alcotest.test_case "unsat via xor" `Quick test_unsat_via_xor;
          Alcotest.test_case "subsumption" `Quick test_subsumption;
          Alcotest.test_case "self subsumption" `Quick test_self_subsumption;
          Alcotest.test_case "bve projection" `Quick test_projection_preserved_with_bve;
          Alcotest.test_case "bve respects S" `Quick test_bve_respects_sampling_set;
          Alcotest.test_case "no S no bve" `Quick test_no_elimination_without_sampling_set;
          Alcotest.test_case "eliminate off" `Quick test_eliminate_flag_off;
          Alcotest.test_case "xor protected" `Quick test_xor_variables_protected;
          Alcotest.test_case "extend" `Quick test_extend_recovers_witness;
          Alcotest.test_case "extend rejects" `Quick test_extend_rejects_non_witness;
        ] );
      ("properties", qcheck_cases);
    ]

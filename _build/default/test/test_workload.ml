(* Tests for the benchmark suite and the experiment harness. *)

let test_table1_is_subset_of_table2 () =
  List.iter
    (fun (i : Workload.Suite.instance) ->
      Alcotest.(check bool) i.Workload.Suite.name true
        (List.exists
           (fun (j : Workload.Suite.instance) -> j.Workload.Suite.name = i.Workload.Suite.name)
           Workload.Suite.table2))
    Workload.Suite.table1

let test_table1_has_twelve_rows () =
  Alcotest.(check int) "12 rows" 12 (List.length Workload.Suite.table1)

let test_names_unique () =
  let names = List.map (fun i -> i.Workload.Suite.name) Workload.Suite.table2 in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_by_name () =
  Alcotest.(check bool) "found" true (Workload.Suite.by_name "squaring_6" <> None);
  Alcotest.(check bool) "missing" true (Workload.Suite.by_name "nope" = None);
  Alcotest.(check bool) "uniformity case" true
    (Workload.Suite.by_name "case_uniformity" <> None)

(* every quick instance must be satisfiable with a declared sampling
   set that is a strict subset of the variables *)
let test_quick_instances_well_formed () =
  List.iter
    (fun (i : Workload.Suite.instance) ->
      let f = Lazy.force i.Workload.Suite.formula in
      let s = Array.length (Cnf.Formula.sampling_vars f) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: |S|=%d < |X|=%d" i.Workload.Suite.name s
           f.Cnf.Formula.num_vars)
        true
        (s < f.Cnf.Formula.num_vars);
      let solver = Sat.Solver.create f in
      Alcotest.(check bool)
        (i.Workload.Suite.name ^ " sat")
        true
        (Sat.Solver.solve solver = Sat.Solver.Sat))
    Workload.Suite.quick

let test_quick_sampling_sets_are_independent () =
  List.iter
    (fun (i : Workload.Suite.instance) ->
      let f = Lazy.force i.Workload.Suite.formula in
      let s = Array.to_list (Cnf.Formula.sampling_vars f) in
      match Sat.Indsupport.check ~conflict_limit:2_000_000 f s with
      | Sat.Indsupport.Independent -> ()
      | Sat.Indsupport.Dependent ->
          Alcotest.failf "%s: sampling set not independent" i.Workload.Suite.name
      | Sat.Indsupport.Unknown ->
          Alcotest.failf "%s: independence check exhausted budget" i.Workload.Suite.name)
    Workload.Suite.quick

let test_uniformity_case_enumerable () =
  let f = Lazy.force Workload.Suite.uniformity_case.Workload.Suite.formula in
  let us = Sampling.Us.create f in
  let n = Sampling.Us.size us in
  Alcotest.(check bool) (Printf.sprintf "|R_F| = %d in range" n) true
    (n >= 128 && n <= 65536)

let test_run_row_smoke () =
  match Workload.Suite.by_name "case_s1" with
  | None -> Alcotest.fail "case_s1 missing"
  | Some i ->
      let row =
        Workload.Experiment.run_row ~unigen_samples:5 ~uniwit_samples:1
          ~per_call_timeout:10.0 ~overall_timeout:30.0 ~count_iterations:5
          ~rng:(Rng.create 21) i
      in
      Alcotest.(check bool) "unigen produced" false row.Workload.Experiment.unigen_failed;
      Alcotest.(check bool) "xor len sensible" true
        (row.Workload.Experiment.unigen_avg_xor_len
         <= float_of_int row.Workload.Experiment.sampling_size);
      Alcotest.(check bool) "success in [0,1]" true
        (row.Workload.Experiment.unigen_success >= 0.0
        && row.Workload.Experiment.unigen_success <= 1.0)

let test_run_uniformity_smoke () =
  let f = Cnf.Formula.create ~num_vars:7 [ Cnf.Clause.of_dimacs [ 1; 2 ] ] in
  let r =
    Workload.Experiment.run_uniformity ~samples:3000 ~count_iterations:5
      ~rng:(Rng.create 22) f
  in
  Alcotest.(check int) "witness count" 96 r.Workload.Experiment.witness_count;
  Alcotest.(check int) "samples" 3000 r.Workload.Experiment.samples;
  (* both series should distribute 3000 samples over 96 witnesses *)
  let mass series = List.fold_left (fun acc (c, w) -> acc + (c * w)) 0 series in
  Alcotest.(check int) "unigen mass" 3000 (mass r.Workload.Experiment.unigen_series);
  Alcotest.(check int) "us mass" 3000 (mass r.Workload.Experiment.us_series);
  (* the ideal sampler must never fail its own uniformity test badly *)
  Alcotest.(check bool)
    (Printf.sprintf "us p=%.4f" r.Workload.Experiment.us_pvalue)
    true
    (r.Workload.Experiment.us_pvalue > 1e-4);
  Alcotest.(check bool)
    (Printf.sprintf "unigen p=%.4f" r.Workload.Experiment.unigen_pvalue)
    true
    (r.Workload.Experiment.unigen_pvalue > 1e-6)

let test_pp_table_renders () =
  match Workload.Suite.by_name "case_s1" with
  | None -> Alcotest.fail "case_s1 missing"
  | Some i ->
      let row =
        Workload.Experiment.run_row ~unigen_samples:2 ~uniwit_samples:1
          ~per_call_timeout:10.0 ~overall_timeout:20.0 ~count_iterations:5
          ~rng:(Rng.create 23) i
      in
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      Workload.Experiment.pp_table fmt [ row ];
      Format.pp_print_flush fmt ();
      let s = Buffer.contents buf in
      let contains needle haystack =
        let n = String.length needle and h = String.length haystack in
        let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions the instance" true (contains "case_s1" s)

let () =
  Alcotest.run "workload"
    [
      ( "suite",
        [
          Alcotest.test_case "table1 subset" `Quick test_table1_is_subset_of_table2;
          Alcotest.test_case "table1 size" `Quick test_table1_has_twelve_rows;
          Alcotest.test_case "names unique" `Quick test_names_unique;
          Alcotest.test_case "by name" `Quick test_by_name;
          Alcotest.test_case "quick well-formed" `Slow test_quick_instances_well_formed;
          Alcotest.test_case "independent sampling sets" `Slow
            test_quick_sampling_sets_are_independent;
          Alcotest.test_case "uniformity enumerable" `Slow test_uniformity_case_enumerable;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "run_row" `Slow test_run_row_smoke;
          Alcotest.test_case "run_uniformity" `Slow test_run_uniformity_smoke;
          Alcotest.test_case "pp_table" `Slow test_pp_table_renders;
        ] );
    ]

(* Tests for independent-support checking and minimization. *)

let clause = Cnf.Clause.of_dimacs

let check f s = Sat.Indsupport.check f s

let indep = Alcotest.testable
    (fun fmt v ->
      Format.pp_print_string fmt
        (match v with
        | Sat.Indsupport.Independent -> "Independent"
        | Sat.Indsupport.Dependent -> "Dependent"
        | Sat.Indsupport.Unknown -> "Unknown"))
    ( = )

(* The paper's own example: (a ∨ ¬b) ∧ (¬a ∨ b) (i.e. a = b) has three
   independent supports: {a}, {b} and {a,b}. *)
let paper_example =
  Cnf.Formula.create ~num_vars:2 [ clause [ 1; -2 ]; clause [ -1; 2 ] ]

let test_paper_example () =
  Alcotest.check indep "{a}" Sat.Indsupport.Independent (check paper_example [ 1 ]);
  Alcotest.check indep "{b}" Sat.Indsupport.Independent (check paper_example [ 2 ]);
  Alcotest.check indep "{a,b}" Sat.Indsupport.Independent (check paper_example [ 1; 2 ]);
  Alcotest.check indep "{}" Sat.Indsupport.Dependent (check paper_example [])

let test_free_variables_are_dependent_support_only_if_covered () =
  (* v1, v2 free: the empty set is NOT independent (witnesses differ) *)
  let f = Cnf.Formula.create ~num_vars:2 [] in
  Alcotest.check indep "{} dependent" Sat.Indsupport.Dependent (check f []);
  Alcotest.check indep "{1} dependent" Sat.Indsupport.Dependent (check f [ 1 ]);
  Alcotest.check indep "{1,2} independent" Sat.Indsupport.Independent
    (check f [ 1; 2 ])

let test_xor_defined_variable () =
  (* v3 = v1 ⊕ v2: {1,2} is independent, {1,3} also (v2 = v1 ⊕ v3) *)
  let f =
    Cnf.Formula.create_with_xors ~num_vars:3 []
      [ Cnf.Xor_clause.make [ 1; 2; 3 ] false ]
  in
  Alcotest.check indep "{1,2}" Sat.Indsupport.Independent (check f [ 1; 2 ]);
  Alcotest.check indep "{1,3}" Sat.Indsupport.Independent (check f [ 1; 3 ]);
  Alcotest.check indep "{1}" Sat.Indsupport.Dependent (check f [ 1 ])

let test_supersets_stay_independent () =
  let f =
    Cnf.Formula.create_with_xors ~num_vars:4 []
      [ Cnf.Xor_clause.make [ 1; 2; 3 ] true ]
  in
  (* {1,2,4} independent (v3 determined); superset {1,2,3,4} too *)
  Alcotest.check indep "{1,2,4}" Sat.Indsupport.Independent (check f [ 1; 2; 4 ]);
  Alcotest.check indep "all" Sat.Indsupport.Independent (check f [ 1; 2; 3; 4 ])

let test_minimize () =
  let f = paper_example in
  let m = Sat.Indsupport.minimize f [ 1; 2 ] in
  Alcotest.(check int) "singleton" 1 (List.length m)

let test_minimize_rejects_dependent_input () =
  let f = Cnf.Formula.create ~num_vars:2 [] in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Sat.Indsupport.minimize f [ 1 ]);
       false
     with Invalid_argument _ -> true)

let test_of_formula_tseitin () =
  (* Tseitin-style: g3 = AND(x1, x2); minimal support is {1, 2} *)
  let f =
    Cnf.Formula.create ~num_vars:3
      [ clause [ -3; 1 ]; clause [ -3; 2 ]; clause [ 3; -1; -2 ] ]
  in
  let s = Sat.Indsupport.of_formula f in
  Alcotest.(check (list int)) "inputs found" [ 1; 2 ] s

let test_minimized_support_usable_by_unigen () =
  (* find a support automatically, then sample with it *)
  let f =
    Cnf.Formula.create ~num_vars:4
      [
        clause [ -4; 1 ]; clause [ -4; 2 ]; clause [ 4; -1; -2 ];
        clause [ 3; 4 ];
      ]
  in
  let s = Sat.Indsupport.of_formula f in
  let g = Cnf.Formula.with_sampling_set f s in
  match Sampling.Unigen.prepare ~count_iterations:5 ~rng:(Rng.create 3) ~epsilon:6.0 g with
  | Ok p ->
      (match Sampling.Unigen.sample ~rng:(Rng.create 4) p with
      | Ok m -> Alcotest.(check bool) "valid" true (Cnf.Model.satisfies f m)
      | Error _ -> Alcotest.fail "sampling failed")
  | Error _ -> Alcotest.fail "prepare failed"

let () =
  Alcotest.run "indsupport"
    [
      ( "check",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "free variables" `Quick
            test_free_variables_are_dependent_support_only_if_covered;
          Alcotest.test_case "xor defined" `Quick test_xor_defined_variable;
          Alcotest.test_case "supersets" `Quick test_supersets_stay_independent;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "rejects dependent" `Quick test_minimize_rejects_dependent_input;
          Alcotest.test_case "of_formula" `Quick test_of_formula_tseitin;
          Alcotest.test_case "usable by unigen" `Quick test_minimized_support_usable_by_unigen;
        ] );
    ]

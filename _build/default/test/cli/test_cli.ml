(* Integration tests driving the unigen command-line binary the way a
   user would, checking exit codes and output shapes. *)

(* `dune runtest` executes from the test's build directory;
   `dune exec` from the workspace root — probe both. *)
let binary =
  let candidates =
    [ "../../bin/unigen_cli.exe"; "_build/default/bin/unigen_cli.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "unigen_cli.exe not found; build bin/ first"

let run args =
  let out = Filename.temp_file "unigen_cli" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote binary) args
         (Filename.quote out))
  in
  let ic = open_in out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let temp_cnf contents =
  let path = Filename.temp_file "unigen_cli" ".cnf" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let test_help () =
  let code, text = run "--help=plain" in
  Alcotest.(check int) "exit 0" 0 code;
  List.iter
    (fun cmd -> Alcotest.(check bool) cmd true (contains cmd text))
    [ "sample"; "count"; "support"; "bench-gen"; "simplify"; "convert" ]

let test_bench_gen_list () =
  let code, text = run "bench-gen --list" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "mentions squaring" true (contains "squaring_7" text);
  Alcotest.(check bool) "mentions tutorial" true (contains "tutorial_xl" text)

let test_sample_on_simple_formula () =
  let path = temp_cnf "p cnf 4 1\nc ind 1 2 0\n1 2 3 0\n" in
  let code, text = run (Printf.sprintf "sample %s -n 5 -s 3 --project" path) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "witness lines" true (contains "\nv " ("\n" ^ text));
  Alcotest.(check bool) "reports production" true (contains "produced 5/5" text)

let test_sample_unsat_exit_code () =
  let path = temp_cnf "p cnf 1 2\n1 0\n-1 0\n" in
  let code, text = run (Printf.sprintf "sample %s -n 1" path) in
  Sys.remove path;
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "says unsat" true (contains "UNSATISFIABLE" text)

let test_count_matches_truth () =
  (* 3 free vars, one clause: 7 witnesses, below the exact threshold *)
  let path = temp_cnf "p cnf 3 1\n1 2 3 0\n" in
  let code, text = run (Printf.sprintf "count %s -s 2" path) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "s mc 7" true (contains "s mc 7" text)

let test_support_verifies_and_minimizes () =
  (* v3 = v1 xor v2 via CNF; declared support {1,2,3} minimizes to 2 *)
  let path =
    temp_cnf
      "p cnf 3 4\nc ind 1 2 3 0\n-3 1 2 0\n-3 -1 -2 0\n3 -1 2 0\n3 1 -2 0\n"
  in
  let code, text = run (Printf.sprintf "support %s -m" path) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "minimized to 2" true (contains "(2 variables" text);
  Alcotest.(check bool) "emits c ind" true (contains "c ind" text)

let test_simplify_roundtrip () =
  let path = temp_cnf "p cnf 3 3\nc ind 1 2 0\n1 0\n-1 2 3 0\n2 3 0\n" in
  let out = Filename.temp_file "unigen_cli" ".simp.cnf" in
  let code, text = run (Printf.sprintf "simplify %s -o %s" path out) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports reduction" true (contains "clauses" text);
  (* the output must be a parseable DIMACS file *)
  let code2, text2 = run (Printf.sprintf "count %s" out) in
  Sys.remove out;
  Alcotest.(check int) "count on simplified" 0 code2;
  Alcotest.(check bool) "has a count" true (contains "s mc" text2)

let test_convert_blif () =
  let blif = Filename.temp_file "unigen_cli" ".blif" in
  let oc = open_out blif in
  output_string oc
    ".model and2\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n";
  close_out oc;
  let out = Filename.temp_file "unigen_cli" ".cnf" in
  let code, text = run (Printf.sprintf "convert %s -o %s" blif out) in
  Sys.remove blif;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports sampling set" true
    (contains "sampling set = 2" text);
  (* AND with asserted output: exactly one witness *)
  let code2, text2 = run (Printf.sprintf "count %s" out) in
  Sys.remove out;
  Alcotest.(check int) "count ok" 0 code2;
  Alcotest.(check bool) "one witness" true (contains "s mc 1" text2)

let test_missing_file_error () =
  let code, _ = run "sample /nonexistent.cnf" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0)

let test_malformed_dimacs_error () =
  let path = temp_cnf "not a cnf file\n" in
  let code, text = run (Printf.sprintf "count %s" path) in
  Sys.remove path;
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "error message" true (contains "error" text)

let test_bench_gen_unknown_instance () =
  let code, text = run "bench-gen no_such_instance" in
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "suggests --list" true (contains "--list" text)

let () =
  Alcotest.run "cli"
    [
      ( "commands",
        [
          Alcotest.test_case "help" `Quick test_help;
          Alcotest.test_case "bench-gen list" `Quick test_bench_gen_list;
          Alcotest.test_case "sample" `Quick test_sample_on_simple_formula;
          Alcotest.test_case "sample unsat" `Quick test_sample_unsat_exit_code;
          Alcotest.test_case "count" `Quick test_count_matches_truth;
          Alcotest.test_case "support" `Quick test_support_verifies_and_minimizes;
          Alcotest.test_case "simplify" `Quick test_simplify_roundtrip;
          Alcotest.test_case "convert" `Quick test_convert_blif;
          Alcotest.test_case "missing file" `Quick test_missing_file_error;
          Alcotest.test_case "malformed dimacs" `Quick test_malformed_dimacs_error;
          Alcotest.test_case "unknown instance" `Quick test_bench_gen_unknown_instance;
        ] );
    ]

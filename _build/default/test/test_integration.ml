(* End-to-end integration tests: whole pipelines across libraries,
   exactly as a downstream user would chain them. *)

let clause = Cnf.Clause.of_dimacs

(* circuit -> Tseitin -> preprocess -> UniGen -> extend -> simulate *)
let test_circuit_to_sample_pipeline () =
  let module B = Circuits.Netlist.Builder in
  let b = B.create "pipeline" in
  let xs = Circuits.Arith.input_word b ~width:6 in
  let sum =
    Circuits.Arith.ripple_adder b xs (Circuits.Arith.constant b ~width:6 7)
  in
  (* constrain: (x + 7) has bit 2 set *)
  B.output b (List.nth sum 2);
  let nl = B.finish b in
  let enc = Circuits.Tseitin.encode nl in
  let f = enc.Circuits.Tseitin.formula in
  match Preprocess.Simplify.run f with
  | Error `Unsat -> Alcotest.fail "satisfiable by construction"
  | Ok r -> begin
      let g = r.Preprocess.Simplify.simplified in
      let rng = Rng.create 17 in
      match Sampling.Unigen.prepare ~count_iterations:5 ~rng ~epsilon:6.0 g with
      | Error _ -> Alcotest.fail "prepare failed"
      | Ok p ->
          for _ = 1 to 25 do
            match Sampling.Unigen.sample_retrying ~rng p with
            | Error _ -> Alcotest.fail "sampling failed"
            | Ok m ->
                let m = Preprocess.Simplify.extend r m in
                Alcotest.(check bool) "witness of original" true
                  (Cnf.Model.satisfies f m);
                (* decode the stimulus and check by SIMULATION *)
                let x =
                  Circuits.Arith.to_int
                    (Array.map
                       (fun v -> Cnf.Model.value m v)
                       enc.Circuits.Tseitin.input_vars)
                in
                Alcotest.(check bool)
                  (Printf.sprintf "x=%d satisfies the spec" x)
                  true
                  ((x + 7) land 4 <> 0)
          done
    end

(* DIMACS file -> support discovery -> declared set -> ApproxMC vs
   exact count consistency *)
let test_dimacs_support_count_pipeline () =
  let text =
    "p cnf 5 5\n-4 1 0\n4 -1 0\n-5 2 0\n5 -2 0\n1 2 3 0\n"
  in
  let f = Cnf.Dimacs.parse_string text in
  (* v4 = v1 and v5 = v2: a minimal independent support has 3
     variables ({1,2,3} or the equivalent {3,4,5}, depending on the
     greedy order) *)
  let support = Sat.Indsupport.of_formula f in
  Alcotest.(check int) "minimal support size" 3 (List.length support);
  Alcotest.(check bool) "support is independent" true
    (Sat.Indsupport.check f support = Sat.Indsupport.Independent);
  let g = Cnf.Formula.with_sampling_set f support in
  let exact = Counting.Exact_counter.count f in
  match
    Counting.Approxmc.count ~iterations:9 ~rng:(Rng.create 2) ~epsilon:0.8
      ~delta:0.8 g
  with
  | Error _ -> Alcotest.fail "approxmc failed"
  | Ok r ->
      (* projected count on an independent support = full count *)
      Alcotest.(check (float 0.01))
        "approx = exact" (float_of_int exact) r.Counting.Approxmc.estimate

(* weighted lift -> UniGen -> projected distribution matches analytic *)
let test_weighted_pipeline () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2; 3 ] ] in
  let w = Sampling.Weighted.weight_of_float ~log_denom:2 0.75 in
  let lifted = Sampling.Weighted.lift f [ (3, w) ] in
  let rng = Rng.create 23 in
  match
    Sampling.Unigen.prepare ~count_iterations:5 ~rng ~epsilon:6.0
      lifted.Sampling.Weighted.formula
  with
  | Error _ -> Alcotest.fail "prepare failed"
  | Ok p ->
      let v3 = ref 0 and n = ref 0 in
      while !n < 3000 do
        match Sampling.Unigen.sample ~rng p with
        | Ok m ->
            incr n;
            let projected = Sampling.Weighted.project lifted m in
            Alcotest.(check bool) "projects to witness" true
              (Cnf.Formula.eval f (fun v -> Cnf.Model.value projected v));
            if Cnf.Model.value projected 3 then incr v3
        | Error _ -> ()
      done;
      (* witnesses: the 7 assignments with some true var; mass of
         v3=1: 4 * 0.75 = 3; v3=0: 3 * 0.25 = 0.75; P = 3/3.75 = 0.8 *)
      let observed = float_of_int !v3 /. float_of_int !n in
      Alcotest.(check bool)
        (Printf.sprintf "P(v3) = %.3f near 0.8" observed)
        true
        (Float.abs (observed -. 0.8) < 0.04)

(* solver UNSAT verdict inside a workflow carries a checkable proof *)
let test_unsat_pipeline_with_proof () =
  (* squaring circuit asserted to an impossible residue: x² ≡ 2 mod 4
     has no solutions (squares are 0 or 1 mod 4) *)
  let nl =
    Circuits.Generators.squaring_equivalence ~bits:5 ~residue:2 ~modulus_bits:2
  in
  let f = (Circuits.Tseitin.encode nl).Circuits.Tseitin.formula in
  let s = Sat.Solver.create f in
  Sat.Solver.enable_proof_logging s;
  (match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "x^2 = 2 mod 4 is impossible");
  Alcotest.(check bool) "refutation verifies" true
    (Sat.Drat.refutes f (Sat.Solver.proof s))

(* generated DIMACS file round-trips through the CLI-facing writer and
   yields the same sample distribution support *)
let test_dimacs_file_sampling_equivalence () =
  let rng = Rng.create 31 in
  let f = Circuits.Generators.case_formula ~rng ~num_inputs:8 ~num_gates:30 in
  let path = Filename.temp_file "unigen_integration" ".cnf" in
  Cnf.Dimacs.write_file path f;
  let g = Cnf.Dimacs.parse_file path in
  Sys.remove path;
  let witnesses formula =
    let out = Sat.Bsat.enumerate ~limit:5000 formula in
    Alcotest.(check bool) "exhausted" true out.Sat.Bsat.exhausted;
    List.map
      (fun m -> Cnf.Model.key (Cnf.Model.restrict m (Cnf.Formula.sampling_vars formula)))
      out.Sat.Bsat.models
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "same projected witness set" (witnesses f)
    (witnesses g)

(* MCMC, XORSample', UniWit and UniGen all sample the same witness set *)
let test_all_samplers_agree_on_support () =
  let f =
    Cnf.Formula.create ~num_vars:6 [ clause [ 1; 2 ]; clause [ -1; -2; 3 ] ]
  in
  let valid = Hashtbl.create 64 in
  List.iter
    (fun m -> Hashtbl.replace valid (Cnf.Model.key m) ())
    (Sat.Brute.solutions f);
  let check_sampler name outcome =
    match outcome with
    | Ok m ->
        Alcotest.(check bool) (name ^ " in witness set") true
          (Hashtbl.mem valid (Cnf.Model.key m))
    | Error _ -> ()
  in
  let rng = Rng.create 37 in
  (match Sampling.Unigen.prepare ~count_iterations:5 ~rng ~epsilon:6.0 f with
  | Ok p ->
      for _ = 1 to 10 do
        check_sampler "unigen" (Sampling.Unigen.sample ~rng p)
      done
  | Error _ -> Alcotest.fail "prepare failed");
  for _ = 1 to 10 do
    check_sampler "uniwit" (Sampling.Uniwit.sample ~rng f);
    check_sampler "xorsample" (Sampling.Xorsample.sample ~rng ~s:3 f);
    check_sampler "mcmc" (Sampling.Mcmc.sample ~rng f)
  done

(* the workload suite instances stay reproducible: same name, same
   formula, across forcings *)
let test_suite_determinism () =
  match (Workload.Suite.by_name "case_s1", Workload.Suite.by_name "case_s1") with
  | Some a, Some b ->
      let fa = Lazy.force a.Workload.Suite.formula in
      let fb = Lazy.force b.Workload.Suite.formula in
      Alcotest.(check string) "identical DIMACS" (Cnf.Dimacs.to_string fa)
        (Cnf.Dimacs.to_string fb)
  | _ -> Alcotest.fail "instance missing"

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "circuit->preprocess->sample" `Slow
            test_circuit_to_sample_pipeline;
          Alcotest.test_case "dimacs->support->count" `Slow
            test_dimacs_support_count_pipeline;
          Alcotest.test_case "weighted sampling" `Slow test_weighted_pipeline;
          Alcotest.test_case "unsat with proof" `Quick test_unsat_pipeline_with_proof;
          Alcotest.test_case "dimacs file equivalence" `Slow
            test_dimacs_file_sampling_equivalence;
          Alcotest.test_case "samplers agree" `Quick test_all_samplers_agree_on_support;
          Alcotest.test_case "suite determinism" `Quick test_suite_determinism;
        ] );
    ]

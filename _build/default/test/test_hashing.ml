(* Tests for the Hxor(n, m, 3) hash family. *)

let vars n = Array.init n (fun i -> i + 1)

let test_dimensions () =
  let rng = Rng.create 1 in
  let h = Hashing.Hxor.sample rng ~vars:(vars 10) ~m:4 in
  Alcotest.(check int) "m" 4 (Hashing.Hxor.m h);
  Alcotest.(check int) "alpha length" 4 (Array.length (Hashing.Hxor.alpha h));
  Alcotest.(check int) "constraint count" 4 (List.length (Hashing.Hxor.constraints h))

let test_m_zero () =
  let rng = Rng.create 2 in
  let h = Hashing.Hxor.sample rng ~vars:(vars 5) ~m:0 in
  Alcotest.(check int) "no rows" 0 (Hashing.Hxor.m h);
  Alcotest.(check bool) "everything in cell" true
    (Hashing.Hxor.in_cell h (fun _ -> true))

let test_invalid_args () =
  let rng = Rng.create 3 in
  Alcotest.(check bool) "negative m" true
    (try
       ignore (Hashing.Hxor.sample rng ~vars:(vars 3) ~m:(-1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty vars" true
    (try
       ignore (Hashing.Hxor.sample rng ~vars:[||] ~m:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad density" true
    (try
       ignore (Hashing.Hxor.sample ~density:0.0 rng ~vars:(vars 3) ~m:1);
       false
     with Invalid_argument _ -> true)

(* The constraint encoding h(y) = α must agree with direct application. *)
let test_constraints_match_apply () =
  let rng = Rng.create 4 in
  for _ = 1 to 50 do
    let n = 1 + Rng.int rng 8 in
    let m = Rng.int rng 5 in
    let h = Hashing.Hxor.sample rng ~vars:(vars n) ~m in
    let cs = Hashing.Hxor.constraints h in
    for mask = 0 to (1 lsl n) - 1 do
      let value v = mask land (1 lsl (v - 1)) <> 0 in
      let by_constraints = List.for_all (Cnf.Xor_clause.eval value) cs in
      Alcotest.(check bool) "agree" (Hashing.Hxor.in_cell h value) by_constraints
    done
  done

(* Cell sizes: a random hash with m bits splits {0,1}^n into cells of
   expected size 2^(n-m); check the average over many draws. *)
let test_expected_cell_size () =
  let rng = Rng.create 5 in
  let n = 8 and m = 3 in
  let draws = 200 in
  let total_in_cell = ref 0 in
  for _ = 1 to draws do
    let h = Hashing.Hxor.sample rng ~vars:(vars n) ~m in
    for mask = 0 to (1 lsl n) - 1 do
      let value v = mask land (1 lsl (v - 1)) <> 0 in
      if Hashing.Hxor.in_cell h value then incr total_in_cell
    done
  done;
  let avg = float_of_int !total_in_cell /. float_of_int draws in
  let expected = 2.0 ** float_of_int (n - m) in
  Alcotest.(check bool)
    (Printf.sprintf "avg cell size %.1f near %.1f" avg expected)
    true
    (Float.abs (avg -. expected) /. expected < 0.15)

(* Pairwise independence: for fixed distinct y1, y2 the probability of
   h(y1) = h(y2) (collision in one output bit) is 1/2. *)
let test_pairwise_collision_rate () =
  let rng = Rng.create 6 in
  let n = 6 in
  let y1 v = v mod 2 = 0 in
  let y2 v = v mod 3 = 0 in
  let draws = 4000 in
  let collisions = ref 0 in
  for _ = 1 to draws do
    let h = Hashing.Hxor.sample rng ~vars:(vars n) ~m:1 in
    let h1 = Hashing.Hxor.apply h y1 and h2 = Hashing.Hxor.apply h y2 in
    if h1.(0) = h2.(0) then incr collisions
  done;
  let rate = float_of_int !collisions /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "collision rate %.3f near 0.5" rate)
    true
    (rate > 0.46 && rate < 0.54)

(* 3-wise independence on a single output bit: for three distinct
   points, all 8 sign patterns of (h(y1), h(y2), h(y3)) are equally
   likely. *)
let test_three_wise_balance () =
  let rng = Rng.create 7 in
  let n = 6 in
  let points = [| (fun v -> v = 1); (fun v -> v = 2); (fun v -> v >= 3) |] in
  let counts = Array.make 8 0 in
  let draws = 8000 in
  for _ = 1 to draws do
    let h = Hashing.Hxor.sample rng ~vars:(vars n) ~m:1 in
    let idx =
      Array.fold_left
        (fun acc y -> (acc lsl 1) lor (if (Hashing.Hxor.apply h y).(0) then 1 else 0))
        0 points
    in
    counts.(idx) <- counts.(idx) + 1
  done;
  let expected = float_of_int draws /. 8.0 in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      if dev > 0.15 then
        Alcotest.failf "pattern %d has count %d (expected %.0f)" i c expected)
    counts

let test_average_length_dense () =
  let rng = Rng.create 8 in
  let n = 40 in
  let lens =
    List.init 100 (fun _ ->
        Hashing.Hxor.average_xor_length
          (Hashing.Hxor.sample rng ~vars:(vars n) ~m:6))
  in
  let avg = List.fold_left ( +. ) 0.0 lens /. 100.0 in
  (* dense rows include each variable with probability 1/2 *)
  Alcotest.(check bool)
    (Printf.sprintf "avg %.1f near %d" avg (n / 2))
    true
    (Float.abs (avg -. float_of_int (n / 2)) < 2.0)

let test_average_length_sparse () =
  let rng = Rng.create 9 in
  let n = 40 in
  let lens =
    List.init 100 (fun _ ->
        Hashing.Hxor.average_xor_length
          (Hashing.Hxor.sample ~density:0.1 rng ~vars:(vars n) ~m:6))
  in
  let avg = List.fold_left ( +. ) 0.0 lens /. 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "sparse avg %.1f near %.1f" avg (0.1 *. float_of_int n))
    true
    (Float.abs (avg -. 4.0) < 1.0)

let test_total_length_consistent () =
  let rng = Rng.create 10 in
  let h = Hashing.Hxor.sample rng ~vars:(vars 12) ~m:5 in
  let total = Hashing.Hxor.total_xor_length h in
  let avg = Hashing.Hxor.average_xor_length h in
  Alcotest.(check bool) "total = avg * m" true
    (Float.abs (float_of_int total -. (avg *. 5.0)) < 1e-9)

(* A formula restricted to a random cell has, in expectation, its
   witness count divided by 2^m — the partitioning property UniGen
   relies on. *)
let test_partitioning_shrinks_solution_set () =
  let rng = Rng.create 11 in
  let n = 8 in
  let f = Cnf.Formula.create ~num_vars:n [] in
  (* 256 witnesses; a 3-bit hash should leave ~32 *)
  let sizes =
    List.init 60 (fun _ ->
        let h = Hashing.Hxor.sample rng ~vars:(vars n) ~m:3 in
        let g = Cnf.Formula.add_xors f (Hashing.Hxor.constraints h) in
        Sat.Brute.count g)
  in
  let avg =
    float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int (List.length sizes)
  in
  Alcotest.(check bool)
    (Printf.sprintf "avg cell %.1f near 32" avg)
    true
    (avg > 27.0 && avg < 37.0)

let () =
  Alcotest.run "hashing"
    [
      ( "hxor",
        [
          Alcotest.test_case "dimensions" `Quick test_dimensions;
          Alcotest.test_case "m zero" `Quick test_m_zero;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "constraints match apply" `Quick test_constraints_match_apply;
          Alcotest.test_case "expected cell size" `Quick test_expected_cell_size;
          Alcotest.test_case "pairwise collisions" `Quick test_pairwise_collision_rate;
          Alcotest.test_case "3-wise balance" `Quick test_three_wise_balance;
          Alcotest.test_case "average length dense" `Quick test_average_length_dense;
          Alcotest.test_case "average length sparse" `Quick test_average_length_sparse;
          Alcotest.test_case "total length" `Quick test_total_length_consistent;
          Alcotest.test_case "partitioning" `Quick test_partitioning_shrinks_solution_set;
        ] );
    ]

test/test_crv.mli:

test/test_sampling.ml: Alcotest Cnf Float Hashtbl List Option Printf Rng Sampling Sat

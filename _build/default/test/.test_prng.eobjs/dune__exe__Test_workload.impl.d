test/test_workload.ml: Alcotest Array Buffer Cnf Format Lazy List Printf Rng Sampling Sat String Workload

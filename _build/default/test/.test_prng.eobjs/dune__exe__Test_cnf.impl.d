test/test_cnf.ml: Alcotest Array Bool Cnf Filename List QCheck2 QCheck_alcotest Rng String Sys Test_util

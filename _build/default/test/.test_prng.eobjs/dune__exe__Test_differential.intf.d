test/test_differential.mli:

test/test_parallel.ml: Alcotest Array Cnf Counting Fun Hashtbl List Parallel Printf Rng Sampling Sat String Unix

test/test_integration.ml: Alcotest Array Circuits Cnf Counting Filename Float Hashtbl Lazy List Preprocess Printf Rng Sampling Sat String Sys Workload

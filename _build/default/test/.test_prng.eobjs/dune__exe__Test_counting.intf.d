test/test_counting.mli:

test/test_indsupport.ml: Alcotest Cnf Format List Rng Sampling Sat

test/test_circuits.ml: Alcotest Array Circuits Cnf Counting List Printf Rng Sat

test/test_crv.ml: Alcotest Array Cnf Crv Fun Hashtbl List Printf Sat

test/test_xor_gauss.mli:

test/test_sat.ml: Alcotest Array Cnf Fun List Printf QCheck2 QCheck_alcotest Rng Sat String Test_util Unix

test/test_containers.ml: Alcotest Array Float Int List QCheck2 QCheck_alcotest Rng Sat

test/test_preprocess.ml: Alcotest Array Cnf Hashtbl List Preprocess Printf QCheck2 QCheck_alcotest Rng Sat Test_util

test/test_preprocess.mli:

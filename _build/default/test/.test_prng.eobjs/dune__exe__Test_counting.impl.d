test/test_counting.ml: Alcotest Array Cnf Counting List Printf QCheck2 QCheck_alcotest Rng Sat Test_util

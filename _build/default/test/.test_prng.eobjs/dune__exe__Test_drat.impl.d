test/test_drat.ml: Alcotest Cnf Fun List Printf QCheck2 QCheck_alcotest Rng Sat Test_util

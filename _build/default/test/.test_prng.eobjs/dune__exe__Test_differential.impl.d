test/test_differential.ml: Alcotest Array Cnf Counting List QCheck2 QCheck_alcotest Rng Sampling Sat Test_util

test/test_formats.mli:

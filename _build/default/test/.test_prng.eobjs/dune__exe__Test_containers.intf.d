test/test_containers.mli:

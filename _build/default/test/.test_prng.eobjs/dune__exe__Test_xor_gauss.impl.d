test/test_xor_gauss.ml: Alcotest Bool Cnf List QCheck2 QCheck_alcotest Rng Test_util

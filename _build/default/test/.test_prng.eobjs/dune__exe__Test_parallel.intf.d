test/test_parallel.mli:

test/test_prng.ml: Alcotest Array Float Fun Hashtbl Int Int64 List Rng

test/test_hashing.ml: Alcotest Array Cnf Float Hashing List Printf Rng Sat

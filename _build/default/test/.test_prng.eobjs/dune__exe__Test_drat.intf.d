test/test_drat.mli:

test/test_indsupport.mli:

test/test_formats.ml: Alcotest Array Circuits Counting Filename List QCheck2 QCheck_alcotest Rng Sys

(* Tests for the circuit substrate: netlists, arithmetic blocks,
   Tseitin encoding, sequential unrolling, and the generators. *)

module B = Circuits.Netlist.Builder

(* ------------------------------------------------------------------ *)
(* Netlist basics *)

let test_simple_gates () =
  let b = B.create "gates" in
  let x = B.input b and y = B.input b in
  B.output b (B.and_ b x y);
  B.output b (B.or_ b x y);
  B.output b (B.xor_ b x y);
  B.output b (B.not_ b x);
  let nl = B.finish b in
  let check ins expected =
    Alcotest.(check (array bool)) "outputs" expected (Circuits.Netlist.simulate nl ins)
  in
  check [| false; false |] [| false; false; false; true |];
  check [| true; false |] [| false; true; true; false |];
  check [| true; true |] [| true; true; false; false |]

let test_mux () =
  let b = B.create "mux" in
  let s = B.input b and x = B.input b and y = B.input b in
  B.output b (B.mux b ~sel:s x y);
  let nl = B.finish b in
  let run s x y = (Circuits.Netlist.simulate nl [| s; x; y |]).(0) in
  Alcotest.(check bool) "sel=1 picks x" true (run true true false);
  Alcotest.(check bool) "sel=0 picks y" false (run false true false);
  Alcotest.(check bool) "sel=0 picks y=1" true (run false false true)

let test_const_and_lists () =
  let b = B.create "lists" in
  let x = B.input b and y = B.input b and z = B.input b in
  B.output b (B.and_list b [ x; y; z ]);
  B.output b (B.or_list b []);
  B.output b (B.and_list b []);
  B.output b (B.xor_list b [ x; y; z ]);
  let nl = B.finish b in
  let out = Circuits.Netlist.simulate nl [| true; true; true |] in
  Alcotest.(check (array bool)) "all true" [| true; false; true; true |] out

let test_builder_rejects_dangling () =
  let b = B.create "bad" in
  Alcotest.(check bool) "dangling rejected" true
    (try
       ignore (B.not_ b 5);
       false
     with Invalid_argument _ -> true)

let test_wrong_input_arity () =
  let b = B.create "arity" in
  let x = B.input b in
  B.output b x;
  let nl = B.finish b in
  Alcotest.(check bool) "arity checked" true
    (try
       ignore (Circuits.Netlist.simulate nl [| true; false |]);
       false
     with Invalid_argument _ -> true)

let test_num_gates () =
  let b = B.create "count" in
  let x = B.input b and y = B.input b in
  B.output b (B.and_ b x y);
  let nl = B.finish b in
  Alcotest.(check int) "one gate" 1 (Circuits.Netlist.num_gates nl)

(* ------------------------------------------------------------------ *)
(* Arithmetic *)

let test_adder () =
  let width = 5 in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let b = B.create "add" in
      let xs = Circuits.Arith.input_word b ~width in
      let ys = Circuits.Arith.input_word b ~width in
      List.iter (B.output b) (Circuits.Arith.ripple_adder b xs ys);
      let nl = B.finish b in
      let ins =
        Array.append
          (Circuits.Arith.of_int ~width x)
          (Circuits.Arith.of_int ~width y)
      in
      let out = Circuits.Netlist.simulate nl ins in
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" x y)
        (x + y)
        (Circuits.Arith.to_int out)
    done
  done

let test_multiplier () =
  let width = 4 in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let b = B.create "mul" in
      let xs = Circuits.Arith.input_word b ~width in
      let ys = Circuits.Arith.input_word b ~width in
      List.iter (B.output b) (Circuits.Arith.multiplier b xs ys);
      let nl = B.finish b in
      let ins =
        Array.append
          (Circuits.Arith.of_int ~width x)
          (Circuits.Arith.of_int ~width y)
      in
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" x y)
        (x * y)
        (Circuits.Arith.to_int (Circuits.Netlist.simulate nl ins))
    done
  done

let test_squarer () =
  let width = 5 in
  for x = 0 to 31 do
    let b = B.create "sq" in
    let xs = Circuits.Arith.input_word b ~width in
    List.iter (B.output b) (Circuits.Arith.squarer b xs);
    let nl = B.finish b in
    Alcotest.(check int)
      (Printf.sprintf "%d^2" x)
      (x * x)
      (Circuits.Arith.to_int
         (Circuits.Netlist.simulate nl (Circuits.Arith.of_int ~width x)))
  done

let test_comparators () =
  let width = 4 in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let b = B.create "cmp" in
      let xs = Circuits.Arith.input_word b ~width in
      let ys = Circuits.Arith.input_word b ~width in
      B.output b (Circuits.Arith.equal b xs ys);
      B.output b (Circuits.Arith.less_than b xs ys);
      B.output b (Circuits.Arith.parity b xs);
      let nl = B.finish b in
      let ins =
        Array.append
          (Circuits.Arith.of_int ~width x)
          (Circuits.Arith.of_int ~width y)
      in
      let out = Circuits.Netlist.simulate nl ins in
      Alcotest.(check bool) (Printf.sprintf "%d=%d" x y) (x = y) out.(0);
      Alcotest.(check bool) (Printf.sprintf "%d<%d" x y) (x < y) out.(1);
      let pop = List.length (List.filter (fun i -> x land (1 lsl i) <> 0) [ 0; 1; 2; 3 ]) in
      Alcotest.(check bool) "parity" (pop mod 2 = 1) out.(2)
    done
  done

let test_int_roundtrip () =
  for v = 0 to 63 do
    Alcotest.(check int) "roundtrip" v
      (Circuits.Arith.to_int (Circuits.Arith.of_int ~width:6 v))
  done

(* ------------------------------------------------------------------ *)
(* Tseitin encoding: CNF witnesses restricted to inputs = simulations *)

let check_tseitin_agrees nl =
  let enc = Circuits.Tseitin.encode ~assert_outputs:false nl in
  let f = enc.Circuits.Tseitin.formula in
  let n_in = Array.length enc.Circuits.Tseitin.input_vars in
  for mask = 0 to (1 lsl n_in) - 1 do
    let inputs = Array.init n_in (fun i -> mask land (1 lsl i) <> 0) in
    (* fix the inputs with unit clauses, solve, compare every output *)
    let units =
      Array.to_list enc.Circuits.Tseitin.input_vars
      |> List.mapi (fun i v -> Cnf.Clause.of_list [ Cnf.Lit.make v inputs.(i) ])
    in
    let g = Cnf.Formula.add_clauses f units in
    let solver = Sat.Solver.create g in
    (match Sat.Solver.solve solver with
    | Sat.Solver.Sat ->
        let m = Sat.Solver.model solver in
        let sim = Circuits.Netlist.simulate nl inputs in
        Array.iteri
          (fun i ov ->
            Alcotest.(check bool)
              (Printf.sprintf "mask %d output %d" mask i)
              sim.(i)
              (Cnf.Model.value m ov))
          enc.Circuits.Tseitin.output_vars
    | _ -> Alcotest.fail "tseitin formula must be satisfiable for every input")
  done

let test_tseitin_gate_mix () =
  let b = B.create "mix" in
  let x = B.input b and y = B.input b and z = B.input b in
  let g1 = B.and_ b x y in
  let g2 = B.or_ b g1 (B.not_ b z) in
  let g3 = B.xor_ b g2 (B.mux b ~sel:x y z) in
  B.output b g3;
  B.output b (B.xnor_ b g1 g2);
  B.output b (B.nand_ b x z);
  check_tseitin_agrees (B.finish b)

let test_tseitin_arith () =
  let b = B.create "arith" in
  let xs = Circuits.Arith.input_word b ~width:3 in
  let sq = Circuits.Arith.squarer b xs in
  List.iter (B.output b) sq;
  check_tseitin_agrees (B.finish b)

let test_tseitin_constants () =
  let b = B.create "consts" in
  let x = B.input b in
  B.output b (B.and_ b x (B.const b true));
  B.output b (B.or_ b x (B.const b false));
  check_tseitin_agrees (B.finish b)

let test_tseitin_sampling_set_is_inputs () =
  let b = B.create "ss" in
  let x = B.input b and y = B.input b in
  B.output b (B.and_ b x y);
  let enc = Circuits.Tseitin.encode (B.finish b) in
  Alcotest.(check (array int)) "sampling = inputs"
    enc.Circuits.Tseitin.input_vars
    (Cnf.Formula.sampling_vars enc.Circuits.Tseitin.formula)

let test_tseitin_assert_outputs_counts () =
  (* AND circuit with asserted output: only input 11 survives *)
  let b = B.create "assert" in
  let x = B.input b and y = B.input b in
  B.output b (B.and_ b x y);
  let enc = Circuits.Tseitin.encode (B.finish b) in
  Alcotest.(check int) "one witness" 1
    (Counting.Exact_counter.count enc.Circuits.Tseitin.formula)

(* the inputs of a Tseitin encoding form an independent support *)
let test_tseitin_inputs_are_independent_support () =
  let b = B.create "indep" in
  let x = B.input b and y = B.input b and z = B.input b in
  B.output b (B.xor_ b (B.and_ b x y) z);
  let enc = Circuits.Tseitin.encode ~assert_outputs:false (B.finish b) in
  let support = Array.to_list enc.Circuits.Tseitin.input_vars in
  match Sat.Indsupport.check enc.Circuits.Tseitin.formula support with
  | Sat.Indsupport.Independent -> ()
  | _ -> Alcotest.fail "inputs must be an independent support"

(* ------------------------------------------------------------------ *)
(* Sequential unrolling *)

let toggle_circuit () =
  (* one state bit; next = state xor input; observable = state *)
  let b = B.create "toggle" in
  let s = B.input b and i = B.input b in
  B.output b (B.xor_ b s i);
  B.output b s;
  Circuits.Sequential.create ~name:"toggle" ~state_width:1 ~input_width:1
    (B.finish b)

let test_unroll_semantics () =
  let seq = toggle_circuit () in
  let unrolled = Circuits.Sequential.unroll ~steps:3 seq in
  (* inputs: s0, i1, i2, i3; outputs: last observable (state before
     step 3) then final state *)
  Alcotest.(check int) "inputs" 4 unrolled.Circuits.Netlist.num_inputs;
  let out = Circuits.Netlist.simulate unrolled [| false; true; true; true |] in
  let final = out.(Array.length out - 1) in
  Alcotest.(check bool) "three toggles from 0" true final

let test_unroll_observe_all () =
  let seq = toggle_circuit () in
  let unrolled = Circuits.Sequential.unroll ~observe_last_only:false ~steps:2 seq in
  (* observables of both steps + final state = 3 outputs *)
  Alcotest.(check int) "outputs" 3 (Array.length unrolled.Circuits.Netlist.outputs)

let test_unroll_matches_step_simulation () =
  let rng = Rng.create 3 in
  let seq = Circuits.Generators.nonlinear_fsm ~rng ~name:"fsm" ~width:5 in
  let steps = 4 in
  let unrolled = Circuits.Sequential.unroll ~steps seq in
  for trial = 1 to 20 do
    ignore trial;
    let init = Array.init 5 (fun _ -> Rng.bool rng) in
    let ext = Array.init steps (fun _ -> Rng.bool rng) in
    (* reference: iterate the step netlist *)
    let state = ref init in
    for s = 0 to steps - 1 do
      let outs =
        Circuits.Netlist.simulate seq.Circuits.Sequential.step
          (Array.append !state [| ext.(s) |])
      in
      state := Array.sub outs 0 5
    done;
    let inputs = Array.append init ext in
    let out = Circuits.Netlist.simulate unrolled inputs in
    let final = Array.sub out (Array.length out - 5) 5 in
    Alcotest.(check (array bool)) "final state agrees" !state final
  done

let test_sequential_validation () =
  let b = B.create "bad" in
  let _ = B.input b in
  let seq_attempt () =
    ignore
      (Circuits.Sequential.create ~name:"bad" ~state_width:2 ~input_width:1
         (B.finish b))
  in
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       seq_attempt ();
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_lfsr_shifts () =
  let seq = Circuits.Generators.lfsr ~name:"l" ~width:8 ~taps:[ 0; 3; 7 ] in
  let state = Array.init 8 (fun i -> i mod 2 = 0) in
  let outs =
    Circuits.Netlist.simulate seq.Circuits.Sequential.step
      (Array.append state [| false |])
  in
  (* bit i of next state = bit (i-1) of previous, for i >= 1 *)
  for i = 1 to 7 do
    Alcotest.(check bool) (Printf.sprintf "shift bit %d" i) state.(i - 1) outs.(i)
  done;
  (* feedback = parity of taps *)
  let fb = state.(0) <> state.(3) <> state.(7) in
  Alcotest.(check bool) "feedback" fb outs.(0)

let test_squaring_equivalence_solutions () =
  (* bits=4, x² ≡ 1 (mod 8) ⇔ x odd (x ∈ {1,3,5,...,15}) *)
  let nl = Circuits.Generators.squaring_equivalence ~bits:4 ~residue:1 ~modulus_bits:3 in
  let matching = ref 0 in
  for x = 0 to 15 do
    let out = Circuits.Netlist.simulate nl (Circuits.Arith.of_int ~width:4 x) in
    if out.(0) then incr matching;
    Alcotest.(check bool)
      (Printf.sprintf "x=%d" x)
      (x * x mod 8 = 1)
      out.(0)
  done;
  Alcotest.(check int) "8 odd values" 8 !matching

let test_multiplier_equivalence_count () =
  (* witnesses = (x, y, z=x·y): exactly 2^(2·bits) *)
  let nl = Circuits.Generators.multiplier_equivalence ~bits:2 in
  let enc = Circuits.Tseitin.encode nl in
  Alcotest.(check int) "16 witnesses" 16
    (Counting.Exact_counter.count enc.Circuits.Tseitin.formula)

let test_sketch_solutions_match_spec () =
  let rng = Rng.create 11 in
  let nl =
    Circuits.Generators.sketch ~rng ~name:"sk" ~control_bits:6 ~data_bits:4
      ~num_tests:2
  in
  Alcotest.(check int) "controls are the inputs" 6 nl.Circuits.Netlist.num_inputs;
  (* the output must be monotone in "more tests pass": just check that
     SOME control assignment satisfies the sketch and the encoded
     formula agrees with simulation on a few vectors *)
  let enc = Circuits.Tseitin.encode ~assert_outputs:false nl in
  let f = enc.Circuits.Tseitin.formula in
  for mask = 0 to 63 do
    let inputs = Array.init 6 (fun i -> mask land (1 lsl i) <> 0) in
    let sim = (Circuits.Netlist.simulate nl inputs).(0) in
    let units =
      Array.to_list enc.Circuits.Tseitin.input_vars
      |> List.mapi (fun i v -> Cnf.Clause.of_list [ Cnf.Lit.make v inputs.(i) ])
    in
    let g =
      Cnf.Formula.add_clauses f
        (Cnf.Clause.of_list [ Cnf.Lit.pos enc.Circuits.Tseitin.output_vars.(0) ]
        :: units)
    in
    let solver = Sat.Solver.create g in
    let sat = Sat.Solver.solve solver = Sat.Solver.Sat in
    Alcotest.(check bool) (Printf.sprintf "mask %d" mask) sim sat
  done

let test_case_formula_satisfiable_and_projected () =
  let rng = Rng.create 5 in
  let f = Circuits.Generators.case_formula ~rng ~num_inputs:8 ~num_gates:30 in
  let s = Array.length (Cnf.Formula.sampling_vars f) in
  Alcotest.(check int) "sampling = inputs" 8 s

let () =
  Alcotest.run "circuits"
    [
      ( "netlist",
        [
          Alcotest.test_case "gates" `Quick test_simple_gates;
          Alcotest.test_case "mux" `Quick test_mux;
          Alcotest.test_case "consts and lists" `Quick test_const_and_lists;
          Alcotest.test_case "dangling" `Quick test_builder_rejects_dangling;
          Alcotest.test_case "input arity" `Quick test_wrong_input_arity;
          Alcotest.test_case "gate count" `Quick test_num_gates;
        ] );
      ( "arith",
        [
          Alcotest.test_case "adder" `Quick test_adder;
          Alcotest.test_case "multiplier" `Quick test_multiplier;
          Alcotest.test_case "squarer" `Quick test_squarer;
          Alcotest.test_case "comparators" `Quick test_comparators;
          Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
        ] );
      ( "tseitin",
        [
          Alcotest.test_case "gate mix" `Quick test_tseitin_gate_mix;
          Alcotest.test_case "arithmetic" `Quick test_tseitin_arith;
          Alcotest.test_case "constants" `Quick test_tseitin_constants;
          Alcotest.test_case "sampling set" `Quick test_tseitin_sampling_set_is_inputs;
          Alcotest.test_case "asserted outputs" `Quick test_tseitin_assert_outputs_counts;
          Alcotest.test_case "independent support" `Quick
            test_tseitin_inputs_are_independent_support;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "unroll semantics" `Quick test_unroll_semantics;
          Alcotest.test_case "observe all" `Quick test_unroll_observe_all;
          Alcotest.test_case "unroll vs iteration" `Quick test_unroll_matches_step_simulation;
          Alcotest.test_case "validation" `Quick test_sequential_validation;
        ] );
      ( "generators",
        [
          Alcotest.test_case "lfsr" `Quick test_lfsr_shifts;
          Alcotest.test_case "squaring equivalence" `Quick
            test_squaring_equivalence_solutions;
          Alcotest.test_case "multiplier equivalence" `Quick
            test_multiplier_equivalence_count;
          Alcotest.test_case "sketch" `Quick test_sketch_solutions_match_spec;
          Alcotest.test_case "case formula" `Quick test_case_formula_satisfiable_and_projected;
        ] );
    ]

(* Tests for the core sampling library: ComputeKappaPivot, UniGen and
   its guarantees, the baselines, the ideal sampler, and the
   statistics machinery. *)

let clause = Cnf.Clause.of_dimacs

(* ------------------------------------------------------------------ *)
(* ComputeKappaPivot *)

let test_kappa_pivot_epsilon_6 () =
  (* for ε = 6 the paper's experiments: κ ≈ 0.546, pivot ≈ 40 *)
  let kappa, pivot = Sampling.Kappa_pivot.compute 6.0 in
  Alcotest.(check bool) (Printf.sprintf "kappa %.3f" kappa) true
    (kappa > 0.52 && kappa < 0.57);
  Alcotest.(check bool) (Printf.sprintf "pivot %d" pivot) true
    (pivot >= 38 && pivot <= 42)

let test_kappa_solves_equation () =
  List.iter
    (fun eps ->
      let kappa, _ = Sampling.Kappa_pivot.compute eps in
      let lhs = ((1.0 +. kappa) *. (2.23 +. (0.48 /. ((1.0 -. kappa) ** 2.0)))) -. 1.0 in
      Alcotest.(check (float 0.001)) (Printf.sprintf "eps %.2f" eps) eps lhs)
    [ 1.72; 2.0; 3.0; 6.0; 10.0; 50.0 ]

let test_kappa_monotone () =
  let k1, p1 = Sampling.Kappa_pivot.compute 2.0 in
  let k2, p2 = Sampling.Kappa_pivot.compute 10.0 in
  Alcotest.(check bool) "kappa grows with eps" true (k2 > k1);
  Alcotest.(check bool) "pivot shrinks with eps" true (p2 < p1)

let test_kappa_rejects_small_epsilon () =
  Alcotest.(check bool) "eps 1.71 rejected" true
    (try
       ignore (Sampling.Kappa_pivot.compute 1.71);
       false
     with Invalid_argument _ -> true)

let test_thresholds () =
  let kappa, pivot = Sampling.Kappa_pivot.compute 6.0 in
  let hi = Sampling.Kappa_pivot.hi_thresh ~kappa ~pivot in
  let lo = Sampling.Kappa_pivot.lo_thresh ~kappa ~pivot in
  Alcotest.(check bool) "lo < pivot < hi" true
    (lo < float_of_int pivot && float_of_int pivot < hi);
  Alcotest.(check (float 0.001)) "hi formula"
    (1.0 +. ((1.0 +. kappa) *. float_of_int pivot))
    hi

(* ------------------------------------------------------------------ *)
(* UniGen core behaviour *)

let prepare ?(epsilon = 6.0) ?(seed = 42) f =
  match
    Sampling.Unigen.prepare ~count_iterations:9 ~rng:(Rng.create seed) ~epsilon f
  with
  | Ok p -> p
  | Error _ -> Alcotest.fail "prepare failed"

let test_unigen_unsat () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1 ]; clause [ -1 ] ] in
  match Sampling.Unigen.prepare ~rng:(Rng.create 1) ~epsilon:6.0 f with
  | Error Sampling.Unigen.Unsat_formula -> ()
  | _ -> Alcotest.fail "expected Unsat_formula"

let test_unigen_easy_case () =
  (* 8 witnesses < hiThresh: must take the easy path *)
  let f = Cnf.Formula.create ~num_vars:3 [] in
  let p = prepare f in
  Alcotest.(check bool) "easy" true (Sampling.Unigen.is_easy p);
  Alcotest.(check bool) "q absent" true (Sampling.Unigen.q_range p = None);
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    match Sampling.Unigen.sample ~rng p with
    | Ok m -> Alcotest.(check bool) "model valid" true (Cnf.Model.satisfies f m)
    | Error _ -> Alcotest.fail "easy case cannot fail"
  done

let test_unigen_rejects_small_epsilon () =
  let f = Cnf.Formula.create ~num_vars:3 [] in
  Alcotest.(check bool) "epsilon too small" true
    (try
       ignore (Sampling.Unigen.prepare ~rng:(Rng.create 1) ~epsilon:1.0 f);
       false
     with Invalid_argument _ -> true)

let test_unigen_hashed_case_produces_models () =
  (* 2^9 = 512 witnesses > hiThresh (~63): hashed path *)
  let f = Cnf.Formula.create ~num_vars:9 [] in
  let p = prepare f in
  Alcotest.(check bool) "not easy" false (Sampling.Unigen.is_easy p);
  (match Sampling.Unigen.q_range p with
  | None -> Alcotest.fail "expected q range"
  | Some (lo, hi) ->
      Alcotest.(check int) "window of 4" 3 (hi - lo);
      Alcotest.(check bool) (Printf.sprintf "q=%d sensible" hi) true
        (hi >= 3 && hi <= 6));
  let rng = Rng.create 6 in
  let produced = ref 0 in
  for _ = 1 to 50 do
    match Sampling.Unigen.sample ~rng p with
    | Ok m ->
        incr produced;
        Alcotest.(check bool) "model valid" true (Cnf.Model.satisfies f m)
    | Error Sampling.Sampler.Cell_failure -> ()
    | Error _ -> Alcotest.fail "unexpected failure kind"
  done;
  (* Theorem 1: success probability ≥ 0.62; with 50 draws expect ≥ 25 *)
  Alcotest.(check bool)
    (Printf.sprintf "produced %d/50" !produced)
    true (!produced >= 25)

let test_unigen_success_probability_bound () =
  (* measured success probability across the hashed case must beat the
     theoretical 0.62 bound with slack (paper observes ≈ 1) *)
  let f = Cnf.Formula.create ~num_vars:10 [ clause [ 1; 2 ] ] in
  let p = prepare f in
  let rng = Rng.create 7 in
  let n = 200 in
  for _ = 1 to n do
    ignore (Sampling.Unigen.sample ~rng p)
  done;
  let st = Sampling.Unigen.stats p in
  let succ = Sampling.Sampler.success_probability st in
  Alcotest.(check bool) (Printf.sprintf "success %.2f >= 0.62" succ) true
    (succ >= 0.62)

let test_unigen_sample_retrying () =
  let f = Cnf.Formula.create ~num_vars:9 [] in
  let p = prepare f in
  let rng = Rng.create 8 in
  for _ = 1 to 30 do
    match Sampling.Unigen.sample_retrying ~max_attempts:20 ~rng p with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "retrying should succeed on this formula"
  done

let test_unigen_respects_independent_support () =
  (* v3 = v1 xor v2 is dependent; sampling set {1,2} *)
  let f =
    Cnf.Formula.create_with_xors ~sampling_set:[ 1; 2 ] ~num_vars:3 []
      [ Cnf.Xor_clause.make [ 1; 2; 3 ] false ]
  in
  let p = prepare f in
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    match Sampling.Unigen.sample ~rng p with
    | Ok m ->
        Alcotest.(check bool) "consistent dependent var"
          (Cnf.Model.value m 3)
          (Cnf.Model.value m 1 <> Cnf.Model.value m 2)
    | Error _ -> Alcotest.fail "unexpected failure"
  done

(* The headline guarantee, checked empirically: on an enumerable
   formula the observed frequency of every witness stays within the
   (1+ε) band of Theorem 1 — and in fact much closer to uniform. *)
let test_unigen_almost_uniformity () =
  let f =
    Cnf.Formula.create ~num_vars:8 [ clause [ 1; 2; 3 ]; clause [ -1; -2 ] ]
  in
  let rf = Sat.Brute.count f in
  let p = prepare f in
  let rng = Rng.create 10 in
  let samples = 20_000 in
  let keys = ref [] in
  let drawn = ref 0 in
  while !drawn < samples do
    match Sampling.Unigen.sample ~rng p with
    | Ok m ->
        incr drawn;
        keys := Cnf.Model.key m :: !keys
    | Error _ -> ()
  done;
  let h = Sampling.Stats.histogram_of_keys !keys in
  Alcotest.(check bool)
    (Printf.sprintf "all %d witnesses seen (%d distinct)" rf (Hashtbl.length h))
    true
    (Hashtbl.length h = rf);
  let epsilon = 6.0 in
  let expected = float_of_int samples /. float_of_int rf in
  Hashtbl.iter
    (fun _ c ->
      let ratio = float_of_int c /. expected in
      (* Theorem 1 allows [1/(1+ε), (1+ε)] around uniform (up to the
         |R_F|−1 vs |R_F| distinction); sampling noise is tiny at these
         counts *)
      if ratio < 1.0 /. (1.0 +. epsilon) || ratio > 1.0 +. epsilon then
        Alcotest.failf "witness frequency ratio %.2f outside tolerance" ratio)
    h;
  (* stronger: empirically the distribution is near-uniform *)
  let tv =
    Sampling.Stats.total_variation_from_uniform ~num_outcomes:rf
      ~num_samples:samples h
  in
  Alcotest.(check bool) (Printf.sprintf "TV %.3f small" tv) true (tv < 0.15)

(* ------------------------------------------------------------------ *)
(* UniWit *)

let test_uniwit_produces_valid_models () =
  let f = Cnf.Formula.create ~num_vars:8 [ clause [ 1; 2 ] ] in
  let rng = Rng.create 11 in
  let ok = ref 0 in
  for _ = 1 to 30 do
    match Sampling.Uniwit.sample ~rng f with
    | Ok m ->
        incr ok;
        Alcotest.(check bool) "valid" true (Cnf.Model.satisfies f m)
    | Error Sampling.Sampler.Cell_failure -> ()
    | Error _ -> Alcotest.fail "unexpected failure kind"
  done;
  (* UniWit's bound is only 1/8, but in practice it succeeds often *)
  Alcotest.(check bool) (Printf.sprintf "%d/30 produced" !ok) true (!ok >= 8)

let test_uniwit_unsat () =
  let f = Cnf.Formula.create ~num_vars:1 [ clause [ 1 ]; clause [ -1 ] ] in
  match Sampling.Uniwit.sample ~rng:(Rng.create 12) f with
  | Error Sampling.Sampler.Unsat -> ()
  | _ -> Alcotest.fail "expected Unsat"

let test_uniwit_easy_case () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1 ] ] in
  match Sampling.Uniwit.sample ~rng:(Rng.create 13) f with
  | Ok m -> Alcotest.(check bool) "valid" true (Cnf.Model.satisfies f m)
  | Error _ -> Alcotest.fail "small formula cannot fail"

let test_uniwit_hashes_full_support () =
  (* sampling set {1} is declared, but UniWit must ignore it and hash
     over all 10 variables: average xor length ≈ 5, not ≈ 0.5 *)
  let f = Cnf.Formula.create ~sampling_set:[ 1 ] ~num_vars:10 [] in
  let stats = Sampling.Sampler.fresh_stats () in
  let rng = Rng.create 14 in
  for _ = 1 to 20 do
    ignore (Sampling.Uniwit.sample ~stats ~rng f)
  done;
  let len = Sampling.Sampler.average_xor_length stats in
  Alcotest.(check bool) (Printf.sprintf "xor len %.1f ≈ |X|/2" len) true
    (len > 3.0 && len < 7.0)

(* ------------------------------------------------------------------ *)
(* XORSample' *)

let test_xorsample_valid_models () =
  let f = Cnf.Formula.create ~num_vars:8 [ clause [ 1; 2 ] ] in
  let rng = Rng.create 15 in
  let ok = ref 0 in
  for _ = 1 to 40 do
    (* |R_F| = 192, log2 ≈ 7.6: s = 5 leaves cells of ~6 *)
    match Sampling.Xorsample.sample ~rng ~s:5 f with
    | Ok m ->
        incr ok;
        Alcotest.(check bool) "valid" true (Cnf.Model.satisfies f m)
    | Error Sampling.Sampler.Cell_failure -> ()
    | Error _ -> Alcotest.fail "unexpected failure kind"
  done;
  Alcotest.(check bool) (Printf.sprintf "%d/40" !ok) true (!ok >= 10)

let test_xorsample_s_too_large_fails_often () =
  let f = Cnf.Formula.create ~num_vars:6 [] in
  let rng = Rng.create 16 in
  let failures = ref 0 in
  for _ = 1 to 30 do
    (* s = 10 > n = 6: cells are almost always empty *)
    match Sampling.Xorsample.sample ~rng ~s:10 f with
    | Error Sampling.Sampler.Cell_failure -> incr failures
    | _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "%d/30 failures" !failures) true
    (!failures >= 20)

let test_xorsample_statistical_distance () =
  (* On a free formula the witnesses are exchangeable under the random
     affine XOR family, so XORSample' is exactly uniform over the 2^6
     models — the empirical distribution must be statistically close to
     uniform (chi-square p-value well away from 0, small TV distance). *)
  let f = Cnf.Formula.create ~num_vars:6 [] in
  let rng = Rng.create 19 in
  let target = 4_000 in
  let keys = ref [] in
  let accepted = ref 0 and attempts = ref 0 in
  while !accepted < target && !attempts < target * 30 do
    incr attempts;
    match Sampling.Xorsample.sample ~rng ~s:3 f with
    | Ok m ->
        incr accepted;
        keys := Cnf.Model.key m :: !keys
    | Error _ -> ()
  done;
  Alcotest.(check int) "collected enough accepted samples" target !accepted;
  let h = Sampling.Stats.histogram_of_keys !keys in
  Alcotest.(check int) "all 64 witnesses reached" 64 (Hashtbl.length h);
  let p =
    Sampling.Stats.uniformity_pvalue ~num_outcomes:64 ~num_samples:target h
  in
  Alcotest.(check bool) (Printf.sprintf "p-value %.4f" p) true (p > 1e-4);
  let tv =
    Sampling.Stats.total_variation_from_uniform ~num_outcomes:64
      ~num_samples:target h
  in
  Alcotest.(check bool) (Printf.sprintf "TV %.3f" tv) true (tv < 0.15)

(* ------------------------------------------------------------------ *)
(* MCMC baseline *)

let test_mcmc_valid_models () =
  let f = Cnf.Formula.create ~num_vars:10 [ clause [ 1; 2 ]; clause [ -3; 4 ] ] in
  let rng = Rng.create 71 in
  let ok = ref 0 in
  for _ = 1 to 20 do
    match Sampling.Mcmc.sample ~rng f with
    | Ok m ->
        incr ok;
        Alcotest.(check bool) "valid" true (Cnf.Model.satisfies f m)
    | Error _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "%d/20 produced" !ok) true (!ok >= 15)

let test_mcmc_handles_xors () =
  let f =
    Cnf.Formula.create_with_xors ~num_vars:6 []
      [ Cnf.Xor_clause.make [ 1; 2; 3 ] true; Cnf.Xor_clause.make [ 4; 5 ] false ]
  in
  let rng = Rng.create 72 in
  match Sampling.Mcmc.sample ~rng f with
  | Ok m -> Alcotest.(check bool) "valid" true (Cnf.Model.satisfies f m)
  | Error _ -> Alcotest.fail "easy xor system should be reachable"

let test_mcmc_fails_on_hard_unsat () =
  (* unsatisfiable: the walk can never reach energy 0 *)
  let f =
    Cnf.Formula.create ~num_vars:2
      [ clause [ 1 ]; clause [ -1; 2 ]; clause [ -2 ] ]
  in
  let rng = Rng.create 73 in
  match Sampling.Mcmc.sample ~steps:500 ~restarts:2 ~rng f with
  | Error Sampling.Sampler.Cell_failure -> ()
  | Ok _ -> Alcotest.fail "cannot sample an unsat formula"
  | Error _ -> Alcotest.fail "unexpected failure kind"

let test_mcmc_records_stats () =
  let f = Cnf.Formula.create ~num_vars:5 [] in
  let stats = Sampling.Sampler.fresh_stats () in
  let rng = Rng.create 74 in
  for _ = 1 to 5 do
    ignore (Sampling.Mcmc.sample ~stats ~rng f)
  done;
  Alcotest.(check int) "requested" 5 stats.Sampling.Sampler.samples_requested;
  Alcotest.(check int) "produced" 5 stats.Sampling.Sampler.samples_produced

(* ------------------------------------------------------------------ *)
(* US *)

let test_us_size_matches_exact_count () =
  let f = Cnf.Formula.create ~num_vars:8 [ clause [ 1; 2; 3 ] ] in
  let us = Sampling.Us.create f in
  Alcotest.(check int) "size = exact count"
    (Sampling.Us.exact_count f) (Sampling.Us.size us)

let test_us_unsat () =
  let f = Cnf.Formula.create ~num_vars:1 [ clause [ 1 ]; clause [ -1 ] ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sampling.Us.create f);
       false
     with Not_found -> true)

let test_us_limit () =
  let f = Cnf.Formula.create ~num_vars:12 [] in
  Alcotest.(check bool) "limit enforced" true
    (try
       ignore (Sampling.Us.create ~limit:100 f);
       false
     with Failure _ -> true)

let test_us_uniform () =
  let f = Cnf.Formula.create ~num_vars:6 [] in
  let us = Sampling.Us.create f in
  let rng = Rng.create 17 in
  let n = 64_000 in
  let keys = List.init n (fun _ -> Cnf.Model.key (Sampling.Us.sample ~rng us)) in
  let h = Sampling.Stats.histogram_of_keys keys in
  let p = Sampling.Stats.uniformity_pvalue ~num_outcomes:64 ~num_samples:n h in
  Alcotest.(check bool) (Printf.sprintf "p-value %.3f" p) true (p > 0.001)

let test_us_sample_index_range () =
  let f = Cnf.Formula.create ~num_vars:5 [] in
  let us = Sampling.Us.create f in
  let rng = Rng.create 18 in
  for _ = 1 to 200 do
    let i = Sampling.Us.sample_index ~rng us in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 32)
  done

(* ------------------------------------------------------------------ *)
(* Weighted sampling *)

let test_weight_of_float () =
  let w = Sampling.Weighted.weight_of_float ~log_denom:3 0.25 in
  Alcotest.(check int) "num" 2 w.Sampling.Weighted.num;
  Alcotest.(check (float 1e-9)) "prob" 0.25 (Sampling.Weighted.probability w);
  Alcotest.(check bool) "degenerate rejected" true
    (try
       ignore (Sampling.Weighted.weight_of_float ~log_denom:3 0.999);
       false
     with Invalid_argument _ -> true)

let test_lift_structure () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1; 2 ] ] in
  let w = Sampling.Weighted.weight_of_float ~log_denom:2 0.25 in
  let lifted = Sampling.Weighted.lift f [ (1, w) ] in
  (* 2 original + 2 coins *)
  Alcotest.(check int) "vars" 4 lifted.Sampling.Weighted.formula.Cnf.Formula.num_vars;
  (* sampling set: v2 and the two coins; v1 became dependent *)
  let s = Cnf.Formula.sampling_vars lifted.Sampling.Weighted.formula in
  Alcotest.(check (array int)) "sampling set" [| 2; 3; 4 |] s

let test_lift_validation () =
  let f = Cnf.Formula.create ~sampling_set:[ 1 ] ~num_vars:2 [ clause [ 1; 2 ] ] in
  let w = Sampling.Weighted.weight_of_float ~log_denom:2 0.5 in
  Alcotest.(check bool) "non-sampling var rejected" true
    (try
       ignore (Sampling.Weighted.lift f [ (2, w) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Sampling.Weighted.lift f [ (1, w); (1, w) ]);
       false
     with Invalid_argument _ -> true)

let test_lift_projected_witnesses_unchanged () =
  (* lifting must not change which original assignments are witnesses *)
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2 ]; clause [ -2; 3 ] ] in
  let w = Sampling.Weighted.weight_of_float ~log_denom:3 0.375 in
  let lifted = Sampling.Weighted.lift f [ (2, w) ] in
  let g = lifted.Sampling.Weighted.formula in
  (* every witness of g projects to a witness of f, and the number of
     lifted witnesses per original witness is num or denom-num *)
  let counts = Hashtbl.create 16 in
  let n = g.Cnf.Formula.num_vars in
  for mask = 0 to (1 lsl n) - 1 do
    let value v = mask land (1 lsl (v - 1)) <> 0 in
    if Cnf.Formula.eval g value then begin
      let m = Cnf.Model.make n value in
      Alcotest.(check bool) "projects to witness" true
        (Cnf.Formula.eval f (fun v -> Cnf.Model.value m v));
      let key = Cnf.Model.key (Sampling.Weighted.project lifted m) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    end
  done;
  Alcotest.(check int) "all originals covered" (Sat.Brute.count f)
    (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "multiplicity is num or denom-num" true
        (c = 3 || c = 5))
    counts

let test_weighted_sampling_distribution () =
  (* single free weighted variable: empirical frequency must match *)
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1; 2 ] ] in
  let w = Sampling.Weighted.weight_of_float ~log_denom:3 0.125 in
  let lifted = Sampling.Weighted.lift f [ (1, w) ] in
  let rng = Rng.create 91 in
  match
    Sampling.Unigen.prepare ~count_iterations:5 ~rng ~epsilon:6.0
      lifted.Sampling.Weighted.formula
  with
  | Error _ -> Alcotest.fail "prepare failed"
  | Ok p ->
      let trials = 4000 in
      let v1_true = ref 0 and drawn = ref 0 in
      while !drawn < trials do
        match Sampling.Unigen.sample ~rng p with
        | Ok m ->
            incr drawn;
            if Cnf.Model.value m 1 then incr v1_true
        | Error _ -> ()
      done;
      (* analytic: P(v1) = w·1 / (w·1 + (1−w)·P(v2|¬v1))
         witnesses: (1,0),(1,1) weight w each... enumerate directly *)
      let weights = [ (1, w) ] in
      let total = ref 0.0 and v1_mass = ref 0.0 in
      for mask = 0 to 3 do
        let value v = mask land (1 lsl (v - 1)) <> 0 in
        if Cnf.Formula.eval f value then begin
          let m = Cnf.Model.make 2 value in
          let pr = Sampling.Weighted.expected_probability lifted weights m in
          total := !total +. pr;
          if value 1 then v1_mass := !v1_mass +. pr
        end
      done;
      let expected = !v1_mass /. !total in
      let observed = float_of_int !v1_true /. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "observed %.3f vs expected %.3f" observed expected)
        true
        (Float.abs (observed -. expected) < 0.05)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_histogram () =
  let h = Sampling.Stats.histogram_of_keys [ "a"; "b"; "a"; "c"; "a" ] in
  Alcotest.(check int) "a" 3 (Hashtbl.find h "a");
  Alcotest.(check int) "b" 1 (Hashtbl.find h "b");
  Alcotest.(check int) "distinct" 3 (Hashtbl.length h)

let test_occurrence_distribution () =
  let h = Sampling.Stats.histogram_of_keys [ "a"; "b"; "a"; "c"; "a"; "b" ] in
  let d = Sampling.Stats.occurrence_distribution h in
  Alcotest.(check (list (pair int int))) "series" [ (1, 1); (2, 1); (3, 1) ] d;
  let d0 = Sampling.Stats.occurrence_distribution ~support_size:10 h in
  Alcotest.(check (list (pair int int))) "with zeros"
    [ (0, 7); (1, 1); (2, 1); (3, 1) ]
    d0

let test_chi_square_uniform_data () =
  (* perfectly uniform data: statistic 0, p-value 1 *)
  let h = Sampling.Stats.histogram_of_keys [ "a"; "b"; "c"; "d" ] in
  let s = Sampling.Stats.chi_square_uniform ~num_outcomes:4 ~num_samples:4 h in
  Alcotest.(check (float 1e-9)) "statistic 0" 0.0 s;
  Alcotest.(check (float 1e-9)) "pvalue 1" 1.0
    (Sampling.Stats.chi_square_pvalue ~dof:3 s)

let test_chi_square_skewed_data () =
  let keys = List.init 1000 (fun _ -> "only") in
  let h = Sampling.Stats.histogram_of_keys keys in
  let p = Sampling.Stats.uniformity_pvalue ~num_outcomes:100 ~num_samples:1000 h in
  Alcotest.(check bool) (Printf.sprintf "rejects uniformity (p=%.6f)" p) true
    (p < 1e-6)

let test_gamma_function_values () =
  (* ln Γ(1) = 0, ln Γ(2) = 0, ln Γ(5) = ln 24 *)
  Alcotest.(check (float 1e-9)) "lnG(1)" 0.0 (Sampling.Stats.log_gamma 1.0);
  Alcotest.(check (float 1e-9)) "lnG(2)" 0.0 (Sampling.Stats.log_gamma 2.0);
  Alcotest.(check (float 1e-6)) "lnG(5)" (Float.log 24.0)
    (Sampling.Stats.log_gamma 5.0);
  (* Γ(1/2) = √π *)
  Alcotest.(check (float 1e-6)) "lnG(1/2)"
    (Float.log (Float.sqrt Float.pi))
    (Sampling.Stats.log_gamma 0.5)

let test_regularized_gamma () =
  (* P(1, x) = 1 − e^(−x) *)
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "P(1,%.1f)" x)
        (1.0 -. Float.exp (-.x))
        (Sampling.Stats.regularized_gamma_p 1.0 x))
    [ 0.1; 0.5; 1.0; 2.0; 5.0 ]

let test_chi_square_known_quantiles () =
  (* χ²(1): P[X > 3.841] ≈ 0.05 *)
  Alcotest.(check (float 0.003)) "3.841 @ dof 1" 0.05
    (Sampling.Stats.chi_square_pvalue ~dof:1 3.841);
  (* χ²(10): P[X > 18.307] ≈ 0.05 *)
  Alcotest.(check (float 0.003)) "18.307 @ dof 10" 0.05
    (Sampling.Stats.chi_square_pvalue ~dof:10 18.307)

let test_tv_and_kl () =
  let h = Sampling.Stats.histogram_of_keys [ "a"; "a"; "b"; "b" ] in
  (* uniform over {a,b}: zero distance *)
  Alcotest.(check (float 1e-9)) "TV 0" 0.0
    (Sampling.Stats.total_variation_from_uniform ~num_outcomes:2 ~num_samples:4 h);
  Alcotest.(check (float 1e-9)) "KL 0" 0.0
    (Sampling.Stats.kl_from_uniform ~num_outcomes:2 ~num_samples:4 h);
  let skew = Sampling.Stats.histogram_of_keys [ "a"; "a"; "a"; "a" ] in
  Alcotest.(check (float 1e-9)) "TV skewed" 0.5
    (Sampling.Stats.total_variation_from_uniform ~num_outcomes:2 ~num_samples:4 skew);
  Alcotest.(check (float 1e-9)) "KL skewed" 1.0
    (Sampling.Stats.kl_from_uniform ~num_outcomes:2 ~num_samples:4 skew)

let test_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Sampling.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0
    (Sampling.Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "empty mean NaN" true
    (Float.is_nan (Sampling.Stats.mean []))

let () =
  Alcotest.run "sampling"
    [
      ( "kappa_pivot",
        [
          Alcotest.test_case "epsilon 6" `Quick test_kappa_pivot_epsilon_6;
          Alcotest.test_case "solves equation" `Quick test_kappa_solves_equation;
          Alcotest.test_case "monotone" `Quick test_kappa_monotone;
          Alcotest.test_case "rejects small eps" `Quick test_kappa_rejects_small_epsilon;
          Alcotest.test_case "thresholds" `Quick test_thresholds;
        ] );
      ( "unigen",
        [
          Alcotest.test_case "unsat" `Quick test_unigen_unsat;
          Alcotest.test_case "easy case" `Quick test_unigen_easy_case;
          Alcotest.test_case "rejects small eps" `Quick test_unigen_rejects_small_epsilon;
          Alcotest.test_case "hashed case" `Quick test_unigen_hashed_case_produces_models;
          Alcotest.test_case "success bound" `Quick test_unigen_success_probability_bound;
          Alcotest.test_case "retrying" `Quick test_unigen_sample_retrying;
          Alcotest.test_case "independent support" `Quick
            test_unigen_respects_independent_support;
          Alcotest.test_case "almost uniformity" `Slow test_unigen_almost_uniformity;
        ] );
      ( "uniwit",
        [
          Alcotest.test_case "valid models" `Quick test_uniwit_produces_valid_models;
          Alcotest.test_case "unsat" `Quick test_uniwit_unsat;
          Alcotest.test_case "easy case" `Quick test_uniwit_easy_case;
          Alcotest.test_case "full support hashing" `Quick test_uniwit_hashes_full_support;
        ] );
      ( "xorsample",
        [
          Alcotest.test_case "valid models" `Quick test_xorsample_valid_models;
          Alcotest.test_case "s too large" `Quick test_xorsample_s_too_large_fails_often;
          Alcotest.test_case "statistical distance" `Slow
            test_xorsample_statistical_distance;
        ] );
      ( "mcmc",
        [
          Alcotest.test_case "valid models" `Quick test_mcmc_valid_models;
          Alcotest.test_case "handles xors" `Quick test_mcmc_handles_xors;
          Alcotest.test_case "unsat" `Quick test_mcmc_fails_on_hard_unsat;
          Alcotest.test_case "stats" `Quick test_mcmc_records_stats;
        ] );
      ( "us",
        [
          Alcotest.test_case "size = exact count" `Quick test_us_size_matches_exact_count;
          Alcotest.test_case "unsat" `Quick test_us_unsat;
          Alcotest.test_case "limit" `Quick test_us_limit;
          Alcotest.test_case "uniform" `Quick test_us_uniform;
          Alcotest.test_case "index range" `Quick test_us_sample_index_range;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "weight of float" `Quick test_weight_of_float;
          Alcotest.test_case "lift structure" `Quick test_lift_structure;
          Alcotest.test_case "lift validation" `Quick test_lift_validation;
          Alcotest.test_case "projection unchanged" `Quick
            test_lift_projected_witnesses_unchanged;
          Alcotest.test_case "distribution" `Slow test_weighted_sampling_distribution;
        ] );
      ( "stats",
        [
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "occurrence distribution" `Quick test_occurrence_distribution;
          Alcotest.test_case "chi2 uniform" `Quick test_chi_square_uniform_data;
          Alcotest.test_case "chi2 skewed" `Quick test_chi_square_skewed_data;
          Alcotest.test_case "log gamma" `Quick test_gamma_function_values;
          Alcotest.test_case "regularized gamma" `Quick test_regularized_gamma;
          Alcotest.test_case "chi2 quantiles" `Quick test_chi_square_known_quantiles;
          Alcotest.test_case "tv and kl" `Quick test_tv_and_kl;
          Alcotest.test_case "mean stddev" `Quick test_mean_stddev;
        ] );
    ]

(* Tests for the xoshiro256** PRNG substrate. *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "nearby seeds diverge" true !differs

let test_self_test () =
  Alcotest.(check bool) "self test" true (Rng.self_test ())

let test_int_bounds () =
  let rng = Rng.create 7 in
  for bound = 1 to 50 do
    for _ = 1 to 200 do
      let v = Rng.int rng bound in
      if v < 0 || v >= bound then
        Alcotest.failf "Rng.int %d returned %d" bound v
    done
  done

let test_int_invalid () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_range () =
  let rng = Rng.create 3 in
  let bound = 8 in
  let seen = Array.make bound false in
  for _ = 1 to 2000 do
    seen.(Rng.int rng bound) <- true
  done;
  Alcotest.(check bool) "all values reachable" true (Array.for_all Fun.id seen)

let test_int_roughly_uniform () =
  let rng = Rng.create 11 in
  let bound = 10 and trials = 50_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to trials do
    let v = Rng.int rng bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int trials /. float_of_int bound in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      if dev > 0.1 then Alcotest.failf "bucket %d deviates by %.2f" i dev)
    counts

let test_bool_balance () =
  let rng = Rng.create 13 in
  let trues = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    if Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int trials in
  Alcotest.(check bool) "balanced" true (ratio > 0.48 && ratio < 0.52)

let test_float_bounds () =
  let rng = Rng.create 17 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 1.0 in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of range: %f" v
  done

let test_split_independence () =
  let parent = Rng.create 23 in
  let child = Rng.split parent in
  (* child and parent streams should not coincide *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 parent) (Rng.bits64 child) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_of_stream_determinism () =
  (* (seed, index) fully determines the stream: reconstructing the
     generator replays it exactly. *)
  let a = Rng.of_stream ~seed:42 17 and b = Rng.of_stream ~seed:42 17 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_of_stream_index_sensitivity () =
  (* distinct indices from one seed yield pairwise distinct streams
     (first word already differs) *)
  let firsts =
    Array.init 21 (fun i -> Rng.bits64 (Rng.of_stream ~seed:7 i))
  in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          if i < j && Int64.equal x y then
            Alcotest.failf "streams %d and %d share their first word" i j)
        firsts)
    firsts

let test_of_stream_negative_index () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.of_stream: negative stream index") (fun () ->
      ignore (Rng.of_stream ~seed:1 (-1)))

let popcount64 x =
  let c = ref 0 in
  for i = 0 to 63 do
    if Int64.(logand (shift_right_logical x i) 1L) = 1L then incr c
  done;
  !c

let test_of_stream_avalanche () =
  (* Adjacent stream indices should flip about half the 64 output bits
     on average — the splitmix64 finalizer destroys the +1 structure of
     the index. Mean Hamming distance over 100 adjacent pairs must sit
     near 32. *)
  let pairs = 100 in
  let total = ref 0 in
  for i = 0 to pairs - 1 do
    let x = Rng.bits64 (Rng.of_stream ~seed:123 i)
    and y = Rng.bits64 (Rng.of_stream ~seed:123 (i + 1)) in
    total := !total + popcount64 (Int64.logxor x y)
  done;
  let mean = float_of_int !total /. float_of_int pairs in
  if mean < 28.0 || mean > 36.0 then
    Alcotest.failf "avalanche mean %.2f outside [28, 36]" mean

let test_of_stream_equidistribution () =
  (* A derived stream must pass the same marginal checks as a root
     generator: 10-bucket frequencies within 10% and balanced bools. *)
  let rng = Rng.of_stream ~seed:2024 5 in
  let bound = 10 and trials = 50_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to trials do
    let v = Rng.int rng bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int trials /. float_of_int bound in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      if dev > 0.1 then Alcotest.failf "bucket %d deviates by %.2f" i dev)
    counts;
  let rng = Rng.of_stream ~seed:2024 6 in
  let trues = ref 0 in
  for _ = 1 to trials do
    if Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int trials in
  Alcotest.(check bool) "bool balance" true (ratio > 0.48 && ratio < 0.52)

let test_split_equidistribution () =
  (* A split child must also look marginally uniform. *)
  let child = Rng.split (Rng.create 77) in
  let bound = 10 and trials = 50_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to trials do
    let v = Rng.int child bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int trials /. float_of_int bound in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      if dev > 0.1 then Alcotest.failf "bucket %d deviates by %.2f" i dev)
    counts

let test_copy () =
  let a = Rng.create 29 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_shuffle_is_permutation () =
  let rng = Rng.create 31 in
  for n = 0 to 20 do
    let a = Array.init n (fun i -> i) in
    Rng.shuffle rng a;
    let sorted = Array.copy a in
    Array.sort Int.compare sorted;
    Alcotest.(check (array int)) "permutation" (Array.init n Fun.id) sorted
  done

let test_shuffle_moves_elements () =
  let rng = Rng.create 37 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  Alcotest.(check bool) "not identity" true (a <> Array.init 100 (fun i -> i))

let test_choose () =
  let rng = Rng.create 41 in
  let a = [| "x"; "y"; "z" |] in
  let seen = Hashtbl.create 3 in
  for _ = 1 to 200 do
    Hashtbl.replace seen (Rng.choose rng a) ()
  done;
  Alcotest.(check int) "all elements chosen" 3 (Hashtbl.length seen)

let test_choose_empty () =
  let rng = Rng.create 43 in
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_choose_list () =
  let rng = Rng.create 47 in
  let l = [ 1; 2; 3; 4 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (List.mem (Rng.choose_list rng l) l)
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 53 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Rng.create 59 in
  let hits = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.28 && rate < 0.32)

let () =
  Alcotest.run "prng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "self test" `Quick test_self_test;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "int roughly uniform" `Quick test_int_roughly_uniform;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "split equidistribution" `Quick
            test_split_equidistribution;
          Alcotest.test_case "of_stream determinism" `Quick
            test_of_stream_determinism;
          Alcotest.test_case "of_stream index sensitivity" `Quick
            test_of_stream_index_sensitivity;
          Alcotest.test_case "of_stream negative index" `Quick
            test_of_stream_negative_index;
          Alcotest.test_case "of_stream avalanche" `Quick
            test_of_stream_avalanche;
          Alcotest.test_case "of_stream equidistribution" `Quick
            test_of_stream_equidistribution;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_elements;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "choose empty" `Quick test_choose_empty;
          Alcotest.test_case "choose list" `Quick test_choose_list;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        ] );
    ]

(* Tests for the solver's internal containers: Vec and Order_heap. *)

(* ------------------------------------------------------------------ *)
(* Vec *)

module Vec_exposed = struct
  let create () = Sat.Vec.create ~dummy:(-1) ()
end

let test_vec_push_get () =
  let v = Vec_exposed.create () in
  for i = 0 to 99 do
    Sat.Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Sat.Vec.size v);
  for i = 0 to 99 do
    Alcotest.(check int) "get" i (Sat.Vec.get v i)
  done

let test_vec_pop_last () =
  let v = Vec_exposed.create () in
  Sat.Vec.push v 1;
  Sat.Vec.push v 2;
  Alcotest.(check int) "last" 2 (Sat.Vec.last v);
  Alcotest.(check int) "pop" 2 (Sat.Vec.pop v);
  Alcotest.(check int) "size" 1 (Sat.Vec.size v);
  Alcotest.(check int) "pop again" 1 (Sat.Vec.pop v);
  Alcotest.(check bool) "empty" true (Sat.Vec.is_empty v);
  Alcotest.(check bool) "pop empty raises" true
    (try
       ignore (Sat.Vec.pop v);
       false
     with Invalid_argument _ -> true)

let test_vec_bounds () =
  let v = Vec_exposed.create () in
  Sat.Vec.push v 5;
  Alcotest.(check bool) "get oob" true
    (try
       ignore (Sat.Vec.get v 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "set oob" true
    (try
       Sat.Vec.set v (-1) 0;
       false
     with Invalid_argument _ -> true)

let test_vec_shrink_clear () =
  let v = Vec_exposed.create () in
  for i = 0 to 9 do
    Sat.Vec.push v i
  done;
  Sat.Vec.shrink v 4;
  Alcotest.(check int) "shrunk" 4 (Sat.Vec.size v);
  Alcotest.(check (list int)) "contents" [ 0; 1; 2; 3 ] (Sat.Vec.to_list v);
  Sat.Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Sat.Vec.size v)

let test_vec_filter_in_place () =
  let v = Vec_exposed.create () in
  for i = 0 to 9 do
    Sat.Vec.push v i
  done;
  Sat.Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens kept in order" [ 0; 2; 4; 6; 8 ]
    (Sat.Vec.to_list v)

let test_vec_iter_fold_exists () =
  let v = Vec_exposed.create () in
  List.iter (Sat.Vec.push v) [ 3; 1; 4; 1; 5 ];
  Alcotest.(check int) "fold sum" 14 (Sat.Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Sat.Vec.exists (fun x -> x = 4) v);
  Alcotest.(check bool) "not exists" false (Sat.Vec.exists (fun x -> x = 9) v);
  let acc = ref [] in
  Sat.Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 5; 1; 4; 1; 3 ] !acc

let test_vec_sort () =
  let v = Vec_exposed.create () in
  List.iter (Sat.Vec.push v) [ 3; 1; 4; 1; 5 ];
  Sat.Vec.sort Int.compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] (Sat.Vec.to_list v)

let test_vec_growth () =
  let v = Sat.Vec.create ~capacity:1 ~dummy:0 () in
  for i = 0 to 9999 do
    Sat.Vec.push v i
  done;
  Alcotest.(check int) "grew" 10000 (Sat.Vec.size v);
  Alcotest.(check int) "tail intact" 9999 (Sat.Vec.get v 9999)

(* ------------------------------------------------------------------ *)
(* Order_heap *)

let test_heap_pop_order () =
  let n = 10 in
  let activity = Array.make (n + 1) 0.0 in
  for v = 1 to n do
    activity.(v) <- float_of_int (v * v mod 7)
  done;
  let h = Sat.Order_heap.create n activity in
  for v = 1 to n do
    Sat.Order_heap.insert h v
  done;
  Alcotest.(check int) "size" n (Sat.Order_heap.size h);
  let rec drain acc =
    match Sat.Order_heap.pop_max h with
    | None -> List.rev acc
    | Some v -> drain (activity.(v) :: acc)
  in
  let scores = drain [] in
  let sorted = List.sort (fun a b -> Float.compare b a) scores in
  Alcotest.(check (list (float 0.0))) "descending activity" sorted scores

let test_heap_insert_idempotent () =
  let activity = Array.make 4 0.0 in
  let h = Sat.Order_heap.create 3 activity in
  Sat.Order_heap.insert h 2;
  Sat.Order_heap.insert h 2;
  Alcotest.(check int) "no duplicate" 1 (Sat.Order_heap.size h);
  Alcotest.(check bool) "in heap" true (Sat.Order_heap.in_heap h 2);
  Alcotest.(check bool) "not in heap" false (Sat.Order_heap.in_heap h 1)

let test_heap_update_after_bump () =
  let activity = Array.make 4 0.0 in
  let h = Sat.Order_heap.create 3 activity in
  List.iter (Sat.Order_heap.insert h) [ 1; 2; 3 ];
  activity.(3) <- 100.0;
  Sat.Order_heap.update h 3;
  Alcotest.(check (option int)) "bumped var first" (Some 3) (Sat.Order_heap.pop_max h)

let test_heap_rebuild () =
  let activity = Array.make 6 0.0 in
  activity.(4) <- 9.0;
  let h = Sat.Order_heap.create 5 activity in
  List.iter (Sat.Order_heap.insert h) [ 1; 2; 3 ];
  Sat.Order_heap.rebuild h [ 4; 5 ];
  Alcotest.(check int) "rebuilt size" 2 (Sat.Order_heap.size h);
  Alcotest.(check (option int)) "max of new set" (Some 4) (Sat.Order_heap.pop_max h)

let prop_heap_is_priority_queue =
  QCheck2.Test.make ~count:200 ~name:"heap pops in activity order"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 1 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let activity = Array.make (n + 1) 0.0 in
      for v = 1 to n do
        activity.(v) <- Rng.float rng 100.0
      done;
      let h = Sat.Order_heap.create n activity in
      (* random interleaving of inserts and pops *)
      let inserted = Array.make (n + 1) false in
      let popped = ref [] in
      let ok = ref true in
      for _ = 1 to 3 * n do
        if Rng.bool rng then begin
          let v = 1 + Rng.int rng n in
          Sat.Order_heap.insert h v;
          inserted.(v) <- true
        end
        else
          match Sat.Order_heap.pop_max h with
          | None -> ()
          | Some v ->
              inserted.(v) <- false;
              popped := v :: !popped;
              (* must be >= everything still in the heap *)
              for u = 1 to n do
                if Sat.Order_heap.in_heap h u && activity.(u) > activity.(v) then
                  ok := false
              done
      done;
      !ok)

let () =
  Alcotest.run "containers"
    [
      ( "vec",
        [
          Alcotest.test_case "push get" `Quick test_vec_push_get;
          Alcotest.test_case "pop last" `Quick test_vec_pop_last;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "shrink clear" `Quick test_vec_shrink_clear;
          Alcotest.test_case "filter in place" `Quick test_vec_filter_in_place;
          Alcotest.test_case "iter fold exists" `Quick test_vec_iter_fold_exists;
          Alcotest.test_case "sort" `Quick test_vec_sort;
          Alcotest.test_case "growth" `Quick test_vec_growth;
        ] );
      ( "order_heap",
        [
          Alcotest.test_case "pop order" `Quick test_heap_pop_order;
          Alcotest.test_case "insert idempotent" `Quick test_heap_insert_idempotent;
          Alcotest.test_case "update" `Quick test_heap_update_after_bump;
          Alcotest.test_case "rebuild" `Quick test_heap_rebuild;
          QCheck_alcotest.to_alcotest prop_heap_is_priority_queue;
        ] );
    ]

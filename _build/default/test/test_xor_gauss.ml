(* Tests for GF(2) Gaussian elimination over XOR systems. *)

let xc vars rhs = Cnf.Xor_clause.make vars rhs

let ok = function
  | Ok r -> r
  | Error `Unsat -> Alcotest.fail "unexpected Unsat"

let test_empty_system () =
  let r = ok (Cnf.Xor_gauss.eliminate []) in
  Alcotest.(check int) "rank 0" 0 r.Cnf.Xor_gauss.rank;
  Alcotest.(check (list (pair int bool))) "no units" [] r.Cnf.Xor_gauss.units

let test_single_unit () =
  let r = ok (Cnf.Xor_gauss.eliminate [ xc [ 3 ] true ]) in
  Alcotest.(check (list (pair int bool))) "unit" [ (3, true) ] r.Cnf.Xor_gauss.units

let test_inconsistent_triangle () =
  (* 1⊕2=1, 2⊕3=1, 1⊕3=1 sums to 0=1 *)
  Alcotest.(check bool) "unsat" true
    (Cnf.Xor_gauss.eliminate
       [ xc [ 1; 2 ] true; xc [ 2; 3 ] true; xc [ 1; 3 ] true ]
    = Error `Unsat)

let test_consistent_triangle_rank () =
  let r =
    ok
      (Cnf.Xor_gauss.eliminate
         [ xc [ 1; 2 ] true; xc [ 2; 3 ] true; xc [ 1; 3 ] false ])
  in
  (* third row is the sum of the first two: rank 2 *)
  Alcotest.(check int) "rank 2" 2 r.Cnf.Xor_gauss.rank

let test_derives_units () =
  (* x1=1 and x1⊕x2=1 imply x2=0 after reduction *)
  let r = ok (Cnf.Xor_gauss.eliminate [ xc [ 1 ] true; xc [ 1; 2 ] true ]) in
  Alcotest.(check (list (pair int bool)))
    "both units"
    [ (1, true); (2, false) ]
    (List.sort compare r.Cnf.Xor_gauss.units)

let test_equivalences () =
  let r =
    ok (Cnf.Xor_gauss.eliminate [ xc [ 1; 2 ] false; xc [ 3; 4 ] true ])
  in
  Alcotest.(check int) "two equivalences" 2
    (List.length r.Cnf.Xor_gauss.equivalences)

let test_duplicates_collapse () =
  let r =
    ok (Cnf.Xor_gauss.eliminate [ xc [ 1; 2; 3 ] true; xc [ 1; 2; 3 ] true ])
  in
  Alcotest.(check int) "rank 1" 1 r.Cnf.Xor_gauss.rank

let test_solutions_log2 () =
  (* 2 independent rows over 5 vars: 2^3 solutions *)
  let s =
    Cnf.Xor_gauss.solutions_log2 ~num_vars:5
      [ xc [ 1; 2 ] true; xc [ 3; 4; 5 ] false ]
  in
  Alcotest.(check (option (float 1e-9))) "2^3" (Some 3.0) s;
  Alcotest.(check (option (float 1e-9))) "unsat none" None
    (Cnf.Xor_gauss.solutions_log2 ~num_vars:3
       [ xc [ 1 ] true; xc [ 1 ] false ])

let test_implies () =
  let system = [ xc [ 1; 2 ] true; xc [ 2; 3 ] false ] in
  Alcotest.(check bool) "sum implied" true
    (Cnf.Xor_gauss.implies system (xc [ 1; 3 ] true));
  Alcotest.(check bool) "independent not implied" false
    (Cnf.Xor_gauss.implies system (xc [ 1; 4 ] true));
  Alcotest.(check bool) "wrong rhs not implied" false
    (Cnf.Xor_gauss.implies system (xc [ 1; 3 ] false))

(* Cross-check against brute force: the reduced system must have
   exactly the same solutions as the input system. *)
let prop_elimination_preserves_solutions =
  QCheck2.Test.make ~count:300 ~name:"gauss preserves xor solutions"
    QCheck2.Gen.(triple (int_bound 100000) (int_range 1 8) (int_range 0 6))
    (fun (seed, nv, nx) ->
      let rng = Rng.create seed in
      let xors = List.init nx (fun _ -> Test_util.Gen.random_xor rng ~num_vars:nv) in
      let satisfies_all value xs = List.for_all (Cnf.Xor_clause.eval value) xs in
      match Cnf.Xor_gauss.eliminate xors with
      | Error `Unsat ->
          (* no assignment satisfies the input *)
          let any = ref false in
          for mask = 0 to (1 lsl nv) - 1 do
            let value v = mask land (1 lsl (v - 1)) <> 0 in
            if satisfies_all value xors then any := true
          done;
          not !any
      | Ok r ->
          let same = ref true in
          for mask = 0 to (1 lsl nv) - 1 do
            let value v = mask land (1 lsl (v - 1)) <> 0 in
            if
              not
                (Bool.equal (satisfies_all value xors)
                   (satisfies_all value r.Cnf.Xor_gauss.rows))
            then same := false
          done;
          !same)

let prop_rank_counts_solutions =
  QCheck2.Test.make ~count:200 ~name:"2^(n-rank) solutions"
    QCheck2.Gen.(triple (int_bound 100000) (int_range 1 8) (int_range 0 6))
    (fun (seed, nv, nx) ->
      let rng = Rng.create seed in
      let xors = List.init nx (fun _ -> Test_util.Gen.random_xor rng ~num_vars:nv) in
      let count = ref 0 in
      for mask = 0 to (1 lsl nv) - 1 do
        let value v = mask land (1 lsl (v - 1)) <> 0 in
        if List.for_all (Cnf.Xor_clause.eval value) xors then incr count
      done;
      match Cnf.Xor_gauss.solutions_log2 ~num_vars:nv xors with
      | None -> !count = 0
      | Some log2 -> !count = int_of_float (2.0 ** log2))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_elimination_preserves_solutions; prop_rank_counts_solutions ]

let () =
  Alcotest.run "xor_gauss"
    [
      ( "basic",
        [
          Alcotest.test_case "empty" `Quick test_empty_system;
          Alcotest.test_case "single unit" `Quick test_single_unit;
          Alcotest.test_case "inconsistent" `Quick test_inconsistent_triangle;
          Alcotest.test_case "rank" `Quick test_consistent_triangle_rank;
          Alcotest.test_case "derives units" `Quick test_derives_units;
          Alcotest.test_case "equivalences" `Quick test_equivalences;
          Alcotest.test_case "duplicates" `Quick test_duplicates_collapse;
          Alcotest.test_case "solutions log2" `Quick test_solutions_log2;
          Alcotest.test_case "implies" `Quick test_implies;
        ] );
      ("properties", qcheck_cases);
    ]

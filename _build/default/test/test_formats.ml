(* Tests for the EDA interchange formats: BLIF and AIGER. Round-trips
   are checked by exhaustive simulation equivalence. *)

module B = Circuits.Netlist.Builder

let simulate_all nl =
  let n = nl.Circuits.Netlist.num_inputs in
  List.init (1 lsl n) (fun mask ->
      let inputs = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
      Circuits.Netlist.simulate nl inputs)

let check_equivalent name a b =
  Alcotest.(check int)
    (name ^ ": same input count")
    a.Circuits.Netlist.num_inputs b.Circuits.Netlist.num_inputs;
  List.iter2
    (fun oa ob -> Alcotest.(check (array bool)) (name ^ ": outputs") oa ob)
    (simulate_all a) (simulate_all b)

let sample_netlists () =
  let gates () =
    let b = B.create "gates" in
    let x = B.input b and y = B.input b and z = B.input b in
    B.output b (B.and_ b x y);
    B.output b (B.xor_ b (B.or_ b x z) (B.not_ b y));
    B.output b (B.mux b ~sel:x y z);
    B.finish b
  in
  let consts () =
    let b = B.create "consts" in
    let x = B.input b in
    B.output b (B.and_ b x (B.const b true));
    B.output b (B.const b false);
    B.finish b
  in
  let adder () =
    let b = B.create "adder" in
    let xs = Circuits.Arith.input_word b ~width:3 in
    let ys = Circuits.Arith.input_word b ~width:3 in
    List.iter (B.output b) (Circuits.Arith.ripple_adder b xs ys);
    B.finish b
  in
  [ ("gates", gates ()); ("consts", consts ()); ("adder", adder ()) ]

(* ------------------------------------------------------------------ *)
(* BLIF *)

let test_blif_roundtrip () =
  List.iter
    (fun (name, nl) ->
      let parsed = Circuits.Blif.of_string (Circuits.Blif.to_string nl) in
      check_equivalent ("blif " ^ name) nl parsed)
    (sample_netlists ())

let test_blif_parse_handwritten () =
  let text =
    ".model xor2\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end\n"
  in
  let nl = Circuits.Blif.of_string text in
  Alcotest.(check int) "2 inputs" 2 nl.Circuits.Netlist.num_inputs;
  let run a b = (Circuits.Netlist.simulate nl [| a; b |]).(0) in
  Alcotest.(check bool) "1^0" true (run true false);
  Alcotest.(check bool) "1^1" false (run true true)

let test_blif_zero_cover () =
  (* 0-cover: output is 0 exactly on listed rows *)
  let text = ".model nand2\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n" in
  let nl = Circuits.Blif.of_string text in
  let run a b = (Circuits.Netlist.simulate nl [| a; b |]).(0) in
  Alcotest.(check bool) "nand 11" false (run true true);
  Alcotest.(check bool) "nand 10" true (run true false)

let test_blif_dont_care () =
  let text = ".model or3\n.inputs a b c\n.outputs y\n.names a b c y\n1-- 1\n-1- 1\n--1 1\n.end\n" in
  let nl = Circuits.Blif.of_string text in
  let run a b c = (Circuits.Netlist.simulate nl [| a; b; c |]).(0) in
  Alcotest.(check bool) "or 000" false (run false false false);
  Alcotest.(check bool) "or 010" true (run false true false)

let test_blif_out_of_order_names () =
  (* g defined after the output that uses it *)
  let text =
    ".model ooo\n.inputs a\n.outputs y\n.names g y\n1 1\n.names a g\n0 1\n.end\n"
  in
  let nl = Circuits.Blif.of_string text in
  Alcotest.(check bool) "y = not a" true
    ((Circuits.Netlist.simulate nl [| false |]).(0))

let test_blif_continuation_and_comments () =
  let text =
    ".model c # trailing comment\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
  in
  let nl = Circuits.Blif.of_string text in
  Alcotest.(check int) "2 inputs" 2 nl.Circuits.Netlist.num_inputs

let test_blif_errors () =
  let expect text =
    try
      ignore (Circuits.Blif.of_string text);
      Alcotest.failf "expected Parse_error on %S" text
    with Circuits.Blif.Parse_error _ -> ()
  in
  expect ".inputs a\n.outputs y\n.end\n";
  (* no .model *)
  expect ".model m\n.inputs a\n.outputs y\n.latch a y\n.end\n";
  expect ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n";
  (* y defined twice *)
  expect ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end\n"
(* cover width mismatch *)

let test_blif_file_io () =
  let _, nl = List.hd (sample_netlists ()) in
  let path = Filename.temp_file "unigen" ".blif" in
  Circuits.Blif.write_file path nl;
  let parsed = Circuits.Blif.parse_file path in
  Sys.remove path;
  check_equivalent "file io" nl parsed

(* ------------------------------------------------------------------ *)
(* AIGER *)

let test_aiger_roundtrip () =
  List.iter
    (fun (name, nl) ->
      let parsed = Circuits.Aiger.of_string (Circuits.Aiger.to_string nl) in
      check_equivalent ("aiger " ^ name) nl parsed)
    (sample_netlists ())

let test_aiger_handwritten () =
  (* y = a AND NOT b:  aag, vars: 1=a 2=b 3=and *)
  let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\n" in
  let nl = Circuits.Aiger.of_string text in
  let run a b = (Circuits.Netlist.simulate nl [| a; b |]).(0) in
  Alcotest.(check bool) "10" true (run true false);
  Alcotest.(check bool) "11" false (run true true);
  Alcotest.(check bool) "00" false (run false false)

let test_aiger_constants () =
  (* output literal 1 = constant true *)
  let text = "aag 1 1 0 2 0\n2\n1\n0\n" in
  let nl = Circuits.Aiger.of_string text in
  let out = Circuits.Netlist.simulate nl [| false |] in
  Alcotest.(check (array bool)) "consts" [| true; false |] out

let test_aiger_negated_output () =
  let text = "aag 1 1 0 1 0\n2\n3\n" in
  let nl = Circuits.Aiger.of_string text in
  Alcotest.(check bool) "not a" true ((Circuits.Netlist.simulate nl [| false |]).(0))

let test_aiger_errors () =
  let expect text =
    try
      ignore (Circuits.Aiger.of_string text);
      Alcotest.failf "expected Parse_error on %S" text
    with Circuits.Aiger.Parse_error _ -> ()
  in
  expect "aag 1 1 1 0 0\n2\n2 2 1\n";
  (* latches unsupported *)
  expect "aig 1 1 0 1 0\n";
  (* binary format *)
  expect "aag 1 1 0 1 0\n2\n";
  (* truncated *)
  expect "aag 2 1 0 1 1\n2\n4\n5 2 3\n"
(* odd and lhs *)

let test_aiger_structural_hashing () =
  (* the writer deduplicates identical AND gates *)
  let b = B.create "dup" in
  let x = B.input b and y = B.input b in
  let a1 = B.and_ b x y in
  let a2 = B.and_ b x y in
  B.output b a1;
  B.output b a2;
  let nl = B.finish b in
  let text = Circuits.Aiger.to_string nl in
  (* header: aag M I L O A — with hashing A can be 2 (two distinct
     records would be pessimal but still correct); check semantics *)
  let parsed = Circuits.Aiger.of_string text in
  check_equivalent "dedup" nl parsed

let test_aiger_file_io () =
  let _, nl = List.hd (sample_netlists ()) in
  let path = Filename.temp_file "unigen" ".aag" in
  Circuits.Aiger.write_file path nl;
  let parsed = Circuits.Aiger.parse_file path in
  Sys.remove path;
  check_equivalent "file io" nl parsed

(* ------------------------------------------------------------------ *)
(* Cross-format: BLIF -> netlist -> AIGER -> netlist -> CNF pipeline *)

let test_cross_format_pipeline () =
  let blif =
    ".model maj\n.inputs a b c\n.outputs y\n.names a b c y\n11- 1\n1-1 1\n-11 1\n.end\n"
  in
  let nl = Circuits.Blif.of_string blif in
  let nl2 = Circuits.Aiger.of_string (Circuits.Aiger.to_string nl) in
  check_equivalent "blif->aiger" nl nl2;
  (* and all the way to witness counting: majority has 4 models *)
  let enc = Circuits.Tseitin.encode nl2 in
  Alcotest.(check int) "4 witnesses" 4
    (Counting.Exact_counter.count enc.Circuits.Tseitin.formula)

let prop_random_dag_roundtrips =
  QCheck2.Test.make ~count:60 ~name:"random netlists round-trip both formats"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 1 6))
    (fun (seed, inputs) ->
      let rng = Rng.create seed in
      let nl =
        Circuits.Generators.random_dag ~rng ~name:"r" ~num_inputs:inputs
          ~num_gates:(5 + Rng.int rng 20) ~num_outputs:(1 + Rng.int rng 3)
      in
      let via_blif = Circuits.Blif.of_string (Circuits.Blif.to_string nl) in
      let via_aig = Circuits.Aiger.of_string (Circuits.Aiger.to_string nl) in
      simulate_all nl = simulate_all via_blif
      && simulate_all nl = simulate_all via_aig)

let () =
  Alcotest.run "formats"
    [
      ( "blif",
        [
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "handwritten" `Quick test_blif_parse_handwritten;
          Alcotest.test_case "zero cover" `Quick test_blif_zero_cover;
          Alcotest.test_case "dont care" `Quick test_blif_dont_care;
          Alcotest.test_case "out of order" `Quick test_blif_out_of_order_names;
          Alcotest.test_case "continuations" `Quick test_blif_continuation_and_comments;
          Alcotest.test_case "errors" `Quick test_blif_errors;
          Alcotest.test_case "file io" `Quick test_blif_file_io;
        ] );
      ( "aiger",
        [
          Alcotest.test_case "roundtrip" `Quick test_aiger_roundtrip;
          Alcotest.test_case "handwritten" `Quick test_aiger_handwritten;
          Alcotest.test_case "constants" `Quick test_aiger_constants;
          Alcotest.test_case "negated output" `Quick test_aiger_negated_output;
          Alcotest.test_case "errors" `Quick test_aiger_errors;
          Alcotest.test_case "structural hashing" `Quick test_aiger_structural_hashing;
          Alcotest.test_case "file io" `Quick test_aiger_file_io;
        ] );
      ( "cross",
        [
          Alcotest.test_case "pipeline" `Quick test_cross_format_pipeline;
          QCheck_alcotest.to_alcotest prop_random_dag_roundtrips;
        ] );
    ]

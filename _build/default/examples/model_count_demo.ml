(* Model counting on circuit equivalence constraints: the exact DPLL
   counter against ApproxMC's (ε, δ) estimate.

   The instances are "Squaring"-style constraints — the low bits of x²
   must equal a target residue — whose true counts we can also verify
   by direct circuit simulation.

   Run with:  dune exec examples/model_count_demo.exe *)

let count_by_simulation ~bits ~residue ~modulus_bits =
  let matching = ref 0 in
  for x = 0 to (1 lsl bits) - 1 do
    if x * x mod (1 lsl modulus_bits) = residue then incr matching
  done;
  !matching

let () =
  Printf.printf "%8s %10s %12s %12s %12s\n" "bits" "residue" "simulation"
    "exact #SAT" "ApproxMC";
  let rng = Rng.create 5 in
  List.iter
    (fun (bits, residue, modulus_bits) ->
      let nl = Circuits.Generators.squaring_equivalence ~bits ~residue ~modulus_bits in
      let enc = Circuits.Tseitin.encode nl in
      let f = enc.Circuits.Tseitin.formula in
      let sim = count_by_simulation ~bits ~residue ~modulus_bits in
      let exact = Counting.Exact_counter.count f in
      let approx =
        match
          Counting.Approxmc.count ~iterations:17 ~rng ~epsilon:0.8 ~delta:0.8 f
        with
        | Ok r -> Printf.sprintf "%.0f" r.Counting.Approxmc.estimate
        | Error Counting.Approxmc.Unsat -> "unsat"
        | Error Counting.Approxmc.Timed_out -> "timeout"
      in
      Printf.printf "%8d %10d %12d %12d %12s\n" bits residue sim exact approx)
    [
      (4, 1, 3); (5, 1, 3); (6, 0, 4); (6, 4, 4); (7, 1, 4); (8, 9, 5);
    ];
  print_endline
    "\nThe exact counter agrees with circuit simulation on every row;\n\
     ApproxMC stays within its 1.8x tolerance band. Note the exact\n\
     counter counts over ALL CNF variables (Tseitin auxiliaries are\n\
     functionally determined, so the count equals the input-space count)."

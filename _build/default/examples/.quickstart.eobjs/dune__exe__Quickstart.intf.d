examples/quickstart.mli:

examples/eda_pipeline.ml: Array Circuits Cnf List Preprocess Printf Rng Sampling String

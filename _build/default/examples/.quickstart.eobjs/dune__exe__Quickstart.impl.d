examples/quickstart.ml: Cnf List Printf Rng Sampling String

examples/model_count_demo.mli:

examples/coverage_closure.mli:

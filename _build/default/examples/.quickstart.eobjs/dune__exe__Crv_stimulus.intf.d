examples/crv_stimulus.mli:

examples/coverage_closure.ml: Array Circuits Cnf List Printf Rng Sampling Sat

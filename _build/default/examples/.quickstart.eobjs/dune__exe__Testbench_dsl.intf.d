examples/testbench_dsl.mli:

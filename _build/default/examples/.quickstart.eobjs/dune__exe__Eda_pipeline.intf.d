examples/eda_pipeline.mli:

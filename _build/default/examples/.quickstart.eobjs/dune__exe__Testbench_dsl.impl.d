examples/testbench_dsl.ml: Cnf Crv Format List Printf Sampling

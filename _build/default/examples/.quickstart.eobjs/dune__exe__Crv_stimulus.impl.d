examples/crv_stimulus.ml: Array Circuits Cnf Printf Rng Sampling String

examples/model_count_demo.ml: Circuits Counting List Printf Rng

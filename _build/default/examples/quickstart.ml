(* Quickstart: sample almost-uniform witnesses of a small CNF formula.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ ¬x2) over 6 variables *)
  let f =
    Cnf.Formula.create ~num_vars:6
      [ Cnf.Clause.of_dimacs [ 1; 2; 3 ]; Cnf.Clause.of_dimacs [ -1; -2 ] ]
  in
  let rng = Rng.create 2014 in

  (* Step 1: prepare — runs the one-time part of UniGen (thresholds,
     the ApproxMC count, the candidate hash sizes). *)
  match Sampling.Unigen.prepare ~rng ~epsilon:6.0 f with
  | Error _ -> print_endline "formula is unsatisfiable (or preparation failed)"
  | Ok prepared ->
      Printf.printf "witness count estimate: %.0f%s\n"
        (Sampling.Unigen.count_estimate prepared)
        (if Sampling.Unigen.is_easy prepared then
           " (small enough to enumerate: the easy case)"
         else "");

      (* Step 2: draw witnesses. Each draw re-randomizes the hash, so
         samples are independent. *)
      print_endline "ten almost-uniform witnesses:";
      for _ = 1 to 10 do
        match Sampling.Unigen.sample_retrying ~rng prepared with
        | Ok m ->
            let bits =
              List.map (fun v -> if v > 0 then '1' else '0') (Cnf.Model.to_dimacs m)
            in
            Printf.printf "  %s\n" (String.init 6 (List.nth bits))
        | Error _ -> print_endline "  (failed; retry exhausted)"
      done;

      (* Step 3: the statistics UniGen reports in the paper's tables. *)
      let st = Sampling.Unigen.stats prepared in
      Printf.printf "success probability: %.2f, avg XOR length: %.1f\n"
        (Sampling.Sampler.success_probability st)
        (Sampling.Sampler.average_xor_length st)

(* The high-level CRV front end: declare stimulus fields and
   constraints in OCaml (the role SystemVerilog constraint blocks play
   in industrial flows), then stream almost-uniform stimuli.

   The scenario: a DMA descriptor with channel, source, destination and
   burst-length fields, and the usual legality rules.

   Run with:  dune exec examples/testbench_dsl.exe *)

module C = Crv.Constraint_spec

let () =
  let spec = C.create "dma_descriptor" in
  let channel = C.field spec ~name:"channel" ~width:3 in
  let src = C.field spec ~name:"src" ~width:8 in
  let dst = C.field spec ~name:"dst" ~width:8 in
  let burst = C.field spec ~name:"burst" ~width:5 in

  (* legality rules a verification plan would state *)
  C.constrain spec (C.ne (C.var src) (C.var dst));
  C.constrain spec (C.ult (C.var channel) (C.const ~width:3 6));
  C.constrain spec (C.ule (C.const ~width:5 1) (C.var burst));
  (* channels 4-5 are "express": bursts of at most 8 *)
  C.constrain spec
    (C.implies
       (C.ule (C.const ~width:3 4) (C.var channel))
       (C.ule (C.var burst) (C.const ~width:5 8)));
  (* aligned source for long bursts: burst > 16 -> low 2 bits of src are 0 *)
  C.constrain spec
    (C.implies
       (C.ult (C.const ~width:5 16) (C.var burst))
       (C.eq (C.band (C.var src) (C.const ~width:8 3)) (C.const ~width:8 0)));

  let compiled = C.compile spec in
  Printf.printf "compiled: %d stimulus bits, %d CNF vars, %d clauses\n%!"
    (C.stimulus_bits compiled)
    (C.formula compiled).Cnf.Formula.num_vars
    (Cnf.Formula.num_clauses (C.formula compiled));

  match Crv.Testbench.create ~seed:2014 compiled with
  | Error _ -> print_endline "constraints are unsatisfiable"
  | Ok tb ->
      Printf.printf "legal descriptor space: ~%.0f\n\n%!"
        (Crv.Testbench.estimated_stimulus_space tb);
      Printf.printf "%8s %5s %5s %6s\n" "channel" "src" "dst" "burst";
      (* functional coverage: channel bins crossed with burst ranges *)
      let cov = Crv.Coverage.create () in
      Crv.Coverage.coverpoint cov ~field:"channel"
        (Crv.Coverage.auto_bins ~count:6 ~width:3 ());
      Crv.Coverage.coverpoint cov ~field:"burst"
        [
          { Crv.Coverage.label = "short"; lo = 1; hi = 8 };
          { Crv.Coverage.label = "medium"; lo = 9; hi = 16 };
          { Crv.Coverage.label = "long"; lo = 17; hi = 31 };
        ];
      Crv.Coverage.cross cov "channel" "burst";
      let express = ref 0 and long_bursts = ref 0 in
      for _ = 1 to 1000 do
        match Crv.Testbench.next tb with
        | None -> ()
        | Some s ->
            Crv.Coverage.record cov s;
            let get k = List.assoc k s in
            (* re-assert the rules on every generated descriptor *)
            assert (get "src" <> get "dst");
            assert (get "channel" < 6);
            assert (get "burst" >= 1);
            if get "channel" >= 4 then begin
              incr express;
              assert (get "burst" <= 8)
            end;
            if get "burst" > 16 then begin
              incr long_bursts;
              assert (get "src" land 3 = 0)
            end;
            if !express + !long_bursts <= 10 then
              Printf.printf "%8d %5d %5d %6d\n" (get "channel") (get "src")
                (get "dst") (get "burst")
      done;
      let st = Crv.Testbench.stats tb in
      Printf.printf
        "\n1000 descriptors: %d express-channel, %d long-burst (uniformity\n\
         exercises both rare corners); %.4f s/stimulus, success prob %.3f\n\n"
        !express !long_bursts
        (Sampling.Sampler.average_seconds_per_sample st)
        (Sampling.Sampler.success_probability st);
      (* illegal cross bins (express channels cannot issue medium/long
         bursts) stay unhit by construction; everything legal is hit *)
      Crv.Coverage.pp Format.std_formatter cov;
      Format.print_flush ()

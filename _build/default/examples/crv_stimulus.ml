(* Constrained-random verification — the paper's motivating workload.

   A verification engineer declaratively constrains the inputs of a
   design under test; the witness generator then produces random
   stimuli satisfying the constraints. Uniformity matters because bugs
   hide in unknown corners of the constrained space.

   The DUT here accepts 16-bit packets: [opcode:4][src:4][dst:4][len:4]
   with the constraint block
     - opcode < 10          (only 10 opcodes exist)
     - src ≠ dst            (no self-addressed packets)
     - opcode ≥ 8 → len ≥ 4 (control packets carry a payload)

   Run with:  dune exec examples/crv_stimulus.exe *)

module B = Circuits.Netlist.Builder

let build_constraint_block () =
  let b = B.create "packet_constraints" in
  let opcode = Circuits.Arith.input_word b ~width:4 in
  let src = Circuits.Arith.input_word b ~width:4 in
  let dst = Circuits.Arith.input_word b ~width:4 in
  let len = Circuits.Arith.input_word b ~width:4 in
  let c1 = Circuits.Arith.less_than b opcode (Circuits.Arith.constant b ~width:4 10) in
  let c2 = B.not_ b (Circuits.Arith.equal b src dst) in
  let is_control =
    B.not_ b (Circuits.Arith.less_than b opcode (Circuits.Arith.constant b ~width:4 8))
  in
  let len_ok =
    B.not_ b (Circuits.Arith.less_than b len (Circuits.Arith.constant b ~width:4 4))
  in
  let c3 = B.or_ b (B.not_ b is_control) len_ok in
  B.output b (B.and_list b [ c1; c2; c3 ]);
  B.finish b

let field m input_vars lo =
  (* decode 4 bits starting at input index lo *)
  Circuits.Arith.to_int
    (Array.init 4 (fun i -> Cnf.Model.value m input_vars.(lo + i)))

let () =
  let nl = build_constraint_block () in
  let enc = Circuits.Tseitin.encode nl in
  let f = enc.Circuits.Tseitin.formula in
  let inputs = enc.Circuits.Tseitin.input_vars in
  Printf.printf "constraint block: %d CNF variables, %d clauses, %d stimulus bits\n"
    f.Cnf.Formula.num_vars (Cnf.Formula.num_clauses f) (Array.length inputs);

  let rng = Rng.create 7 in
  match Sampling.Unigen.prepare ~rng ~epsilon:6.0 f with
  | Error _ -> failwith "constraints unsatisfiable"
  | Ok prepared ->
      Printf.printf "legal stimulus space: ~%.0f packets\n\n"
        (Sampling.Unigen.count_estimate prepared);

      print_endline "twelve constrained-random stimuli:";
      print_endline "  opcode src dst len";
      let opcode_hist = Array.make 16 0 in
      let num = 500 in
      let shown = ref 0 in
      for i = 1 to num do
        match Sampling.Unigen.sample_retrying ~rng prepared with
        | Ok m ->
            let opcode = field m inputs 0
            and src = field m inputs 4
            and dst = field m inputs 8
            and len = field m inputs 12 in
            (* re-check the constraints the verification engineer wrote *)
            assert (opcode < 10);
            assert (src <> dst);
            assert (opcode < 8 || len >= 4);
            opcode_hist.(opcode) <- opcode_hist.(opcode) + 1;
            if !shown < 12 then begin
              incr shown;
              Printf.printf "  %6d %3d %3d %3d\n" opcode src dst len
            end
        | Error _ -> Printf.eprintf "sample %d failed\n" i
      done;

      (* Uniformity in action: every legal opcode appears with a
         frequency proportional to its share of the legal space. *)
      print_endline "\nopcode coverage over 500 stimuli (uniform sampling spreads it):";
      Array.iteri
        (fun op c ->
          if op < 10 then
            Printf.printf "  opcode %2d: %3d  %s\n" op c (String.make (c / 4) '#'))
        opcode_hist;
      let st = Sampling.Unigen.stats prepared in
      Printf.printf "\nsuccess probability %.3f, avg seconds/stimulus %.4f\n"
        (Sampling.Sampler.success_probability st)
        (Sampling.Sampler.average_seconds_per_sample st)

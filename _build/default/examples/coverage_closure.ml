(* Coverage closure: why uniformity matters.

   Verification teams track functional coverage — every "bin" of
   interesting behaviour must be exercised by some stimulus. A
   uniform generator covers bins at the coupon-collector rate; a
   generator that keeps returning witnesses from the same region
   (e.g. the deterministic solutions a plain SAT solver enumerates)
   leaves bins unhit.

   This example compares three stimulus sources on the same
   constraint block:
   1. UniGen (almost-uniform, this library's core),
   2. plain solver enumeration (the naive baseline: take the next
      solution the CDCL solver happens to find),
   3. XORSample' with a poorly chosen s (the tuning problem the paper
      describes).

   Run with:  dune exec examples/coverage_closure.exe *)

module B = Circuits.Netlist.Builder

(* constraint: an 8-bit value v with v mod 4 ≠ 3 (192 legal values);
   coverage bins = the 16 values of the high nibble *)
let build () =
  let b = B.create "coverage_dut" in
  let v = Circuits.Arith.input_word b ~width:8 in
  let low2 = List.filteri (fun i _ -> i < 2) v in
  let bad = Circuits.Arith.equal b low2 (Circuits.Arith.constant b ~width:2 3) in
  B.output b (B.not_ b bad);
  B.finish b

let high_nibble m inputs =
  Circuits.Arith.to_int (Array.init 4 (fun i -> Cnf.Model.value m inputs.(4 + i)))

let bins_needed = 16

let run_until_covered name next =
  let hit = Array.make bins_needed false in
  let covered = ref 0 in
  let stimuli = ref 0 in
  let budget = 2000 in
  while !covered < bins_needed && !stimuli < budget do
    incr stimuli;
    match next () with
    | Some bin ->
        if not hit.(bin) then begin
          hit.(bin) <- true;
          incr covered
        end
    | None -> ()
  done;
  if !covered = bins_needed then
    Printf.printf "  %-22s all %d bins after %4d stimuli\n" name bins_needed !stimuli
  else
    Printf.printf "  %-22s only %2d/%d bins after %4d stimuli\n" name !covered
      bins_needed !stimuli

let () =
  let nl = build () in
  let enc = Circuits.Tseitin.encode nl in
  let f = enc.Circuits.Tseitin.formula in
  let inputs = enc.Circuits.Tseitin.input_vars in
  Printf.printf "coverage target: %d high-nibble bins over the legal space\n\n"
    bins_needed;

  (* 1. UniGen *)
  let rng = Rng.create 99 in
  (match Sampling.Unigen.prepare ~rng ~epsilon:6.0 f with
  | Error _ -> failwith "unsat"
  | Ok prepared ->
      run_until_covered "UniGen" (fun () ->
          match Sampling.Unigen.sample_retrying ~rng prepared with
          | Ok m -> Some (high_nibble m inputs)
          | Error _ -> None));

  (* 2. naive solver enumeration: deterministic solutions in the order
     the CDCL heuristics produce them — heavily clustered *)
  let solver = Sat.Solver.create f in
  run_until_covered "solver enumeration" (fun () ->
      match Sat.Solver.solve solver with
      | Sat.Solver.Sat ->
          let m = Sat.Solver.model solver in
          let block =
            Array.to_list inputs
            |> List.map (fun v -> Cnf.Lit.make v (not (Cnf.Model.value m v)))
          in
          Sat.Solver.add_clause solver block;
          Some (high_nibble m inputs)
      | _ -> None);

  (* 3. XORSample' with s chosen badly (too large: most cells empty) *)
  let rng3 = Rng.create 100 in
  run_until_covered "XORSample' (s=12)" (fun () ->
      match Sampling.Xorsample.sample ~rng:rng3 ~s:12 f with
      | Ok m -> Some (high_nibble m inputs)
      | Error _ -> None);

  (* and with s chosen well, for fairness *)
  let rng4 = Rng.create 101 in
  run_until_covered "XORSample' (s=4)" (fun () ->
      match Sampling.Xorsample.sample ~rng:rng4 ~s:4 f with
      | Ok m -> Some (high_nibble m inputs)
      | Error _ -> None);

  print_endline
    "\nUniGen needs no per-formula tuning; XORSample' coverage collapses\n\
     when its s parameter is misjudged, and plain enumeration visits\n\
     solutions in clustered order."

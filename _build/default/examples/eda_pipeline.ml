(* End-to-end EDA flow: take a circuit in a standard interchange
   format (BLIF), construct an ISCAS-style verification instance with
   parity conditions, preprocess it, and generate constrained-random
   stimuli — the full pipeline a verification team would run.

   Run with:  dune exec examples/eda_pipeline.exe *)

(* A BLIF design, as a synthesis tool would emit it: a 6-bit
   population-count-threshold checker built from half adders. *)
let blif_design =
  {|
.model popcount_threshold
.inputs a0 a1 a2 a3 a4 a5
.outputs hi lo
# pairwise sums
.names a0 a1 s0
10 1
01 1
.names a0 a1 c0
11 1
.names a2 a3 s1
10 1
01 1
.names a2 a3 c1
11 1
.names a4 a5 s2
10 1
01 1
.names a4 a5 c2
11 1
# at least two of the carries set -> hi
.names c0 c1 c2 hi
11- 1
1-1 1
-11 1
# odd parity of the sums -> lo
.names s0 s1 s2 lo
100 1
010 1
001 1
111 1
.end
|}

let () =
  print_endline "1. parse the BLIF design";
  let nl = Circuits.Blif.of_string blif_design in
  Printf.printf "   %d inputs, %d gates, %d outputs\n"
    nl.Circuits.Netlist.num_inputs
    (Circuits.Netlist.num_gates nl)
    (Array.length nl.Circuits.Netlist.outputs);

  print_endline "2. re-export as AIGER (to show the AIG bridge) and re-import";
  let nl = Circuits.Aiger.of_string (Circuits.Aiger.to_string nl) in

  print_endline "3. build the verification instance: parity conditions on outputs";
  let rng = Rng.create 2014 in
  let enc = Circuits.Tseitin.with_output_parity ~rng ~num_conditions:1 nl in
  let f = enc.Circuits.Tseitin.formula in
  Printf.printf "   CNF: %d vars, %d clauses, sampling set (circuit inputs): %d\n"
    f.Cnf.Formula.num_vars (Cnf.Formula.num_clauses f)
    (Array.length (Cnf.Formula.sampling_vars f));

  print_endline "4. sampling-safe preprocessing";
  (match Preprocess.Simplify.run f with
  | Error `Unsat -> print_endline "   instance is UNSAT (unlucky parity seed)"
  | Ok r ->
      Printf.printf "   %d -> %d clauses, %d vars eliminated\n"
        r.Preprocess.Simplify.clauses_before r.Preprocess.Simplify.clauses_after
        (List.length r.Preprocess.Simplify.eliminated);
      let g = r.Preprocess.Simplify.simplified in

      print_endline "5. sample constrained-random stimuli with UniGen";
      (match Sampling.Unigen.prepare ~rng ~epsilon:6.0 g with
      | Error _ -> print_endline "   UNSAT after preprocessing?!"
      | Ok prepared ->
          Printf.printf "   legal input space: ~%.0f assignments\n"
            (Sampling.Unigen.count_estimate prepared);
          let inputs = enc.Circuits.Tseitin.input_vars in
          for _ = 1 to 8 do
            match Sampling.Unigen.sample_retrying ~rng prepared with
            | Ok m ->
                (* lift back to the original formula and re-verify by
                   simulating the circuit on the sampled inputs *)
                let m = Preprocess.Simplify.extend r m in
                assert (Cnf.Model.satisfies f m);
                let stimulus =
                  Array.map (fun v -> Cnf.Model.value m v) inputs
                in
                let outs = Circuits.Netlist.simulate nl stimulus in
                Printf.printf "   stimulus %s -> outputs %s\n"
                  (String.concat ""
                     (List.map (fun b -> if b then "1" else "0")
                        (Array.to_list stimulus)))
                  (String.concat ""
                     (List.map (fun b -> if b then "1" else "0")
                        (Array.to_list outs)))
            | Error _ -> print_endline "   (sample failed)"
          done));

  print_endline "6. done: same flow as bin/unigen_cli.exe convert + simplify + sample"

let version = "unigen-prepared-v1"

let engine_string gauss = if gauss then "gauss" else "2watch"

let encode (k : Cache.key) (e : Cache.entry) =
  let p = Sampling.Unigen.export e.Cache.prepared in
  let phase_fields =
    match p.Sampling.Unigen.p_phase with
    | Sampling.Unigen.Portable_easy { num_vars; models } ->
        [
          ("phase", Json.Str "easy");
          ("num_vars", Json.Int num_vars);
          ( "models",
            Json.List
              (List.map
                 (fun m -> Json.List (List.map (fun l -> Json.Int l) m))
                 models) );
        ]
    | Sampling.Unigen.Portable_hashed { q; count_estimate } ->
        [
          ("phase", Json.Str "hashed");
          ("q", Json.Int q);
          ("count_estimate", Json.Float count_estimate);
        ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("version", Json.Str version);
          ("fingerprint", Json.Str k.Cache.fingerprint);
          ("epsilon", Json.Float k.Cache.epsilon);
          ("prepare_seed", Json.Int k.Cache.prepare_seed);
          ( "count_iterations",
            match k.Cache.count_iterations with
            | None -> Json.Null
            | Some n -> Json.Int n );
          ("incremental", Json.Bool k.Cache.incremental);
          ("xor_engine", Json.Str (engine_string k.Cache.gauss));
          ("formula", Json.Str (Cnf.Dimacs.to_string e.Cache.formula));
          ("kappa", Json.Float p.Sampling.Unigen.p_kappa);
          ("pivot", Json.Int p.Sampling.Unigen.p_pivot);
          ("hash_density", Json.Float p.Sampling.Unigen.p_hash_density);
          ("created_at", Json.Float (Unix.time ()));
          ("ocaml_version", Json.Str Sys.ocaml_version);
        ]
       @ phase_fields))

(* Every key-determining field must agree with the key the payload was
   looked up under; [what] names the first mismatch in the error. *)
let check what ok = if ok then Ok () else Error (what ^ " mismatch")

let ( let* ) = Result.bind

let decode_verified (k : Cache.key) j =
  let* () = check "fingerprint"
      (String.equal (Json.get_string "fingerprint" j) k.Cache.fingerprint)
  in
  let* () = check "epsilon" (Json.get_float "epsilon" j = k.Cache.epsilon) in
  let* () = check "prepare_seed"
      (Json.get_int "prepare_seed" j = k.Cache.prepare_seed)
  in
  let* () = check "count_iterations"
      (Json.opt_int "count_iterations" j = k.Cache.count_iterations)
  in
  let* () = check "incremental"
      (Json.get_bool "incremental" j = k.Cache.incremental)
  in
  let* () = check "xor_engine"
      (String.equal (Json.get_string "xor_engine" j)
         (engine_string k.Cache.gauss))
  in
  let formula = Cnf.Dimacs.parse_string (Json.get_string "formula" j) in
  (* the decisive check: the embedded formula must re-fingerprint to
     the key's content address under the *current* registry version,
     so registry drift invalidates old spills instead of mixing
     incompatible canonical forms *)
  let* () = check "formula fingerprint"
      (String.equal (Registry.fingerprint formula) k.Cache.fingerprint)
  in
  let formula = Registry.canonical formula in
  let* p_phase =
    match Json.get_string "phase" j with
    | "easy" ->
        Ok
          (Sampling.Unigen.Portable_easy
             {
               num_vars = Json.get_int "num_vars" j;
               models =
                 List.map
                   (function
                     | Json.List lits -> List.map Json.to_int lits
                     | _ -> raise (Json.Decode_error "models: expected arrays"))
                   (Json.get_list "models" j);
             })
    | "hashed" ->
        Ok
          (Sampling.Unigen.Portable_hashed
             {
               q = Json.get_int "q" j;
               count_estimate = Json.get_float "count_estimate" j;
             })
    | s -> Error ("unknown phase " ^ s)
  in
  let portable =
    {
      Sampling.Unigen.p_kappa = Json.get_float "kappa" j;
      p_pivot = Json.get_int "pivot" j;
      p_hash_density = Json.get_float "hash_density" j;
      p_incremental = k.Cache.incremental;
      p_gauss = k.Cache.gauss;
      p_phase;
    }
  in
  let prepared = Sampling.Unigen.import ~formula portable in
  Ok { Cache.prepared; formula; draws_served = 0 }

let decode (k : Cache.key) payload =
  match Json.of_string payload with
  | exception Json.Decode_error msg -> Error ("json: " ^ msg)
  | j -> (
      match Json.get_string "version" j with
      | exception Json.Decode_error msg -> Error msg
      | v when not (String.equal v version) ->
          Error ("codec version mismatch: " ^ v)
      | _ -> (
          try decode_verified k j with
          | Json.Decode_error msg -> Error msg
          | Invalid_argument msg | Failure msg -> Error msg))

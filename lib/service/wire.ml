let max_frame = 64 * 1024 * 1024

exception Frame_error of string

let encode_frame payload =
  let n = String.length payload in
  if n > max_frame then raise (Frame_error "frame exceeds max_frame");
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

module Decoder = struct
  (* Accumulated bytes with a consumed-prefix offset; the buffer is
     compacted lazily on [feed], so [next] never copies more than one
     payload. *)
  type t = { mutable data : string; mutable off : int }

  let create () = { data = ""; off = 0 }

  let feed d buf n =
    let pending = String.length d.data - d.off in
    let b = Bytes.create (pending + n) in
    Bytes.blit_string d.data d.off b 0 pending;
    Bytes.blit buf 0 b pending n;
    d.data <- Bytes.unsafe_to_string b;
    d.off <- 0

  let buffered d = String.length d.data - d.off

  let next d =
    let available = String.length d.data - d.off in
    if available < 4 then None
    else begin
      let byte i = Char.code d.data.[d.off + i] in
      let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
      if len > max_frame then raise (Frame_error "frame exceeds max_frame");
      if available < 4 + len then None
      else begin
        let payload = String.sub d.data (d.off + 4) len in
        d.off <- d.off + 4 + len;
        Some payload
      end
    end
end

let really_read fd buf off len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd buf (off + !got) (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let read_frame fd =
  let hdr = Bytes.create 4 in
  let got = really_read fd hdr 0 4 in
  if got = 0 then None
  else if got < 4 then raise (Frame_error "truncated frame header")
  else begin
    let byte i = Char.code (Bytes.get hdr i) in
    let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    if len > max_frame then raise (Frame_error "frame exceeds max_frame");
    let payload = Bytes.create len in
    if really_read fd payload 0 len < len then
      raise (Frame_error "truncated frame payload");
    Some (Bytes.unsafe_to_string payload)
  end

let write_frame fd payload =
  let framed = encode_frame payload in
  let len = String.length framed in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write_substring fd framed !sent (len - !sent)
  done

(* ------------------------------------------------------------------ *)
(* Protocol values *)

type sample_req = {
  formula_text : string;
  n : int;
  seed : int;
  prepare_seed : int;
  epsilon : float;
  count_iterations : int option;
  timeout_s : float option;
  max_attempts : int;
  pin : bool;
  tag : string option;
  trace_id : string option;
}

let default_sample_req =
  {
    formula_text = "";
    n = 1;
    seed = 1;
    prepare_seed = 1;
    epsilon = 6.0;
    count_iterations = None;
    timeout_s = None;
    max_attempts = 20;
    pin = false;
    tag = None;
    trace_id = None;
  }

type request =
  | Sample of sample_req
  | Cancel of string
  | Status
  | Window
  | Shutdown

type reject_reason = Queue_full | Batch_too_large | Draining
type cache_source = Cache_miss | Cache_ram | Cache_disk

(* "hit" (not "ram") for the in-memory tier keeps the wire value that
   pre-fleet clients and smoke greps already match on *)
let cache_source_to_string = function
  | Cache_miss -> "miss"
  | Cache_ram -> "hit"
  | Cache_disk -> "disk"

let cache_source_of_string = function
  | "miss" -> Cache_miss
  | "hit" -> Cache_ram
  | "disk" -> Cache_disk
  | s -> raise (Json.Decode_error ("unknown cache source: " ^ s))

type sample_ok = {
  fingerprint : string;
  cache : cache_source;
  witnesses : int list list;
  produced : int;
  requested : int;
  queue_wait_s : float;
  rsp_tag : string option;
  rsp_trace_id : string;
}

type fp_window = {
  fp : string;
  fp_requests : int;
  fp_hits : int;
  fp_misses : int;
  fp_p50_ms : float;
  fp_p90_ms : float;
  fp_p99_ms : float;
}

type window_report = {
  window_s : float;
  uptime_s : float;
  jobs : int;
  w_in_flight : int;
  w_queued : int;
  xor_engine : string;
  ocaml_version : string;
  w_requests : int;
  rate_per_s : float;
  w_deadline_misses : int;
  w_hits : int;
  w_misses : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  queue_p50_ms : float;
  queue_p90_ms : float;
  queue_p99_ms : float;
  per_fp : fp_window list;
}

type response =
  | Ok_sample of sample_ok
  | Rejected of { reason : reject_reason; retry_after_s : float }
  | Deadline_miss of { rsp_tag : string option }
  | Cancelled of { rsp_tag : string option }
  | Cancel_result of bool
  | Unsat of { rsp_tag : string option }
  | Error_msg of string
  | Metrics of { values : (string * float) list; info : (string * string) list }
  | Window_report of window_report
  | Bye

let reject_reason_to_string = function
  | Queue_full -> "queue_full"
  | Batch_too_large -> "batch_too_large"
  | Draining -> "draining"

let reject_reason_of_string = function
  | "queue_full" -> Queue_full
  | "batch_too_large" -> Batch_too_large
  | "draining" -> Draining
  | s -> raise (Json.Decode_error ("unknown reject reason " ^ s))

let opt_field k = function None -> [] | Some v -> [ (k, v) ]

let request_to_json = function
  | Sample r ->
      Json.Obj
        ([
           ("op", Json.Str "sample");
           ("formula", Json.Str r.formula_text);
           ("n", Json.Int r.n);
           ("seed", Json.Int r.seed);
           ("prepare_seed", Json.Int r.prepare_seed);
           ("epsilon", Json.Float r.epsilon);
           ("max_attempts", Json.Int r.max_attempts);
           ("pin", Json.Bool r.pin);
         ]
        @ opt_field "count_iterations"
            (Option.map (fun i -> Json.Int i) r.count_iterations)
        @ opt_field "timeout_ms"
            (Option.map (fun s -> Json.Float (s *. 1000.0)) r.timeout_s)
        @ opt_field "tag" (Option.map (fun t -> Json.Str t) r.tag)
        @ opt_field "trace_id" (Option.map (fun t -> Json.Str t) r.trace_id))
  | Cancel tag -> Json.Obj [ ("op", Json.Str "cancel"); ("tag", Json.Str tag) ]
  | Status -> Json.Obj [ ("op", Json.Str "status") ]
  | Window -> Json.Obj [ ("op", Json.Str "metrics") ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]

let request_of_json j =
  match Json.get_string "op" j with
  | "sample" ->
      Sample
        {
          formula_text = Json.get_string "formula" j;
          n = Json.get_int "n" j;
          seed =
            (match Json.opt_int "seed" j with
            | Some s -> s
            | None -> default_sample_req.seed);
          prepare_seed =
            (match Json.opt_int "prepare_seed" j with
            | Some s -> s
            | None -> default_sample_req.prepare_seed);
          epsilon =
            (match Json.opt_float "epsilon" j with
            | Some e -> e
            | None -> default_sample_req.epsilon);
          count_iterations = Json.opt_int "count_iterations" j;
          timeout_s =
            Option.map (fun ms -> ms /. 1000.0) (Json.opt_float "timeout_ms" j);
          max_attempts =
            (match Json.opt_int "max_attempts" j with
            | Some m -> m
            | None -> default_sample_req.max_attempts);
          pin = Json.get_bool ~default:false "pin" j;
          tag = Json.opt_string "tag" j;
          trace_id = Json.opt_string "trace_id" j;
        }
  | "cancel" -> Cancel (Json.get_string "tag" j)
  | "status" -> Status
  | "metrics" -> Window
  | "shutdown" -> Shutdown
  | op -> raise (Json.Decode_error ("unknown op " ^ op))

let response_to_json = function
  | Ok_sample r ->
      Json.Obj
        ([
           ("status", Json.Str "ok");
           ("fingerprint", Json.Str r.fingerprint);
           ("cache", Json.Str (cache_source_to_string r.cache));
           ( "witnesses",
             Json.List
               (List.map
                  (fun w -> Json.List (List.map (fun l -> Json.Int l) w))
                  r.witnesses) );
           ("produced", Json.Int r.produced);
           ("requested", Json.Int r.requested);
           ("queue_wait_ms", Json.Float (r.queue_wait_s *. 1000.0));
           ("trace_id", Json.Str r.rsp_trace_id);
         ]
        @ opt_field "tag" (Option.map (fun t -> Json.Str t) r.rsp_tag))
  | Rejected { reason; retry_after_s } ->
      Json.Obj
        [
          ("status", Json.Str "rejected");
          ("reason", Json.Str (reject_reason_to_string reason));
          ("retry_after_ms", Json.Float (retry_after_s *. 1000.0));
        ]
  | Deadline_miss { rsp_tag } ->
      Json.Obj
        (("status", Json.Str "deadline_miss")
        :: opt_field "tag" (Option.map (fun t -> Json.Str t) rsp_tag))
  | Cancelled { rsp_tag } ->
      Json.Obj
        (("status", Json.Str "cancelled")
        :: opt_field "tag" (Option.map (fun t -> Json.Str t) rsp_tag))
  | Cancel_result found ->
      Json.Obj [ ("status", Json.Str "cancel_result"); ("found", Json.Bool found) ]
  | Unsat { rsp_tag } ->
      Json.Obj
        (("status", Json.Str "unsat")
        :: opt_field "tag" (Option.map (fun t -> Json.Str t) rsp_tag))
  | Error_msg m ->
      Json.Obj [ ("status", Json.Str "error"); ("message", Json.Str m) ]
  | Metrics { values; info } ->
      Json.Obj
        [
          ("status", Json.Str "metrics");
          ("values", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) values));
          ("info", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) info));
        ]
  | Window_report w ->
      let fp_json f =
        Json.Obj
          [
            ("fingerprint", Json.Str f.fp);
            ("requests", Json.Int f.fp_requests);
            ("hits", Json.Int f.fp_hits);
            ("misses", Json.Int f.fp_misses);
            ("p50_ms", Json.Float f.fp_p50_ms);
            ("p90_ms", Json.Float f.fp_p90_ms);
            ("p99_ms", Json.Float f.fp_p99_ms);
          ]
      in
      Json.Obj
        [
          ("status", Json.Str "window_report");
          ("window_s", Json.Float w.window_s);
          ("uptime_s", Json.Float w.uptime_s);
          ("jobs", Json.Int w.jobs);
          ("in_flight", Json.Int w.w_in_flight);
          ("queued", Json.Int w.w_queued);
          ("xor_engine", Json.Str w.xor_engine);
          ("ocaml_version", Json.Str w.ocaml_version);
          ("requests", Json.Int w.w_requests);
          ("rate_per_s", Json.Float w.rate_per_s);
          ("deadline_misses", Json.Int w.w_deadline_misses);
          ("hits", Json.Int w.w_hits);
          ("misses", Json.Int w.w_misses);
          ("p50_ms", Json.Float w.p50_ms);
          ("p90_ms", Json.Float w.p90_ms);
          ("p99_ms", Json.Float w.p99_ms);
          ("queue_p50_ms", Json.Float w.queue_p50_ms);
          ("queue_p90_ms", Json.Float w.queue_p90_ms);
          ("queue_p99_ms", Json.Float w.queue_p99_ms);
          ("per_fp", Json.List (List.map fp_json w.per_fp));
        ]
  | Bye -> Json.Obj [ ("status", Json.Str "bye") ]

let response_of_json j =
  match Json.get_string "status" j with
  | "ok" ->
      Ok_sample
        {
          fingerprint = Json.get_string "fingerprint" j;
          cache = cache_source_of_string (Json.get_string "cache" j);
          witnesses =
            List.map
              (function
                | Json.List lits -> List.map Json.to_int lits
                | _ -> raise (Json.Decode_error "witness: expected an array"))
              (Json.get_list "witnesses" j);
          produced = Json.get_int "produced" j;
          requested = Json.get_int "requested" j;
          queue_wait_s = Json.get_float "queue_wait_ms" j /. 1000.0;
          rsp_tag = Json.opt_string "tag" j;
          rsp_trace_id =
            (match Json.opt_string "trace_id" j with Some t -> t | None -> "");
        }
  | "rejected" ->
      Rejected
        {
          reason = reject_reason_of_string (Json.get_string "reason" j);
          retry_after_s = Json.get_float "retry_after_ms" j /. 1000.0;
        }
  | "deadline_miss" -> Deadline_miss { rsp_tag = Json.opt_string "tag" j }
  | "cancelled" -> Cancelled { rsp_tag = Json.opt_string "tag" j }
  | "cancel_result" -> Cancel_result (Json.get_bool "found" j)
  | "unsat" -> Unsat { rsp_tag = Json.opt_string "tag" j }
  | "error" -> Error_msg (Json.get_string "message" j)
  | "metrics" ->
      let values =
        match Json.member "values" j with
        | Some (Json.Obj kvs) ->
            List.map
              (fun (k, v) ->
                match v with
                | Json.Float f -> (k, f)
                | Json.Int i -> (k, float_of_int i)
                | _ -> raise (Json.Decode_error "metrics: expected numbers"))
              kvs
        | _ -> raise (Json.Decode_error "metrics: missing values")
      in
      let info =
        match Json.member "info" j with
        | Some (Json.Obj kvs) ->
            List.map
              (fun (k, v) ->
                match v with
                | Json.Str s -> (k, s)
                | _ -> raise (Json.Decode_error "metrics: expected strings"))
              kvs
        | None -> []
        | _ -> raise (Json.Decode_error "metrics: malformed info")
      in
      Metrics { values; info }
  | "window_report" ->
      let fp_of_json fj =
        {
          fp = Json.get_string "fingerprint" fj;
          fp_requests = Json.get_int "requests" fj;
          fp_hits = Json.get_int "hits" fj;
          fp_misses = Json.get_int "misses" fj;
          fp_p50_ms = Json.get_float "p50_ms" fj;
          fp_p90_ms = Json.get_float "p90_ms" fj;
          fp_p99_ms = Json.get_float "p99_ms" fj;
        }
      in
      Window_report
        {
          window_s = Json.get_float "window_s" j;
          uptime_s = Json.get_float "uptime_s" j;
          jobs = Json.get_int "jobs" j;
          w_in_flight = Json.get_int "in_flight" j;
          w_queued = Json.get_int "queued" j;
          xor_engine = Json.get_string "xor_engine" j;
          ocaml_version = Json.get_string "ocaml_version" j;
          w_requests = Json.get_int "requests" j;
          rate_per_s = Json.get_float "rate_per_s" j;
          w_deadline_misses = Json.get_int "deadline_misses" j;
          w_hits = Json.get_int "hits" j;
          w_misses = Json.get_int "misses" j;
          p50_ms = Json.get_float "p50_ms" j;
          p90_ms = Json.get_float "p90_ms" j;
          p99_ms = Json.get_float "p99_ms" j;
          queue_p50_ms = Json.get_float "queue_p50_ms" j;
          queue_p90_ms = Json.get_float "queue_p90_ms" j;
          queue_p99_ms = Json.get_float "queue_p99_ms" j;
          per_fp = List.map fp_of_json (Json.get_list "per_fp" j);
        }
  | "bye" -> Bye
  | s -> raise (Json.Decode_error ("unknown status " ^ s))

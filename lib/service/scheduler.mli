(** Deadline-aware request scheduler over the prepared-state cache.

    The scheduler is the daemon's brain, factored out of the socket
    layer so every policy is unit-testable in-process:

    - {b bounded admission}: {!submit} is non-blocking; when
      [queue_capacity] requests are already pending it rejects with a
      [retry_after_s] hint derived from the observed mean request time
      (backpressure instead of unbounded buffering). Requests whose
      sample budget exceeds [max_batch] are rejected outright.
    - {b fairness}: pending requests are kept in one FIFO per formula
      fingerprint, and dispatch round-robins across fingerprints — a
      client spraying thousands of requests at one formula delays its
      own queue, not other formulas'.
    - {b deadlines}: a request admitted with [timeout_s] carries an
      absolute deadline; if it is already past when the request is
      dispatched, the request completes as [Deadline_miss] without
      touching a solver, and an in-flight preparation respects the
      same deadline through [Unigen.prepare ~deadline]. Every finished
      request — inline, worker-side, or immediately missed — passes
      through one accounting funnel, so a miss is counted exactly once
      no matter where it is detected.
    - {b cancellation}: {!cancel} removes a queued request by id; a
      request already running on a worker domain is marked cancelled
      and its response suppressed at completion (its cache pins are
      still released).
    - {b determinism}: execution reuses the {!Cache} when possible and
      prepares on a miss with [Rng.create prepare_seed]; either way
      the drawn witnesses are bit-identical to an offline
      [Unigen.sample_batch ~seed] on the canonical formula, {e at any
      [jobs] level} — each draw consumes the splittable stream
      [(seed, index)], so results are independent of which domain
      executes them (the differential tests in [test_service.ml]
      enforce this on miss, hit and post-eviction paths).

    {b Parallel execution} ([jobs > 1]): whole requests are dispatched
    to a private {!Parallel.Executor}; at most [jobs] run concurrently
    and at most one per formula fingerprint, sharding prepared-state
    ownership so concurrent clients on different formulas never
    contend while one formula's requests serialise on its prepared
    state (whose solver sessions are per-domain via [Domain.DLS], and
    whose statistics merge assumes a single concurrent reader). The
    owning domain keeps every cache and queue touch: it resolves
    hit/miss and takes an execution pin before handing off, and
    installs fresh preparations / releases pins in the completion
    callback — worker domains only compute. Completions surface
    through {!completions}; {!notify_fd} exposes the executor's
    self-pipe so a select loop can sleep until a worker finishes.

    Single-owner: every entry point checks an {!Audit.Ownership} tag,
    so with audit mode on, a cross-domain touch raises a structured
    violation instead of racing. Metrics: [service.requests],
    [service.rejected], [service.deadline_misses], [service.cancelled],
    cache hit/miss/eviction counts, [service.queue_depth] /
    [service.in_flight] / [service.jobs] / [service.cache_pins]
    gauges, and [service.queue_wait_seconds] /
    [service.request_seconds] histograms. *)

type config = {
  queue_capacity : int;  (** max pending requests before rejection *)
  max_batch : int;  (** per-request sample budget *)
  cache_capacity : int;  (** prepared-state LRU size *)
  jobs : int;  (** worker domains executing requests; 1 = inline *)
  incremental : bool;  (** warm solver sessions (the default path) *)
  gauss : bool;
      (** XOR engine of every solver the daemon runs: in-search
          Gauss-Jordan elimination ([true], the default) or static
          RREF + parity 2-watch ([false]); witnesses are bit-identical
          either way. Part of the prepared-state cache key. *)
  slow_ms : float;
      (** requests slower than this log their [service.request] event
          at [Warn] instead of [Info] *)
  spill_dir : string option;
      (** when set, the prepared-state cache gains a durable tier: a
          {!Store} rooted here spills every preparation on insert and
          is consulted on every RAM miss, so a restarted daemon — or a
          fleet replica sharing the directory — serves its first
          request for a known formula disk-warm, without re-running
          ApproxMC, with witnesses bit-identical to the RAM-warm path *)
  spill_budget_bytes : int;
      (** disk budget of the durable tier (LRU-by-mtime eviction; see
          {!Store}); ignored when [spill_dir] is [None] *)
}

val default_config : config
(** [queue_capacity = 64], [max_batch = 10_000], [cache_capacity = 16],
    [jobs = 1], [incremental = true], [gauss = true],
    [slow_ms = 1000.0], [spill_dir = None],
    [spill_budget_bytes = Store.default_budget_bytes]. *)

type request = {
  formula : Cnf.Formula.t;
  n : int;
  seed : int;
  prepare_seed : int;
  epsilon : float;
  count_iterations : int option;
  timeout_s : float option;  (** relative deadline, measured from admission *)
  max_attempts : int;
  pin : bool;
  tag : string option;  (** echoed into the response *)
  trace_id : string option;
      (** correlation id for the request's spans and log line; minted
          as [req-<id>] at admission when [None] *)
}

val request_of_wire : Cnf.Formula.t -> Wire.sample_req -> request
(** Pair an already-parsed formula with the wire parameters. *)

type reject = { reason : Wire.reject_reason; retry_after_s : float }

type t

val create : ?config:config -> unit -> t
(** Builds the registry, the cache and (when [jobs > 1]) a private
    {!Parallel.Executor} with [jobs] worker domains.
    @raise Invalid_argument on non-positive capacities where required
    ([queue_capacity >= 1], [jobs >= 1], [cache_capacity >= 0],
    [max_batch >= 0]). *)

val config : t -> config
val cache : t -> Cache.t
val registry : t -> Registry.t

val submit : t -> request -> (int, reject) result
(** Admission control only — never solves. [Ok id] hands back the
    dispatch handle used by {!cancel} and returned with the
    response. *)

val cancel : t -> int -> bool
(** [true] iff the id was queued (removed outright) or in flight
    (marked: its response is suppressed when the worker finishes, its
    pins released as usual). [false] for unknown or already-finished
    ids. *)

val pending : t -> int
(** Admitted and not yet completed: queued plus in flight. *)

val queued : t -> int
(** Admitted, not yet dispatched. *)

val in_flight : t -> int
(** Dispatched to a worker domain, not yet completed. Always 0 in
    serial mode. *)

val is_parallel : t -> bool
(** [jobs > 1]. *)

val notify_fd : t -> Unix.file_descr option
(** The executor's completion-notification pipe (readable when a
    worker finished since the last {!completions}); [None] in serial
    mode. Select on it; never read it directly. *)

val set_draining : t -> unit
(** Further {!submit}s reject with [Draining]; pending requests still
    dispatch (the graceful-shutdown half of the daemon). *)

val is_draining : t -> bool

val step : t -> (int * Wire.response) option
(** Dispatch and fully execute the next request in fairness order on
    the calling domain; [None] when nothing is runnable. Works in
    either mode (in parallel mode it respects fingerprints currently
    in flight). *)

val dispatch : t -> int
(** Parallel mode: start as many runnable requests as free worker
    slots allow (at most [jobs] in flight, at most one per
    fingerprint); returns how many were started. Requests whose
    deadline already passed complete immediately as [Deadline_miss]
    without occupying a worker. Always 0 in serial mode. *)

val completions : t -> (int * Wire.response) list
(** Poll the executor and return every finished request since the last
    call, in completion order. Cancelled requests are omitted. Also
    drains {!notify_fd}. *)

val drain : t -> (int * Wire.response) list
(** Run to exhaustion — serial: {!step} in a loop; parallel:
    dispatch/await/collect until no request is queued or in flight —
    and return completions in order. *)

val shutdown : t -> unit
(** Stop the executor (workers finish their queued jobs, completion
    callbacks run, pins are released) and join its domains. Idempotent.
    Queued requests are not executed; callers wanting a graceful stop
    call {!set_draining} and {!drain} first. *)

(** {2 Telemetry}

    Every finished request feeds a set of {!Obs.Window} rolling
    histograms (12 × 10 s), process-wide and per formula fingerprint,
    and emits one structured {!Obs.Log} [service.request] line
    (trace id, fingerprint, outcome, queue/prepare/draw milliseconds,
    cache hit/miss, XOR engine) — at [Warn] past [slow_ms]. Spans
    produced on behalf of a request — [service.queue] (async, from
    admission to dispatch), [service.request], [service.prepare],
    [service.draw] and the [unigen.*] spans below them — all carry the
    request's trace id, across owner and worker domains. *)

val window_report : t -> Wire.window_report
(** Rates, counts and factor-of-2 latency percentiles over the rolling
    window, plus provenance (jobs, XOR engine, OCaml version, uptime).
    Owner-domain only, like every other entry point. *)

val uptime_s : t -> float
(** Seconds since {!create}. *)

val engine_name : t -> string
(** ["gauss"] or ["2watch"], per [config.gauss]. *)

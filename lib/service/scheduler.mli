(** Deadline-aware request scheduler over the prepared-state cache.

    The scheduler is the daemon's brain, factored out of the socket
    layer so every policy is unit-testable in-process:

    - {b bounded admission}: {!submit} is non-blocking; when
      [queue_capacity] requests are already pending it rejects with a
      [retry_after_s] hint derived from the observed mean request time
      (backpressure instead of unbounded buffering). Requests whose
      sample budget exceeds [max_batch] are rejected outright.
    - {b fairness}: pending requests are kept in one FIFO per formula
      fingerprint, and {!step} round-robins across fingerprints — a
      client spraying thousands of requests at one formula delays its
      own queue, not other formulas'.
    - {b deadlines}: a request admitted with [timeout_s] carries an
      absolute deadline; if it is already past when the request is
      dispatched, the request completes as [Deadline_miss] without
      touching a solver, and an in-flight preparation respects the
      same deadline through [Unigen.prepare ~deadline].
    - {b cancellation}: {!cancel} removes a pending request by id;
      cancelled requests are skipped at dispatch.
    - {b determinism}: execution reuses the {!Cache} when possible and
      prepares on a miss with [Rng.create prepare_seed]; either way
      the drawn witnesses are bit-identical to an offline
      [Unigen.sample_batch ~seed] on the canonical formula (the
      differential test in [test_service.ml] enforces this on both
      paths).

    Single-owner: every entry point checks an {!Audit.Ownership} tag,
    so with audit mode on, a cross-domain touch raises a structured
    violation instead of racing. Metrics: [service.requests],
    [service.rejected], [service.deadline_misses], [service.cancelled],
    cache hit/miss/eviction counts, [service.queue_depth] gauge, and
    [service.queue_wait_seconds] / [service.request_seconds]
    histograms. *)

type config = {
  queue_capacity : int;  (** max pending requests before rejection *)
  max_batch : int;  (** per-request sample budget *)
  cache_capacity : int;  (** prepared-state LRU size *)
  jobs : int;  (** worker domains for prepare/draw; 1 = inline *)
  incremental : bool;  (** warm solver sessions (the default path) *)
}

val default_config : config
(** [queue_capacity = 64], [max_batch = 10_000], [cache_capacity = 16],
    [jobs = 1], [incremental = true]. *)

type request = {
  formula : Cnf.Formula.t;
  n : int;
  seed : int;
  prepare_seed : int;
  epsilon : float;
  count_iterations : int option;
  timeout_s : float option;  (** relative deadline, measured from admission *)
  max_attempts : int;
  pin : bool;
  tag : string option;  (** echoed into the response *)
}

val request_of_wire : Cnf.Formula.t -> Wire.sample_req -> request
(** Pair an already-parsed formula with the wire parameters. *)

type reject = { reason : Wire.reject_reason; retry_after_s : float }

type t

val create : ?config:config -> unit -> t
(** Builds the registry, the cache and (when [jobs > 1]) a private
    {!Parallel.Domain_pool}. @raise Invalid_argument on non-positive
    capacities where required ([queue_capacity >= 1], [jobs >= 1],
    [cache_capacity >= 0], [max_batch >= 0]). *)

val config : t -> config
val cache : t -> Cache.t
val registry : t -> Registry.t

val submit : t -> request -> (int, reject) result
(** Admission control only — never solves. [Ok id] hands back the
    dispatch handle used by {!cancel} and returned by {!step}. *)

val cancel : t -> int -> bool
(** [true] iff the id was still pending. *)

val pending : t -> int
(** Admitted, not yet dispatched, not cancelled. *)

val set_draining : t -> unit
(** Further {!submit}s reject with [Draining]; pending requests still
    dispatch (the graceful-shutdown half of the daemon). *)

val is_draining : t -> bool

val step : t -> (int * Wire.response) option
(** Dispatch and fully execute the next request in fairness order;
    [None] when nothing is pending. *)

val drain : t -> (int * Wire.response) list
(** {!step} to exhaustion, in completion order. *)

val shutdown : t -> unit
(** Join the private worker pool (if any). Idempotent. Pending
    requests are not executed; callers wanting a graceful stop call
    {!set_draining} and {!drain} first. *)

(** Bounded least-recently-used map with pinning and explicit
    eviction — the mechanism behind the prepared-state cache.

    Semantics:
    - {!find} and {!put} move the entry to the most-recently-used
      position.
    - After an insertion pushes the population above [capacity],
      unpinned entries are evicted from the LRU end until the bound
      holds again. Pinned entries are skipped, and the entry being
      inserted is never its own victim; when every {e other} resident
      entry is pinned the map temporarily exceeds its capacity rather
      than evicting pinned state or the new entry (it shrinks back
      when a pin is released).
    - [capacity 0] therefore stores nothing: an unpinned insertion is
      evicted immediately ([on_evict] still fires), and {!pin} cannot
      reach it.
    - {!remove} is explicit eviction and overrides pinning.

    Pins are {e counted}: several independent holders (a client's
    explicit pin request, each in-flight draw executing against the
    entry) stack, and the entry becomes evictable again only when
    every holder has released — the invariant the daemon's chaos tests
    check (pin counts return to zero once work drains).

    Not thread-safe by design: the scheduler owns its cache from a
    single domain (enforced by an {!Audit.Ownership} tag one level
    up); worker domains never touch the LRU — they receive the entry
    value from the owner and hand results back to it. *)

type ('k, 'v) t

val create : ?on_evict:('k -> 'v -> unit) -> capacity:int -> unit -> ('k, 'v) t
(** [on_evict] fires for automatic (capacity) evictions only, not for
    {!remove} or value replacement.
    @raise Invalid_argument when [capacity < 0]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Touches the entry (moves it to MRU) on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does {e not} touch the entry. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching the recency order. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; replacement keeps the entry's pin state. *)

val pin : ('k, 'v) t -> 'k -> bool
(** Increment the entry's pin count, exempting it from automatic
    eviction; [false] when absent. *)

val unpin : ('k, 'v) t -> 'k -> bool
(** Decrement the pin count; [false] when absent or not pinned. The
    entry becomes evictable (and a deferred eviction may fire) only
    when the count reaches zero. *)

val is_pinned : ('k, 'v) t -> 'k -> bool
(** [pin_count > 0]. *)

val pin_count : ('k, 'v) t -> 'k -> int
(** Current pin count; 0 when absent. *)

val remove : ('k, 'v) t -> 'k -> bool
(** Explicit eviction, effective even on pinned entries; [false] when
    absent. *)

val keys_mru : ('k, 'v) t -> 'k list
(** All keys, most-recently-used first (the eviction order reversed) —
    for tests and introspection. *)

(** Bounded least-recently-used map with pinning and explicit
    eviction — the mechanism behind the prepared-state cache.

    Semantics:
    - {!find} and {!put} move the entry to the most-recently-used
      position.
    - After an insertion pushes the population above [capacity],
      unpinned entries are evicted from the LRU end until the bound
      holds again. Pinned entries are skipped, and the entry being
      inserted is never its own victim; when every {e other} resident
      entry is pinned the map temporarily exceeds its capacity rather
      than evicting pinned state or the new entry (it shrinks back
      when a pin is released).
    - [capacity 0] therefore stores nothing: an unpinned insertion is
      evicted immediately ([on_evict] still fires), and {!pin} cannot
      reach it.
    - {!remove} is explicit eviction and overrides pinning.

    Not thread-safe by design: the scheduler owns its cache from a
    single domain (enforced by an {!Audit.Ownership} tag one level
    up). *)

type ('k, 'v) t

val create : ?on_evict:('k -> 'v -> unit) -> capacity:int -> unit -> ('k, 'v) t
(** [on_evict] fires for automatic (capacity) evictions only, not for
    {!remove} or value replacement.
    @raise Invalid_argument when [capacity < 0]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Touches the entry (moves it to MRU) on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does {e not} touch the entry. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching the recency order. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; replacement keeps the entry's pin state. *)

val pin : ('k, 'v) t -> 'k -> bool
(** Exempt the entry from automatic eviction; [false] when absent.
    Idempotent. *)

val unpin : ('k, 'v) t -> 'k -> bool

val is_pinned : ('k, 'v) t -> 'k -> bool

val remove : ('k, 'v) t -> 'k -> bool
(** Explicit eviction, effective even on pinned entries; [false] when
    absent. *)

val keys_mru : ('k, 'v) t -> 'k list
(** All keys, most-recently-used first (the eviction order reversed) —
    for tests and introspection. *)

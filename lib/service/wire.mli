(** Wire protocol of the sampling daemon.

    {2 Framing}

    A frame is a 4-byte big-endian unsigned payload length followed by
    that many bytes of UTF-8 JSON. Frames larger than {!max_frame}
    bytes are a protocol error (the daemon closes the connection
    rather than buffering unboundedly). A connection carries any
    number of frames in each direction; the daemon answers sample
    requests in {e scheduling} order, which round-robins across
    formulas, so responses to one connection may be reordered relative
    to its submissions — each response carries the request's [tag]
    when one was given.

    {2 Requests}

    {v
    {"op":"sample","formula":"p cnf ...","n":10,"seed":7,
     "prepare_seed":1,"epsilon":6.0,"timeout_ms":30000,
     "max_attempts":20,"pin":false,"tag":"job-1","trace_id":"abc"}
    {"op":"cancel","tag":"job-1"}
    {"op":"status"}
    {"op":"metrics"}
    {"op":"shutdown"}
    v}

    {2 Responses}

    [{"status":"ok",...}] with witnesses as arrays of signed DIMACS
    literals and the request's (client-supplied or server-minted)
    [trace_id], [{"status":"rejected","reason":...,"retry_after_ms":...}]
    (admission backpressure), ["deadline_miss"], ["cancelled"],
    ["cancel_result"], ["unsat"], ["error"], ["metrics"] (lifetime
    counters plus provenance strings), ["window_report"] (last-minute
    rolling rates and percentiles, per formula fingerprint — the
    [metrics] op's answer, polled by [unigen monitor]), ["bye"]. *)

val max_frame : int
(** 64 MiB. *)

val encode_frame : string -> string
(** Payload with its length prefix. *)

exception Frame_error of string

(** Incremental frame extraction, for the daemon's non-blocking reads. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> unit
  (** [feed d buf n] appends the first [n] bytes of [buf]. *)

  val next : t -> string option
  (** The next complete payload, if one is buffered.
      @raise Frame_error on an oversized or negative length prefix. *)

  val buffered : t -> int
  (** Bytes currently held, including incomplete frames. *)
end

val read_frame : Unix.file_descr -> string option
(** Blocking read of one whole frame; [None] on orderly EOF at a
    frame boundary. @raise Frame_error on a truncated or oversized
    frame. For the client and tests; the daemon uses {!Decoder}. *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking write of one whole frame. *)

(** {2 Protocol values} *)

type sample_req = {
  formula_text : string;  (** DIMACS text, [c ind] and [x] lines included *)
  n : int;
  seed : int;  (** draw-stream seed: witness [i] comes from stream [(seed, i)] *)
  prepare_seed : int;
      (** preparation (ApproxMC) seed, default 1 — kept separate from
          [seed] so requests differing only in draw seed share one
          cached preparation *)
  epsilon : float;
  count_iterations : int option;
  timeout_s : float option;  (** request deadline, relative to admission *)
  max_attempts : int;
  pin : bool;  (** pin the prepared state against cache eviction *)
  tag : string option;  (** client-chosen id, echoed in the response *)
  trace_id : string option;
      (** correlation id threaded through every span and log line the
          request produces server-side; minted by the scheduler
          ([req-<id>]) when absent *)
}

val default_sample_req : sample_req
(** [n = 1], [seed = 1], [prepare_seed = 1], [epsilon = 6.0],
    [max_attempts = 20], everything else empty. *)

type request =
  | Sample of sample_req
  | Cancel of string  (** by tag *)
  | Status
  | Window  (** op ["metrics"]: rolling-window telemetry report *)
  | Shutdown

type reject_reason = Queue_full | Batch_too_large | Draining

type cache_source = Cache_miss | Cache_ram | Cache_disk
    (** where the request's prepared state came from: a fresh
        preparation, the in-memory LRU, or a disk-warm load from the
        durable store ([--spill-dir]) *)

val cache_source_to_string : cache_source -> string
(** ["miss"] / ["hit"] / ["disk"] — the wire encoding ([Cache_ram]
    keeps the historical ["hit"] so pre-fleet clients still parse). *)

val cache_source_of_string : string -> cache_source
(** @raise Json.Decode_error on an unknown value. *)

type sample_ok = {
  fingerprint : string;
  cache : cache_source;
  witnesses : int list list;
      (** one inner list per produced witness: signed DIMACS literals
          over the formula's variables, ascending — identical to
          [Cnf.Model.to_dimacs] of the offline [Unigen.sample_batch]
          models for the same seeds *)
  produced : int;
  requested : int;
  queue_wait_s : float;
  rsp_tag : string option;
  rsp_trace_id : string;
      (** the id every server-side span and log line of this request
          carries — grep the event log or the Chrome trace for it *)
}

type fp_window = {
  fp : string;
  fp_requests : int;
  fp_hits : int;  (** prepared-state cache hits in the window *)
  fp_misses : int;
  fp_p50_ms : float;
  fp_p90_ms : float;
  fp_p99_ms : float;
}
(** One fingerprint's slice of the rolling window. *)

type window_report = {
  window_s : float;  (** widest interval the rolling window can cover *)
  uptime_s : float;
  jobs : int;
  w_in_flight : int;
  w_queued : int;
  xor_engine : string;  (** ["gauss"] or ["2watch"] *)
  ocaml_version : string;
  w_requests : int;  (** requests finished inside the window *)
  rate_per_s : float;
  w_deadline_misses : int;
  w_hits : int;
  w_misses : int;
  p50_ms : float;  (** request-latency percentiles over the window *)
  p90_ms : float;
  p99_ms : float;
  queue_p50_ms : float;  (** queue-wait percentiles over the window *)
  queue_p90_ms : float;
  queue_p99_ms : float;
  per_fp : fp_window list;  (** busiest fingerprints first *)
}
(** Answer to the [metrics] op: what the daemon did over the last
    minute or two (see {!Obs.Window}), plus enough provenance to
    render a monitoring header. Percentiles are factor-of-2 estimates
    from the log₂ histograms. *)

type response =
  | Ok_sample of sample_ok
  | Rejected of { reason : reject_reason; retry_after_s : float }
  | Deadline_miss of { rsp_tag : string option }
  | Cancelled of { rsp_tag : string option }
  | Cancel_result of bool
  | Unsat of { rsp_tag : string option }
  | Error_msg of string
  | Metrics of { values : (string * float) list; info : (string * string) list }
      (** lifetime counters/gauges/percentiles plus provenance strings
          (xor_engine, ocaml_version) — the [status] op's answer *)
  | Window_report of window_report
  | Bye

val request_to_json : request -> Json.t
val request_of_json : Json.t -> request
(** @raise Json.Decode_error on an unknown op or missing field. *)

val response_to_json : response -> Json.t
val response_of_json : Json.t -> response

val reject_reason_to_string : reject_reason -> string

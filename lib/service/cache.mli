(** Prepared-state cache: the amortization layer of the daemon.

    UniGen's cost structure is one expensive preparation per formula
    (ApproxMC count, κ/pivot selection, candidate hash-size window)
    followed by many cheap draws. This cache keys a
    {!Sampling.Unigen.prepared} by everything the preparation is a
    deterministic function of — the formula's content address plus
    the preparation parameters — so a repeat request skips straight
    to the draw loop {e and} still returns witnesses bit-identical to
    a cold run (the determinism contract the differential tests
    enforce).

    Bounded LRU with pinning and explicit eviction (see {!Lru} for
    the exact semantics); hit/miss/eviction counts flow to
    {!Obs.Metrics} under [service.cache_hits] / [service.cache_misses]
    / [service.cache_evictions]. *)

type key = {
  fingerprint : string;  (** {!Registry.fingerprint} of the formula *)
  epsilon : float;
  prepare_seed : int;
      (** seed of the RNG handed to [Unigen.prepare] (ApproxMC's
          randomness) — part of the key so a cache hit reproduces the
          exact hash-size window a cold preparation would compute *)
  count_iterations : int option;
  incremental : bool;
}

val key_to_string : key -> string
(** Stable rendering used for metrics labels and debugging. *)

type entry = {
  prepared : Sampling.Unigen.prepared;
  formula : Cnf.Formula.t;  (** the canonical formula that was prepared *)
  mutable draws_served : int;
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 0]. *)

val capacity : t -> int
val length : t -> int

val find : t -> key -> entry option
(** Counts a hit or a miss and touches the LRU order. *)

val peek : t -> key -> entry option
(** No metrics, no touch. *)

val put : t -> key -> entry -> unit
val pin : t -> key -> bool
val unpin : t -> key -> bool
val is_pinned : t -> key -> bool
val remove : t -> key -> bool
val keys_mru : t -> key list

(** Prepared-state cache: the amortization layer of the daemon.

    UniGen's cost structure is one expensive preparation per formula
    (ApproxMC count, κ/pivot selection, candidate hash-size window)
    followed by many cheap draws. This cache keys a
    {!Sampling.Unigen.prepared} by everything the preparation is a
    deterministic function of — the formula's content address plus
    the preparation parameters — so a repeat request skips straight
    to the draw loop {e and} still returns witnesses bit-identical to
    a cold run (the determinism contract the differential tests
    enforce).

    Bounded LRU with pinning and explicit eviction (see {!Lru} for
    the exact semantics); hit/miss/eviction counts flow to
    {!Obs.Metrics} under [service.cache_hits] / [service.cache_misses]
    / [service.cache_evictions].

    Two kinds of pins protect an entry from eviction, both backed by
    the LRU's counted pins:
    - {b client pins} ({!pin}/{!unpin}): idempotent, requested over the
      wire ([pin: true]) — at most one count per key no matter how many
      requests ask.
    - {b execution pins} ({!acquire}/{!release}): counted, taken by the
      scheduler for the duration of every in-flight draw against the
      entry, so a parallel daemon can never evict a preparation that a
      worker domain is reading. Outstanding execution pins are
      published as the [service.cache_pins] gauge and must return to
      zero when the scheduler drains — the chaos tests enforce it. *)

type key = {
  fingerprint : string;  (** {!Registry.fingerprint} of the formula *)
  epsilon : float;
  prepare_seed : int;
      (** seed of the RNG handed to [Unigen.prepare] (ApproxMC's
          randomness) — part of the key so a cache hit reproduces the
          exact hash-size window a cold preparation would compute *)
  count_iterations : int option;
  incremental : bool;
  gauss : bool;  (** XOR engine of the prepared sessions *)
}

val key_to_string : key -> string
(** Stable rendering used for metrics labels and debugging. *)

type entry = {
  prepared : Sampling.Unigen.prepared;
  formula : Cnf.Formula.t;  (** the canonical formula that was prepared *)
  mutable draws_served : int;
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 0]. *)

val capacity : t -> int
val length : t -> int

val find : t -> key -> entry option
(** Counts a hit or a miss and touches the LRU order. *)

val peek : t -> key -> entry option
(** No metrics, no touch. *)

val put : t -> key -> entry -> unit

val pin : t -> key -> bool
(** Idempotent client pin; [false] when the key is absent. *)

val unpin : t -> key -> bool
(** Release the client pin; [false] when none was held. *)

val is_pinned : t -> key -> bool

val acquire : t -> key -> bool
(** Take one counted execution pin; [false] when the key is absent. *)

val release : t -> key -> bool
(** Release one execution pin taken by {!acquire}. *)

val pin_count : t -> key -> int
(** Total pins (client + execution) held on the key. *)

val total_pin_count : t -> int
(** Sum of {!pin_count} over every resident key — zero once all work
    has drained and no client pins are held. *)

val remove : t -> key -> bool
(** Explicit eviction; overrides pins and drops any client-pin mark. *)

val keys_mru : t -> key list

(** Prepared-state cache: the amortization layer of the daemon.

    UniGen's cost structure is one expensive preparation per formula
    (ApproxMC count, κ/pivot selection, candidate hash-size window)
    followed by many cheap draws. This cache keys a
    {!Sampling.Unigen.prepared} by everything the preparation is a
    deterministic function of — the formula's content address plus
    the preparation parameters — so a repeat request skips straight
    to the draw loop {e and} still returns witnesses bit-identical to
    a cold run (the determinism contract the differential tests
    enforce).

    Bounded LRU with pinning and explicit eviction (see {!Lru} for
    the exact semantics); hit/miss/eviction counts flow to
    {!Obs.Metrics} under [service.cache_hits] / [service.cache_misses]
    / [service.cache_evictions].

    Two kinds of pins protect an entry from eviction, both backed by
    the LRU's counted pins:
    - {b client pins} ({!pin}/{!unpin}): idempotent, requested over the
      wire ([pin: true]) — at most one count per key no matter how many
      requests ask.
    - {b execution pins} ({!acquire}/{!release}): counted, taken by the
      scheduler for the duration of every in-flight draw against the
      entry, so a parallel daemon can never evict a preparation that a
      worker domain is reading. Outstanding execution pins are
      published as the [service.cache_pins] gauge and must return to
      zero when the scheduler drains — the chaos tests enforce it. *)

type key = {
  fingerprint : string;  (** {!Registry.fingerprint} of the formula *)
  epsilon : float;
  prepare_seed : int;
      (** seed of the RNG handed to [Unigen.prepare] (ApproxMC's
          randomness) — part of the key so a cache hit reproduces the
          exact hash-size window a cold preparation would compute *)
  count_iterations : int option;
  incremental : bool;
  gauss : bool;  (** XOR engine of the prepared sessions *)
}

val key_to_string : key -> string
(** Stable rendering used for metrics labels and debugging. *)

type entry = {
  prepared : Sampling.Unigen.prepared;
  formula : Cnf.Formula.t;  (** the canonical formula that was prepared *)
  mutable draws_served : int;
}

type tier = Ram | Disk
    (** which tier satisfied a {!find}: the in-memory LRU or a
        disk-warm load from the durable store *)

type spill = {
  sp_store : Store.t;
  sp_encode : key -> entry -> string;
  sp_decode : key -> string -> (entry, string) result;
}
(** The durable tier, injected as closures to avoid a module cycle
    with the codec ([Spill] needs this module's types). The scheduler
    wires [Spill.encode]/[Spill.decode] in when [spill_dir] is set. *)

type t

val create : ?spill:spill -> capacity:int -> unit -> t
(** Without [spill] the cache is the historical RAM-only LRU.
    @raise Invalid_argument when [capacity < 0]. *)

val capacity : t -> int
val length : t -> int

val store : t -> Store.t option
(** The durable tier's store, when one is attached. *)

val find : t -> key -> (entry * tier) option
(** RAM first; on a RAM miss with a durable tier attached, load the
    entry from the store, promote it into the LRU and report a
    [Disk] hit. Either tier counts as one [service.cache_hits] (disk
    loads additionally count [store.hit]). A spill payload that fails
    to decode is quarantined and the lookup falls through to a miss,
    so corruption costs a re-preparation, never a crash. *)

val peek : t -> key -> entry option
(** RAM tier only; no metrics, no touch, no disk load. *)

val put : t -> key -> entry -> unit
(** Insert into the LRU and, when a durable tier is attached, spill
    the encoded entry to disk (crash-safe; see {!Store.put}). *)

val pin : t -> key -> bool
(** Idempotent client pin; [false] when the key is absent. *)

val unpin : t -> key -> bool
(** Release the client pin; [false] when none was held. *)

val is_pinned : t -> key -> bool

val acquire : t -> key -> bool
(** Take one counted execution pin; [false] when the key is absent. *)

val release : t -> key -> bool
(** Release one execution pin taken by {!acquire}. *)

val pin_count : t -> key -> int
(** Total pins (client + execution) held on the key. *)

val total_pin_count : t -> int
(** Sum of {!pin_count} over every resident key — zero once all work
    has drained and no client pins are held. *)

val remove : t -> key -> bool
(** Explicit eviction; overrides pins and drops any client-pin mark. *)

val keys_mru : t -> key list

(** Content-addressed formula registry.

    Two clients submitting the same formula — up to clause order,
    literal order, duplicate literals/clauses, tautologies and
    sampling-set order — should share one prepared sampler state. The
    registry makes that identity explicit: {!canonical} maps a formula
    to a normal form, {!fingerprint} hashes the normal form's
    serialization into a stable content address, and {!intern} stores
    one shared canonical copy per fingerprint.

    Canonical form (this is also the specification the DIMACS
    round-trip property in the test suite checks against):
    - clauses are {!Cnf.Clause.normalize}d (literals sorted,
      duplicates dropped), tautologies removed, then sorted with
      {!Cnf.Clause.compare} and deduplicated;
    - XOR rows are rebuilt with {!Cnf.Xor_clause.make} (variables
      sorted, pairs cancelled), trivially-true empty rows ([⊕∅ =
      false], which has no DIMACS rendering) dropped, then sorted and
      deduplicated;
    - the sampling set, when declared, is sorted and deduplicated
      (declared-vs-absent is preserved: an absent set means "sample
      over all variables", which is a different formula identity);
    - [num_vars] is preserved verbatim — variables beyond the last
      occurring one still widen the witness space.

    The preparation pipeline runs on the canonical formula, so every
    client of one fingerprint receives witnesses from the same
    deterministic draw streams regardless of how its copy of the
    formula was ordered. *)

val version : string
(** ["unigen-registry-v1"] — the tag prefixed to every {!serialize}d
    form before hashing. Durable-store keys embed {!fingerprint}s, so
    this version (with the golden vectors in the test suite) is the
    compatibility contract for on-disk prepared state: bump it
    whenever the canonicalization spec changes, and old spill entries
    invalidate themselves. *)

val canonical : Cnf.Formula.t -> Cnf.Formula.t
(** Idempotent: [canonical (canonical f)] equals [canonical f]. *)

val serialize : Cnf.Formula.t -> string
(** Canonicalize, then render the versioned byte string that is
    hashed by {!fingerprint} (exposed for tests and debugging). *)

val fingerprint : Cnf.Formula.t -> string
(** Hex content address of [serialize f] — equal for any two formulas
    with the same canonical form. *)

type t
(** Registry instance: fingerprint → shared canonical formula. *)

val create : unit -> t

val intern : t -> Cnf.Formula.t -> string * Cnf.Formula.t
(** [intern t f] returns [(fingerprint, canonical)]; a second intern
    of an equivalent formula returns the {e same} canonical value
    (physical sharing), so per-formula state keyed by fingerprint
    never duplicates. *)

val find : t -> string -> Cnf.Formula.t option
val length : t -> int

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      Buffer.add_string buf
        (if Float.is_nan f then "null"
         else if Float.is_integer f && Float.abs f < 1e15 then
           Printf.sprintf "%.1f" f
         else Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          print_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail "expected '%c' at offset %d, got '%c'" c st.pos c'
  | None -> fail "expected '%c' at offset %d, got end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "bad literal at offset %d" st.pos

let parse_str st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> fail "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.src then fail "bad \\u escape";
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail "bad \\u escape %S" hex
                in
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else
                  (* non-ASCII BMP escapes are preserved verbatim; the
                     protocol only ever escapes control characters *)
                  Buffer.add_string b (Printf.sprintf "\\u%04x" code)
            | c -> fail "bad escape '\\%c'" c);
            go ())
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let numchar = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when numchar c -> true | _ -> false do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "bad number %S at offset %d" s start)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_str st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else
        let rec members acc =
          skip_ws st;
          let k = parse_str st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}' at offset %d" st.pos
        in
        members []
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' at offset %d" st.pos
        in
        elements []
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing garbage at offset %d" st.pos;
  v

(* ------------------------------------------------------------------ *)
(* Decoding helpers *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let get_string k v =
  match member k v with
  | Some (Str s) -> s
  | Some _ -> fail "field %S: expected a string" k
  | None -> fail "missing field %S" k

let get_int k v =
  match member k v with
  | Some (Int i) -> i
  | Some _ -> fail "field %S: expected an integer" k
  | None -> fail "missing field %S" k

let get_float k v =
  match member k v with
  | Some (Float f) -> f
  | Some (Int i) -> float_of_int i
  | Some _ -> fail "field %S: expected a number" k
  | None -> fail "missing field %S" k

let get_bool ?(default = false) k v =
  match member k v with
  | Some (Bool b) -> b
  | Some Null | None -> default
  | Some _ -> fail "field %S: expected a boolean" k

let opt_int k v =
  match member k v with
  | Some (Int i) -> Some i
  | Some Null | None -> None
  | Some _ -> fail "field %S: expected an integer" k

let opt_float k v =
  match member k v with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | Some Null | None -> None
  | Some _ -> fail "field %S: expected a number" k

let opt_string k v =
  match member k v with
  | Some (Str s) -> Some s
  | Some Null | None -> None
  | Some _ -> fail "field %S: expected a string" k

let get_list k v =
  match member k v with
  | Some (List l) -> l
  | Some _ -> fail "field %S: expected an array" k
  | None -> fail "missing field %S" k

let to_int = function
  | Int i -> i
  | _ -> raise (Decode_error "expected an integer")

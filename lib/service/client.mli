(** Blocking client for the sampling daemon. *)

type t
(** One open connection. *)

exception Protocol_error of string
(** The daemon closed mid-frame or sent undecodable JSON. *)

val connect : socket_path:string -> t
(** @raise Unix.Unix_error when the daemon is not reachable. *)

val close : t -> unit

val request : t -> Wire.request -> Wire.response
(** Send one request and block for the next response frame. Sample
    responses arrive in daemon scheduling order; when interleaving
    requests on one connection, distinguish them by [tag]. *)

val recv : t -> Wire.response
(** Block for one more response frame without sending anything (for
    tagged multi-request pipelines). *)

val with_connection : socket_path:string -> (t -> 'a) -> 'a

val call : socket_path:string -> Wire.request -> Wire.response
(** Connect, {!request}, close. *)

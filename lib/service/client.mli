(** Blocking client for the sampling daemon. *)

type t
(** One open connection. *)

exception Protocol_error of string
(** The daemon closed mid-frame or sent undecodable JSON. *)

val connect : socket_path:string -> t
(** @raise Unix.Unix_error when the daemon is not reachable. *)

val close : t -> unit

val request : t -> Wire.request -> Wire.response
(** Send one request and block for the next response frame. Sample
    responses arrive in daemon scheduling order; when interleaving
    requests on one connection, distinguish them by [tag]. *)

val recv : t -> Wire.response
(** Block for one more response frame without sending anything (for
    tagged multi-request pipelines). *)

val with_connection : socket_path:string -> (t -> 'a) -> 'a

val call : socket_path:string -> Wire.request -> Wire.response
(** Connect, {!request}, close. *)

val with_retry :
  ?max_attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  rng:Rng.t ->
  (unit -> Wire.response) ->
  Wire.response
(** Run [f] (typically a {!call}) up to [max_attempts] times (default
    5), retrying on [Rejected] responses and on transient transport
    failures (connection refused/reset, missing socket, broken pipe,
    {!Protocol_error} — a daemon restarting under the client). Each
    retry sleeps the larger of the scheduler's [retry_after_s] hint —
    the EWMA-priced backlog estimate — and a capped exponential
    backoff from [base_delay_s] (default 50 ms, doubling, capped at
    [max_delay_s], default 2 s), jittered over [0.5×, 1×] by draws
    from [rng] so simultaneous clients de-synchronise
    deterministically. The final attempt's response (or exception)
    surfaces unchanged.
    @raise Invalid_argument when [max_attempts < 1]. *)

(** Consistent-hash routing across a fleet's sockets (see
    [Server.run_fleet]). Each socket contributes [vnodes] points on a
    hash ring; a key routes to the socket owning the first point
    clockwise from the key's hash. The hash is the leading bits of the
    key's MD5, so the map is a pure function of the socket list and
    the key — every client that lists the fleet's sockets in any
    process computes the same shard map, which is what keeps one
    formula's requests (and its prepared state) on one replica.
    Routing keys are registry fingerprints, so all parameter
    variations of one formula land together. *)
module Fleet : sig
  type t

  val create : ?vnodes:int -> string list -> t
  (** Build the ring over the given socket paths ([vnodes] points per
      socket, default 64 — enough that two replicas split real
      workloads roughly evenly). Order of the list does not matter.
      @raise Invalid_argument on an empty list or [vnodes < 1]. *)

  val sockets : t -> string list
  val route : t -> string -> string
  (** [route t key] is the socket that owns [key]. *)
end

(** Minimal JSON values for the service wire protocol.

    The daemon speaks length-prefixed JSON (see {!Wire}); this module
    is the self-contained value type, printer and parser behind it —
    deliberately dependency-free, like the rest of the repository.
    Numbers distinguish integers from floats so witness literals
    survive a round trip exactly; parsing accepts any JSON number and
    yields [Int] whenever the text is an exact integer. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Decode_error of string

val to_string : t -> string
(** Compact rendering (no insignificant whitespace), ASCII-escaped
    strings, stable member order (insertion order of the [Obj] list). *)

val of_string : string -> t
(** Strict parser: rejects trailing garbage, unterminated strings and
    malformed escapes. @raise Decode_error on any syntax error. *)

(** {2 Decoding helpers}

    All raise {!Decode_error} with the offending key in the message,
    so protocol errors surface as structured [error] responses rather
    than [Match_failure]s. *)

val member : string -> t -> t option
(** [member k (Obj _)] — [None] when absent or when the value is not
    an object. *)

val get_string : string -> t -> string
val get_int : string -> t -> int
val get_float : string -> t -> float
(** [get_float] accepts both [Int] and [Float] members. *)

val get_bool : ?default:bool -> string -> t -> bool
val opt_int : string -> t -> int option
val opt_float : string -> t -> float option
val opt_string : string -> t -> string option
val get_list : string -> t -> t list
val to_int : t -> int
(** @raise Decode_error when the value is not an [Int]. *)

type key = {
  fingerprint : string;
  epsilon : float;
  prepare_seed : int;
  count_iterations : int option;
  incremental : bool;
}

let key_to_string k =
  Printf.sprintf "%s/e%g/p%d/i%s/%s" k.fingerprint k.epsilon k.prepare_seed
    (match k.count_iterations with None -> "-" | Some n -> string_of_int n)
    (if k.incremental then "inc" else "fresh")

type entry = {
  prepared : Sampling.Unigen.prepared;
  formula : Cnf.Formula.t;
  mutable draws_served : int;
}

let c_hits = Obs.Metrics.counter "service.cache_hits"
let c_misses = Obs.Metrics.counter "service.cache_misses"
let c_evictions = Obs.Metrics.counter "service.cache_evictions"

type t = { lru : (key, entry) Lru.t }

let create ~capacity =
  { lru = Lru.create ~on_evict:(fun _ _ -> Obs.Metrics.incr c_evictions) ~capacity () }

let capacity t = Lru.capacity t.lru
let length t = Lru.length t.lru

let find t k =
  match Lru.find t.lru k with
  | Some e ->
      Obs.Metrics.incr c_hits;
      Some e
  | None ->
      Obs.Metrics.incr c_misses;
      None

let peek t k = Lru.peek t.lru k

let put t k e = Lru.put t.lru k e
let pin t k = Lru.pin t.lru k
let unpin t k = Lru.unpin t.lru k
let is_pinned t k = Lru.is_pinned t.lru k
let remove t k = Lru.remove t.lru k
let keys_mru t = Lru.keys_mru t.lru

type key = {
  fingerprint : string;
  epsilon : float;
  prepare_seed : int;
  count_iterations : int option;
  incremental : bool;
  gauss : bool;
}

let key_to_string k =
  Printf.sprintf "%s/e%g/p%d/i%s/%s/%s" k.fingerprint k.epsilon k.prepare_seed
    (match k.count_iterations with None -> "-" | Some n -> string_of_int n)
    (if k.incremental then "inc" else "fresh")
    (if k.gauss then "gauss" else "2watch")

type entry = {
  prepared : Sampling.Unigen.prepared;
  formula : Cnf.Formula.t;
  mutable draws_served : int;
}

let c_hits = Obs.Metrics.counter "service.cache_hits"
let c_misses = Obs.Metrics.counter "service.cache_misses"
let c_evictions = Obs.Metrics.counter "service.cache_evictions"

type tier = Ram | Disk

(* The durable tier is injected as a record of closures rather than a
   direct dependency on [Spill]: the codec needs this module's [key]
   and [entry] types, so a direct call the other way would be a cycle.
   The scheduler (which sees both) ties the knot in [Scheduler.create]. *)
type spill = {
  sp_store : Store.t;
  sp_encode : key -> entry -> string;
  sp_decode : key -> string -> (entry, string) result;
}

type t = {
  lru : (key, entry) Lru.t;
  spill : spill option;
  user_pins : (key, unit) Hashtbl.t;
      (* keys holding exactly one of the LRU's counted pins on behalf
         of clients' [pin] requests — so the client-facing operation
         stays idempotent while execution pins stack underneath *)
  mutable exec_pins : int;  (* outstanding acquire-release pairs *)
}

let set_pins_gauge t =
  Obs.Metrics.set_gauge "service.cache_pins" (float_of_int t.exec_pins)

let create ?spill ~capacity () =
  {
    lru = Lru.create ~on_evict:(fun _ _ -> Obs.Metrics.incr c_evictions) ~capacity ();
    spill;
    user_pins = Hashtbl.create 8;
    exec_pins = 0;
  }

let capacity t = Lru.capacity t.lru
let length t = Lru.length t.lru
let store t = Option.map (fun sp -> sp.sp_store) t.spill

let find_disk t k =
  match t.spill with
  | None -> None
  | Some sp -> (
      let skey = key_to_string k in
      match Store.find sp.sp_store ~key:skey with
      | None -> None
      | Some payload -> (
          match sp.sp_decode k payload with
          | Ok e ->
              (* promote to the RAM tier; even with capacity 0 the
                 caller still gets this entry *)
              Lru.put t.lru k e;
              Some e
          | Error reason ->
              (* store-level checksum passed but the payload does not
                 decode (codec version skew, registry drift): same
                 policy as bit rot — quarantine, fall back to a clean
                 re-preparation *)
              Store.quarantine sp.sp_store ~key:skey ~reason;
              None))

let find t k =
  match Lru.find t.lru k with
  | Some e ->
      Obs.Metrics.incr c_hits;
      Some (e, Ram)
  | None -> (
      match find_disk t k with
      | Some e ->
          Obs.Metrics.incr c_hits;
          Some (e, Disk)
      | None ->
          Obs.Metrics.incr c_misses;
          None)

let peek t k = Lru.peek t.lru k

let put t k e =
  Lru.put t.lru k e;
  match t.spill with
  | None -> ()
  | Some sp ->
      (* The spill is synchronous on the owner domain: encode + write +
         two fsyncs block the select loop for the duration. Deliberate —
         it keeps the no-lock ownership model intact, and a spill
         happens once per fresh preparation (seconds of ApproxMC work),
         so the fsync is noise by comparison; see DESIGN.md "Durable
         store & fleet" for the tradeoff. [Store.put] never raises on
         I/O failure, so a sick disk degrades this tier to RAM-only
         rather than crashing the daemon mid-response. *)
      Store.put sp.sp_store ~key:(key_to_string k) (sp.sp_encode k e)

let pin t k =
  if Hashtbl.mem t.user_pins k then Lru.is_pinned t.lru k
  else if Lru.pin t.lru k then begin
    Hashtbl.replace t.user_pins k ();
    true
  end
  else false

let unpin t k =
  if Hashtbl.mem t.user_pins k then begin
    Hashtbl.remove t.user_pins k;
    Lru.unpin t.lru k
  end
  else false

let is_pinned t k = Lru.is_pinned t.lru k

let acquire t k =
  if Lru.pin t.lru k then begin
    t.exec_pins <- t.exec_pins + 1;
    set_pins_gauge t;
    true
  end
  else false

let release t k =
  let released = Lru.unpin t.lru k in
  if released then begin
    t.exec_pins <- t.exec_pins - 1;
    set_pins_gauge t
  end;
  released

let pin_count t k = Lru.pin_count t.lru k

let total_pin_count t =
  List.fold_left (fun acc k -> acc + Lru.pin_count t.lru k) 0 (Lru.keys_mru t.lru)

let remove t k =
  Hashtbl.remove t.user_pins k;
  Lru.remove t.lru k

let keys_mru t = Lru.keys_mru t.lru

(* Doubly-linked recency list over a hash table. [head] is the
   most-recently-used end, [tail] the eviction end. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable pins : int;  (* eviction-exempt while > 0 *)
  mutable prev : ('k, 'v) node option;  (* towards MRU *)
  mutable next : ('k, 'v) node option;  (* towards LRU *)
}

type ('k, 'v) t = {
  capacity : int;
  on_evict : 'k -> 'v -> unit;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable length : int;
}

let create ?(on_evict = fun _ _ -> ()) ~capacity () =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be >= 0";
  {
    capacity;
    on_evict;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    length = 0;
  }

let capacity t = t.capacity
let length t = t.length

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

(* Walk from the tail towards the head looking for the oldest
   evictable entry; [None] when everything resident is pinned (or is
   the protected just-inserted node). *)
let rec oldest_unpinned ?protect = function
  | None -> None
  | Some n when n.pins > 0 -> oldest_unpinned ?protect n.prev
  | Some n when (match protect with Some p -> p == n | None -> false) ->
      oldest_unpinned ?protect n.prev
  | some -> some

let enforce_capacity ?protect t =
  let continue = ref true in
  while t.length > t.capacity && !continue do
    match oldest_unpinned ?protect t.tail with
    | None -> continue := false
    | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.key;
        t.length <- t.length - 1;
        t.on_evict victim.key victim.value
  done

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      touch t n;
      Some n.value

let mem t k = Hashtbl.mem t.table k

let peek t k =
  match Hashtbl.find_opt t.table k with Some n -> Some n.value | None -> None

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      touch t n;
      enforce_capacity t
  | None ->
      let n = { key = k; value = v; pins = 0; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n;
      t.length <- t.length + 1;
      (* the entry being inserted is never its own victim — except at
         capacity 0, where nothing is ever resident *)
      if t.capacity = 0 then enforce_capacity t else enforce_capacity ~protect:n t

let pin t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some n ->
      n.pins <- n.pins + 1;
      true

let unpin t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some n when n.pins = 0 -> false
  | Some n ->
      n.pins <- n.pins - 1;
      (* releasing the last pin may re-enable a deferred eviction *)
      if n.pins = 0 then enforce_capacity t;
      true

let is_pinned t k =
  match Hashtbl.find_opt t.table k with Some n -> n.pins > 0 | None -> false

let pin_count t k =
  match Hashtbl.find_opt t.table k with Some n -> n.pins | None -> 0

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k;
      t.length <- t.length - 1;
      true

let keys_mru t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

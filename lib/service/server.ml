type config = {
  socket_path : string;
  scheduler : Scheduler.config;
  log : string -> unit;
  shard : (int * int) option;
}

let default_config ~socket_path =
  { socket_path; scheduler = Scheduler.default_config; log = ignore; shard = None }

let shard_socket base i = Printf.sprintf "%s.%d" base i

type conn = {
  fd : Unix.file_descr;
  decoder : Wire.Decoder.t;
  waiting : (int, unit) Hashtbl.t;  (* scheduler ids owed a response *)
  mutable alive : bool;
}

type state = {
  cfg : config;
  sched : Scheduler.t;
  mutable conns : conn list;
  conn_of_id : (int, conn) Hashtbl.t;
  tag_of_id : (int, string) Hashtbl.t;
  id_of_tag : (string, int) Hashtbl.t;  (* last submission wins *)
  mutable shutting_down : bool;
}

let read_chunk = 65536

let forget_id st id =
  Hashtbl.remove st.conn_of_id id;
  match Hashtbl.find_opt st.tag_of_id id with
  | None -> ()
  | Some tag ->
      Hashtbl.remove st.tag_of_id id;
      (* only clear the forward mapping if it still points at us *)
      (match Hashtbl.find_opt st.id_of_tag tag with
      | Some id' when id' = id -> Hashtbl.remove st.id_of_tag tag
      | _ -> ())

let close_conn st c =
  if c.alive then begin
    c.alive <- false;
    Hashtbl.iter
      (fun id () ->
        ignore (Scheduler.cancel st.sched id : bool);
        forget_id st id)
      c.waiting;
    Hashtbl.reset c.waiting;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c' -> c' != c) st.conns
  end

let send st c response =
  if c.alive then
    try Wire.write_frame c.fd (Json.to_string (Wire.response_to_json response))
    with Unix.Unix_error _ | Wire.Frame_error _ -> close_conn st c

let deliver st id response =
  match Hashtbl.find_opt st.conn_of_id id with
  | None -> ()  (* connection went away; request was cancelled or raced *)
  | Some c ->
      Hashtbl.remove c.waiting id;
      forget_id st id;
      send st c response

let handle_request st c = function
  | Wire.Status ->
      let snap = Obs.Metrics.snapshot () in
      (* service histograms surface as factor-of-2 percentile fields so
         clients can watch queue-wait degradation without scraping a
         metrics report (e.g. service.queue_wait_seconds.p90) *)
      let percentiles =
        List.concat_map
          (fun (name, data) ->
            if String.length name >= 8 && String.sub name 0 8 = "service." then
              [
                (name ^ ".count", float_of_int data.Obs.Metrics.Hist.count);
                (name ^ ".p50", Obs.Metrics.Hist.quantile data 0.5);
                (name ^ ".p90", Obs.Metrics.Hist.quantile data 0.9);
                (name ^ ".p99", Obs.Metrics.Hist.quantile data 0.99);
              ]
            else [])
          snap.Obs.Metrics.histograms
      in
      let values =
        List.map (fun (k, v) -> (k, float_of_int v)) snap.Obs.Metrics.counters
        @ snap.Obs.Metrics.gauges @ percentiles
        @ [
            ("server.uptime_seconds", Scheduler.uptime_s st.sched);
            ( "server.jobs",
              float_of_int (Scheduler.config st.sched).Scheduler.jobs );
          ]
      in
      (* provenance: which build is answering, with what engine *)
      let info =
        [
          ("xor_engine", Scheduler.engine_name st.sched);
          ("ocaml_version", Sys.ocaml_version);
        ]
        @ (match st.cfg.shard with
          | Some (i, n) -> [ ("shard", Printf.sprintf "%d/%d" i n) ]
          | None -> [])
        @
        match (Scheduler.config st.sched).Scheduler.spill_dir with
        | Some dir -> [ ("spill_dir", dir) ]
        | None -> []
      in
      send st c (Wire.Metrics { values; info })
  | Wire.Window -> send st c (Wire.Window_report (Scheduler.window_report st.sched))
  | Wire.Shutdown ->
      st.cfg.log "shutdown requested; draining";
      st.shutting_down <- true;
      send st c Wire.Bye
  | Wire.Cancel tag -> (
      match Hashtbl.find_opt st.id_of_tag tag with
      | None -> send st c (Wire.Cancel_result false)
      | Some id ->
          let cancelled = Scheduler.cancel st.sched id in
          if cancelled then
            deliver st id (Wire.Cancelled { rsp_tag = Some tag })
          else forget_id st id;
          send st c (Wire.Cancel_result cancelled))
  | Wire.Sample w -> (
      if st.shutting_down then
        send st c
          (Wire.Rejected { reason = Wire.Draining; retry_after_s = 0.0 })
      else
        match Cnf.Dimacs.parse_string w.Wire.formula_text with
        | exception Cnf.Dimacs.Parse_error msg ->
            send st c (Wire.Error_msg ("formula: " ^ msg))
        | formula -> (
            let req = Scheduler.request_of_wire formula w in
            match Scheduler.submit st.sched req with
            | Error { Scheduler.reason; retry_after_s } ->
                send st c (Wire.Rejected { reason; retry_after_s })
            | Ok id ->
                Hashtbl.replace c.waiting id ();
                Hashtbl.replace st.conn_of_id id c;
                (match w.Wire.tag with
                | None -> ()
                | Some tag ->
                    Hashtbl.replace st.tag_of_id id tag;
                    Hashtbl.replace st.id_of_tag tag id)))

let handle_readable st c =
  let buf = Bytes.create read_chunk in
  match Unix.read c.fd buf 0 read_chunk with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn st c
  | 0 -> close_conn st c
  | n -> (
      Wire.Decoder.feed c.decoder buf n;
      try
        let continue = ref true in
        while !continue && c.alive do
          match Wire.Decoder.next c.decoder with
          | None -> continue := false
          | Some payload -> (
              match Wire.request_of_json (Json.of_string payload) with
              | request -> handle_request st c request
              | exception Json.Decode_error msg ->
                  send st c (Wire.Error_msg ("bad request: " ^ msg)))
        done
      with Wire.Frame_error msg ->
        send st c (Wire.Error_msg ("bad frame: " ^ msg));
        close_conn st c)

let with_signals handler f =
  let installed = [ Sys.sigint; Sys.sigterm ] in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s (Sys.Signal_handle (fun _ -> handler ()))))
      installed
  in
  let pipe_prev =
    (* writes to a dead client must surface as EPIPE, not kill us *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  Fun.protect f ~finally:(fun () ->
      List.iter (fun (s, b) -> Sys.set_signal s b) previous;
      match pipe_prev with
      | Some b -> Sys.set_signal Sys.sigpipe b
      | None -> ())

let run cfg =
  (* the status op reports live counters; a daemon with a dead status
     endpoint is useless, so recording is on regardless of CLI flags *)
  Obs.Metrics.enable ();
  let sched = Scheduler.create ~config:cfg.scheduler () in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup_socket () =
    match (Unix.stat cfg.socket_path).Unix.st_kind with
    | Unix.S_SOCK -> Unix.unlink cfg.socket_path
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  cleanup_socket ();
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let st =
    {
      cfg;
      sched;
      conns = [];
      conn_of_id = Hashtbl.create 64;
      tag_of_id = Hashtbl.create 64;
      id_of_tag = Hashtbl.create 64;
      shutting_down = false;
    }
  in
  let listening = ref true in
  let stop_listening () =
    if !listening then begin
      listening := false;
      try Unix.close listen_fd with Unix.Unix_error _ -> ()
    end
  in
  cfg.log (Printf.sprintf "listening on %s" cfg.socket_path);
  Obs.Log.event "service.start"
    ([
       ("socket", Obs.Report.String cfg.socket_path);
       ("jobs", Obs.Report.Int cfg.scheduler.Scheduler.jobs);
       ("xor_engine", Obs.Report.String (Scheduler.engine_name sched));
       ("ocaml_version", Obs.Report.String Sys.ocaml_version);
     ]
    @ (match cfg.shard with
      | Some (i, n) ->
          [ ("shard", Obs.Report.String (Printf.sprintf "%d/%d" i n)) ]
      | None -> [])
    @
    match cfg.scheduler.Scheduler.spill_dir with
    | Some dir -> [ ("spill_dir", Obs.Report.String dir) ]
    | None -> []);
  with_signals (fun () -> st.shutting_down <- true) @@ fun () ->
  Fun.protect
    ~finally:(fun () ->
      stop_listening ();
      List.iter (fun c -> close_conn st c) st.conns;
      cleanup_socket ();
      Scheduler.shutdown sched)
  @@ fun () ->
  let finished () = st.shutting_down && Scheduler.pending sched = 0 in
  while not (finished ()) do
    if st.shutting_down then begin
      if not (Scheduler.is_draining sched) then Scheduler.set_draining sched;
      stop_listening ()
    end;
    let fds =
      (if !listening then [ listen_fd ] else [])
      @ (match Scheduler.notify_fd sched with
        | Some fd -> [ fd ]  (* worker-completion self-pipe *)
        | None -> [])
      @ List.map (fun c -> c.fd) st.conns
    in
    (* serial mode spins through the backlog; parallel mode sleeps —
       the notify pipe wakes the select the moment a worker finishes,
       and queued work only becomes dispatchable on a completion (a
       free slot or a freed fingerprint) or a new request, both of
       which make an fd readable *)
    let timeout =
      if Scheduler.is_parallel sched then 0.25
      else if Scheduler.pending sched > 0 then 0.0
      else 0.25
    in
    (match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if !listening && fd == listen_fd then begin
              match Unix.accept listen_fd with
              | exception Unix.Unix_error _ -> ()
              | client_fd, _ ->
                  st.conns <-
                    {
                      fd = client_fd;
                      decoder = Wire.Decoder.create ();
                      waiting = Hashtbl.create 4;
                      alive = true;
                    }
                    :: st.conns
            end
            else
              match List.find_opt (fun c -> c.fd == fd) st.conns with
              | Some c -> handle_readable st c
              | None -> ())
          readable);
    if Scheduler.is_parallel sched then begin
      let flush () =
        List.iter
          (fun (id, response) -> deliver st id response)
          (Scheduler.completions sched)
      in
      flush ();
      ignore (Scheduler.dispatch sched : int);
      (* dispatch completes already-missed deadlines inline *)
      flush ()
    end
    else
      match Scheduler.step sched with
      | None -> ()
      | Some (id, response) -> deliver st id response
  done;
  Obs.Log.event "service.stop"
    [ ("uptime_s", Obs.Report.Float (Scheduler.uptime_s sched)) ];
  cfg.log "drained; exiting"

(* ------------------------------------------------------------------ *)
(* Fleet mode: N independent replica processes, one socket each. The
   client shards the fingerprint space over the sockets by consistent
   hashing (see [Client.Fleet]); replicas share nothing in memory —
   pointing them at one spill directory is what makes them behave as
   one cache, and the store's atomic-rename discipline is what makes
   that sharing safe. *)

let run_fleet ~replicas cfg =
  if replicas < 1 then invalid_arg "Server.run_fleet: replicas must be >= 1";
  if replicas = 1 then run cfg
  else begin
    (* Every replica is forked before this process spawns any domain
       (OCaml 5 forbids fork once a Domain.spawn has happened, and
       [run] spawns workers when jobs > 1) — so the forks all happen
       here, then each child builds its own scheduler. *)
    let spawn i =
      match Unix.fork () with
      | 0 ->
          let code =
            try
              run
                {
                  cfg with
                  socket_path = shard_socket cfg.socket_path i;
                  shard = Some (i, replicas);
                };
              0
            with e ->
              Printf.eprintf "replica %d: %s\n%!" i (Printexc.to_string e);
              1
          in
          Stdlib.exit code
      | pid -> (i, pid)
    in
    let pids = List.init replicas spawn in
    cfg.log
      (Printf.sprintf "fleet: %d replicas on %s" replicas
         (String.concat " "
            (List.map (fun (i, _) -> shard_socket cfg.socket_path i) pids)));
    (* the parent is only a supervisor: forward termination signals so
       `kill <parent>` drains the whole fleet, then reap every child *)
    let forward signal =
      List.iter
        (fun (_, pid) ->
          try Unix.kill pid signal with Unix.Unix_error _ -> ())
        pids
    in
    with_signals (fun () -> forward Sys.sigterm) @@ fun () ->
    let failures = ref 0 in
    List.iter
      (fun (i, pid) ->
        let rec reap () =
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, _ ->
              cfg.log (Printf.sprintf "replica %d exited abnormally" i);
              incr failures
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
        in
        reap ())
      pids;
    if !failures > 0 then
      failwith (Printf.sprintf "fleet: %d replica(s) failed" !failures)
  end

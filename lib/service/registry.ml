let compare_xor (a : Cnf.Xor_clause.t) (b : Cnf.Xor_clause.t) =
  let la = Array.length a.Cnf.Xor_clause.vars
  and lb = Array.length b.Cnf.Xor_clause.vars in
  if la <> lb then Int.compare la lb
  else begin
    let c = ref 0 in
    let i = ref 0 in
    while !c = 0 && !i < la do
      c := Int.compare a.Cnf.Xor_clause.vars.(!i) b.Cnf.Xor_clause.vars.(!i);
      incr i
    done;
    if !c <> 0 then !c
    else Bool.compare a.Cnf.Xor_clause.rhs b.Cnf.Xor_clause.rhs
  end

let dedup_sorted ~equal = function
  | [] -> []
  | x :: rest ->
      let rec go last acc = function
        | [] -> List.rev acc
        | y :: rest ->
            if equal last y then go last acc rest else go y (y :: acc) rest
      in
      go x [ x ] rest

let canonical (f : Cnf.Formula.t) =
  let clauses =
    Array.to_list f.Cnf.Formula.clauses
    |> List.filter_map Cnf.Clause.normalize
    |> List.sort Cnf.Clause.compare
    |> dedup_sorted ~equal:Cnf.Clause.equal
  in
  let xors =
    Array.to_list f.Cnf.Formula.xors
    |> List.map (fun (x : Cnf.Xor_clause.t) ->
           Cnf.Xor_clause.make (Array.to_list x.Cnf.Xor_clause.vars)
             x.Cnf.Xor_clause.rhs)
    |> List.filter (fun (x : Cnf.Xor_clause.t) ->
           Array.length x.Cnf.Xor_clause.vars > 0 || x.Cnf.Xor_clause.rhs)
    |> List.sort compare_xor
    |> dedup_sorted ~equal:Cnf.Xor_clause.equal
  in
  let sampling_set =
    Option.map
      (fun s ->
        Array.to_list s |> List.sort_uniq Int.compare)
      f.Cnf.Formula.sampling_set
  in
  Cnf.Formula.create_with_xors ?sampling_set ~num_vars:f.Cnf.Formula.num_vars
    clauses xors

(* The hashed byte string is the canonical DIMACS text behind a
   version tag, so the address survives refactors of in-memory
   representations but changes if the canonicalization spec does. *)
let version = "unigen-registry-v1"

let serialize f = version ^ "\n" ^ Cnf.Dimacs.to_string (canonical f)

let fingerprint f = Digest.to_hex (Digest.string (serialize f))

type t = { formulas : (string, Cnf.Formula.t) Hashtbl.t }

let create () =
  (* per-registry table, owned by the scheduler's domain *)
  { formulas = Hashtbl.create 64 }

let intern t f =
  let g = canonical f in
  let fp = Digest.to_hex (Digest.string (version ^ "\n" ^ Cnf.Dimacs.to_string g)) in
  match Hashtbl.find_opt t.formulas fp with
  | Some shared -> (fp, shared)
  | None ->
      Hashtbl.replace t.formulas fp g;
      (fp, g)

let find t fp = Hashtbl.find_opt t.formulas fp
let length t = Hashtbl.length t.formulas

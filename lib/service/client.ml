type t = { fd : Unix.file_descr }

exception Protocol_error of string

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let recv t =
  match Wire.read_frame t.fd with
  | None -> raise (Protocol_error "daemon closed the connection")
  | Some payload -> (
      try Wire.response_of_json (Json.of_string payload)
      with Json.Decode_error msg -> raise (Protocol_error msg))
  | exception Wire.Frame_error msg -> raise (Protocol_error msg)

let request t req =
  Wire.write_frame t.fd (Json.to_string (Wire.request_to_json req));
  recv t

let with_connection ~socket_path f =
  let t = connect ~socket_path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let call ~socket_path req = with_connection ~socket_path (fun t -> request t req)

(* ------------------------------------------------------------------ *)
(* Retry with backpressure-aware backoff *)

let transient = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.EPIPE
        | Unix.EAGAIN ),
        _,
        _ )
  | Protocol_error _ ->
      true
  | _ -> false

let with_retry ?(max_attempts = 5) ?(base_delay_s = 0.05) ?(max_delay_s = 2.0)
    ~rng f =
  if max_attempts < 1 then
    invalid_arg "Client.with_retry: max_attempts must be >= 1";
  let backoff ~attempt ~hint =
    (* exponential from [base_delay_s], raised to the scheduler's
       retry-after hint when that is larger (it already prices the
       backlog), capped, then jittered over [0.5x, 1x] from the seeded
       PRNG so a burst of identical clients de-synchronises
       deterministically *)
    let exp_s = base_delay_s *. Float.pow 2.0 (float_of_int (attempt - 1)) in
    let d = Float.min max_delay_s (Float.max hint exp_s) in
    Unix.sleepf (d *. (0.5 +. Rng.float rng 0.5))
  in
  let rec go attempt =
    match f () with
    | Wire.Rejected { retry_after_s; _ } as response ->
        if attempt >= max_attempts then response
        else begin
          backoff ~attempt ~hint:retry_after_s;
          go (attempt + 1)
        end
    | response -> response
    | exception e when transient e && attempt < max_attempts ->
        backoff ~attempt ~hint:0.0;
        go (attempt + 1)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Consistent-hash routing over a fleet's sockets *)

module Fleet = struct
  type t = { sockets : string array; ring : (int * int) array }

  (* a point on the ring: the first 62 bits of the MD5, as a
     non-negative int — stable across processes and OCaml versions,
     unlike Hashtbl.hash *)
  let point s =
    let d = Digest.string s in
    let acc = ref 0 in
    for i = 0 to 7 do
      acc := (!acc lsl 8) lor Char.code d.[i]
    done;
    !acc land max_int

  let create ?(vnodes = 64) sockets =
    if sockets = [] then invalid_arg "Client.Fleet.create: no sockets";
    if vnodes < 1 then invalid_arg "Client.Fleet.create: vnodes must be >= 1";
    let sockets = Array.of_list sockets in
    let ring =
      Array.init (Array.length sockets * vnodes) (fun i ->
          let s = i / vnodes and v = i mod vnodes in
          (point (sockets.(s) ^ "#" ^ string_of_int v), s))
    in
    Array.sort compare ring;
    { sockets; ring }

  let sockets t = Array.to_list t.sockets

  let route t key =
    let h = point key in
    (* first ring point clockwise from [h], wrapping to the start *)
    let n = Array.length t.ring in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
    done;
    t.sockets.(snd t.ring.(if !lo = n then 0 else !lo))
end

type t = { fd : Unix.file_descr }

exception Protocol_error of string

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let recv t =
  match Wire.read_frame t.fd with
  | None -> raise (Protocol_error "daemon closed the connection")
  | Some payload -> (
      try Wire.response_of_json (Json.of_string payload)
      with Json.Decode_error msg -> raise (Protocol_error msg))
  | exception Wire.Frame_error msg -> raise (Protocol_error msg)

let request t req =
  Wire.write_frame t.fd (Json.to_string (Wire.request_to_json req));
  recv t

let with_connection ~socket_path f =
  let t = connect ~socket_path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let call ~socket_path req = with_connection ~socket_path (fun t -> request t req)

(** Prepared-state spill codec: {!Cache.entry} ⇄ durable payload.

    The {!Store} moves opaque bytes; this module defines what those
    bytes are for a prepared sampler state. The payload is a single
    versioned JSON object carrying the canonical formula (DIMACS text,
    [c ind] and [x] lines included), the preparation parameters the
    cache key fixes, the portable essence of the preparation
    ({!Sampling.Unigen.portable}: κ, pivot, hash density, phase — the
    ApproxMC-derived hash-size anchor or the enumerated easy-case
    witnesses) and creation metadata (wall-clock time, compiler
    version) for forensics.

    {!decode} is paranoid by contract: beyond the store's own checksum
    it re-verifies that every key-determining field of the payload
    matches the {!Cache.key} it was looked up under {e and} that the
    embedded formula re-fingerprints to the key's content address, so
    registry-version drift or a codec change can never resurrect a
    stale preparation — it surfaces as a decode error, which the cache
    turns into quarantine plus a clean re-preparation. *)

val version : string
(** ["unigen-prepared-v1"] — bumped whenever the payload schema or the
    semantics of any field change. *)

val encode : Cache.key -> Cache.entry -> string
(** Serialize an entry for {!Store.put}. [draws_served] is
    deliberately not persisted — a rehydrated entry starts at zero. *)

val decode : Cache.key -> string -> (Cache.entry, string) result
(** Rebuild a live entry: parse, verify version and key consistency,
    re-fingerprint the embedded formula, then
    {!Sampling.Unigen.import}. Never raises; every failure mode comes
    back as [Error reason]. *)

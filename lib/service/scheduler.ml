type config = {
  queue_capacity : int;
  max_batch : int;
  cache_capacity : int;
  jobs : int;
  incremental : bool;
  gauss : bool;
}

let default_config =
  {
    queue_capacity = 64;
    max_batch = 10_000;
    cache_capacity = 16;
    jobs = 1;
    incremental = true;
    gauss = true;
  }

type request = {
  formula : Cnf.Formula.t;
  n : int;
  seed : int;
  prepare_seed : int;
  epsilon : float;
  count_iterations : int option;
  timeout_s : float option;
  max_attempts : int;
  pin : bool;
  tag : string option;
}

let request_of_wire formula (w : Wire.sample_req) =
  {
    formula;
    n = w.Wire.n;
    seed = w.Wire.seed;
    prepare_seed = w.Wire.prepare_seed;
    epsilon = w.Wire.epsilon;
    count_iterations = w.Wire.count_iterations;
    timeout_s = w.Wire.timeout_s;
    max_attempts = w.Wire.max_attempts;
    pin = w.Wire.pin;
    tag = w.Wire.tag;
  }

type reject = { reason : Wire.reject_reason; retry_after_s : float }

type pending_req = {
  id : int;
  req : request;
  fingerprint : string;
  canonical : Cnf.Formula.t;
  submitted_at : float;
  deadline : float option;  (* absolute *)
  mutable cancelled : bool;
}

type t = {
  cfg : config;
  registry : Registry.t;
  prep_cache : Cache.t;
  exec : Parallel.Executor.t option;  (* jobs > 1: request-level parallelism *)
  queues : (string, pending_req Queue.t) Hashtbl.t;
  rotation : string Queue.t;  (* fingerprints with pending work, RR order *)
  by_id : (int, pending_req) Hashtbl.t;  (* admitted, not yet dispatched *)
  running : (int, pending_req) Hashtbl.t;  (* dispatched to a worker domain *)
  busy_fps : (string, unit) Hashtbl.t;
      (* fingerprints with an in-flight request: prepared-state
         ownership is sharded by fingerprint, so a second request for
         the same formula waits rather than racing the first *)
  completed : (int * Wire.response) Queue.t;  (* ready for pickup *)
  mutable next_id : int;
  mutable queued_count : int;
  mutable inflight_count : int;
  mutable draining : bool;
  mutable avg_exec_s : float;  (* EWMA of request execution time *)
  mutable executed : int;
  mutable exec_down : bool;
  owner : Audit.Ownership.t;
}

let c_requests = Obs.Metrics.counter "service.requests"
let c_rejected = Obs.Metrics.counter "service.rejected"
let c_deadline_misses = Obs.Metrics.counter "service.deadline_misses"
let c_cancelled = Obs.Metrics.counter "service.cancelled"
let h_queue_wait = Obs.Metrics.histogram "service.queue_wait_seconds"
let h_request = Obs.Metrics.histogram "service.request_seconds"

let set_depth t =
  Obs.Metrics.set_gauge "service.queue_depth" (float_of_int t.queued_count);
  Obs.Metrics.set_gauge "service.in_flight" (float_of_int t.inflight_count)

let create ?(config = default_config) () =
  if config.queue_capacity < 1 then
    invalid_arg "Scheduler.create: queue_capacity must be >= 1";
  if config.jobs < 1 then invalid_arg "Scheduler.create: jobs must be >= 1";
  if config.cache_capacity < 0 then
    invalid_arg "Scheduler.create: cache_capacity must be >= 0";
  if config.max_batch < 0 then
    invalid_arg "Scheduler.create: max_batch must be >= 0";
  Obs.Metrics.set_gauge "service.jobs" (float_of_int config.jobs);
  {
    cfg = config;
    registry = Registry.create ();
    prep_cache = Cache.create ~capacity:config.cache_capacity;
    exec =
      (if config.jobs > 1 then Some (Parallel.Executor.create ~workers:config.jobs)
       else None);
    queues = Hashtbl.create 16;
    rotation = Queue.create ();
    by_id = Hashtbl.create 64;
    running = Hashtbl.create 8;
    busy_fps = Hashtbl.create 8;
    completed = Queue.create ();
    next_id = 1;
    queued_count = 0;
    inflight_count = 0;
    draining = false;
    avg_exec_s = 0.05;
    executed = 0;
    exec_down = false;
    owner = Audit.Ownership.create "service scheduler";
  }

let config t = t.cfg
let cache t = t.prep_cache
let registry t = t.registry

let pending t =
  Audit.Ownership.check t.owner;
  t.queued_count + t.inflight_count

let queued t = t.queued_count
let in_flight t = t.inflight_count
let notify_fd t = Option.map Parallel.Executor.notify_fd t.exec
let is_parallel t = Option.is_some t.exec

let is_draining t = t.draining

let set_draining t =
  Audit.Ownership.check t.owner;
  t.draining <- true

let retry_hint t =
  let hint = t.avg_exec_s *. float_of_int (t.queued_count + t.inflight_count + 1) in
  if Float.is_finite hint && hint >= 0.0 then hint else 0.0

let submit t req =
  Audit.Ownership.check t.owner;
  if t.draining then begin
    Obs.Metrics.incr c_rejected;
    Error { reason = Wire.Draining; retry_after_s = 0.0 }
  end
  else if req.n < 0 || req.n > t.cfg.max_batch then begin
    Obs.Metrics.incr c_rejected;
    Error { reason = Wire.Batch_too_large; retry_after_s = 0.0 }
  end
  else if t.queued_count + t.inflight_count >= t.cfg.queue_capacity then begin
    Obs.Metrics.incr c_rejected;
    (* the hint assumes the backlog drains at the observed mean
       request time; clients treat it as advisory *)
    Error { reason = Wire.Queue_full; retry_after_s = retry_hint t }
  end
  else begin
    let fingerprint, canonical = Registry.intern t.registry req.formula in
    let now = Unix.gettimeofday () in
    let id = t.next_id in
    t.next_id <- id + 1;
    let p =
      {
        id;
        req;
        fingerprint;
        canonical;
        submitted_at = now;
        deadline = Option.map (fun s -> now +. s) req.timeout_s;
        cancelled = false;
      }
    in
    (match Hashtbl.find_opt t.queues fingerprint with
    | Some q -> Queue.push p q
    | None ->
        let q = Queue.create () in
        Queue.push p q;
        Hashtbl.replace t.queues fingerprint q;
        Queue.push fingerprint t.rotation);
    Hashtbl.replace t.by_id id p;
    t.queued_count <- t.queued_count + 1;
    Obs.Metrics.incr c_requests;
    set_depth t;
    Ok id
  end

let cancel t id =
  Audit.Ownership.check t.owner;
  match Hashtbl.find_opt t.by_id id with
  | Some p ->
      (* still queued: drop it before it reaches a worker *)
      p.cancelled <- true;
      Hashtbl.remove t.by_id id;
      t.queued_count <- t.queued_count - 1;
      Obs.Metrics.incr c_cancelled;
      set_depth t;
      true
  | None -> (
      match Hashtbl.find_opt t.running id with
      | Some p when not p.cancelled ->
          (* in flight on a worker: the work itself cannot be recalled,
             but its response is suppressed at completion and its pins
             are still released there *)
          p.cancelled <- true;
          Obs.Metrics.incr c_cancelled;
          true
      | _ -> false)

(* Next dispatchable request in fairness order: pop the head
   fingerprint of the rotation, take its oldest live request, and
   re-enqueue the fingerprint at the rotation tail while it still has
   work. Fingerprints with an in-flight request are skipped (kept in
   the rotation) so one formula's stream of requests serialises on its
   prepared state while other formulas run in parallel. *)
let next_runnable t =
  let rec scan tries =
    if tries <= 0 || Queue.is_empty t.rotation then None
    else begin
      let fp = Queue.pop t.rotation in
      match Hashtbl.find_opt t.queues fp with
      | None -> scan (tries - 1)  (* stale rotation entry *)
      | Some q ->
          if Hashtbl.mem t.busy_fps fp then begin
            Queue.push fp t.rotation;
            scan (tries - 1)
          end
          else begin
            let rec take () =
              if Queue.is_empty q then None
              else
                let p = Queue.pop q in
                if p.cancelled then take () else Some p
            in
            let taken = take () in
            if Queue.is_empty q then Hashtbl.remove t.queues fp
            else Queue.push fp t.rotation;
            match taken with None -> scan (tries - 1) | Some p -> Some p
          end
    end
  in
  scan (Queue.length t.rotation)

let key_of t p =
  {
    Cache.fingerprint = p.fingerprint;
    epsilon = p.req.epsilon;
    prepare_seed = p.req.prepare_seed;
    count_iterations = p.req.count_iterations;
    incremental = t.cfg.incremental;
    gauss = t.cfg.gauss;
  }

(* ------------------------------------------------------------------ *)
(* Request execution. [run_request] is the worker-domain half: it
   touches only the request itself, the (immutable) canonical formula
   and — on a cache hit — the prepared state, whose solver sessions are
   per-domain (Domain.DLS), so concurrent requests on different
   fingerprints never share mutable state. All cache bookkeeping stays
   on the owning domain. Witnesses are bit-identical to the offline
   [Unigen.sample_batch] path at any [jobs] level because every draw
   consumes the splittable stream [(seed, index)] regardless of which
   domain executes it. *)

let run_request ~incremental ~gauss ~queue_wait_s ~cached (p : pending_req) =
  let prep_result, newly =
    match cached with
    | Some entry -> (Ok entry, None)
    | None -> (
        let rng = Rng.create p.req.prepare_seed in
        match
          Obs.Trace.span ~cat:"service" "service.prepare"
            ~args:[ ("fingerprint", p.fingerprint) ]
            (fun () ->
              Sampling.Unigen.prepare ?deadline:p.deadline
                ?count_iterations:p.req.count_iterations ~incremental ~gauss
                ~rng ~epsilon:p.req.epsilon p.canonical)
        with
        | Ok prepared ->
            let entry =
              { Cache.prepared; formula = p.canonical; draws_served = 0 }
            in
            (Ok entry, Some entry)
        | Error e -> (Error e, None))
  in
  match prep_result with
  | Error Sampling.Unigen.Unsat_formula -> (Wire.Unsat { rsp_tag = p.req.tag }, None)
  | Error Sampling.Unigen.Prepare_timeout ->
      (Wire.Deadline_miss { rsp_tag = p.req.tag }, None)
  | Error Sampling.Unigen.Count_failed
    when (match p.deadline with
         | Some d -> Unix.gettimeofday () > d
         | None -> false) ->
      (* the approximate count aborted because this request's deadline
         expired mid-count: a deadline miss, not an internal failure *)
      (Wire.Deadline_miss { rsp_tag = p.req.tag }, None)
  | Error Sampling.Unigen.Count_failed ->
      (Wire.Error_msg "approximate count failed within budget", None)
  | Ok entry ->
      let outcomes =
        Obs.Trace.span ~cat:"service" "service.draw"
          ~args:[ ("fingerprint", p.fingerprint); ("n", string_of_int p.req.n) ]
          (fun () ->
            Sampling.Unigen.sample_batch ?deadline:p.deadline
              ~max_attempts:(max 1 p.req.max_attempts) ~seed:p.req.seed
              entry.Cache.prepared p.req.n)
      in
      let witnesses =
        Array.to_list outcomes
        |> List.filter_map (function
             | Ok m -> Some (Cnf.Model.to_dimacs m)
             | Error _ -> None)
      in
      if
        witnesses = [] && p.req.n > 0
        && Array.for_all
             (function Error Sampling.Sampler.Timed_out -> true | _ -> false)
             outcomes
      then
        (* every draw was cut off by the deadline: nothing sampled,
           report the miss rather than an empty success *)
        (Wire.Deadline_miss { rsp_tag = p.req.tag }, newly)
      else
      ( Wire.Ok_sample
          {
            fingerprint = p.fingerprint;
            cache_hit = Option.is_some cached;
            witnesses;
            produced = List.length witnesses;
            requested = p.req.n;
            queue_wait_s;
            rsp_tag = p.req.tag;
          },
        newly )

let response_of_exn = function
  | Invalid_argument m -> Wire.Error_msg ("invalid request: " ^ m)
  | Failure m -> Wire.Error_msg m
  | e -> Wire.Error_msg ("internal error: " ^ Printexc.to_string e)

(* Owner-domain bookkeeping once a request's response is known:
   install a freshly prepared entry, charge the draw accounting, apply
   the client pin. *)
let finalize_cache t p key ~cached ~newly response =
  (match newly with Some entry -> Cache.put t.prep_cache key entry | None -> ());
  (match response with
  | Wire.Ok_sample _ -> (
      let entry = match newly with Some e -> Some e | None -> cached in
      match entry with
      | Some e -> e.Cache.draws_served <- e.Cache.draws_served + p.req.n
      | None -> ())
  | _ -> ());
  if p.req.pin then ignore (Cache.pin t.prep_cache key : bool)

(* The single funnel every finished request passes through, worker-side
   or inline — deadline misses are counted here and nowhere else, so a
   miss detected on a worker domain (a [Prepare_timeout] surfacing as
   [Deadline_miss]) is counted exactly once. *)
let account t ~started_at response =
  (match response with
  | Wire.Deadline_miss _ -> Obs.Metrics.incr c_deadline_misses
  | _ -> ());
  let dt = Unix.gettimeofday () -. started_at in
  Obs.Metrics.observe h_request dt;
  (* the EWMA feeds the retry-after hint: floor sub-microsecond
     completions (e.g. an immediate deadline miss) and reject
     non-finite samples so the hint stays finite and non-negative *)
  let sample =
    if Float.is_finite dt then Float.max 1e-6 dt else t.avg_exec_s
  in
  t.avg_exec_s <-
    (if t.executed = 0 then sample
     else (0.8 *. t.avg_exec_s) +. (0.2 *. sample));
  t.executed <- t.executed + 1

let dequeue t p =
  Hashtbl.remove t.by_id p.id;
  t.queued_count <- t.queued_count - 1;
  let now = Unix.gettimeofday () in
  let queue_wait_s = now -. p.submitted_at in
  Obs.Metrics.observe h_queue_wait queue_wait_s;
  (now, queue_wait_s)

let deadline_passed p now =
  match p.deadline with Some d -> now > d | None -> false

let step t =
  Audit.Ownership.check t.owner;
  match next_runnable t with
  | None -> None
  | Some p ->
      let now, queue_wait_s = dequeue t p in
      set_depth t;
      let response =
        Obs.Trace.span ~cat:"service" "service.request"
          ~args:[ ("fingerprint", p.fingerprint); ("id", string_of_int p.id) ]
          (fun () ->
            if deadline_passed p now then
              Wire.Deadline_miss { rsp_tag = p.req.tag }
            else
              let key = key_of t p in
              let cached = Cache.find t.prep_cache key in
              match
                run_request ~incremental:t.cfg.incremental ~gauss:t.cfg.gauss
                  ~queue_wait_s ~cached p
              with
              | response, newly ->
                  finalize_cache t p key ~cached ~newly response;
                  response
              | exception e -> response_of_exn e)
      in
      account t ~started_at:now response;
      Some (p.id, response)

(* ------------------------------------------------------------------ *)
(* Parallel dispatch: hand whole requests to worker domains through the
   executor, at most [jobs] in flight and at most one per fingerprint.
   The owner keeps every cache touch: it resolves hit/miss and takes an
   execution pin before the worker starts, and installs / releases at
   completion — the worker only computes. *)

let dispatch_one t ex p =
  let now, queue_wait_s = dequeue t p in
  if deadline_passed p now then begin
    (* no worker needed; completes immediately *)
    let response = Wire.Deadline_miss { rsp_tag = p.req.tag } in
    account t ~started_at:now response;
    set_depth t;
    if not p.cancelled then Queue.push (p.id, response) t.completed
  end
  else begin
    Hashtbl.replace t.running p.id p;
    Hashtbl.replace t.busy_fps p.fingerprint ();
    t.inflight_count <- t.inflight_count + 1;
    set_depth t;
    let key = key_of t p in
    let cached = Cache.find t.prep_cache key in
    (* pin for the whole flight: a concurrent completion's [put] may
       evict, and it must never evict state a worker is reading *)
    (match cached with
    | Some _ -> ignore (Cache.acquire t.prep_cache key : bool)
    | None -> ());
    let incremental = t.cfg.incremental in
    let gauss = t.cfg.gauss in
    Parallel.Executor.submit ex
      ~work:(fun () ->
        Obs.Trace.span ~cat:"service" "service.request"
          ~args:[ ("fingerprint", p.fingerprint); ("id", string_of_int p.id) ]
          (fun () -> run_request ~incremental ~gauss ~queue_wait_s ~cached p))
      ~finish:(fun result ->
        Hashtbl.remove t.running p.id;
        Hashtbl.remove t.busy_fps p.fingerprint;
        t.inflight_count <- t.inflight_count - 1;
        (match cached with
        | Some _ -> ignore (Cache.release t.prep_cache key : bool)
        | None -> ());
        let response =
          match result with
          | Ok (response, newly) ->
              finalize_cache t p key ~cached ~newly response;
              response
          | Error (e, _bt) -> response_of_exn e
        in
        account t ~started_at:now response;
        set_depth t;
        if not p.cancelled then Queue.push (p.id, response) t.completed)
  end

let dispatch t =
  Audit.Ownership.check t.owner;
  match t.exec with
  | None -> 0
  | Some ex ->
      let started = ref 0 in
      let continue = ref true in
      while !continue && t.inflight_count < t.cfg.jobs do
        match next_runnable t with
        | None -> continue := false
        | Some p ->
            dispatch_one t ex p;
            incr started
      done;
      !started

let completions t =
  Audit.Ownership.check t.owner;
  (match t.exec with
  | Some ex when not t.exec_down -> ignore (Parallel.Executor.poll ex : int)
  | _ -> ());
  let rec go acc =
    if Queue.is_empty t.completed then List.rev acc
    else go (Queue.pop t.completed :: acc)
  in
  go []

let drain t =
  Audit.Ownership.check t.owner;
  match t.exec with
  | None ->
      let rec go acc =
        match step t with None -> List.rev acc | Some c -> go (c :: acc)
      in
      go []
  | Some ex ->
      let acc = ref [] in
      let continue = ref true in
      while !continue do
        List.iter (fun c -> acc := c :: !acc) (completions t);
        ignore (dispatch t : int);
        if t.inflight_count > 0 then Parallel.Executor.wait ~timeout_s:0.1 ex
        else if t.queued_count = 0 && Queue.is_empty t.completed then
          continue := false
      done;
      List.rev !acc

let shutdown t =
  Audit.Ownership.check t.owner;
  if not t.exec_down then begin
    t.exec_down <- true;
    match t.exec with
    | Some ex -> Parallel.Executor.shutdown ex
    | None -> ()
  end

type config = {
  queue_capacity : int;
  max_batch : int;
  cache_capacity : int;
  jobs : int;
  incremental : bool;
  gauss : bool;
  slow_ms : float;
  spill_dir : string option;
  spill_budget_bytes : int;
}

let default_config =
  {
    queue_capacity = 64;
    max_batch = 10_000;
    cache_capacity = 16;
    jobs = 1;
    incremental = true;
    gauss = true;
    slow_ms = 1000.0;
    spill_dir = None;
    spill_budget_bytes = Store.default_budget_bytes;
  }

type request = {
  formula : Cnf.Formula.t;
  n : int;
  seed : int;
  prepare_seed : int;
  epsilon : float;
  count_iterations : int option;
  timeout_s : float option;
  max_attempts : int;
  pin : bool;
  tag : string option;
  trace_id : string option;
}

let request_of_wire formula (w : Wire.sample_req) =
  {
    formula;
    n = w.Wire.n;
    seed = w.Wire.seed;
    prepare_seed = w.Wire.prepare_seed;
    epsilon = w.Wire.epsilon;
    count_iterations = w.Wire.count_iterations;
    timeout_s = w.Wire.timeout_s;
    max_attempts = w.Wire.max_attempts;
    pin = w.Wire.pin;
    tag = w.Wire.tag;
    trace_id = w.Wire.trace_id;
  }

type reject = { reason : Wire.reject_reason; retry_after_s : float }

type pending_req = {
  id : int;
  req : request;
  fingerprint : string;
  canonical : Cnf.Formula.t;
  trace_id : string;  (* client-supplied or minted from the request id *)
  submitted_at : float;
  deadline : float option;  (* absolute *)
  mutable cancelled : bool;
}

(* Worker-side timing of one request's execution, carried back to the
   owner for windows and the event log. *)
type timing = { cache : Wire.cache_source; prepare_s : float; draw_s : float }

(* Rolling last-minute view, process-wide and per formula fingerprint.
   Owner-domain only (like every other scheduler field): worker
   completions funnel through owner-executed finish thunks, so the
   windows need no locking. *)
type fp_tele = {
  fw_latency : Obs.Window.t;
  fw_hits : Obs.Window.t;
  fw_misses : Obs.Window.t;
}

type telemetry = {
  started_at : float;
  w_latency : Obs.Window.t;  (* request wall time, seconds *)
  w_queue : Obs.Window.t;  (* queue wait, seconds *)
  w_deadline : Obs.Window.t;  (* deadline misses (count-only) *)
  w_hits : Obs.Window.t;  (* prepared-state cache hits (count-only) *)
  w_misses : Obs.Window.t;
  fp_tele : (string, fp_tele) Hashtbl.t;
}

type t = {
  cfg : config;
  registry : Registry.t;
  prep_cache : Cache.t;
  exec : Parallel.Executor.t option;  (* jobs > 1: request-level parallelism *)
  queues : (string, pending_req Queue.t) Hashtbl.t;
  rotation : string Queue.t;  (* fingerprints with pending work, RR order *)
  by_id : (int, pending_req) Hashtbl.t;  (* admitted, not yet dispatched *)
  running : (int, pending_req) Hashtbl.t;  (* dispatched to a worker domain *)
  busy_fps : (string, unit) Hashtbl.t;
      (* fingerprints with an in-flight request: prepared-state
         ownership is sharded by fingerprint, so a second request for
         the same formula waits rather than racing the first *)
  completed : (int * Wire.response) Queue.t;  (* ready for pickup *)
  mutable next_id : int;
  mutable queued_count : int;
  mutable inflight_count : int;
  mutable draining : bool;
  mutable avg_exec_s : float;  (* EWMA of request execution time *)
  mutable executed : int;
  mutable exec_down : bool;
  tele : telemetry;
  owner : Audit.Ownership.t;
}

let c_requests = Obs.Metrics.counter "service.requests"
let c_rejected = Obs.Metrics.counter "service.rejected"
let c_deadline_misses = Obs.Metrics.counter "service.deadline_misses"
let c_cancelled = Obs.Metrics.counter "service.cancelled"
let h_queue_wait = Obs.Metrics.histogram "service.queue_wait_seconds"
let h_request = Obs.Metrics.histogram "service.request_seconds"

let set_depth t =
  Obs.Metrics.set_gauge "service.queue_depth" (float_of_int t.queued_count);
  Obs.Metrics.set_gauge "service.in_flight" (float_of_int t.inflight_count)

let create ?(config = default_config) () =
  if config.queue_capacity < 1 then
    invalid_arg "Scheduler.create: queue_capacity must be >= 1";
  if config.jobs < 1 then invalid_arg "Scheduler.create: jobs must be >= 1";
  if config.cache_capacity < 0 then
    invalid_arg "Scheduler.create: cache_capacity must be >= 0";
  if config.max_batch < 0 then
    invalid_arg "Scheduler.create: max_batch must be >= 0";
  Obs.Metrics.set_gauge "service.jobs" (float_of_int config.jobs);
  (* the durable tier: a store plus the spill codec, injected as
     closures (see [Cache.spill]). Created before any worker domain
     exists, owned — like the cache — by this scheduler's domain. *)
  let spill =
    Option.map
      (fun dir ->
        {
          Cache.sp_store =
            Store.create ~budget_bytes:config.spill_budget_bytes ~dir ();
          sp_encode = Spill.encode;
          sp_decode = Spill.decode;
        })
      config.spill_dir
  in
  {
    cfg = config;
    registry = Registry.create ();
    prep_cache = Cache.create ?spill ~capacity:config.cache_capacity ();
    exec =
      (if config.jobs > 1 then Some (Parallel.Executor.create ~workers:config.jobs)
       else None);
    queues = Hashtbl.create 16;
    rotation = Queue.create ();
    by_id = Hashtbl.create 64;
    running = Hashtbl.create 8;
    busy_fps = Hashtbl.create 8;
    completed = Queue.create ();
    next_id = 1;
    queued_count = 0;
    inflight_count = 0;
    draining = false;
    avg_exec_s = 0.05;
    executed = 0;
    exec_down = false;
    tele =
      {
        started_at = Unix.gettimeofday ();
        w_latency = Obs.Window.create ();
        w_queue = Obs.Window.create ();
        w_deadline = Obs.Window.create ();
        w_hits = Obs.Window.create ();
        w_misses = Obs.Window.create ();
        fp_tele = Hashtbl.create 16;
      };
    owner = Audit.Ownership.create "service scheduler";
  }

let config t = t.cfg
let cache t = t.prep_cache
let registry t = t.registry

let pending t =
  Audit.Ownership.check t.owner;
  t.queued_count + t.inflight_count

let queued t = t.queued_count
let in_flight t = t.inflight_count
let notify_fd t = Option.map Parallel.Executor.notify_fd t.exec
let is_parallel t = Option.is_some t.exec

let is_draining t = t.draining

let set_draining t =
  Audit.Ownership.check t.owner;
  t.draining <- true

let retry_hint t =
  let hint = t.avg_exec_s *. float_of_int (t.queued_count + t.inflight_count + 1) in
  if Float.is_finite hint && hint >= 0.0 then hint else 0.0

let submit t req =
  Audit.Ownership.check t.owner;
  if t.draining then begin
    Obs.Metrics.incr c_rejected;
    Error { reason = Wire.Draining; retry_after_s = 0.0 }
  end
  else if req.n < 0 || req.n > t.cfg.max_batch then begin
    Obs.Metrics.incr c_rejected;
    Error { reason = Wire.Batch_too_large; retry_after_s = 0.0 }
  end
  else if t.queued_count + t.inflight_count >= t.cfg.queue_capacity then begin
    Obs.Metrics.incr c_rejected;
    (* the hint assumes the backlog drains at the observed mean
       request time; clients treat it as advisory *)
    Error { reason = Wire.Queue_full; retry_after_s = retry_hint t }
  end
  else begin
    let fingerprint, canonical = Registry.intern t.registry req.formula in
    let now = Unix.gettimeofday () in
    let id = t.next_id in
    t.next_id <- id + 1;
    (* correlation id for every span and log line this request produces;
       minted from the monotone request counter when the client did not
       supply one (ids only need to be unique within one daemon) *)
    let trace_id =
      match req.trace_id with
      | Some tid -> tid
      | None -> "req-" ^ string_of_int id
    in
    let p =
      {
        id;
        req;
        fingerprint;
        canonical;
        trace_id;
        submitted_at = now;
        deadline = Option.map (fun s -> now +. s) req.timeout_s;
        cancelled = false;
      }
    in
    (* async span paired with the span_end in [dequeue]: the queue
       phase has no lexical scope, so it is a Chrome 'b'/'e' pair keyed
       by the trace id *)
    Obs.Trace.span_begin ~cat:"service" ~id:trace_id "service.queue"
      ~args:[ ("fingerprint", fingerprint); ("trace_id", trace_id) ];
    (match Hashtbl.find_opt t.queues fingerprint with
    | Some q -> Queue.push p q
    | None ->
        let q = Queue.create () in
        Queue.push p q;
        Hashtbl.replace t.queues fingerprint q;
        Queue.push fingerprint t.rotation);
    Hashtbl.replace t.by_id id p;
    t.queued_count <- t.queued_count + 1;
    Obs.Metrics.incr c_requests;
    set_depth t;
    Ok id
  end

let cancel t id =
  Audit.Ownership.check t.owner;
  match Hashtbl.find_opt t.by_id id with
  | Some p ->
      (* still queued: drop it before it reaches a worker *)
      p.cancelled <- true;
      Hashtbl.remove t.by_id id;
      t.queued_count <- t.queued_count - 1;
      Obs.Metrics.incr c_cancelled;
      set_depth t;
      true
  | None -> (
      match Hashtbl.find_opt t.running id with
      | Some p when not p.cancelled ->
          (* in flight on a worker: the work itself cannot be recalled,
             but its response is suppressed at completion and its pins
             are still released there *)
          p.cancelled <- true;
          Obs.Metrics.incr c_cancelled;
          true
      | _ -> false)

(* Next dispatchable request in fairness order: pop the head
   fingerprint of the rotation, take its oldest live request, and
   re-enqueue the fingerprint at the rotation tail while it still has
   work. Fingerprints with an in-flight request are skipped (kept in
   the rotation) so one formula's stream of requests serialises on its
   prepared state while other formulas run in parallel. *)
let next_runnable t =
  let rec scan tries =
    if tries <= 0 || Queue.is_empty t.rotation then None
    else begin
      let fp = Queue.pop t.rotation in
      match Hashtbl.find_opt t.queues fp with
      | None -> scan (tries - 1)  (* stale rotation entry *)
      | Some q ->
          if Hashtbl.mem t.busy_fps fp then begin
            Queue.push fp t.rotation;
            scan (tries - 1)
          end
          else begin
            let rec take () =
              if Queue.is_empty q then None
              else
                let p = Queue.pop q in
                if p.cancelled then take () else Some p
            in
            let taken = take () in
            if Queue.is_empty q then Hashtbl.remove t.queues fp
            else Queue.push fp t.rotation;
            match taken with None -> scan (tries - 1) | Some p -> Some p
          end
    end
  in
  scan (Queue.length t.rotation)

let key_of t p =
  {
    Cache.fingerprint = p.fingerprint;
    epsilon = p.req.epsilon;
    prepare_seed = p.req.prepare_seed;
    count_iterations = p.req.count_iterations;
    incremental = t.cfg.incremental;
    gauss = t.cfg.gauss;
  }

(* ------------------------------------------------------------------ *)
(* Request execution. [run_request] is the worker-domain half: it
   touches only the request itself, the (immutable) canonical formula
   and — on a cache hit — the prepared state, whose solver sessions are
   per-domain (Domain.DLS), so concurrent requests on different
   fingerprints never share mutable state. All cache bookkeeping stays
   on the owning domain. Witnesses are bit-identical to the offline
   [Unigen.sample_batch] path at any [jobs] level because every draw
   consumes the splittable stream [(seed, index)] regardless of which
   domain executes it. *)

let run_request ~incremental ~gauss ~queue_wait_s ~cached (p : pending_req) =
  let cache =
    match cached with
    | None -> Wire.Cache_miss
    | Some (_, Cache.Ram) -> Wire.Cache_ram
    | Some (_, Cache.Disk) -> Wire.Cache_disk
  in
  let cache_hit = cache <> Wire.Cache_miss in
  let prepare_t0 = Unix.gettimeofday () in
  let prep_result, newly =
    match cached with
    | Some (entry, _) -> (Ok entry, None)
    | None -> (
        let rng = Rng.create p.req.prepare_seed in
        match
          Obs.Trace.span ~cat:"service" "service.prepare"
            ~args:[ ("fingerprint", p.fingerprint) ]
            (fun () ->
              Sampling.Unigen.prepare ?deadline:p.deadline
                ?count_iterations:p.req.count_iterations ~incremental ~gauss
                ~rng ~epsilon:p.req.epsilon p.canonical)
        with
        | Ok prepared ->
            let entry =
              { Cache.prepared; formula = p.canonical; draws_served = 0 }
            in
            (Ok entry, Some entry)
        | Error e -> (Error e, None))
  in
  let prepare_s =
    if cache_hit then 0.0 else Unix.gettimeofday () -. prepare_t0
  in
  let timing ~draw_s = { cache; prepare_s; draw_s } in
  match prep_result with
  | Error Sampling.Unigen.Unsat_formula ->
      (Wire.Unsat { rsp_tag = p.req.tag }, None, timing ~draw_s:0.0)
  | Error Sampling.Unigen.Prepare_timeout ->
      (Wire.Deadline_miss { rsp_tag = p.req.tag }, None, timing ~draw_s:0.0)
  | Error Sampling.Unigen.Count_failed
    when (match p.deadline with
         | Some d -> Unix.gettimeofday () > d
         | None -> false) ->
      (* the approximate count aborted because this request's deadline
         expired mid-count: a deadline miss, not an internal failure *)
      (Wire.Deadline_miss { rsp_tag = p.req.tag }, None, timing ~draw_s:0.0)
  | Error Sampling.Unigen.Count_failed ->
      ( Wire.Error_msg "approximate count failed within budget",
        None,
        timing ~draw_s:0.0 )
  | Ok entry ->
      let draw_t0 = Unix.gettimeofday () in
      let outcomes =
        Obs.Trace.span ~cat:"service" "service.draw"
          ~args:[ ("fingerprint", p.fingerprint); ("n", string_of_int p.req.n) ]
          (fun () ->
            Sampling.Unigen.sample_batch ?deadline:p.deadline
              ~max_attempts:(max 1 p.req.max_attempts) ~seed:p.req.seed
              entry.Cache.prepared p.req.n)
      in
      let timing = timing ~draw_s:(Unix.gettimeofday () -. draw_t0) in
      let witnesses =
        Array.to_list outcomes
        |> List.filter_map (function
             | Ok m -> Some (Cnf.Model.to_dimacs m)
             | Error _ -> None)
      in
      if
        witnesses = [] && p.req.n > 0
        && Array.for_all
             (function Error Sampling.Sampler.Timed_out -> true | _ -> false)
             outcomes
      then
        (* every draw was cut off by the deadline: nothing sampled,
           report the miss rather than an empty success *)
        (Wire.Deadline_miss { rsp_tag = p.req.tag }, newly, timing)
      else
      ( Wire.Ok_sample
          {
            fingerprint = p.fingerprint;
            cache;
            witnesses;
            produced = List.length witnesses;
            requested = p.req.n;
            queue_wait_s;
            rsp_tag = p.req.tag;
            rsp_trace_id = p.trace_id;
          },
        newly,
        timing )

let response_of_exn = function
  | Invalid_argument m -> Wire.Error_msg ("invalid request: " ^ m)
  | Failure m -> Wire.Error_msg m
  | e -> Wire.Error_msg ("internal error: " ^ Printexc.to_string e)

(* Owner-domain bookkeeping once a request's response is known:
   install a freshly prepared entry, charge the draw accounting, apply
   the client pin. *)
let finalize_cache t p key ~cached ~newly response =
  (match newly with Some entry -> Cache.put t.prep_cache key entry | None -> ());
  (match response with
  | Wire.Ok_sample _ -> (
      let entry =
        match newly with Some e -> Some e | None -> Option.map fst cached
      in
      match entry with
      | Some e -> e.Cache.draws_served <- e.Cache.draws_served + p.req.n
      | None -> ())
  | _ -> ());
  if p.req.pin then ignore (Cache.pin t.prep_cache key : bool)

let outcome_of_response = function
  | Wire.Ok_sample _ -> "ok"
  | Wire.Unsat _ -> "unsat"
  | Wire.Deadline_miss _ -> "deadline_miss"
  | Wire.Cancelled _ -> "cancelled"
  | Wire.Error_msg _ -> "error"
  | Wire.Rejected _ -> "rejected"
  | Wire.Cancel_result _ | Wire.Metrics _ | Wire.Window_report _ | Wire.Bye ->
      "other"

let fp_tele_of t fp =
  match Hashtbl.find_opt t.tele.fp_tele fp with
  | Some ft -> ft
  | None ->
      let ft =
        {
          fw_latency = Obs.Window.create ();
          fw_hits = Obs.Window.create ();
          fw_misses = Obs.Window.create ();
        }
      in
      Hashtbl.replace t.tele.fp_tele fp ft;
      ft

(* The single funnel every finished request passes through, worker-side
   or inline — deadline misses are counted here and nowhere else, so a
   miss detected on a worker domain (a [Prepare_timeout] surfacing as
   [Deadline_miss]) is counted exactly once. The same funnel feeds the
   rolling windows and emits the request's structured log line; it
   always runs on the owner domain (inline in serial mode, in the
   executor finish thunk in parallel mode), so the windows need no
   locking. [timing] is [None] when the request never reached a worker
   (an already-expired deadline or an executor-level exception). *)
let account t (p : pending_req) ~queue_wait_s ~started_at ~timing response =
  (match response with
  | Wire.Deadline_miss _ -> Obs.Metrics.incr c_deadline_misses
  | _ -> ());
  let now = Unix.gettimeofday () in
  let dt = now -. started_at in
  Obs.Metrics.observe h_request dt;
  (* rolling windows: process-wide and per fingerprint *)
  Obs.Window.observe t.tele.w_latency ~now dt;
  Obs.Window.observe t.tele.w_queue ~now queue_wait_s;
  (match response with
  | Wire.Deadline_miss _ -> Obs.Window.add t.tele.w_deadline ~now 1
  | _ -> ());
  let ft = fp_tele_of t p.fingerprint in
  Obs.Window.observe ft.fw_latency ~now dt;
  (match timing with
  | Some tm ->
      if tm.cache <> Wire.Cache_miss then begin
        Obs.Window.add t.tele.w_hits ~now 1;
        Obs.Window.add ft.fw_hits ~now 1
      end
      else begin
        Obs.Window.add t.tele.w_misses ~now 1;
        Obs.Window.add ft.fw_misses ~now 1
      end
  | None -> ());
  (* one structured line per request; slow requests escalate to Warn
     so an operator can tail for them without a jq filter *)
  if Obs.Log.is_enabled () then begin
    let ms s = Float.round (s *. 1e4) /. 10.0 in
    let total_ms = dt *. 1000.0 in
    let level = if total_ms >= t.cfg.slow_ms then Obs.Log.Warn else Obs.Log.Info in
    Obs.Log.event ~level "service.request"
      ([
         ("trace_id", Obs.Report.String p.trace_id);
         ("fingerprint", Obs.Report.String p.fingerprint);
         ("outcome", Obs.Report.String (outcome_of_response response));
         ("n", Obs.Report.Int p.req.n);
         ("queue_ms", Obs.Report.Float (ms queue_wait_s));
         ("total_ms", Obs.Report.Float (ms dt));
       ]
      @ (match timing with
        | Some tm ->
            [
              ("prepare_ms", Obs.Report.Float (ms tm.prepare_s));
              ("draw_ms", Obs.Report.Float (ms tm.draw_s));
              ("cache", Obs.Report.String (Wire.cache_source_to_string tm.cache));
            ]
        | None -> [])
      @ [
          ("xor_engine", Obs.Report.String (if t.cfg.gauss then "gauss" else "2watch"));
        ]
      @ (if p.cancelled then [ ("cancelled", Obs.Report.Bool true) ] else []))
  end;
  (* the EWMA feeds the retry-after hint: floor sub-microsecond
     completions (e.g. an immediate deadline miss) and reject
     non-finite samples so the hint stays finite and non-negative *)
  let sample =
    if Float.is_finite dt then Float.max 1e-6 dt else t.avg_exec_s
  in
  t.avg_exec_s <-
    (if t.executed = 0 then sample
     else (0.8 *. t.avg_exec_s) +. (0.2 *. sample));
  t.executed <- t.executed + 1

let dequeue t p =
  Hashtbl.remove t.by_id p.id;
  t.queued_count <- t.queued_count - 1;
  let now = Unix.gettimeofday () in
  let queue_wait_s = now -. p.submitted_at in
  Obs.Metrics.observe h_queue_wait queue_wait_s;
  (* closes the async queue span opened in [submit] *)
  Obs.Trace.span_end ~cat:"service" ~id:p.trace_id "service.queue"
    ~args:[ ("fingerprint", p.fingerprint) ];
  (now, queue_wait_s)

let deadline_passed p now =
  match p.deadline with Some d -> now > d | None -> false

let step t =
  Audit.Ownership.check t.owner;
  match next_runnable t with
  | None -> None
  | Some p ->
      let now, queue_wait_s = dequeue t p in
      set_depth t;
      let timing = ref None in
      let response =
        (* the ambient trace id tags every span the request produces,
           including the unigen.prepare/draw spans deeper down *)
        Obs.Trace.with_trace_id (Some p.trace_id) @@ fun () ->
        Obs.Trace.span ~cat:"service" "service.request"
          ~args:[ ("fingerprint", p.fingerprint); ("id", string_of_int p.id) ]
          (fun () ->
            if deadline_passed p now then
              Wire.Deadline_miss { rsp_tag = p.req.tag }
            else
              let key = key_of t p in
              let cached = Cache.find t.prep_cache key in
              match
                run_request ~incremental:t.cfg.incremental ~gauss:t.cfg.gauss
                  ~queue_wait_s ~cached p
              with
              | response, newly, tm ->
                  timing := Some tm;
                  finalize_cache t p key ~cached ~newly response;
                  response
              | exception e -> response_of_exn e)
      in
      account t p ~queue_wait_s ~started_at:now ~timing:!timing response;
      Some (p.id, response)

(* ------------------------------------------------------------------ *)
(* Parallel dispatch: hand whole requests to worker domains through the
   executor, at most [jobs] in flight and at most one per fingerprint.
   The owner keeps every cache touch: it resolves hit/miss and takes an
   execution pin before the worker starts, and installs / releases at
   completion — the worker only computes. *)

let dispatch_one t ex p =
  let now, queue_wait_s = dequeue t p in
  if deadline_passed p now then begin
    (* no worker needed; completes immediately *)
    let response = Wire.Deadline_miss { rsp_tag = p.req.tag } in
    account t p ~queue_wait_s ~started_at:now ~timing:None response;
    set_depth t;
    if not p.cancelled then Queue.push (p.id, response) t.completed
  end
  else begin
    Hashtbl.replace t.running p.id p;
    Hashtbl.replace t.busy_fps p.fingerprint ();
    t.inflight_count <- t.inflight_count + 1;
    set_depth t;
    let key = key_of t p in
    let cached = Cache.find t.prep_cache key in
    (* pin for the whole flight: a concurrent completion's [put] may
       evict, and it must never evict state a worker is reading *)
    (match cached with
    | Some _ -> ignore (Cache.acquire t.prep_cache key : bool)
    | None -> ());
    let incremental = t.cfg.incremental in
    let gauss = t.cfg.gauss in
    Parallel.Executor.submit ex
      ~work:(fun () ->
        (* worker domain: install the request's trace id as the
           ambient id for every span produced on this domain until the
           request finishes *)
        Obs.Trace.with_trace_id (Some p.trace_id) @@ fun () ->
        Obs.Trace.span ~cat:"service" "service.request"
          ~args:[ ("fingerprint", p.fingerprint); ("id", string_of_int p.id) ]
          (fun () -> run_request ~incremental ~gauss ~queue_wait_s ~cached p))
      ~finish:(fun result ->
        Hashtbl.remove t.running p.id;
        Hashtbl.remove t.busy_fps p.fingerprint;
        t.inflight_count <- t.inflight_count - 1;
        (match cached with
        | Some _ -> ignore (Cache.release t.prep_cache key : bool)
        | None -> ());
        let response, timing =
          match result with
          | Ok (response, newly, tm) ->
              finalize_cache t p key ~cached ~newly response;
              (response, Some tm)
          | Error (e, _bt) -> (response_of_exn e, None)
        in
        account t p ~queue_wait_s ~started_at:now ~timing response;
        set_depth t;
        if not p.cancelled then Queue.push (p.id, response) t.completed)
  end

let dispatch t =
  Audit.Ownership.check t.owner;
  match t.exec with
  | None -> 0
  | Some ex ->
      let started = ref 0 in
      let continue = ref true in
      while !continue && t.inflight_count < t.cfg.jobs do
        match next_runnable t with
        | None -> continue := false
        | Some p ->
            dispatch_one t ex p;
            incr started
      done;
      !started

let completions t =
  Audit.Ownership.check t.owner;
  (match t.exec with
  | Some ex when not t.exec_down -> ignore (Parallel.Executor.poll ex : int)
  | _ -> ());
  let rec go acc =
    if Queue.is_empty t.completed then List.rev acc
    else go (Queue.pop t.completed :: acc)
  in
  go []

let drain t =
  Audit.Ownership.check t.owner;
  match t.exec with
  | None ->
      let rec go acc =
        match step t with None -> List.rev acc | Some c -> go (c :: acc)
      in
      go []
  | Some ex ->
      let acc = ref [] in
      let continue = ref true in
      while !continue do
        List.iter (fun c -> acc := c :: !acc) (completions t);
        ignore (dispatch t : int);
        if t.inflight_count > 0 then Parallel.Executor.wait ~timeout_s:0.1 ex
        else if t.queued_count = 0 && Queue.is_empty t.completed then
          continue := false
      done;
      List.rev !acc

let shutdown t =
  Audit.Ownership.check t.owner;
  if not t.exec_down then begin
    t.exec_down <- true;
    match t.exec with
    | Some ex -> Parallel.Executor.shutdown ex
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Rolling-window report: the [metrics] wire op's answer. Pure read of
   the owner-domain windows. *)

let uptime_s t = Unix.gettimeofday () -. t.tele.started_at

let engine_name t = if t.cfg.gauss then "gauss" else "2watch"

let window_report t =
  Audit.Ownership.check t.owner;
  let now = Unix.gettimeofday () in
  let q d p = Obs.Metrics.Hist.quantile d p *. 1000.0 in
  let latency = Obs.Window.snapshot t.tele.w_latency ~now in
  let queue = Obs.Window.snapshot t.tele.w_queue ~now in
  let per_fp =
    Hashtbl.fold
      (fun fp ft acc ->
        let d = Obs.Window.snapshot ft.fw_latency ~now in
        if d.Obs.Metrics.Hist.count = 0 then acc
        else
          {
            Wire.fp;
            fp_requests = d.Obs.Metrics.Hist.count;
            fp_hits = Obs.Window.count ft.fw_hits ~now;
            fp_misses = Obs.Window.count ft.fw_misses ~now;
            fp_p50_ms = q d 0.5;
            fp_p90_ms = q d 0.9;
            fp_p99_ms = q d 0.99;
          }
          :: acc)
      t.tele.fp_tele []
    |> List.sort (fun a b -> compare b.Wire.fp_requests a.Wire.fp_requests)
  in
  {
    Wire.window_s = Obs.Window.span_s t.tele.w_latency;
    uptime_s = uptime_s t;
    jobs = t.cfg.jobs;
    w_in_flight = t.inflight_count;
    w_queued = t.queued_count;
    xor_engine = engine_name t;
    ocaml_version = Sys.ocaml_version;
    w_requests = latency.Obs.Metrics.Hist.count;
    rate_per_s = Obs.Window.rate_per_s t.tele.w_latency ~now;
    w_deadline_misses = Obs.Window.count t.tele.w_deadline ~now;
    w_hits = Obs.Window.count t.tele.w_hits ~now;
    w_misses = Obs.Window.count t.tele.w_misses ~now;
    p50_ms = q latency 0.5;
    p90_ms = q latency 0.9;
    p99_ms = q latency 0.99;
    queue_p50_ms = q queue 0.5;
    queue_p90_ms = q queue 0.9;
    queue_p99_ms = q queue 0.99;
    per_fp;
  }

type config = {
  queue_capacity : int;
  max_batch : int;
  cache_capacity : int;
  jobs : int;
  incremental : bool;
}

let default_config =
  {
    queue_capacity = 64;
    max_batch = 10_000;
    cache_capacity = 16;
    jobs = 1;
    incremental = true;
  }

type request = {
  formula : Cnf.Formula.t;
  n : int;
  seed : int;
  prepare_seed : int;
  epsilon : float;
  count_iterations : int option;
  timeout_s : float option;
  max_attempts : int;
  pin : bool;
  tag : string option;
}

let request_of_wire formula (w : Wire.sample_req) =
  {
    formula;
    n = w.Wire.n;
    seed = w.Wire.seed;
    prepare_seed = w.Wire.prepare_seed;
    epsilon = w.Wire.epsilon;
    count_iterations = w.Wire.count_iterations;
    timeout_s = w.Wire.timeout_s;
    max_attempts = w.Wire.max_attempts;
    pin = w.Wire.pin;
    tag = w.Wire.tag;
  }

type reject = { reason : Wire.reject_reason; retry_after_s : float }

type pending_req = {
  id : int;
  req : request;
  fingerprint : string;
  canonical : Cnf.Formula.t;
  submitted_at : float;
  deadline : float option;  (* absolute *)
  mutable cancelled : bool;
}

type t = {
  cfg : config;
  registry : Registry.t;
  prep_cache : Cache.t;
  pool : Parallel.Domain_pool.t option;
  queues : (string, pending_req Queue.t) Hashtbl.t;
  rotation : string Queue.t;  (* fingerprints with pending work, RR order *)
  by_id : (int, pending_req) Hashtbl.t;
  mutable next_id : int;
  mutable pending_count : int;
  mutable draining : bool;
  mutable avg_exec_s : float;  (* EWMA of request execution time *)
  mutable executed : int;
  mutable pool_down : bool;
  owner : Audit.Ownership.t;
}

let c_requests = Obs.Metrics.counter "service.requests"
let c_rejected = Obs.Metrics.counter "service.rejected"
let c_deadline_misses = Obs.Metrics.counter "service.deadline_misses"
let c_cancelled = Obs.Metrics.counter "service.cancelled"
let h_queue_wait = Obs.Metrics.histogram "service.queue_wait_seconds"
let h_request = Obs.Metrics.histogram "service.request_seconds"

let set_depth t =
  Obs.Metrics.set_gauge "service.queue_depth" (float_of_int t.pending_count)

let create ?(config = default_config) () =
  if config.queue_capacity < 1 then
    invalid_arg "Scheduler.create: queue_capacity must be >= 1";
  if config.jobs < 1 then invalid_arg "Scheduler.create: jobs must be >= 1";
  if config.cache_capacity < 0 then
    invalid_arg "Scheduler.create: cache_capacity must be >= 0";
  if config.max_batch < 0 then
    invalid_arg "Scheduler.create: max_batch must be >= 0";
  {
    cfg = config;
    registry = Registry.create ();
    prep_cache = Cache.create ~capacity:config.cache_capacity;
    pool =
      (if config.jobs > 1 then Some (Parallel.Domain_pool.create ~jobs:config.jobs)
       else None);
    queues = Hashtbl.create 16;
    rotation = Queue.create ();
    by_id = Hashtbl.create 64;
    next_id = 1;
    pending_count = 0;
    draining = false;
    avg_exec_s = 0.05;
    executed = 0;
    pool_down = false;
    owner = Audit.Ownership.create "service scheduler";
  }

let config t = t.cfg
let cache t = t.prep_cache
let registry t = t.registry

let pending t =
  Audit.Ownership.check t.owner;
  t.pending_count

let is_draining t = t.draining

let set_draining t =
  Audit.Ownership.check t.owner;
  t.draining <- true

let submit t req =
  Audit.Ownership.check t.owner;
  if t.draining then begin
    Obs.Metrics.incr c_rejected;
    Error { reason = Wire.Draining; retry_after_s = 0.0 }
  end
  else if req.n < 0 || req.n > t.cfg.max_batch then begin
    Obs.Metrics.incr c_rejected;
    Error { reason = Wire.Batch_too_large; retry_after_s = 0.0 }
  end
  else if t.pending_count >= t.cfg.queue_capacity then begin
    Obs.Metrics.incr c_rejected;
    (* the hint assumes the backlog drains at the observed mean
       request time; clients treat it as advisory *)
    Error
      {
        reason = Wire.Queue_full;
        retry_after_s = t.avg_exec_s *. float_of_int (t.pending_count + 1);
      }
  end
  else begin
    let fingerprint, canonical = Registry.intern t.registry req.formula in
    let now = Unix.gettimeofday () in
    let id = t.next_id in
    t.next_id <- id + 1;
    let p =
      {
        id;
        req;
        fingerprint;
        canonical;
        submitted_at = now;
        deadline = Option.map (fun s -> now +. s) req.timeout_s;
        cancelled = false;
      }
    in
    (match Hashtbl.find_opt t.queues fingerprint with
    | Some q -> Queue.push p q
    | None ->
        let q = Queue.create () in
        Queue.push p q;
        Hashtbl.replace t.queues fingerprint q;
        Queue.push fingerprint t.rotation);
    Hashtbl.replace t.by_id id p;
    t.pending_count <- t.pending_count + 1;
    Obs.Metrics.incr c_requests;
    set_depth t;
    Ok id
  end

let cancel t id =
  Audit.Ownership.check t.owner;
  match Hashtbl.find_opt t.by_id id with
  | None -> false
  | Some p ->
      p.cancelled <- true;
      Hashtbl.remove t.by_id id;
      t.pending_count <- t.pending_count - 1;
      Obs.Metrics.incr c_cancelled;
      set_depth t;
      true

(* Next request in fairness order: pop the head fingerprint of the
   rotation, take its oldest live request, and re-enqueue the
   fingerprint at the rotation tail while it still has work. *)
let rec next_pending t =
  if Queue.is_empty t.rotation then None
  else begin
    let fp = Queue.pop t.rotation in
    match Hashtbl.find_opt t.queues fp with
    | None -> next_pending t
    | Some q ->
        let rec take () =
          if Queue.is_empty q then None
          else
            let p = Queue.pop q in
            if p.cancelled then take () else Some p
        in
        let taken = take () in
        if Queue.is_empty q then Hashtbl.remove t.queues fp
        else Queue.push fp t.rotation;
        (match taken with None -> next_pending t | Some p -> Some p)
  end

let execute t ~queue_wait_s p =
  let key =
    {
      Cache.fingerprint = p.fingerprint;
      epsilon = p.req.epsilon;
      prepare_seed = p.req.prepare_seed;
      count_iterations = p.req.count_iterations;
      incremental = t.cfg.incremental;
    }
  in
  let cached = Cache.find t.prep_cache key in
  let cache_hit = Option.is_some cached in
  let prep_result =
    match cached with
    | Some entry -> Ok entry
    | None -> (
        let rng = Rng.create p.req.prepare_seed in
        match
          Obs.Trace.span ~cat:"service" "service.prepare"
            ~args:[ ("fingerprint", p.fingerprint) ]
            (fun () ->
              Sampling.Unigen.prepare ?deadline:p.deadline
                ?count_iterations:p.req.count_iterations
                ~incremental:t.cfg.incremental ?pool:t.pool ~rng
                ~epsilon:p.req.epsilon p.canonical)
        with
        | Ok prepared ->
            let entry =
              { Cache.prepared; formula = p.canonical; draws_served = 0 }
            in
            Cache.put t.prep_cache key entry;
            Ok entry
        | Error e -> Error e)
  in
  if p.req.pin then ignore (Cache.pin t.prep_cache key : bool);
  match prep_result with
  | Error Sampling.Unigen.Unsat_formula -> Wire.Unsat { rsp_tag = p.req.tag }
  | Error Sampling.Unigen.Prepare_timeout ->
      Obs.Metrics.incr c_deadline_misses;
      Wire.Deadline_miss { rsp_tag = p.req.tag }
  | Error Sampling.Unigen.Count_failed ->
      Wire.Error_msg "approximate count failed within budget"
  | Ok entry ->
      let outcomes =
        Obs.Trace.span ~cat:"service" "service.draw"
          ~args:[ ("fingerprint", p.fingerprint); ("n", string_of_int p.req.n) ]
          (fun () ->
            Sampling.Unigen.sample_batch ?deadline:p.deadline
              ~max_attempts:(max 1 p.req.max_attempts) ?pool:t.pool
              ~seed:p.req.seed entry.Cache.prepared p.req.n)
      in
      entry.Cache.draws_served <- entry.Cache.draws_served + p.req.n;
      let witnesses =
        Array.to_list outcomes
        |> List.filter_map (function
             | Ok m -> Some (Cnf.Model.to_dimacs m)
             | Error _ -> None)
      in
      Wire.Ok_sample
        {
          fingerprint = p.fingerprint;
          cache_hit;
          witnesses;
          produced = List.length witnesses;
          requested = p.req.n;
          queue_wait_s;
          rsp_tag = p.req.tag;
        }

let step t =
  Audit.Ownership.check t.owner;
  match next_pending t with
  | None -> None
  | Some p ->
      Hashtbl.remove t.by_id p.id;
      t.pending_count <- t.pending_count - 1;
      set_depth t;
      let now = Unix.gettimeofday () in
      let queue_wait_s = now -. p.submitted_at in
      Obs.Metrics.observe h_queue_wait queue_wait_s;
      let response =
        Obs.Trace.span ~cat:"service" "service.request"
          ~args:[ ("fingerprint", p.fingerprint); ("id", string_of_int p.id) ]
          (fun () ->
            match p.deadline with
            | Some d when now > d ->
                Obs.Metrics.incr c_deadline_misses;
                Wire.Deadline_miss { rsp_tag = p.req.tag }
            | _ -> (
                try execute t ~queue_wait_s p with
                | Invalid_argument m -> Wire.Error_msg ("invalid request: " ^ m)
                | Failure m -> Wire.Error_msg m))
      in
      let dt = Unix.gettimeofday () -. now in
      Obs.Metrics.observe h_request dt;
      t.avg_exec_s <-
        (if t.executed = 0 then dt else (0.8 *. t.avg_exec_s) +. (0.2 *. dt));
      t.executed <- t.executed + 1;
      Some (p.id, response)

let drain t =
  let rec go acc =
    match step t with None -> List.rev acc | Some c -> go (c :: acc)
  in
  go []

let shutdown t =
  Audit.Ownership.check t.owner;
  if not t.pool_down then begin
    t.pool_down <- true;
    match t.pool with
    | Some pool -> Parallel.Domain_pool.shutdown pool
    | None -> ()
  end

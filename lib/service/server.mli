(** The sampling daemon: a Unix-domain-socket front end over
    {!Scheduler}.

    Single-threaded by construction — one [select] loop owns the
    listening socket, every client connection, and the scheduler (so
    the {!Audit.Ownership} single-owner discipline holds without
    locks). Connection reads are buffered through {!Wire.Decoder}, so
    a slow writer never blocks the loop.

    With [scheduler.jobs = 1] the loop executes one scheduled request
    inline between I/O rounds. With [jobs > 1] it dispatches runnable
    requests to the scheduler's worker domains and keeps serving I/O;
    the executor's completion self-pipe joins the [select] set, so the
    loop sleeps until a client writes {e or} a worker finishes, then
    delivers completed responses. Requests on distinct formulas run
    concurrently (prepared-state ownership is sharded by fingerprint);
    witnesses stay bit-identical to serial execution at any [jobs]
    level.

    Graceful shutdown (a [shutdown] request, SIGINT or SIGTERM):
    admission switches to [Draining] rejections, the listening socket
    closes, every already-admitted request still executes and its
    response is delivered, then connections close, the socket file is
    unlinked and {!run} returns — at which point the caller flushes
    metrics/trace sinks. Clients that disconnect early have their
    pending requests cancelled rather than computed into the void. *)

type config = {
  socket_path : string;
  scheduler : Scheduler.config;
  log : string -> unit;  (** daemon progress lines; [ignore] to silence *)
  shard : (int * int) option;
      (** fleet identity [(index, count)], set by {!run_fleet} on each
          replica — surfaced in the [status] info and the
          [service.start] event so an operator can tell replicas
          apart; [None] for a standalone daemon *)
}

val default_config : socket_path:string -> config
(** {!Scheduler.default_config}, a silent [log], no shard. *)

val shard_socket : string -> int -> string
(** [shard_socket base i] is replica [i]'s socket path, ["<base>.<i>"]
    — the naming contract shared with [Client.Fleet] users. *)

val run : config -> unit
(** Bind, listen and serve until a graceful shutdown. Calls
    [Obs.Metrics.enable] so the [status] op always reports live
    counters, and replaces the process's SIGINT/SIGTERM/SIGPIPE
    handlers for the duration, restoring them on exit.
    @raise Unix.Unix_error when the socket cannot be bound (e.g. a
    live daemon already owns [socket_path]). *)

val run_fleet : replicas:int -> config -> unit
(** [run_fleet ~replicas cfg] forks [replicas] daemon processes, each
    running {!run} on [shard_socket cfg.socket_path i] with [shard =
    Some (i, replicas)], and supervises them: SIGINT/SIGTERM to the
    parent is forwarded as SIGTERM to every replica (draining the
    whole fleet), and the call returns once all replicas have exited.
    Replicas share nothing in memory; give them one
    [scheduler.spill_dir] to make them behave as a single durable
    cache. [replicas = 1] degenerates to {!run} on [cfg] unchanged.
    All forks happen before any worker domain exists (an OCaml 5
    requirement), so fleet mode composes with [jobs > 1].
    @raise Invalid_argument when [replicas < 1].
    @raise Failure when any replica exits abnormally. *)

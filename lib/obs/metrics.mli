(** Process-wide metrics registry: named counters, gauges and
    log-scale histograms with domain-sharded storage.

    Design constraints, in order:

    - {b cheap when disabled}: every update starts with a single atomic
      load of the global enable flag; a disabled registry does no
      allocation and touches no shared cache line beyond that flag.
    - {b correct across OCaml 5 domains}: each domain owns a private
      shard (plain, unsynchronised [int array] slots reached through
      [Domain.DLS]), so concurrent updates never contend or race; a
      {!snapshot} sums over all shards. Reading while worker domains
      are still running yields a consistent-enough monitoring view
      (int loads never tear); a lossless snapshot is obtained by
      snapshotting after the workers have been joined —
      [Domain_pool.shutdown] calls {!compact_shards} at exactly that
      point, folding dead workers' shards into a base accumulator.
    - {b zero dependencies}: nothing beyond the stdlib and [unix].

    Handles ([counter], [histogram]) are dense integer ids; register
    them once at module-initialisation time ([let c = counter "x"]) and
    update through the handle — registration takes a mutex, updates do
    not. Registration is idempotent: the same name yields the same id,
    so re-registering from another compilation unit is harmless. *)

(** {2 Enabling} *)

val enable : unit -> unit
(** Switch recording on (off by default). Typically flipped by the CLI
    when [--stats], [--metrics-json] or [--trace] is given, before any
    worker domain is spawned. *)

val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter, gauge and histogram (registrations survive).
    Only meaningful while no other domain is updating — tests and the
    bench harness call it between phases. *)

(** {2 Counters} *)

type counter

val counter : string -> counter
(** Register (or look up) the monotone counter [name]. *)

val incr : ?by:int -> counter -> unit

(** {2 Gauges}

    Gauges are last-write-wins process globals (queue depth, executor
    busyness, jobs). Unlike counters they are {e not} sharded: each
    named gauge is one atomic cell, and {b sets are safe from any
    domain} — concurrent writers race benignly (one of the written
    values wins; a snapshot never observes a torn or stale-forever
    value). Registration of a new name takes a mutex; every subsequent
    set through {!set} (or {!set_gauge}, which re-resolves the name) is
    a single lock-free atomic store. *)

type gauge

val gauge : string -> gauge
(** Register (or look up) the gauge [name]. Idempotent; the handle is
    the atomic cell itself, so hot callers should hoist it. *)

val set : gauge -> float -> unit
(** Lock-free last-write-wins store (a no-op while disabled). Setting
    NaN marks the gauge "never set" and hides it from snapshots. *)

val set_gauge : string -> float -> unit
(** [set (gauge name) v] — convenience for cold call sites. *)

(** {2 Histograms} *)

(** Pure log₂-bucketed histogram data. Bucket [b] covers values in
    [[2^(b-31), 2^(b-30))]; bucket 0 additionally absorbs zero,
    negative and non-finite observations, the last bucket absorbs
    overflow. Exposed as a pure value type so merge laws (associative,
    commutative, [empty] neutral) are directly testable. *)
module Hist : sig
  type data = {
    count : int;
    sum : float;
    buckets : int array;  (** length {!num_buckets} *)
  }

  val num_buckets : int
  val empty : data
  val bucket_of : float -> int
  val observe : data -> float -> data
  val merge : data -> data -> data

  val quantile : data -> float -> float
  (** [quantile d q] for [q] in [0,1]: upper edge of the bucket holding
      the [q]-th observation — a factor-of-2 estimate, which is what a
      log-scale histogram can honestly answer. 0 when empty. *)
end

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit

(** {2 Span time aggregation}

    {!Trace.span} feeds every completed span here, so per-phase wall
    time is available in reports even when no trace file is being
    written. Stored as a histogram of span durations (seconds) under
    the span's name. *)

val add_span : string -> float -> unit
(** [add_span name seconds] — registration is memoised per name. The
    backing histogram is registered as [{!span_prefix} ^ name], which
    is how reports tell phase-time histograms apart from ordinary
    value histograms. *)

val span_prefix : string
(** ["span:"]. *)

(** {2 Reading} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name, zeros omitted *)
  gauges : (string * float) list;
  histograms : (string * Hist.data) list;
      (** includes span-time histograms, names as given to {!add_span} *)
}

val snapshot : unit -> snapshot

val compact_shards : unit -> unit
(** Fold every shard into the base accumulator and zero the shards.
    Must only be called when no other domain is updating (e.g. right
    after a [Domain_pool] has joined its workers); the calling domain's
    own shard keeps working afterwards. *)

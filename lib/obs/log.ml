(* Leveled, structured JSON event log: one line per event, written to
   stderr or a file. The disabled path is a single atomic load; an
   enabled event formats into a private buffer and appends under the
   sink mutex (events are request-grained, so the lock is never hot). *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type sink = { oc : out_channel; lock : Mutex.t; close_oc : bool }

let enabled = Atomic.make false

(* Info and above by default; Debug events are compiled in but dropped. *)
let threshold = Atomic.make (level_rank Info)

let current : sink option ref = ref None

let is_enabled () = Atomic.get enabled

let set_level l = Atomic.set threshold (level_rank l)

let install oc ~close_oc =
  (match !current with
  | Some _ -> invalid_arg "Log.enable: already enabled"
  | None -> ());
  current := Some { oc; lock = Mutex.create (); close_oc };
  Atomic.set enabled true

let enable_stderr () = install stderr ~close_oc:false

let enable_file path = install (open_out path) ~close_oc:true

let close () =
  match !current with
  | None -> ()
  | Some s ->
      Atomic.set enabled false;
      Mutex.lock s.lock;
      if s.close_oc then close_out s.oc else flush s.oc;
      Mutex.unlock s.lock;
      current := None

let event ?(level = Info) name fields =
  if Atomic.get enabled && level_rank level >= Atomic.get threshold then
    match !current with
    | None -> ()
    | Some s ->
        (* leading ts/level/event keys, then the caller's fields; the
           whole line is one JSON object so `grep | parse` pipelines
           never need multi-line framing *)
        let line =
          Report.json_of_fields
            (( "ts", Report.Float (Unix.gettimeofday ()) )
             :: ("level", Report.String (level_to_string level))
             :: ("event", Report.String name)
             :: fields)
        in
        Mutex.lock s.lock;
        output_string s.oc line;
        output_char s.oc '\n';
        flush s.oc;
        Mutex.unlock s.lock

(** Leveled, structured JSON event log.

    One event = one line = one JSON object with leading [ts] (wall
    seconds since the epoch), [level] and [event] keys followed by the
    caller's typed fields — machine-parseable with any JSON reader and
    greppable by key, no multi-line framing. The sampling daemon emits
    one [service.request] line per finished request (trace id,
    fingerprint, outcome, queue/prepare/draw milliseconds, cache
    hit/miss, XOR engine), escalated to [warn] past the configured
    slow-request threshold.

    Like the rest of [lib/obs], the disabled path costs one atomic
    load per call site; enabling opens a sink ({!enable_stderr} or
    {!enable_file}) whose writes are serialised by a mutex and flushed
    per line (events are request-grained — an operator tailing the file
    must see a request as soon as it finishes). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val enable_stderr : unit -> unit
(** Start logging to stderr. @raise Invalid_argument if a sink is
    already open. *)

val enable_file : string -> unit
(** Start logging to [path] (truncating).
    @raise Invalid_argument if a sink is already open.
    @raise Sys_error if the file cannot be opened. *)

val close : unit -> unit
(** Flush and release the sink (closing the channel only when this
    module opened it). Idempotent. *)

val is_enabled : unit -> bool

val set_level : level -> unit
(** Drop events below this level (default {!Info}: [Debug] events are
    compiled in but discarded). *)

val event : ?level:level -> string -> (string * Report.value) list -> unit
(** [event name fields] writes one line. [name] becomes the [event]
    key; [fields] follow in order. Safe from any domain. *)

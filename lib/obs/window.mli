(** Time-windowed rolling metrics: a ring of per-epoch
    {!Metrics.Hist} sub-histograms (default 12 × 10 s), answering
    "what happened over the last minute or two" where the process-wide
    registry in {!Metrics} answers "what happened since boot".

    Time is divided into fixed epochs of [bucket_s] seconds; epoch [e]
    occupies ring slot [e mod buckets], so the passage of time
    overwrites the oldest epoch by construction ({e advance =
    drop-oldest}). A {!snapshot} merges the live buckets — the current
    partial epoch and the [buckets - 1] before it — into one
    {!Metrics.Hist.data}, so percentiles, counts and rates over the
    window fall out of the same histogram algebra the lifetime metrics
    use (and inherit its tested merge laws).

    Every operation takes the clock as an explicit [~now] (seconds, any
    fixed origin — the service passes [Unix.gettimeofday]): the
    structure is a deterministic function of the observation sequence,
    which is what the qcheck laws in [test_obs.ml] check.

    {b Not thread-safe}: a window belongs to one domain. The service
    scheduler owns its windows and updates them only from owner-side
    accounting (worker completions funnel through owner-executed finish
    thunks), under its [Audit.Ownership] tag. *)

type t

val create : ?buckets:int -> ?bucket_s:float -> unit -> t
(** Defaults: 12 buckets × 10 s = a 2-minute ring reporting on the
    last ~1–2 minutes. @raise Invalid_argument when [buckets < 1] or
    [bucket_s <= 0]. *)

val buckets : t -> int
val bucket_s : t -> float

val span_s : t -> float
(** [buckets * bucket_s] — the widest interval a snapshot can cover. *)

val observe : t -> now:float -> float -> unit
(** Record a value (e.g. a latency in seconds) in [now]'s epoch. *)

val add : t -> now:float -> int -> unit
(** Count [n] events in [now]'s epoch with no value semantics
    (recorded as zero-valued observations; only [count] and rates are
    meaningful on such a window). *)

val snapshot : t -> now:float -> Metrics.Hist.data
(** Merge of the live buckets as of [now]: observations from the last
    [span_s] seconds (minus ring granularity). Epochs older than the
    ring are excluded even if their slots have not been lazily reset
    yet. *)

val count : t -> now:float -> int
(** [(snapshot t ~now).count]. *)

val rate_per_s : t -> now:float -> float
(** [count / span_s] — the window-average event rate. *)

val epoch_of : t -> float -> int
(** The epoch index [now] falls in (exposed for the window-algebra
    tests). *)

val clear : t -> unit

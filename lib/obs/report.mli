(** Structured run summaries: the machine- and human-readable end of
    the observability layer.

    A report is an ordered list of named sections of typed fields,
    renderable as aligned text ({!pp}) or JSON ({!to_json},
    {!write_json}). Callers build domain sections (run accounting,
    solver counters, estimator output) and append
    {!metrics_sections}, which converts a {!Metrics.snapshot} into a
    ["metrics"] counter section and a ["phases"] per-span wall-time
    breakdown — the replacement for the hand-rolled [--stats]
    printers. Every report carries a ["host"] section
    ({!host_fields}: core count, OCaml version, word size) so numbers
    stay interpretable across machines. *)

type value = Int of int | Float of float | Bool of bool | String of string

type section = { title : string; fields : (string * value) list }

type t

val create : ?host:bool -> unit -> t
(** Fresh report; with [host] (default [true]) the ["host"] section is
    included first. *)

val add_section : t -> string -> (string * value) list -> unit
(** Append a section (empty field lists are dropped). *)

val sections : t -> section list

val host_fields : unit -> (string * value) list
(** [cores] ([Domain.recommended_domain_count]), [ocaml_version],
    [word_size]. *)

val phase_fields : Metrics.snapshot -> (string * value) list
(** One field per span-time histogram: total seconds spent under that
    span name (the per-phase wall-time breakdown). Names are the span
    names; values are [Float] seconds. *)

val metrics_sections : Metrics.snapshot -> (string * (string * value) list) list
(** [("metrics", counters-and-gauges); ("phases", per-phase seconds);
    ("phase_calls", per-phase call counts)] — sections with no content
    are omitted. *)

val pp : Format.formatter -> t -> unit
(** Text rendering, one ["c <section>.<field> = <value>"]-style line
    per field, suitable for DIMACS comment streams. *)

val to_json : t -> string
(** The report as one JSON object: [{"section": {"field": value, …},
    …}], sections in insertion order. *)

val write_json : string -> t -> unit
(** [write_json path r] writes {!to_json} (plus a trailing newline)
    to [path]. *)

val json_of_fields : (string * value) list -> string
(** A bare JSON object for one field list — lets external writers
    (e.g. the bench harness's hand-assembled files) embed report
    fragments such as {!host_fields}. *)

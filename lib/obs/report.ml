type value = Int of int | Float of float | Bool of bool | String of string

type section = { title : string; fields : (string * value) list }

type t = { mutable secs : section list (* reversed *) }

let host_fields () =
  [
    ("cores", Int (Domain.recommended_domain_count ()));
    ("ocaml_version", String Sys.ocaml_version);
    ("word_size", Int Sys.word_size);
  ]

let create ?(host = true) () =
  let t = { secs = [] } in
  if host then t.secs <- [ { title = "host"; fields = host_fields () } ];
  t

let add_section t title fields =
  if fields <> [] then t.secs <- { title; fields } :: t.secs

let sections t = List.rev t.secs

(* ------------------------------------------------------------------ *)
(* Metrics snapshot -> sections *)

let split_span_name name =
  let p = Metrics.span_prefix in
  let lp = String.length p in
  if String.length name > lp && String.sub name 0 lp = p then
    Some (String.sub name lp (String.length name - lp))
  else None

let span_histograms (s : Metrics.snapshot) =
  List.filter_map
    (fun (name, h) ->
      match split_span_name name with
      | Some base -> Some (base, h)
      | None -> None)
    s.Metrics.histograms

let value_histograms (s : Metrics.snapshot) =
  List.filter (fun (name, _) -> split_span_name name = None) s.Metrics.histograms

let phase_fields (s : Metrics.snapshot) =
  List.map
    (fun (name, (h : Metrics.Hist.data)) -> (name, Float h.Metrics.Hist.sum))
    (span_histograms s)

let metrics_sections (s : Metrics.snapshot) =
  let counters =
    List.map (fun (name, n) -> (name, Int n)) s.Metrics.counters
    @ List.map (fun (name, v) -> (name, Float v)) s.Metrics.gauges
    @ List.concat_map
        (fun (name, (h : Metrics.Hist.data)) ->
          [
            (name ^ ".count", Int h.Metrics.Hist.count);
            ( name ^ ".mean",
              Float
                (if h.Metrics.Hist.count = 0 then 0.0
                 else h.Metrics.Hist.sum /. float_of_int h.Metrics.Hist.count) );
            (name ^ ".p90", Float (Metrics.Hist.quantile h 0.9));
          ])
        (value_histograms s)
  in
  let phases = phase_fields s in
  let calls =
    List.map
      (fun (name, (h : Metrics.Hist.data)) -> (name, Int h.Metrics.Hist.count))
      (span_histograms s)
  in
  List.filter
    (fun (_, fields) -> fields <> [])
    [ ("metrics", counters); ("phases", phases); ("phase_calls", calls) ]

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_value fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Float f -> Format.fprintf fmt "%.6f" f
  | Bool b -> Format.pp_print_bool fmt b
  | String s -> Format.pp_print_string fmt s

let pp fmt t =
  List.iter
    (fun sec ->
      List.iter
        (fun (k, v) ->
          Format.fprintf fmt "c %s.%s = %a@." sec.title k pp_value v)
        sec.fields)
    (sections t)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_json_value b = function
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
      else Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'

let add_json_fields b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_char b '"';
      escape b k;
      Buffer.add_string b "\": ";
      add_json_value b v)
    fields;
  Buffer.add_char b '}'

let json_of_fields fields =
  let b = Buffer.create 128 in
  add_json_fields b fields;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  List.iteri
    (fun i sec ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "  \"";
      escape b sec.title;
      Buffer.add_string b "\": ";
      add_json_fields b sec.fields)
    (sections t);
  Buffer.add_string b "\n}";
  Buffer.contents b

let write_json path t =
  let oc = open_out path in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc

(* Chrome trace_event sink. The enabled flag is an atomic read on the
   hot no-op path; actual emission formats into a private buffer and
   appends to the channel under the sink mutex. *)

(* Single clock-swap point. [Unix.gettimeofday] has microsecond
   resolution but may step backwards under NTP adjustment; span
   durations and trace timestamps must never go negative, so the raw
   reading is clamped through a process-wide high-water mark (CAS loop
   over a boxed float — the compare uses the physically identical
   value just read, so the loop is ABA-safe). The result is a
   monotone non-decreasing clock shared by every domain. *)
let clock_high_water = Atomic.make 0.0

let now_us () =
  let t = Unix.gettimeofday () *. 1e6 in
  let rec clamp () =
    let prev = Atomic.get clock_high_water in
    if t <= prev then prev
    else if Atomic.compare_and_set clock_high_water prev t then t
    else clamp ()
  in
  clamp ()

type sink = { oc : out_channel; lock : Mutex.t; t0 : float; mutable first : bool }

let enabled = Atomic.make false
let current : sink option ref = ref None

let is_enabled () = Atomic.get enabled

let enable_file path =
  (match !current with Some _ -> invalid_arg "Trace.enable_file: already enabled" | None -> ());
  let oc = open_out path in
  output_string oc "[";
  current := Some { oc; lock = Mutex.create (); t0 = now_us (); first = true };
  Atomic.set enabled true

let close () =
  match !current with
  | None -> ()
  | Some s ->
      Atomic.set enabled false;
      Mutex.lock s.lock;
      output_string s.oc "\n]\n";
      close_out s.oc;
      Mutex.unlock s.lock;
      current := None

(* ------------------------------------------------------------------ *)
(* Request correlation. The current trace id is ambient, per-domain
   state: a request executor wraps the whole execution in
   [with_trace_id], and every span emitted underneath — on whichever
   domain runs it — carries the id as a [trace_id] arg, so one Chrome
   trace query shows a request's full lifecycle across lanes. *)

let trace_id_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_trace_id () = !(Domain.DLS.get trace_id_key)

let with_trace_id id f =
  let cell = Domain.DLS.get trace_id_key in
  let saved = !cell in
  cell := id;
  Fun.protect ~finally:(fun () -> cell := saved) f

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let emit ?id ~ph ~cat ~name ~args () =
  match !current with
  | None -> ()
  | Some s ->
      (* the ambient id rides along as an ordinary arg so span events
         stay greppable by trace id without changing their shape *)
      let args =
        match current_trace_id () with
        | Some tid when not (List.mem_assoc "trace_id" args) ->
            args @ [ ("trace_id", tid) ]
        | _ -> args
      in
      let b = Buffer.create 128 in
      Buffer.add_string b "\n{\"name\":\"";
      json_escape b name;
      Buffer.add_string b "\",\"cat\":\"";
      json_escape b cat;
      Buffer.add_string b "\",\"ph\":\"";
      Buffer.add_char b ph;
      Buffer.add_string b "\"";
      (match id with
      | None -> ()
      | Some id ->
          Buffer.add_string b ",\"id\":\"";
          json_escape b id;
          Buffer.add_string b "\"");
      Buffer.add_string b ",\"pid\":0,\"tid\":";
      Buffer.add_string b (string_of_int (Domain.self () :> int));
      Buffer.add_string b ",\"ts\":";
      Buffer.add_string b (Printf.sprintf "%.3f" (now_us () -. s.t0));
      (match args with
      | [] -> ()
      | args ->
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_char b '"';
              json_escape b k;
              Buffer.add_string b "\":\"";
              json_escape b v;
              Buffer.add_char b '"')
            args;
          Buffer.add_char b '}');
      Buffer.add_char b '}';
      Mutex.lock s.lock;
      if s.first then s.first <- false else output_char s.oc ',';
      Buffer.output_buffer s.oc b;
      Mutex.unlock s.lock

let instant ?(cat = "pipeline") ?(args = []) name =
  if Atomic.get enabled then emit ~ph:'i' ~cat ~name ~args ()

(* Async begin/end pairs ([ph] 'b'/'e'): unlike [span], the two ends
   may be emitted from different call sites — and different domains —
   so a phase without a lexical scope (queue wait between submission
   and dispatch) still renders as one bar. Chrome associates the pair
   by (cat, id, name); [bin/lint.ml]'s unmatched-span rule checks every
   [span_begin] name literal has a [span_end] site. *)

let span_begin ?(cat = "pipeline") ?(args = []) ~id name =
  if Atomic.get enabled then emit ~id ~ph:'b' ~cat ~name ~args ()

let span_end ?(cat = "pipeline") ?(args = []) ~id name =
  if Atomic.get enabled then emit ~id ~ph:'e' ~cat ~name ~args ()

let span ?(cat = "pipeline") ?(args = []) name f =
  let tracing = Atomic.get enabled in
  let metrics = Metrics.is_enabled () in
  if not (tracing || metrics) then f ()
  else begin
    let t0 = now_us () in
    if tracing then emit ~ph:'B' ~cat ~name ~args ();
    let finish () =
      let dt = now_us () -. t0 in
      if tracing then emit ~ph:'E' ~cat ~name ~args:[] ();
      if metrics then Metrics.add_span name (dt *. 1e-6)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

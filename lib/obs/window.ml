(* Time-windowed rolling metrics: a ring of per-epoch sub-histograms.

   Epoch e covers wall-clock interval [e*bucket_s, (e+1)*bucket_s);
   epoch e lives in slot (e mod buckets), so advancing time naturally
   overwrites the oldest epoch — "advance = drop-oldest" is not a
   policy but the ring arithmetic itself. A slot is expired lazily: the
   first touch (observe or snapshot) at a later epoch that maps to the
   same slot resets it. All operations take the clock as an explicit
   [~now] so the algebra is a deterministic function of the observation
   sequence (the qcheck laws in test_obs.ml exploit this).

   Not thread-safe: a window belongs to one domain (the service
   scheduler owns its windows and updates them from owner-side finish
   thunks only). *)

type t = {
  bucket_s : float;
  slots : Metrics.Hist.data array;
  epochs : int array;  (* epochs.(i) = epoch whose data slots.(i) holds *)
}

let create ?(buckets = 12) ?(bucket_s = 10.0) () =
  if buckets < 1 then invalid_arg "Window.create: buckets must be >= 1";
  if not (bucket_s > 0.0) then invalid_arg "Window.create: bucket_s must be > 0";
  {
    bucket_s;
    slots = Array.make buckets Metrics.Hist.empty;
    epochs = Array.make buckets min_int;
  }

let buckets t = Array.length t.slots
let bucket_s t = t.bucket_s
let span_s t = t.bucket_s *. float_of_int (Array.length t.slots)

let epoch_of t now = int_of_float (Float.floor (now /. t.bucket_s))

let slot_of t e =
  let n = Array.length t.slots in
  ((e mod n) + n) mod n

let observe t ~now v =
  let e = epoch_of t now in
  let s = slot_of t e in
  if t.epochs.(s) <> e then begin
    t.slots.(s) <- Metrics.Hist.empty;
    t.epochs.(s) <- e
  end;
  t.slots.(s) <- Metrics.Hist.observe t.slots.(s) v

let add t ~now n =
  for _ = 1 to n do
    observe t ~now 0.0
  done

(* Live buckets at [now]: epochs in (current - buckets, current] —
   the current (partial) epoch plus the buckets-1 before it. Anything
   older is stale ring residue awaiting lazy reset. *)
let live t ~now =
  let e = epoch_of t now in
  let n = Array.length t.slots in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if t.epochs.(i) > e - n && t.epochs.(i) <= e then acc := t.slots.(i) :: !acc
  done;
  !acc

let snapshot t ~now =
  List.fold_left Metrics.Hist.merge Metrics.Hist.empty (live t ~now)

let count t ~now = (snapshot t ~now).Metrics.Hist.count

let rate_per_s t ~now = float_of_int (count t ~now) /. span_s t

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) Metrics.Hist.empty;
  Array.fill t.epochs 0 (Array.length t.epochs) min_int

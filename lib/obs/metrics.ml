(* Domain-sharded metrics. One global registry assigns dense ids; each
   domain owns a private shard (grown on demand) registered in a global
   shard list, so updates are plain unsynchronised array writes and
   only registration / snapshot take the mutex. *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* ------------------------------------------------------------------ *)
(* Registry *)

type kind = K_counter | K_histogram

type def = { id : int; name : string; kind : kind }

let reg_lock = Mutex.create ()
let defs : def list ref = ref []
let next_id = ref 0

let register name kind =
  Mutex.lock reg_lock;
  let id =
    match List.find_opt (fun d -> d.name = name && d.kind = kind) !defs with
    | Some d -> d.id
    | None ->
        let id = !next_id in
        incr next_id;
        defs := { id; name; kind } :: !defs;
        id
  in
  Mutex.unlock reg_lock;
  id

type counter = int
type histogram = int

let counter name = register name K_counter
let histogram name = register name K_histogram

(* ------------------------------------------------------------------ *)
(* Histogram data (pure, so merge laws are testable) *)

module Hist = struct
  type data = { count : int; sum : float; buckets : int array }

  let num_buckets = 64

  let empty = { count = 0; sum = 0.0; buckets = Array.make num_buckets 0 }

  (* bucket b covers [2^(b-31), 2^(b-30)); 0 absorbs <= 0 and NaN *)
  let bucket_of v =
    if not (Float.is_finite v) || v <= 0.0 then 0
    else
      let e = snd (Float.frexp v) in
      max 0 (min (num_buckets - 1) (e + 30))

  let observe d v =
    let buckets = Array.copy d.buckets in
    let b = bucket_of v in
    buckets.(b) <- buckets.(b) + 1;
    { count = d.count + 1;
      sum = d.sum +. (if Float.is_finite v then Float.max v 0.0 else 0.0);
      buckets }

  let merge a b =
    { count = a.count + b.count;
      sum = a.sum +. b.sum;
      buckets = Array.init num_buckets (fun i -> a.buckets.(i) + b.buckets.(i)) }

  let bucket_upper b = Float.ldexp 1.0 (b - 30)

  let quantile d q =
    if d.count = 0 then 0.0
    else begin
      let target =
        let t = int_of_float (Float.ceil (q *. float_of_int d.count)) in
        max 1 (min d.count t)
      in
      let rec go b seen =
        if b >= num_buckets - 1 then bucket_upper b
        else
          let seen = seen + d.buckets.(b) in
          if seen >= target then bucket_upper b else go (b + 1) seen
      in
      go 0 0
    end
end

(* ------------------------------------------------------------------ *)
(* Shards *)

(* Parallel arrays indexed by metric id. [counts] doubles as the
   observation count of histogram ids; [sums]/[buckets] are only
   populated for histogram ids. *)
type shard = {
  mutable counts : int array;
  mutable sums : float array;
  mutable buckets : int array array;
  shard_owner : Audit.Ownership.t;
      (* updates are unsynchronised array writes, sound only from the
         owning domain; snapshot/compact reads are mutex-coordinated *)
}

let empty_buckets : int array = [||]

let new_shard () =
  { counts = [||]; sums = [||]; buckets = [||];
    shard_owner = Audit.Ownership.create "Metrics.shard" }

let shard_lock = Mutex.create ()
let shards : shard list ref = ref []

(* Base accumulator that dead domains' shards are folded into. *)
let base = new_shard ()

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = new_shard () in
      Mutex.lock shard_lock;
      shards := s :: !shards;
      Mutex.unlock shard_lock;
      s)

let ensure s id =
  if id >= Array.length s.counts then begin
    let n = max 16 (max (2 * Array.length s.counts) (id + 1)) in
    let counts = Array.make n 0 in
    Array.blit s.counts 0 counts 0 (Array.length s.counts);
    let sums = Array.make n 0.0 in
    Array.blit s.sums 0 sums 0 (Array.length s.sums);
    let buckets = Array.make n empty_buckets in
    Array.blit s.buckets 0 buckets 0 (Array.length s.buckets);
    s.counts <- counts;
    s.sums <- sums;
    s.buckets <- buckets
  end

let incr ?(by = 1) c =
  if Atomic.get enabled then begin
    let s = Domain.DLS.get shard_key in
    Audit.Ownership.check s.shard_owner;
    ensure s c;
    s.counts.(c) <- s.counts.(c) + by
  end

let observe h v =
  if Atomic.get enabled then begin
    let s = Domain.DLS.get shard_key in
    Audit.Ownership.check s.shard_owner;
    ensure s h;
    if s.buckets.(h) == empty_buckets then
      s.buckets.(h) <- Array.make Hist.num_buckets 0;
    let b = Hist.bucket_of v in
    s.buckets.(h).(b) <- s.buckets.(h).(b) + 1;
    s.counts.(h) <- s.counts.(h) + 1;
    s.sums.(h) <- s.sums.(h) +. (if Float.is_finite v then Float.max v 0.0 else 0.0)
  end

(* ------------------------------------------------------------------ *)
(* Gauges: atomic cells, last write wins from any domain. Service
   worker domains race the owner on gauges like executor busyness, so
   unlike the original mutex-guarded Hashtbl the cell itself is the
   synchronisation point: registration (first set of a name) takes the
   mutex, every subsequent set is a plain [Atomic.set]. A cell holding
   NaN is "never set" and omitted from snapshots. *)

type gauge = float Atomic.t

let gauge_lock = Mutex.create ()
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  Mutex.lock gauge_lock;
  let cell =
    match Hashtbl.find_opt gauges name with
    | Some c -> c
    | None ->
        let c = Atomic.make Float.nan in
        Hashtbl.add gauges name c;
        c
  in
  Mutex.unlock gauge_lock;
  cell

let set g v = if Atomic.get enabled then Atomic.set g v

let set_gauge name v = if Atomic.get enabled then Atomic.set (gauge name) v

(* ------------------------------------------------------------------ *)
(* Span time aggregation (memoised name -> histogram id) *)

let span_lock = Mutex.create ()
let span_ids : (string, histogram) Hashtbl.t = Hashtbl.create 32

let span_prefix = "span:"

let span_histogram name =
  Mutex.lock span_lock;
  let id =
    match Hashtbl.find_opt span_ids name with
    | Some id -> id
    | None ->
        let id = histogram (span_prefix ^ name) in
        Hashtbl.add span_ids name id;
        id
  in
  Mutex.unlock span_lock;
  id

let add_span name seconds = observe (span_histogram name) seconds

(* ------------------------------------------------------------------ *)
(* Reading *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Hist.data) list;
}

let fold_shards f init =
  Mutex.lock shard_lock;
  let all = base :: !shards in
  Mutex.unlock shard_lock;
  List.fold_left f init all

let snapshot () =
  Mutex.lock reg_lock;
  let ds = !defs in
  Mutex.unlock reg_lock;
  let total_count id = fold_shards (fun acc s ->
      acc + (if id < Array.length s.counts then s.counts.(id) else 0)) 0
  in
  let total_hist id =
    fold_shards
      (fun acc s ->
        if id < Array.length s.buckets && s.buckets.(id) != empty_buckets then
          Hist.merge acc
            { Hist.count = s.counts.(id);
              sum = s.sums.(id);
              buckets = s.buckets.(id) }
        else acc)
      Hist.empty
  in
  let counters =
    List.filter_map
      (fun d ->
        match d.kind with
        | K_counter ->
            let n = total_count d.id in
            if n = 0 then None else Some (d.name, n)
        | K_histogram -> None)
      ds
    |> List.sort compare
  in
  let histograms =
    List.filter_map
      (fun d ->
        match d.kind with
        | K_histogram ->
            let h = total_hist d.id in
            if h.Hist.count = 0 then None else Some (d.name, h)
        | K_counter -> None)
      ds
    |> List.sort compare
  in
  let gs =
    Mutex.lock gauge_lock;
    let gs =
      Hashtbl.fold
        (fun k c acc ->
          let v = Atomic.get c in
          if Float.is_nan v then acc else (k, v) :: acc)
        gauges []
    in
    Mutex.unlock gauge_lock;
    List.sort compare gs
  in
  { counters; gauges = gs; histograms }

let fold_shard_into ~into s =
  let n = Array.length s.counts in
  ensure into (n - 1);
  for id = 0 to n - 1 do
    into.counts.(id) <- into.counts.(id) + s.counts.(id);
    s.counts.(id) <- 0;
    into.sums.(id) <- into.sums.(id) +. s.sums.(id);
    s.sums.(id) <- 0.0;
    if s.buckets.(id) != empty_buckets then begin
      if into.buckets.(id) == empty_buckets then
        into.buckets.(id) <- Array.make Hist.num_buckets 0;
      for b = 0 to Hist.num_buckets - 1 do
        into.buckets.(id).(b) <- into.buckets.(id).(b) + s.buckets.(id).(b);
        s.buckets.(id).(b) <- 0
      done
    end
  done

let compact_shards () =
  Mutex.lock shard_lock;
  let all = !shards in
  Mutex.unlock shard_lock;
  (* shard records stay registered (a live domain keeps using its own
     through DLS); their contents move to [base] *)
  List.iter (fun s -> if Array.length s.counts > 0 then fold_shard_into ~into:base s) all

let reset () =
  Mutex.lock shard_lock;
  let all = base :: !shards in
  Mutex.unlock shard_lock;
  List.iter
    (fun s ->
      Array.fill s.counts 0 (Array.length s.counts) 0;
      Array.fill s.sums 0 (Array.length s.sums) 0.0;
      Array.iter
        (fun b -> if b != empty_buckets then Array.fill b 0 (Array.length b) 0)
        s.buckets)
    all;
  Mutex.lock gauge_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c Float.nan) gauges;
  Mutex.unlock gauge_lock

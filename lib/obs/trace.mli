(** Structured tracing: begin/end spans emitted as Chrome
    [trace_event] JSON, loadable in [chrome://tracing] or Perfetto.

    The default sink is a no-op: {!span} costs one atomic load and a
    tail call until {!enable_file} opens a real sink, so instrumented
    code can stay instrumented unconditionally. Every completed span is
    also fed to {!Metrics.add_span} (when metrics are enabled), which
    is where per-phase wall time in reports comes from — tracing and
    metrics can be switched on independently.

    Events carry [pid] 0 and the emitting domain's id as [tid], so a
    [--jobs N] run renders as one lane per worker domain. Timestamps
    come from a single process-wide clock read at span boundaries
    (microsecond resolution, monotonically offset from the instant the
    sink was opened; {!now_us} is the single swap point if a true
    monotonic source becomes available). Writes are serialised by a
    sink mutex — spans are solver-call-grained, not
    per-propagation-grained, so contention is negligible. *)

val enable_file : string -> unit
(** Open [path] as the trace sink (truncating) and start emitting.
    Call before spawning worker domains so their lifecycle spans are
    captured. @raise Sys_error if the file cannot be opened. *)

val is_enabled : unit -> bool

val close : unit -> unit
(** Terminate the JSON array and close the sink. Idempotent; a no-op
    when tracing was never enabled. Call after worker domains have
    been joined (in-flight spans after [close] degrade to metrics-only
    recording). *)

val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a begin/end event pair named
    [name] (category [cat], default ["pipeline"]; [args] become the
    event's ["args"] object). The end event is emitted — and the
    duration fed to {!Metrics.add_span} — whether [f] returns or
    raises; exceptions are re-raised with their original backtrace. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event (phase ["i"]). *)

val now_us : unit -> float
(** The clock used for event timestamps, in microseconds. *)

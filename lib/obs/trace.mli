(** Structured tracing: begin/end spans emitted as Chrome
    [trace_event] JSON, loadable in [chrome://tracing] or Perfetto.

    The default sink is a no-op: {!span} costs one atomic load and a
    tail call until {!enable_file} opens a real sink, so instrumented
    code can stay instrumented unconditionally. Every completed span is
    also fed to {!Metrics.add_span} (when metrics are enabled), which
    is where per-phase wall time in reports comes from — tracing and
    metrics can be switched on independently.

    Events carry [pid] 0 and the emitting domain's id as [tid], so a
    [--jobs N] run renders as one lane per worker domain. Timestamps
    come from {!now_us}, a process-wide monotone non-decreasing clock
    (microsecond resolution) shared by every domain. Writes are
    serialised by a sink mutex — spans are solver-call-grained, not
    per-propagation-grained, so contention is negligible.

    {b Request correlation}: the service wraps each request's
    execution in {!with_trace_id}; every event emitted underneath, on
    any domain, then carries the id as a [trace_id] arg — one query in
    the trace viewer surfaces a request's whole queue → prepare → draw
    lifecycle across lanes. *)

val enable_file : string -> unit
(** Open [path] as the trace sink (truncating) and start emitting.
    Call before spawning worker domains so their lifecycle spans are
    captured. @raise Sys_error if the file cannot be opened. *)

val is_enabled : unit -> bool

val close : unit -> unit
(** Terminate the JSON array and close the sink. Idempotent; a no-op
    when tracing was never enabled. Call after worker domains have
    been joined (in-flight spans after [close] degrade to metrics-only
    recording). *)

val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a begin/end event pair named
    [name] (category [cat], default ["pipeline"]; [args] become the
    event's ["args"] object). The end event is emitted — and the
    duration fed to {!Metrics.add_span} — whether [f] returns or
    raises; exceptions are re-raised with their original backtrace. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event (phase ["i"]). *)

val span_begin : ?cat:string -> ?args:(string * string) list -> id:string -> string -> unit
(** Open an {e async} span ([ph] ["b"]): unlike {!span} the matching
    {!span_end} may come from a different call site or domain, so a
    phase without a lexical scope (e.g. a request's queue wait between
    admission and dispatch) still renders as one bar. Chrome pairs the
    two ends by (category, [id], name); use the request's trace id as
    [id]. Every [span_begin] name literal must have a {!span_end} site
    — [bin/lint.ml]'s [unmatched-span] rule enforces this. *)

val span_end : ?cat:string -> ?args:(string * string) list -> id:string -> string -> unit
(** Close the async span opened by {!span_begin} with the same
    (category, [id], name). *)

val with_trace_id : string option -> (unit -> 'a) -> 'a
(** [with_trace_id (Some id) f] makes [id] the calling domain's
    ambient trace id while [f] runs (restored on return or raise, so
    nesting is safe): every event emitted by this domain inside [f]
    gains a [trace_id] arg. [with_trace_id None f] clears it. Purely
    domain-local — a worker executing a request on another domain must
    wrap its own execution. *)

val current_trace_id : unit -> string option
(** The calling domain's ambient trace id, if any. *)

val now_us : unit -> float
(** The clock used for event timestamps, in microseconds: wall time
    clamped through a process-wide high-water mark, so consecutive
    readings never decrease even if the system clock steps
    backwards. *)

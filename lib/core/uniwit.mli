(** UniWit (Chakraborty, Meel, Vardi — CAV 2013): the near-uniform
    hashing-based generator that UniGen is compared against in the
    paper's Tables 1 and 2 (leapfrogging disabled, as in the paper's
    experiments).

    Re-implemented from the CAV 2013 description. The behaviours that
    drive the comparison are faithfully preserved:

    - hashing is performed over the {b full support} X, so each XOR
      row mentions ~|X|/2 variables (vs ~|S|/2 for UniGen);
    - every sample runs the {b whole} sequential search over hash
      sizes m = 1, 2, ... afresh — nothing is amortised across
      samples without giving up the guarantee;
    - a cell is accepted as soon as its size falls in [1, pivot],
      a looser criterion than UniGen's two-sided [loThresh, hiThresh],
      which is why UniWit only achieves near-uniformity (a one-sided
      constant-factor lower bound) and a success probability ≥ 1/8. *)

val default_pivot : int

val sample :
  ?deadline:float ->
  ?pivot:int ->
  ?incremental:bool ->
  ?stats:Sampler.run_stats ->
  rng:Rng.t ->
  Cnf.Formula.t ->
  Sampler.outcome
(** Draw one witness. The sampling set of the formula is ignored — by
    design UniWit hashes and blocks over all variables.

    [incremental] (default [true]) serves the sample's whole
    sequential search over hash sizes from one solver session (the
    XOR layer swapped per size); the outcome is identical to the
    fresh-solver path. The guarantee is untouched: nothing is shared
    {e across} samples, only across the sizes within one sample. *)

type failure = Unsat | Cell_failure | Timed_out

type outcome = (Cnf.Model.t, failure) Result.t

type run_stats = {
  mutable samples_requested : int;
  mutable samples_produced : int;
  mutable cell_failures : int;
  mutable timeouts : int;
  mutable xor_rows : int;
  mutable xor_vars : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable xor_propagations : int;
  mutable restarts : int;
  mutable learnts : int;
  mutable reuse_hits : int;
  mutable wall_seconds : float;
}

let fresh_stats () =
  {
    samples_requested = 0;
    samples_produced = 0;
    cell_failures = 0;
    timeouts = 0;
    xor_rows = 0;
    xor_vars = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    xor_propagations = 0;
    restarts = 0;
    learnts = 0;
    reuse_hits = 0;
    wall_seconds = 0.0;
  }

let success_probability s =
  if s.samples_requested = 0 then Float.nan
  else float_of_int s.samples_produced /. float_of_int s.samples_requested

let average_xor_length s =
  if s.xor_rows = 0 then 0.0
  else float_of_int s.xor_vars /. float_of_int s.xor_rows

let average_seconds_per_sample s =
  if s.samples_produced = 0 then Float.nan
  else s.wall_seconds /. float_of_int s.samples_produced

let merge_into ~into s =
  into.samples_requested <- into.samples_requested + s.samples_requested;
  into.samples_produced <- into.samples_produced + s.samples_produced;
  into.cell_failures <- into.cell_failures + s.cell_failures;
  into.timeouts <- into.timeouts + s.timeouts;
  into.xor_rows <- into.xor_rows + s.xor_rows;
  into.xor_vars <- into.xor_vars + s.xor_vars;
  into.conflicts <- into.conflicts + s.conflicts;
  into.decisions <- into.decisions + s.decisions;
  into.propagations <- into.propagations + s.propagations;
  into.xor_propagations <- into.xor_propagations + s.xor_propagations;
  into.restarts <- into.restarts + s.restarts;
  into.learnts <- into.learnts + s.learnts;
  into.reuse_hits <- into.reuse_hits + s.reuse_hits;
  into.wall_seconds <- into.wall_seconds +. s.wall_seconds

let record_hash s h =
  s.xor_rows <- s.xor_rows + Hashing.Hxor.m h;
  s.xor_vars <- s.xor_vars + Hashing.Hxor.total_xor_length h

let record_solve s (out : Sat.Bsat.outcome) =
  let d = out.Sat.Bsat.stats in
  s.conflicts <- s.conflicts + d.Sat.Solver.conflicts;
  s.decisions <- s.decisions + d.Sat.Solver.decisions;
  s.propagations <- s.propagations + d.Sat.Solver.propagations;
  s.xor_propagations <- s.xor_propagations + d.Sat.Solver.xor_propagations;
  s.restarts <- s.restarts + d.Sat.Solver.restarts;
  s.learnts <- s.learnts + d.Sat.Solver.learnts;
  if out.Sat.Bsat.reused then s.reuse_hits <- s.reuse_hits + 1

let pp fmt s =
  Format.fprintf fmt
    "requested=%d produced=%d cell_failures=%d timeouts=%d avg_xor_len=%.1f \
     conflicts=%d decisions=%d propagations=%d xor_propagations=%d \
     restarts=%d learnts=%d reuse_hits=%d avg_s=%.3f"
    s.samples_requested s.samples_produced s.cell_failures s.timeouts
    (average_xor_length s) s.conflicts s.decisions s.propagations
    s.xor_propagations s.restarts s.learnts s.reuse_hits
    (average_seconds_per_sample s)

let finite f = if Float.is_finite f then f else 0.0

let report_fields s =
  let open Obs.Report in
  [
    ("samples_requested", Int s.samples_requested);
    ("samples_produced", Int s.samples_produced);
    ("cell_failures", Int s.cell_failures);
    ("timeouts", Int s.timeouts);
    ("success_probability", Float (finite (success_probability s)));
    ("avg_xor_len", Float (average_xor_length s));
    ("avg_seconds_per_sample", Float (finite (average_seconds_per_sample s)));
    ("conflicts", Int s.conflicts);
    ("decisions", Int s.decisions);
    ("propagations", Int s.propagations);
    ("xor_propagations", Int s.xor_propagations);
    ("restarts", Int s.restarts);
    ("learnts", Int s.learnts);
    ("reuse_hits", Int s.reuse_hits);
    ("wall_seconds", Float s.wall_seconds);
  ]

let default_pivot = 20

let all_vars (f : Cnf.Formula.t) = Array.init f.num_vars (fun i -> i + 1)

let sample ?deadline ?(pivot = default_pivot) ?(incremental = true) ?stats ~rng
    (f : Cnf.Formula.t) =
  let stats = match stats with Some s -> s | None -> Sampler.fresh_stats () in
  stats.Sampler.samples_requested <- stats.Sampler.samples_requested + 1;
  let start = Unix.gettimeofday () in
  let vars = all_vars f in
  let finish outcome =
    stats.Sampler.wall_seconds <-
      stats.Sampler.wall_seconds +. (Unix.gettimeofday () -. start);
    (match outcome with
    | Ok _ -> stats.Sampler.samples_produced <- stats.Sampler.samples_produced + 1
    | Error Sampler.Cell_failure ->
        stats.Sampler.cell_failures <- stats.Sampler.cell_failures + 1
    | Error Sampler.Timed_out -> stats.Sampler.timeouts <- stats.Sampler.timeouts + 1
    | Error Sampler.Unsat -> ());
    outcome
  in
  (* blocking over the full variable set: UniWit has no sampling set.
     One session serves the whole sequential search over hash sizes —
     UniWit re-solves the same base formula at every size, which is
     exactly the pattern sessions amortise. *)
  let session =
    if incremental then Some (Sat.Bsat.Session.create ~blocking_vars:vars f)
    else None
  in
  let enumerate xors =
    let out =
      match session with
      | Some s -> Sat.Bsat.Session.enumerate ?deadline ~xors ~limit:(pivot + 1) s
      | None ->
          let g = Cnf.Formula.add_xors f xors in
          Sat.Bsat.enumerate ?deadline ~blocking_vars:vars ~limit:(pivot + 1) g
    in
    Sampler.record_solve stats out;
    out
  in
  let out = enumerate [] in
  if out.Sat.Bsat.timed_out then finish (Error Sampler.Timed_out)
  else begin
    let models = Array.of_list out.Sat.Bsat.models in
    if Array.length models = 0 then finish (Error Sampler.Unsat)
    else if out.Sat.Bsat.exhausted && Array.length models <= pivot then
      finish (Ok (Rng.choose rng models))
    else begin
      (* sequential search over hash sizes, afresh for every sample *)
      let rec try_size m =
        if m > f.num_vars then finish (Error Sampler.Cell_failure)
        else begin
          let h = Hashing.Hxor.sample rng ~vars ~m in
          Sampler.record_hash stats h;
          let out = enumerate (Hashing.Hxor.constraints h) in
          if out.Sat.Bsat.timed_out then finish (Error Sampler.Timed_out)
          else begin
            let cell = Array.of_list out.Sat.Bsat.models in
            let size = Array.length cell in
            if size >= 1 && size <= pivot && out.Sat.Bsat.exhausted then
              finish (Ok (Rng.choose rng cell))
            else try_size (m + 1)
          end
        end
      in
      try_size 1
    end
  end

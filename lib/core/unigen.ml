type phase =
  | Easy of Cnf.Model.t array
      (** |R_F| ≤ hiThresh: all witnesses enumerated up front *)
  | Hashed of { q : int; count_estimate : float }

type prepared = {
  formula : Cnf.Formula.t;
  sampling : int array;
  kappa : float;
  pivot : int;
  hi : float; (* hiThresh *)
  lo : float; (* loThresh *)
  hi_limit : int; (* BSAT enumeration limit: floor(hi) + 1 *)
  hash_density : float;
  phase : phase;
  incremental : bool;
  gauss : bool;
  session_key : Sat.Bsat.Session.t Domain.DLS.key;
      (* Each domain lazily materialises its own solver session, so
         the Domain_pool parallel path needs no locking and every
         worker warms its solver across the draws it executes. The
         sampled witnesses are bit-identical either way: Bsat outcomes
         are canonically ordered, hence independent of each session's
         private history whenever a cell is accepted (accepted cells
         are exhaustively enumerated, so they are equal as sets). *)
  stats : Sampler.run_stats;
}

type prepare_error = Unsat_formula | Prepare_timeout | Count_failed

let log2 x = Float.log x /. Float.log 2.0

let prepare ?deadline ?count_iterations ?(hash_density = 0.5)
    ?(incremental = true) ?(gauss = true) ?jobs ?pool ~rng ~epsilon formula =
  Obs.Trace.span ~cat:"sampling" "unigen.prepare"
    ~args:
      [
        ("epsilon", string_of_float epsilon);
        ("incremental", string_of_bool incremental);
        ("engine", if gauss then "gauss" else "2watch");
        ("vars", string_of_int formula.Cnf.Formula.num_vars);
      ]
  @@ fun () ->
  let kappa, pivot = Kappa_pivot.compute epsilon in
  let hi = Kappa_pivot.hi_thresh ~kappa ~pivot in
  let lo = Kappa_pivot.lo_thresh ~kappa ~pivot in
  let hi_limit = int_of_float (Float.floor hi) + 1 in
  let sampling = Cnf.Formula.sampling_vars formula in
  let make phase =
    {
      formula;
      sampling;
      kappa;
      pivot;
      hi;
      lo;
      hi_limit;
      hash_density;
      phase;
      incremental;
      gauss;
      session_key =
        Domain.DLS.new_key (fun () ->
            Sat.Bsat.Session.create ~blocking_vars:sampling ~gauss formula);
      stats = Sampler.fresh_stats ();
    }
  in
  (* lines 4-7: the easy case *)
  let out = Sat.Bsat.enumerate ?deadline ~gauss ~limit:hi_limit formula in
  if out.Sat.Bsat.timed_out then Error Prepare_timeout
  else begin
    let models = Array.of_list out.Sat.Bsat.models in
    if Array.length models = 0 then Error Unsat_formula
    else if out.Sat.Bsat.exhausted && float_of_int (Array.length models) <= hi
    then Ok (make (Easy models))
    else begin
      (* lines 9-10: approximate count, then q = ⌈log C + log 1.8 − log pivot⌉ *)
      match
        Counting.Approxmc.count ?deadline ?iterations:count_iterations
          ~incremental ~gauss ?jobs ?pool ~rng ~epsilon:0.8 ~delta:0.8 formula
      with
      | Error Counting.Approxmc.Unsat -> Error Unsat_formula
      | Error Counting.Approxmc.Timed_out -> Error Count_failed
      | Ok c ->
          let q =
            int_of_float
              (Float.ceil (c.Counting.Approxmc.log2_estimate +. log2 1.8 -. log2 (float_of_int pivot)))
          in
          Ok (make (Hashed { q; count_estimate = c.Counting.Approxmc.estimate }))
    end
  end

let timeout_retries = 3

(* lines 12-22. [stats] is passed explicitly so that parallel workers
   can record into private accounting instead of racing on [t.stats]. *)
let sample_once ?deadline ~rng ~stats t =
  Obs.Trace.span ~cat:"sampling" "unigen.draw" @@ fun () ->
  match t.phase with
  | Easy models -> Ok (Rng.choose rng models)
  | Hashed { q; _ } ->
      let rec try_size i retries =
        if i > q then Error Sampler.Cell_failure
        else if i < 1 then try_size (i + 1) timeout_retries
          (* m ≤ 0 would leave the whole solution space as one cell,
             necessarily oversized: an automatic failure of this size *)
        else begin
          let h =
            Hashing.Hxor.sample ~density:t.hash_density rng ~vars:t.sampling ~m:i
          in
          Sampler.record_hash stats h;
          let out =
            if t.incremental then
              (* warm per-domain session: the hash layer is pushed as a
                 retractable group and popped after the call, leaving
                 base-formula learnt clauses for the next draw *)
              Sat.Bsat.Session.enumerate ?deadline
                ~xors:(Hashing.Hxor.constraints h) ~limit:t.hi_limit
                (Domain.DLS.get t.session_key)
            else
              let g =
                Cnf.Formula.add_xors t.formula (Hashing.Hxor.constraints h)
              in
              Sat.Bsat.enumerate ?deadline ~gauss:t.gauss ~limit:t.hi_limit g
          in
          Sampler.record_solve stats out;
          if out.Sat.Bsat.timed_out then begin
            (* the paper repeats lines 14-16 on a BSAT timeout without
               incrementing i *)
            let expired =
              match deadline with
              | Some d -> Unix.gettimeofday () > d
              | None -> false
            in
            if retries > 0 && not expired then try_size i (retries - 1)
            else Error Sampler.Timed_out
          end
          else begin
            let models = Array.of_list out.Sat.Bsat.models in
            let n = float_of_int (Array.length models) in
            if out.Sat.Bsat.exhausted && n >= t.lo && n <= t.hi && n > 0.0 then
              Ok (Rng.choose rng models)
            else try_size (i + 1) timeout_retries
          end
        end
      in
      try_size (q - 3) timeout_retries

let sample_with_stats ?deadline ~rng ~stats t =
  stats.Sampler.samples_requested <- stats.Sampler.samples_requested + 1;
  let start = Unix.gettimeofday () in
  let result = sample_once ?deadline ~rng ~stats t in
  stats.Sampler.wall_seconds <-
    stats.Sampler.wall_seconds +. (Unix.gettimeofday () -. start);
  (match result with
  | Ok _ -> stats.Sampler.samples_produced <- stats.Sampler.samples_produced + 1
  | Error Sampler.Cell_failure ->
      stats.Sampler.cell_failures <- stats.Sampler.cell_failures + 1
  | Error Sampler.Timed_out -> stats.Sampler.timeouts <- stats.Sampler.timeouts + 1
  | Error Sampler.Unsat -> ());
  result

let sample ?deadline ~rng t = sample_with_stats ?deadline ~rng ~stats:t.stats t

let sample_retrying ?deadline ?(max_attempts = 10) ~rng t =
  let rec go n =
    match sample ?deadline ~rng t with
    | Error Sampler.Cell_failure when n < max_attempts -> go (n + 1)
    | outcome -> outcome
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Parallel leaf sampling. Sample [i] of a batch consumes the private
   stream (seed, i) — see Rng.of_stream — so the witness drawn for a
   given (seed, index) pair is a pure function of that pair: running
   the batch on 1 worker or N produces bit-identical outcome arrays.
   Theorem 1 is untouched because each sample re-runs lines 12-22
   against an independently drawn hash, exactly as in serial operation;
   parallelism only changes which OS core executes the draw. *)

let sample_index ?deadline ?(max_attempts = 10) ~seed t index =
  let rng = Rng.of_stream ~seed index in
  let stats = Sampler.fresh_stats () in
  let rec go n =
    match sample_with_stats ?deadline ~rng ~stats t with
    | Error Sampler.Cell_failure when n < max_attempts -> go (n + 1)
    | outcome -> outcome
  in
  let outcome = go 1 in
  (outcome, stats)

let sample_batch ?deadline ?max_attempts ?pool ?(jobs = 1) ~seed t n =
  if n < 0 then invalid_arg "Unigen.sample_batch: negative batch size";
  if jobs < 1 then invalid_arg "Unigen.sample_batch: jobs must be >= 1";
  let one index = sample_index ?deadline ?max_attempts ~seed t index in
  let indices = Array.init n Fun.id in
  let results =
    match pool with
    | Some p -> Parallel.Domain_pool.map p one indices
    | None ->
        if jobs = 1 then Array.map one indices
        else
          Parallel.Domain_pool.with_pool ~jobs (fun p ->
              Parallel.Domain_pool.map p one indices)
  in
  (* fold the private per-sample stats back in index order, so the
     shared accounting is identical whatever the worker count *)
  Array.iter (fun (_, s) -> Sampler.merge_into ~into:t.stats s) results;
  Array.map fst results

(* ------------------------------------------------------------------ *)
(* Portable view: everything a prepared state carries that cannot be
   recomputed for free. The solver sessions and stats are rebuilt on
   import; kappa/pivot determine hi/lo/hi_limit, so the thresholds are
   re-derived rather than trusted from the serialized form. Draws
   depend only on (phase, hash_density, sampling set, thresholds,
   engine flags, formula), all of which the round trip preserves
   exactly — witnesses from an imported state are bit-identical to the
   original's (the durable-store differential tests enforce this). *)

type portable_phase =
  | Portable_easy of { num_vars : int; models : int list list }
      (** enumerated witnesses in DIMACS-literal form, original array
          order (cell choice indexes into it) *)
  | Portable_hashed of { q : int; count_estimate : float }

type portable = {
  p_kappa : float;
  p_pivot : int;
  p_hash_density : float;
  p_incremental : bool;
  p_gauss : bool;
  p_phase : portable_phase;
}

let export t =
  {
    p_kappa = t.kappa;
    p_pivot = t.pivot;
    p_hash_density = t.hash_density;
    p_incremental = t.incremental;
    p_gauss = t.gauss;
    p_phase =
      (match t.phase with
      | Easy models ->
          Portable_easy
            {
              num_vars = Cnf.Model.num_vars models.(0);
              models =
                Array.to_list (Array.map Cnf.Model.to_dimacs models);
            }
      | Hashed { q; count_estimate } -> Portable_hashed { q; count_estimate });
  }

let import ~formula p =
  let hi = Kappa_pivot.hi_thresh ~kappa:p.p_kappa ~pivot:p.p_pivot in
  let lo = Kappa_pivot.lo_thresh ~kappa:p.p_kappa ~pivot:p.p_pivot in
  let hi_limit = int_of_float (Float.floor hi) + 1 in
  let sampling = Cnf.Formula.sampling_vars formula in
  let phase =
    match p.p_phase with
    | Portable_easy { num_vars; models } ->
        if num_vars < 0 then invalid_arg "Unigen.import: negative num_vars";
        Easy
          (Array.of_list
             (List.map
                (fun lits ->
                  let tab = Array.make (num_vars + 1) false in
                  List.iter
                    (fun l ->
                      let v = abs l in
                      if v < 1 || v > num_vars then
                        invalid_arg "Unigen.import: literal out of range";
                      if l > 0 then tab.(v) <- true)
                    lits;
                  Cnf.Model.make num_vars (fun v -> tab.(v)))
                models))
    | Portable_hashed { q; count_estimate } -> Hashed { q; count_estimate }
  in
  {
    formula;
    sampling;
    kappa = p.p_kappa;
    pivot = p.p_pivot;
    hi;
    lo;
    hi_limit;
    hash_density = p.p_hash_density;
    phase;
    incremental = p.p_incremental;
    gauss = p.p_gauss;
    session_key =
      Domain.DLS.new_key (fun () ->
          Sat.Bsat.Session.create ~blocking_vars:sampling ~gauss:p.p_gauss
            formula);
    stats = Sampler.fresh_stats ();
  }

let stats t = t.stats
let kappa t = t.kappa
let pivot t = t.pivot
let hi_thresh t = t.hi
let lo_thresh t = t.lo

let q_range t =
  match t.phase with Easy _ -> None | Hashed { q; _ } -> Some (q - 3, q)

let is_easy t = match t.phase with Easy _ -> true | Hashed _ -> false
let is_incremental t = t.incremental
let is_gauss t = t.gauss

let count_estimate t =
  match t.phase with
  | Easy models -> float_of_int (Array.length models)
  | Hashed { count_estimate; _ } -> count_estimate

let sample ?deadline ?(cell_cutoff = 4096) ?session ?stats ~rng ~s
    (f : Cnf.Formula.t) =
  if s < 0 then invalid_arg "Xorsample.sample: s < 0";
  let stats = match stats with Some st -> st | None -> Sampler.fresh_stats () in
  stats.Sampler.samples_requested <- stats.Sampler.samples_requested + 1;
  let start = Unix.gettimeofday () in
  let finish outcome =
    stats.Sampler.wall_seconds <-
      stats.Sampler.wall_seconds +. (Unix.gettimeofday () -. start);
    (match outcome with
    | Ok _ -> stats.Sampler.samples_produced <- stats.Sampler.samples_produced + 1
    | Error Sampler.Cell_failure ->
        stats.Sampler.cell_failures <- stats.Sampler.cell_failures + 1
    | Error Sampler.Timed_out -> stats.Sampler.timeouts <- stats.Sampler.timeouts + 1
    | Error Sampler.Unsat -> ());
    outcome
  in
  let vars = Array.init f.num_vars (fun i -> i + 1) in
  let h = Hashing.Hxor.sample rng ~vars ~m:s in
  Sampler.record_hash stats h;
  let out =
    match session with
    | Some sess ->
        Sat.Bsat.Session.enumerate ?deadline
          ~xors:(Hashing.Hxor.constraints h) ~limit:cell_cutoff sess
    | None ->
        let g = Cnf.Formula.add_xors f (Hashing.Hxor.constraints h) in
        Sat.Bsat.enumerate ?deadline ~blocking_vars:vars ~limit:cell_cutoff g
  in
  Sampler.record_solve stats out;
  if out.Sat.Bsat.timed_out then finish (Error Sampler.Timed_out)
  else begin
    let cell = Array.of_list out.Sat.Bsat.models in
    if Array.length cell = 0 then finish (Error Sampler.Cell_failure)
    else if not out.Sat.Bsat.exhausted then
      (* cell larger than the cutoff: s was too small to be usable *)
      finish (Error Sampler.Cell_failure)
    else finish (Ok (Rng.choose rng cell))
  end

let session_for (f : Cnf.Formula.t) =
  let vars = Array.init f.num_vars (fun i -> i + 1) in
  Sat.Bsat.Session.create ~blocking_vars:vars f

(** Types shared by every witness generator in this library. *)

type failure =
  | Unsat  (** the formula has no witness at all *)
  | Cell_failure
      (** the algorithm's random cell fell outside its thresholds (the
          ⊥ of Algorithm 1); retrying with fresh randomness may
          succeed — Theorem 1 bounds the probability of this at ≤ 0.38
          for UniGen *)
  | Timed_out

type outcome = (Cnf.Model.t, failure) Result.t

(** Per-run accounting used to fill the paper's table columns. *)
type run_stats = {
  mutable samples_requested : int;
  mutable samples_produced : int;
  mutable cell_failures : int;
  mutable timeouts : int;
  mutable xor_rows : int;  (** total XOR rows across all hash draws *)
  mutable xor_vars : int;  (** total variables across those rows *)
  mutable conflicts : int;  (** CDCL conflicts across all BSAT calls *)
  mutable decisions : int;
  mutable propagations : int;
  mutable xor_propagations : int;
      (** implications produced by the XOR parity engine *)
  mutable restarts : int;
  mutable learnts : int;  (** learnt clauses recorded *)
  mutable reuse_hits : int;
      (** BSAT calls answered by a warm solver session *)
  mutable wall_seconds : float;
}

val fresh_stats : unit -> run_stats
val success_probability : run_stats -> float
(** produced / requested; NaN when nothing was requested. *)

val average_xor_length : run_stats -> float
(** Mean variables per XOR row across the run (the "Avg XOR len"
    column); 0 when no hash was ever drawn. *)

val average_seconds_per_sample : run_stats -> float

val merge_into : into:run_stats -> run_stats -> unit
(** Add [s]'s counters into [into]. The parallel batch engine gives
    every sample its own private stats record and folds them back in
    index order once the batch completes, so shared stats are never
    mutated from two domains at once. Note the merged [wall_seconds]
    is the {e cumulative} per-sample time, which exceeds elapsed wall
    clock when samples ran concurrently. *)

val record_hash : run_stats -> Hashing.Hxor.t -> unit

val record_solve : run_stats -> Sat.Bsat.outcome -> unit
(** Fold one BSAT outcome's solver-statistics delta (conflicts,
    propagations, learnt clauses, session-reuse hit) into the run. *)

val pp : Format.formatter -> run_stats -> unit

val report_fields : run_stats -> (string * Obs.Report.value) list
(** The run's accounting as a typed field list for an {!Obs.Report}
    section (the structured replacement for the [--stats] one-liner).
    NaN ratios (nothing requested/produced yet) are reported as 0. *)

(** XORSample′ (Gomes, Sabharwal, Selman — NIPS 2007): the earlier
    hashing-based near-uniform generator discussed in the paper's
    related work. Unlike UniGen and UniWit it requires the user to
    supply the number [s] of XOR constraints — a difficult-to-estimate
    parameter (too small: huge cells and skew; too large: empty
    cells). It hashes over the full support.

    Included as a baseline for the related-work comparison benches. *)

val sample :
  ?deadline:float ->
  ?cell_cutoff:int ->
  ?session:Sat.Bsat.Session.t ->
  ?stats:Sampler.run_stats ->
  rng:Rng.t ->
  s:int ->
  Cnf.Formula.t ->
  Sampler.outcome
(** Add [s] random XORs, enumerate the surviving cell exhaustively (up
    to [cell_cutoff], default 4096 — beyond it the attempt is treated
    as a failure, mirroring the practical need for [s] to be close to
    log2 |R_F|), and pick a witness uniformly from the cell.

    [session] reuses a caller-owned solver session across samples (the
    per-sample XOR layer is swapped as a retractable group); obtain
    one with {!session_for} so the blocking set matches XORSample′'s
    full-support convention. The drawn witnesses are identical to the
    fresh path. *)

val session_for : Cnf.Formula.t -> Sat.Bsat.Session.t
(** A solver session over [f] blocking on the full variable set,
    suitable for passing to {!sample} repeatedly. *)

(** UniGen (Algorithm 1 of the paper): an almost-uniform generator of
    SAT witnesses.

    Guarantee (Theorem 1): if the sampling set is an independent
    support of [F] and ε > 1.71, then for every witness y,

      1/((1+ε)(|R_F|−1)) ≤ Pr[output = y] ≤ (1+ε)/(|R_F|−1),

    and the success probability is at least 0.62.

    The expensive preparation (lines 1–11: κ/pivot computation, the
    easy-case enumeration, the ApproxMC call and the derivation of the
    candidate hash-size range q−3..q) runs once per formula in
    {!prepare}; each {!sample} then only executes lines 12–22. Unlike
    UniWit's "leapfrogging", this amortisation is part of the
    algorithm and sacrifices no guarantee. *)

type prepared

type prepare_error =
  | Unsat_formula
  | Prepare_timeout
  | Count_failed  (** ApproxMC could not produce an estimate *)

val prepare :
  ?deadline:float ->
  ?count_iterations:int ->
  ?hash_density:float ->
  ?incremental:bool ->
  ?gauss:bool ->
  ?jobs:int ->
  ?pool:Parallel.Domain_pool.t ->
  rng:Rng.t ->
  epsilon:float ->
  Cnf.Formula.t ->
  (prepared, prepare_error) Result.t
(** Runs lines 1–11. The formula's sampling set is used as the set [S]
    of sampling variables; it must be an independent support for the
    uniformity guarantee (this is not checked here — see
    {!Sat.Indsupport} for a checker).
    [count_iterations] overrides the ApproxMC median-iteration count
    (tolerance 0.8 and confidence 0.8 are fixed by the algorithm).
    [hash_density] (default 0.5) sets the per-variable inclusion
    probability of the XOR rows; values below 0.5 give the sparse-XOR
    variant of Gomes et al. that voids Theorem 1 — it exists only for
    the ablation bench.
    [incremental] (default [true]) backs every BSAT call — here in the
    ApproxMC count and later in each {!sample} — by a persistent
    solver session instead of a fresh solver: one session per domain,
    reused across draws, with the XOR hash layer swapped in and out as
    a retractable constraint group. The sampled distribution and every
    returned witness are identical to the fresh path
    ([~incremental:false], kept as the differential reference); only
    the work to re-learn base-formula clauses disappears.
    [gauss] (default [true]) selects the solver's XOR engine for every
    BSAT call of the preparation and of each later {!sample}: in-search
    Gauss-Jordan elimination over the hash rows, or — with
    [~gauss:false] — a static RREF followed by parity 2-watch
    propagation (the differential reference engine). Witnesses are
    bit-identical across the two engines.
    [jobs]/[pool] parallelise the ApproxMC counting iterations (each is
    an independent XOR-hashed count); see {!Counting.Approxmc.count}.
    @raise Invalid_argument when [epsilon <= 1.71]. *)

val sample : ?deadline:float -> rng:Rng.t -> prepared -> Sampler.outcome
(** Runs lines 12–22 once: picks a hash size in q−3..q, a random hash
    and cell, enumerates the cell, and returns a uniformly chosen
    witness if the cell size lies within [loThresh, hiThresh]. A
    [Cell_failure] is the algorithm's ⊥; callers typically retry. *)

val sample_retrying :
  ?deadline:float -> ?max_attempts:int -> rng:Rng.t -> prepared -> Sampler.outcome
(** Repeats {!sample} on [Cell_failure] (fresh randomness each time,
    up to [max_attempts], default 10). This is how a CRV testbench
    uses the generator. *)

(** {2 Parallel batch sampling}

    Leaf-level sampling is embarrassingly parallel: after {!prepare},
    each sample only re-runs lines 12–22 against an independently drawn
    hash, so drawing a batch across N domains weakens nothing in
    Theorem 1. The seeding discipline makes batches reproducible:
    sample [i] consumes the private stream [Rng.of_stream ~seed i],
    a pure function of [(seed, i)], so the outcome array is
    {e bit-identical} for every [jobs] value (only elapsed wall clock
    changes). *)

val sample_index :
  ?deadline:float ->
  ?max_attempts:int ->
  seed:int ->
  prepared ->
  int ->
  Sampler.outcome * Sampler.run_stats
(** [sample_index ~seed t i] draws the [i]-th sample of the batch keyed
    by [seed]: retries on [Cell_failure] up to [max_attempts] (default
    10) within stream [(seed, i)], and returns the outcome together
    with the private stats of this one sample (not yet merged into
    [stats t]). Deterministic given [(seed, i)] and the preparation. *)

val sample_batch :
  ?deadline:float ->
  ?max_attempts:int ->
  ?pool:Parallel.Domain_pool.t ->
  ?jobs:int ->
  seed:int ->
  prepared ->
  int ->
  Sampler.outcome array
(** [sample_batch ~jobs ~seed t n] draws samples [0 .. n-1] via
    {!sample_index}, distributing them over [jobs] workers (default 1;
    pass [pool] instead to reuse a long-lived {!Parallel.Domain_pool}).
    Result [i] is sample [i]'s outcome; per-sample stats are merged
    into [stats t] in index order after the batch completes.
    @raise Invalid_argument when [n < 0] or [jobs < 1]. *)

(** {2 Portable view}

    A prepared state is a deterministic function of the canonical
    formula and the preparation parameters, which makes it worth
    persisting: the durable store (see [Service.Spill]) serializes the
    portable view below and rebuilds a live state on a later daemon
    generation. Only what cannot be recomputed for free crosses the
    boundary — solver sessions and stats are rebuilt, and the
    [hi]/[lo] thresholds are re-derived from κ/pivot rather than
    trusted from disk. Witnesses drawn from an imported state are
    bit-identical to the original's. *)

type portable_phase =
  | Portable_easy of { num_vars : int; models : int list list }
      (** enumerated witnesses as DIMACS literal lists, in the original
          enumeration order (cell choice indexes into it) *)
  | Portable_hashed of { q : int; count_estimate : float }

type portable = {
  p_kappa : float;
  p_pivot : int;
  p_hash_density : float;
  p_incremental : bool;
  p_gauss : bool;
  p_phase : portable_phase;
}

val export : prepared -> portable
(** The serializable essence of a preparation (pure; cheap). *)

val import : formula:Cnf.Formula.t -> portable -> prepared
(** Rebuild a live prepared state around [formula] — which must be the
    same canonical formula the exported state was prepared from (the
    caller verifies this via the registry fingerprint in its store
    key). Fresh per-domain solver sessions and zeroed stats.
    @raise Invalid_argument when an easy-phase model list is malformed
    (negative [num_vars] or a literal out of range). *)

val stats : prepared -> Sampler.run_stats
(** Accounting across every sample drawn from this preparation. *)

(** Introspection (used by benches, tests and EXPERIMENTS.md). *)

val kappa : prepared -> float
val pivot : prepared -> int
val hi_thresh : prepared -> float
val lo_thresh : prepared -> float

val q_range : prepared -> (int * int) option
(** The candidate hash-size range (q−3, q); [None] in the easy case
    (|R_F| ≤ hiThresh, where witnesses are enumerated outright). *)

val is_easy : prepared -> bool
val is_incremental : prepared -> bool

val is_gauss : prepared -> bool
(** [true] when BSAT calls run the in-search Gauss engine (see
    {!prepare}'s [gauss]). *)

val count_estimate : prepared -> float
(** ApproxMC's estimate of |R_F| (exact in the easy case). *)

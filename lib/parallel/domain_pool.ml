(* A fixed pool of worker domains plus the submitting domain draining a
   shared index queue. Synchronisation is one mutex/condition pair (for
   batch publication and completion) plus two atomics per batch (the
   next-index claim counter and the finished-item counter); items
   communicate results only through their own slot of the results
   array, so the hot path is lock-free once a batch is published. *)

type batch = {
  length : int;
  next : int Atomic.t;  (* next unclaimed item index *)
  finished : int Atomic.t;  (* items fully processed (run or skipped) *)
  cancelled : bool Atomic.t;  (* set on first exception: skip the rest *)
  run : int -> unit;  (* executes one item; must not raise *)
}

type t = {
  jobs : int;
  lock : Mutex.t;
  cond : Condition.t;
  mutable generation : int;  (* bumped at every batch publication *)
  mutable batch : batch option;  (* the batch of the current generation *)
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  mutable alive : bool;
  owner : Audit.Ownership.t;
      (* batch submission and shutdown belong to the creating domain:
         the submitter doubles as a worker and the condition-variable
         handshake assumes exactly one submitting thread *)
}

let signal_all t =
  Mutex.lock t.lock;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

(* Claim and process items of [b] until none are left. Shared by the
   worker domains and the submitting domain. *)
let drain t b =
  let rec claim () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.length then begin
      if not (Atomic.get b.cancelled) then b.run i;
      let done_now = 1 + Atomic.fetch_and_add b.finished 1 in
      if done_now = b.length then signal_all t;
      claim ()
    end
  in
  claim ()

let worker_loop t =
  Obs.Trace.span ~cat:"parallel" "pool.worker" @@ fun () ->
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock t.lock;
    while t.generation = !last_gen && not t.stopping do
      Condition.wait t.cond t.lock
    done;
    if t.generation <> !last_gen then begin
      last_gen := t.generation;
      let b = t.batch in
      Mutex.unlock t.lock;
      (match b with Some b -> drain t b | None -> ());
      loop ()
    end
    else (* stopping with no new batch *)
      Mutex.unlock t.lock
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Domain_pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      lock = Mutex.create ();
      cond = Condition.create ();
      generation = 0;
      batch = None;
      stopping = false;
      workers = [||];
      alive = true;
      owner = Audit.Ownership.create "Domain_pool.t";
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.jobs

let check_alive t =
  if not t.alive then invalid_arg "Domain_pool: pool already shut down"

exception Item_error of int * exn * Printexc.raw_backtrace

let map_into t f items store =
  Audit.Ownership.check t.owner;
  check_alive t;
  let n = Array.length items in
  if n = 0 then ()
  else begin
    Obs.Trace.span ~cat:"parallel" "pool.batch"
      ~args:[ ("items", string_of_int n); ("jobs", string_of_int t.jobs) ]
    @@ fun () ->
    let error = ref None in
    let error_lock = Mutex.create () in
    let cancelled = Atomic.make false in
    let run i =
      match f i items.(i) with
      | v -> store i v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.set cancelled true;
          Mutex.lock error_lock;
          (match !error with
          | Some (j, _, _) when j <= i -> ()
          | _ -> error := Some (i, e, bt));
          Mutex.unlock error_lock
    in
    let b =
      {
        length = n;
        next = Atomic.make 0;
        finished = Atomic.make 0;
        cancelled;
        run;
      }
    in
    if t.jobs = 1 then drain t b
    else begin
      Mutex.lock t.lock;
      t.batch <- Some b;
      t.generation <- t.generation + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      (* the submitting domain is a full worker for this batch *)
      drain t b;
      (* wait for stragglers still running their last claimed item *)
      Mutex.lock t.lock;
      while Atomic.get b.finished < n do
        Condition.wait t.cond t.lock
      done;
      t.batch <- None;
      Mutex.unlock t.lock
    end;
    match !error with
    | Some (i, e, bt) ->
        (* re-raise carrying the worker-side backtrace, so a crash in a
           traced parallel run points at the item's code, not here *)
        Printexc.raise_with_backtrace (Item_error (i, e, bt)) bt
    | None -> ()
  end

let map t f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    (try map_into t (fun _ x -> f x) items (fun i v -> results.(i) <- Some v)
     with Item_error (_, e, bt) -> Printexc.raise_with_backtrace e bt);
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Domain_pool.map: item missing (batch failed?)")
      results
  end

let iteri t f items =
  try map_into t f items (fun _ () -> ())
  with Item_error (_, e, bt) -> Printexc.raise_with_backtrace e bt

let shutdown t =
  Audit.Ownership.check t.owner;
  if t.alive then begin
    t.alive <- false;
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||];
    (* workers are joined: fold their private metric shards into the
       base accumulator so the run's snapshot is lossless *)
    Obs.Metrics.compact_shards ()
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

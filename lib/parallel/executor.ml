(* Worker domains drain [queue]; each finished job parks a finish
   thunk in [completed] and writes one byte to the self-pipe so a
   select loop watching [notify_r] wakes up. One mutex/condition pair
   guards both queues; jobs are request-grained (a whole prepare or a
   batch of draws), so the lock is never hot. *)

type job = unit -> unit -> unit
(* runs on a worker (must not raise), returns the finish thunk *)

type t = {
  n_workers : int;
  lock : Mutex.t;
  work_ready : Condition.t;
  queue : job Queue.t;
  completed : (unit -> unit) Queue.t;
  mutable queued_count : int;
  mutable busy_count : int;  (* under [lock] *)
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
  mutable alive : bool;
  notify_r : Unix.file_descr;
  notify_w : Unix.file_descr;
  owner : Audit.Ownership.t;
}

let notify t =
  (* the pipe is a level trigger, not a counter: a full pipe already
     guarantees the owner will wake, so EAGAIN is success *)
  try ignore (Unix.write t.notify_w (Bytes.make 1 '!') 0 1 : int)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _) -> ()

(* set from worker domains — gauges are single atomic cells, so the
   concurrent last-write-wins is exactly the semantics a busyness
   gauge wants (see Obs.Metrics) *)
let g_busy = Obs.Metrics.gauge "executor.busy_workers"

let worker_loop t =
  Obs.Trace.span ~cat:"parallel" "executor.worker" @@ fun () ->
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work_ready t.lock
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.lock
      (* stopping with an empty queue: exit *)
    else begin
      let job = Queue.pop t.queue in
      t.queued_count <- t.queued_count - 1;
      t.busy_count <- t.busy_count + 1;
      let busy = t.busy_count in
      Mutex.unlock t.lock;
      Obs.Metrics.set g_busy (float_of_int busy);
      let fin = job () in
      Mutex.lock t.lock;
      Queue.push fin t.completed;
      t.busy_count <- t.busy_count - 1;
      let busy = t.busy_count in
      Mutex.unlock t.lock;
      Obs.Metrics.set g_busy (float_of_int busy);
      notify t;
      loop ()
    end
  in
  loop ()

let create ~workers =
  if workers < 1 then invalid_arg "Executor.create: workers must be >= 1";
  let notify_r, notify_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock notify_r;
  Unix.set_nonblock notify_w;
  let t =
    {
      n_workers = workers;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      completed = Queue.create ();
      queued_count = 0;
      busy_count = 0;
      stopping = false;
      domains = [||];
      alive = true;
      notify_r;
      notify_w;
      owner = Audit.Ownership.create "Executor.t";
    }
  in
  t.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = t.n_workers

let check_alive t =
  if not t.alive then invalid_arg "Executor: already shut down"

let submit t ~work ~finish =
  Audit.Ownership.check t.owner;
  check_alive t;
  let job () =
    let result =
      try Ok (work ())
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Error (e, bt)
    in
    fun () -> finish result
  in
  Mutex.lock t.lock;
  Queue.push job t.queue;
  t.queued_count <- t.queued_count + 1;
  Condition.signal t.work_ready;
  Mutex.unlock t.lock

let queued t =
  Mutex.lock t.lock;
  let n = t.queued_count in
  Mutex.unlock t.lock;
  n

let busy t =
  Mutex.lock t.lock;
  let n = t.busy_count in
  Mutex.unlock t.lock;
  n

let notify_fd t = t.notify_r

let drain_pipe t =
  if t.alive then begin
    let buf = Bytes.create 64 in
    let rec go () =
      match Unix.read t.notify_r buf 0 64 with
      | 0 -> ()
      | _ -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    in
    go ()
  end

(* Take the parked thunks in one swap so finish code that submits new
   jobs (or runs [poll] recursively) cannot deadlock on [lock]. *)
let take_completed t =
  Mutex.lock t.lock;
  let ready = Queue.create () in
  Queue.transfer t.completed ready;
  Mutex.unlock t.lock;
  ready

let poll t =
  Audit.Ownership.check t.owner;
  drain_pipe t;
  let ready = take_completed t in
  let n = Queue.length ready in
  Queue.iter (fun fin -> fin ()) ready;
  n

let wait ?(timeout_s = 0.25) t =
  if t.alive then
    match Unix.select [ t.notify_r ] [] [] timeout_s with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let shutdown t =
  Audit.Ownership.check t.owner;
  if t.alive then begin
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    (* workers have drained the whole queue: run the remaining finish
       thunks so no continuation (pin release, response accounting) is
       lost, then tear the pipe down *)
    let ready = take_completed t in
    t.alive <- false;
    (try Unix.close t.notify_r with Unix.Unix_error _ -> ());
    (try Unix.close t.notify_w with Unix.Unix_error _ -> ());
    Obs.Metrics.compact_shards ();
    Queue.iter (fun fin -> fin ()) ready
  end

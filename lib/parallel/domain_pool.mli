(** Fixed-size pool of OCaml 5 domains draining a shared work queue.

    The pool underlies every parallel layer of this repository
    (leaf-level UniGen sampling, ApproxMC counting iterations, the
    bench harness). Design points:

    - {b fixed pool}: [create ~jobs] spawns [jobs - 1] worker domains
      once; the submitting domain itself acts as the remaining worker
      while a batch is in flight, so [jobs] bounds total parallelism
      and [jobs = 1] degenerates to inline execution with no domain
      spawned at all.
    - {b work queue}: batch items are queued individually; workers pull
      the next index as they finish, so uneven item costs (SAT calls
      vary wildly) load-balance automatically.
    - {b graceful shutdown on exception}: if an item's function raises,
      the remaining items of that batch are cancelled (never started),
      in-flight items finish, and the lowest-index exception observed
      is re-raised in the caller once the batch has fully drained. The
      pool itself survives and can run further batches.

    Determinism is the caller's contract: [map] returns results in item
    order, and callers derive any randomness an item needs from the
    item's index (see {!Rng.of_stream}), never from shared state — so
    the output of a batch is independent of the worker count. *)

type t

val create : jobs:int -> t
(** [create ~jobs] builds a pool of [jobs] total workers ([jobs - 1]
    spawned domains). @raise Invalid_argument when [jobs < 1].

    The pool is owned by the creating domain: batch submission
    ({!map} / {!iteri}) and {!shutdown} must come from it. With audit
    mode on ([Audit.enable]) a cross-domain call raises
    [Audit.Violation] (invariant [domain-ownership]) instead of
    racing the condition-variable handshake. *)

val size : t -> int
(** The [jobs] the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items] applies [f] to every element, in parallel across
    the pool, returning results in item order. If any application
    raises, remaining unstarted items are cancelled and the
    lowest-index exception observed is re-raised after the batch
    drains. Nested [map] from inside an item is not supported. *)

val iteri : t -> (int -> 'a -> unit) -> 'a array -> unit
(** Indexed side-effecting variant of {!map}. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent; using the pool afterwards
    raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

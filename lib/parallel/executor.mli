(** Asynchronous job executor over a fixed set of worker domains, with
    completion notification designed for a [Unix.select] loop.

    {!Domain_pool} is batch-synchronous: the submitting domain blocks
    until the whole batch drains, which is the right shape for
    data-parallel leaf work (a batch of UniGen draws) but the wrong
    shape for a daemon — the select loop cannot block on solver work
    without going deaf to its sockets. The executor inverts control:

    - {!submit} enqueues a job and returns immediately; any idle
      worker domain picks it up.
    - when a job finishes, the worker parks a {e finish thunk} (the
      caller's continuation closed over the job's result) and writes
      one byte to a self-pipe.
    - the owner watches {!notify_fd} in its [select] set and calls
      {!poll}, which drains the pipe and runs every parked finish
      thunk {b on the owning domain} — so continuations may freely
      touch single-owner state (the scheduler's cache, queues,
      connection tables) without any locking.

    Exceptions raised by [work] never escape the worker: they are
    captured with their backtrace and handed to [finish] as an
    [Error]. Exceptions raised by a finish thunk propagate out of
    {!poll} on the owner.

    Single-owner: {!submit}, {!poll} and {!shutdown} must be called
    from the creating domain (enforced by an {!Audit.Ownership} tag
    when audit mode is on). Workers only touch the internal queues,
    under the executor's private lock. *)

type t

val create : workers:int -> t
(** Spawn [workers] worker domains (all distinct from the caller: the
    owner is expected to keep servicing its event loop, not to execute
    jobs). @raise Invalid_argument when [workers < 1]. *)

val workers : t -> int

val submit :
  t -> work:(unit -> 'a) -> finish:(('a, exn * Printexc.raw_backtrace) result -> unit) -> unit
(** [submit t ~work ~finish] queues [work] for any idle worker; once it
    completes, the next {!poll} runs [finish result] on the owner.
    Jobs start in submission order; completion order depends on
    relative running times. *)

val queued : t -> int
(** Jobs submitted but not yet claimed by a worker. *)

val busy : t -> int
(** Workers currently executing a job. *)

val notify_fd : t -> Unix.file_descr
(** Read end of the self-pipe: readable whenever completions may be
    waiting. Put it in the [select] read set; never read from it
    directly — {!poll} drains it. *)

val poll : t -> int
(** Drain the notification pipe and run every parked finish thunk on
    the calling (owner) domain; returns how many ran. Non-blocking:
    returns 0 when nothing has completed. *)

val wait : ?timeout_s:float -> t -> unit
(** Block (via [select] on {!notify_fd}) until a completion is likely
    available or the timeout elapses — a convenience for synchronous
    drains; event loops should select on {!notify_fd} themselves. *)

val shutdown : t -> unit
(** Let workers finish every already-queued job, join them, run any
    remaining finish thunks on the owner, and close the pipe.
    Idempotent; {!submit} afterwards raises [Invalid_argument]. *)

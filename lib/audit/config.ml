let enabled = Atomic.make false
let period = Atomic.make 64

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let set_period p =
  if p < 1 then
    Violation.fail ~invariant:"audit-config" ~detail:"sampling period must be >= 1"
      [ ("period", string_of_int p) ];
  Atomic.set period p

let get_period () = Atomic.get period

(* Per-domain tick counter: cheap sampling of hot-path sweeps without
   cross-domain contention. *)
let tick_key = Domain.DLS.new_key (fun () -> ref 0)

let tick () =
  if not (Atomic.get enabled) then false
  else begin
    let c = Domain.DLS.get tick_key in
    incr c;
    !c mod Atomic.get period = 0
  end

let () =
  (match Sys.getenv_opt "UNIGEN_AUDIT" with
  | Some ("1" | "true" | "yes" | "on") -> enable ()
  | Some _ | None -> ());
  match Sys.getenv_opt "UNIGEN_AUDIT_PERIOD" with
  | Some s -> ( match int_of_string_opt s with Some p when p >= 1 -> Atomic.set period p | _ -> ())
  | None -> ()

include Violation
include Config
module State = State
module Solver_invariants = Solver_invariants
module Ownership = Ownership

type report = {
  invariant : string;
  detail : string;
  context : (string * string) list;
}

exception Violation of report

let to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b "audit violation [";
  Buffer.add_string b r.invariant;
  Buffer.add_string b "]: ";
  Buffer.add_string b r.detail;
  List.iter
    (fun (k, v) ->
      Buffer.add_string b "\n  ";
      Buffer.add_string b k;
      Buffer.add_string b " = ";
      Buffer.add_string b v)
    r.context;
  Buffer.contents b

let () =
  Printexc.register_printer (function
    | Violation r -> Some (to_string r)
    | _ -> None)

let fail ~invariant ~detail context =
  raise (Violation { invariant; detail; context })

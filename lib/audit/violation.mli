(** Structured audit failures.

    Every check of the audit subsystem reports through {!Violation}:
    the violated invariant's stable name, a one-line diagnosis, and a
    key/value context dump of the state that witnessed the violation —
    never a bare [Assert_failure]. A printer is registered so uncaught
    violations render the full report. *)

type report = {
  invariant : string;  (** stable invariant name, e.g. ["two-watch"] *)
  detail : string;  (** one-line human diagnosis *)
  context : (string * string) list;  (** state dump (trail, watches, ...) *)
}

exception Violation of report

val fail : invariant:string -> detail:string -> (string * string) list -> 'a
(** [fail ~invariant ~detail context] raises {!Violation}. *)

val to_string : report -> string

(** Correctness-audit subsystem: runtime flag, structured violations,
    solver invariant sanitizer, and domain-ownership checks.

    The library is stdlib-only so every layer (including [lib/sat]
    itself) can raise {!Violation} without a dependency cycle; the
    sanitizer therefore works on the neutral {!State.solver_view}
    snapshot rather than the live solver. See DESIGN.md, "Correctness
    audit". *)

(** {1 Structured violations} *)

type report = Violation.report = {
  invariant : string;
  detail : string;
  context : (string * string) list;
}

exception Violation of report

val fail : invariant:string -> detail:string -> (string * string) list -> 'a
val to_string : report -> string

(** {1 Runtime flag} ([UNIGEN_AUDIT] / [--audit]) *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool
val set_period : int -> unit
val get_period : unit -> int
val tick : unit -> bool

(** {1 Components} *)

module State = State
module Solver_invariants = Solver_invariants
module Ownership = Ownership

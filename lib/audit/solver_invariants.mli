(** The CDCL/XOR invariant sanitizer.

    [check] sweeps a {!State.solver_view} and raises
    {!Violation.Violation} on the first broken invariant. The
    catalogue (stable invariant names, also listed in DESIGN.md):

    - [vec-bounds]: every internal vector has [0 <= size <= capacity].
    - [trail-bounds] / [trail-consistency] / [level-monotonic]: the
      trail holds each assigned variable exactly once, as a true
      literal, at the level implied by its position between
      [trail_lim] marks; [qhead] stays inside the trail.
    - [reason-consistency]: every implied assignment's reason is live,
      implies exactly that literal, and uses only earlier-or-equal
      level antecedents; reasonless assignments above level 0 sit at
      their level's first trail slot (decisions).
    - [watch-attached] / [lazy-deletion] / [clause-width]: every live
      clause has >= 2 literals and is watched exactly once from each
      of its first two literals; anything else found in a watch list
      must be flagged deleted.
    - [two-watch] / [watch-order] (fixpoint only): a non-satisfied
      clause never has a false watch; a false watch in a satisfied
      clause is backed by a true co-watch from an earlier-or-equal
      level.
    - [xor-width] / [xor-watch] / [xor-satisfied]: XOR watch positions
      are distinct and registered; at a fixpoint a partially assigned
      XOR watches two unassigned variables, and a fully assigned one
      satisfies its parity.
    - [heap-index] / [heap-property] / [heap-membership]: the order
      heap and its index map agree, parents dominate children by
      activity, and every unassigned variable is present.
    - [group-hygiene]: no live clause, learnt, XOR, level-0
      implication, lost-unit ledger entry, or undeleted watch record
      carries a group beyond the current group count.
    - [model-audit] ([check_model]): the returned witness satisfies
      every attached clause and XOR. *)

val check : State.solver_view -> unit
(** Full sweep; raises {!Violation.Violation} on the first failure.
    Fixpoint-only checks are gated on [view.at_fixpoint], and
    search-state checks on [view.ok]. *)

val check_model : State.solver_view -> value:(int -> bool) -> unit
(** [check_model view ~value] audits a model ([value v] is variable
    [v]'s assignment) against all attached clauses and XORs. *)

(** The CDCL/XOR invariant sanitizer.

    [check] sweeps a {!State.solver_view} and raises
    {!Violation.Violation} on the first broken invariant. The
    catalogue (stable invariant names, also listed in DESIGN.md):

    - [vec-bounds]: every internal vector has [0 <= size <= capacity].
    - [trail-bounds] / [trail-consistency] / [level-monotonic]: the
      trail holds each assigned variable exactly once, as a true
      literal, at the level implied by its position between
      [trail_lim] marks; [qhead] stays inside the trail.
    - [reason-consistency]: every implied assignment's reason is live,
      implies exactly that literal, and uses only earlier-or-equal
      level antecedents; a lazy Gauss reason row must contain the
      implied variable, be fully assigned at earlier-or-equal levels,
      and satisfy its parity; reasonless assignments above level 0 sit
      at their level's first trail slot (decisions).
    - [watch-attached] / [lazy-deletion] / [clause-width]: every live
      clause has >= 2 literals and is watched exactly once from each
      of its first two literals; anything else found in a watch list
      must be flagged deleted.
    - [two-watch] / [watch-order] (fixpoint only): a non-satisfied
      clause never has a false watch; a false watch in a satisfied
      clause is backed by a true co-watch from an earlier-or-equal
      level.
    - [xor-width] / [xor-watch] / [xor-satisfied]: XOR watch positions
      are distinct and registered; at a fixpoint a partially assigned
      XOR watches two unassigned variables, and a fully assigned one
      satisfies its parity.
    - [gauss-basic] / [gauss-watch] / [gauss-detached] /
      [gauss-fixpoint] (clean matrices only — a dirty matrix carries
      stale state until its next repair): every active Gauss row owns
      an exclusive basic column that is a member of the row, is
      unassigned at fixpoints, and appears in no other row (Jordan
      reduced form); its first watch is the basic column and its
      second is a distinct member; detached rows are fully assigned
      with satisfied parity; at a clean fixpoint every active row has
      >= 2 unassigned columns (so no implied unit or conflict is
      pending — the incremental elimination agrees with a from-scratch
      RREF of the current assignment).
    - [heap-index] / [heap-property] / [heap-membership]: the order
      heap and its index map agree, parents dominate children by
      activity, and every unassigned variable is present.
    - [group-hygiene]: no live clause, learnt, XOR, Gauss matrix,
      level-0 implication, lost-unit ledger entry, or undeleted watch
      record carries a group beyond the current group count.
    - [model-audit] ([check_model]): the returned witness satisfies
      every attached clause, XOR, and Gauss matrix row. *)

val check : State.solver_view -> unit
(** Full sweep; raises {!Violation.Violation} on the first failure.
    Fixpoint-only checks are gated on [view.at_fixpoint], and
    search-state checks on [view.ok]. *)

val check_model : State.solver_view -> value:(int -> bool) -> unit
(** [check_model view ~value] audits a model ([value v] is variable
    [v]'s assignment) against all attached clauses and XORs. *)

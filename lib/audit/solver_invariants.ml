(* Invariant sweeps over a State.solver_view. Each check raises
   Violation.Violation with the invariant's stable name and enough
   context to reconstruct the failure without a debugger. The sweep is
   audit-only code: clarity over speed, but still linear in the size of
   the solver state (one Hashtbl per sweep, no quadratic scans). *)

open State

let itos = string_of_int

let lit_to_string view l =
  let v = var_of_lit l in
  let sign = if l land 1 = 0 then "" else "-" in
  let value =
    match lit_value view l with
    | 1 -> "T@" ^ itos view.level.(v)
    | -1 -> "F@" ^ itos view.level.(v)
    | _ -> "U"
  in
  sign ^ "x" ^ itos v ^ ":" ^ value

let lits_to_string view lits =
  "[" ^ String.concat " " (Array.to_list (Array.map (lit_to_string view) lits)) ^ "]"

let xvars_to_string view vars =
  let one v =
    let value =
      match view.assigns.(v) with
      | 1 -> "T@" ^ itos view.level.(v)
      | -1 -> "F@" ^ itos view.level.(v)
      | _ -> "U"
    in
    "x" ^ itos v ^ ":" ^ value
  in
  "[" ^ String.concat " " (Array.to_list (Array.map one vars)) ^ "]"

let base_context view =
  [ ("nvars", itos view.nvars);
    ("decision_level", itos view.decision_level);
    ("trail", itos (Array.length view.trail));
    ("qhead", itos view.qhead);
    ("clauses", itos (Array.length view.clauses));
    ("xors", itos (Array.length view.xors));
    ("num_groups", itos view.num_groups);
    ("ok", string_of_bool view.ok);
    ("broken_by", itos view.broken_by) ]

let fail view ~invariant ~detail extra =
  Violation.fail ~invariant ~detail (extra @ base_context view)

(* ------------------------------------------------------------------ *)

let check_vecs view =
  List.iter
    (fun v ->
      if v.v_size < 0 || v.v_size > v.v_capacity then
        fail view ~invariant:"vec-bounds"
          ~detail:("vector " ^ v.v_name ^ " has size outside [0, capacity]")
          [ ("vec", v.v_name); ("size", itos v.v_size); ("capacity", itos v.v_capacity) ])
    view.vecs

let check_trail view =
  let n = Array.length view.trail in
  let nlim = Array.length view.trail_lim in
  if view.qhead < 0 || view.qhead > n then
    fail view ~invariant:"trail-bounds" ~detail:"propagation head outside trail" [];
  if nlim <> view.decision_level then
    fail view ~invariant:"trail-bounds" ~detail:"decision level disagrees with trail_lim size"
      [ ("trail_lim", itos nlim) ];
  for i = 0 to nlim - 1 do
    if view.trail_lim.(i) < 0 || view.trail_lim.(i) > n then
      fail view ~invariant:"trail-bounds" ~detail:"trail_lim entry outside trail"
        [ ("lim_index", itos i); ("lim", itos view.trail_lim.(i)) ];
    if i > 0 && view.trail_lim.(i) < view.trail_lim.(i - 1) then
      fail view ~invariant:"level-monotonic" ~detail:"trail_lim not monotonically nondecreasing"
        [ ("lim_index", itos i);
          ("lim", itos view.trail_lim.(i));
          ("previous", itos view.trail_lim.(i - 1)) ]
  done;
  let seen = Array.make (view.nvars + 1) false in
  let lvl = ref 0 in
  Array.iteri
    (fun i l ->
      let v = var_of_lit l in
      if v < 1 || v > view.nvars then
        fail view ~invariant:"trail-bounds" ~detail:"trail literal names an unknown variable"
          [ ("position", itos i); ("lit", itos l) ];
      if seen.(v) then
        fail view ~invariant:"trail-consistency" ~detail:"variable appears twice on the trail"
          [ ("position", itos i); ("var", itos v) ];
      seen.(v) <- true;
      if lit_value view l <> 1 then
        fail view ~invariant:"trail-consistency" ~detail:"trail literal is not true under assigns"
          [ ("position", itos i); ("lit", lit_to_string view l) ];
      while !lvl < nlim && view.trail_lim.(!lvl) <= i do incr lvl done;
      if view.level.(v) <> !lvl then
        fail view ~invariant:"level-monotonic"
          ~detail:"recorded level disagrees with trail position"
          [ ("position", itos i);
            ("var", itos v);
            ("recorded_level", itos view.level.(v));
            ("trail_level", itos !lvl) ])
    view.trail;
  for v = 1 to view.nvars do
    if view.assigns.(v) <> 0 && not seen.(v) then
      fail view ~invariant:"trail-consistency" ~detail:"assigned variable missing from the trail"
        [ ("var", itos v); ("level", itos view.level.(v)) ]
  done

let clause_table view =
  let tbl = Hashtbl.create (max 16 (Array.length view.clauses)) in
  Array.iter (fun c -> Hashtbl.replace tbl c.c_id c) view.clauses;
  tbl

let xor_table view =
  let tbl = Hashtbl.create (max 16 (Array.length view.xors)) in
  Array.iter (fun x -> Hashtbl.replace tbl x.x_id x) view.xors;
  tbl

let check_reasons view ctbl xtbl =
  let trail_pos = Array.make (view.nvars + 1) (-1) in
  Array.iteri (fun i l -> trail_pos.(var_of_lit l) <- i) view.trail;
  for v = 1 to view.nvars do
    if view.assigns.(v) <> 0 then begin
      let lvl = view.level.(v) in
      match view.reason.(v) with
      | R_dangling ->
          fail view ~invariant:"reason-consistency"
            ~detail:"reason points at a detached constraint" [ ("var", itos v) ]
      | R_clause id -> (
          match Hashtbl.find_opt ctbl id with
          | None ->
              fail view ~invariant:"reason-consistency" ~detail:"reason clause is not live"
                [ ("var", itos v); ("clause", itos id) ]
          | Some c ->
              let ctx () =
                [ ("var", itos v); ("clause", itos id); ("lits", lits_to_string view c.c_lits) ]
              in
              if Array.length c.c_lits = 0 || var_of_lit c.c_lits.(0) <> v
                 || lit_value view c.c_lits.(0) <> 1 then
                fail view ~invariant:"reason-consistency"
                  ~detail:"reason clause's first literal is not the implied true literal" (ctx ());
              Array.iteri
                (fun i l ->
                  if i > 0 then
                    if lit_value view l <> -1 || view.level.(var_of_lit l) > lvl then
                      fail view ~invariant:"reason-consistency"
                        ~detail:
                          "reason clause has a non-false or later-level literal beside the implied one"
                        (("offending", lit_to_string view l) :: ctx ()))
                c.c_lits)
      | R_xor id -> (
          match Hashtbl.find_opt xtbl id with
          | None ->
              fail view ~invariant:"reason-consistency" ~detail:"reason XOR is not live"
                [ ("var", itos v); ("xor", itos id) ]
          | Some x ->
              let ctx =
                [ ("var", itos v); ("xor", itos id); ("vars", xvars_to_string view x.x_vars) ]
              in
              let parity = ref false in
              Array.iter
                (fun u ->
                  if view.assigns.(u) = 0 || view.level.(u) > lvl then
                    fail view ~invariant:"reason-consistency"
                      ~detail:"reason XOR has an unassigned or later-level variable" ctx;
                  if view.assigns.(u) > 0 then parity := not !parity)
                x.x_vars;
              if !parity <> x.x_rhs then
                fail view ~invariant:"reason-consistency"
                  ~detail:"reason XOR is not satisfied by the current assignment" ctx)
      | R_gauss (g, row) -> (
          match List.find_opt (fun m -> m.g_group = g) view.matrices with
          | None ->
              fail view ~invariant:"reason-consistency"
                ~detail:"reason Gauss matrix is not live"
                [ ("var", itos v); ("matrix_group", itos g) ]
          | Some gv ->
              if row < 0 || row >= Array.length gv.g_rows then
                fail view ~invariant:"reason-consistency"
                  ~detail:"reason Gauss row id is out of range"
                  [ ("var", itos v); ("matrix_group", itos g); ("row", itos row) ];
              let r = gv.g_rows.(row) in
              let ctx =
                [ ("var", itos v);
                  ("matrix_group", itos g);
                  ("row", itos row);
                  ("vars", xvars_to_string view r.g_vars) ]
              in
              if not (Array.exists (fun u -> u = v) r.g_vars) then
                fail view ~invariant:"reason-consistency"
                  ~detail:"implied variable is not in its reason Gauss row" ctx;
              let parity = ref false in
              Array.iter
                (fun u ->
                  if view.assigns.(u) = 0 || view.level.(u) > lvl then
                    fail view ~invariant:"reason-consistency"
                      ~detail:"reason Gauss row has an unassigned or later-level variable"
                      ctx;
                  if view.assigns.(u) > 0 then parity := not !parity)
                r.g_vars;
              if !parity <> r.g_rhs then
                fail view ~invariant:"reason-consistency"
                  ~detail:"reason Gauss row is not satisfied by the current assignment"
                  ctx)
      | R_none ->
          if lvl > 0 then begin
            let pos = trail_pos.(v) in
            if pos < 0 || pos <> view.trail_lim.(lvl - 1) then
              fail view ~invariant:"reason-consistency"
                ~detail:"reasonless non-decision assignment above level 0"
                [ ("var", itos v); ("level", itos lvl); ("trail_pos", itos pos) ]
          end
    end
  done

let check_clause_watches view ctbl =
  let occurrences = Hashtbl.create (max 16 (Array.length view.clauses)) in
  Array.iteri
    (fun l entries ->
      List.iter
        (fun e ->
          if e.w_deleted then begin
            if e.w_id >= 0 && Hashtbl.mem ctbl e.w_id then
              fail view ~invariant:"group-hygiene"
                ~detail:"clause marked deleted is still registered as live"
                [ ("lit", itos l); ("clause", itos e.w_id) ]
          end
          else if e.w_id < 0 then
            fail view ~invariant:"lazy-deletion"
              ~detail:"watch list holds an orphaned clause record not marked deleted"
              [ ("lit", itos l) ]
          else
            match Hashtbl.find_opt ctbl e.w_id with
            | None ->
                fail view ~invariant:"lazy-deletion"
                  ~detail:"watch list holds a detached clause not marked deleted"
                  [ ("lit", itos l); ("clause", itos e.w_id) ]
            | Some c ->
                if Array.length c.c_lits < 2
                   || (c.c_lits.(0) <> l && c.c_lits.(1) <> l) then
                  fail view ~invariant:"watch-attached"
                    ~detail:"clause is in a watch list of a literal it does not watch"
                    [ ("lit", itos l);
                      ("clause", itos e.w_id);
                      ("lits", lits_to_string view c.c_lits) ];
                Hashtbl.replace occurrences e.w_id
                  (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences e.w_id)))
        entries)
    view.watches;
  Array.iter
    (fun c ->
      if Array.length c.c_lits < 2 then
        fail view ~invariant:"clause-width" ~detail:"attached clause has fewer than two literals"
          [ ("clause", itos c.c_id); ("lits", lits_to_string view c.c_lits) ];
      let n = Option.value ~default:0 (Hashtbl.find_opt occurrences c.c_id) in
      if n <> 2 then
        fail view ~invariant:"watch-attached"
          ~detail:"live clause is not watched exactly once from each watched literal"
          [ ("clause", itos c.c_id);
            ("occurrences", itos n);
            ("lits", lits_to_string view c.c_lits) ])
    view.clauses

let check_two_watch view =
  Array.iter
    (fun c ->
      let satisfied = Array.exists (fun l -> lit_value view l = 1) c.c_lits in
      let w0 = lit_value view c.c_lits.(0) and w1 = lit_value view c.c_lits.(1) in
      let ctx =
        [ ("clause", itos c.c_id); ("lits", lits_to_string view c.c_lits) ]
      in
      if not satisfied then begin
        if w0 = -1 || w1 = -1 then
          fail view ~invariant:"two-watch"
            ~detail:"non-satisfied clause has a false watched literal at a propagation fixpoint"
            ctx
      end
      else begin
        (* A false watch is only legal when the other watch is true and
           was assigned no later than the false one. *)
        let check_pair wf wo =
          if lit_value view wf = -1 then
            if lit_value view wo <> 1
               || view.level.(var_of_lit wo) > view.level.(var_of_lit wf) then
              fail view ~invariant:"watch-order"
                ~detail:"false watched literal is not backed by an earlier true co-watch"
                (("false_watch", lit_to_string view wf)
                 :: ("co_watch", lit_to_string view wo)
                 :: ctx)
        in
        check_pair c.c_lits.(0) c.c_lits.(1);
        check_pair c.c_lits.(1) c.c_lits.(0)
      end)
    view.clauses

let check_xor_watches view xtbl =
  let occurrences = Hashtbl.create (max 16 (Array.length view.xors)) in
  Array.iteri
    (fun v entries ->
      List.iter
        (fun e ->
          if e.w_deleted then ()
          else if e.w_id < 0 then
            fail view ~invariant:"lazy-deletion"
              ~detail:"XOR watch list holds an orphaned record not marked deleted"
              [ ("watch_var", itos v) ]
          else
            match Hashtbl.find_opt xtbl e.w_id with
            | None ->
                fail view ~invariant:"lazy-deletion"
                  ~detail:"XOR watch list holds a detached constraint not marked deleted"
                  [ ("watch_var", itos v); ("xor", itos e.w_id) ]
            | Some x ->
                let len = Array.length x.x_vars in
                if x.x_wa < 0 || x.x_wa >= len || x.x_wb < 0 || x.x_wb >= len then
                  fail view ~invariant:"xor-watch"
                    ~detail:"XOR watch positions outside the variable array"
                    [ ("xor", itos e.w_id); ("wa", itos x.x_wa); ("wb", itos x.x_wb) ];
                if x.x_vars.(x.x_wa) <> v && x.x_vars.(x.x_wb) <> v then
                  fail view ~invariant:"xor-watch"
                    ~detail:"XOR is in the watch list of a variable it does not watch"
                    [ ("watch_var", itos v);
                      ("xor", itos e.w_id);
                      ("vars", xvars_to_string view x.x_vars) ];
                Hashtbl.replace occurrences e.w_id
                  (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences e.w_id)))
        entries)
    view.xwatches;
  Array.iter
    (fun x ->
      if Array.length x.x_vars < 2 then
        fail view ~invariant:"xor-width"
          ~detail:"attached XOR has fewer than two variables"
          [ ("xor", itos x.x_id); ("vars", xvars_to_string view x.x_vars) ];
      if x.x_wa = x.x_wb then
        fail view ~invariant:"xor-watch" ~detail:"XOR watches the same position twice"
          [ ("xor", itos x.x_id); ("wa", itos x.x_wa) ];
      let n = Option.value ~default:0 (Hashtbl.find_opt occurrences x.x_id) in
      if n <> 2 then
        fail view ~invariant:"xor-watch"
          ~detail:"live XOR is not watched exactly once from each watched variable"
          [ ("xor", itos x.x_id);
            ("occurrences", itos n);
            ("vars", xvars_to_string view x.x_vars) ])
    view.xors

let check_xor_fixpoint view =
  Array.iter
    (fun x ->
      let unassigned = ref 0 and parity = ref false in
      Array.iter
        (fun v ->
          if view.assigns.(v) = 0 then incr unassigned
          else if view.assigns.(v) > 0 then parity := not !parity)
        x.x_vars;
      let ctx =
        [ ("xor", itos x.x_id);
          ("rhs", string_of_bool x.x_rhs);
          ("vars", xvars_to_string view x.x_vars) ]
      in
      if !unassigned = 0 then begin
        if !parity <> x.x_rhs then
          fail view ~invariant:"xor-satisfied"
            ~detail:"fully assigned XOR violates its parity at a propagation fixpoint" ctx
      end
      else begin
        let wa = x.x_vars.(x.x_wa) and wb = x.x_vars.(x.x_wb) in
        if view.assigns.(wa) <> 0 || view.assigns.(wb) <> 0 then
          fail view ~invariant:"xor-watch"
            ~detail:
              "partially assigned XOR has an assigned watch variable at a propagation fixpoint"
            (("watch_a", itos wa) :: ("watch_b", itos wb) :: ctx)
      end)
    view.xors

(* In-search Gauss matrices. Checked per matrix and only when it is
   clean (no repair pending): a dirty matrix deliberately carries stale
   watches, basics and detach marks until the next [repair]. The
   Jordan-form invariants below are exactly what makes row-local
   propagation complete, so together with [gauss-fixpoint] they play
   the role [check_xor_fixpoint] plays for the 2-watch engine. *)
let check_gauss view =
  List.iter
    (fun g ->
      if not g.g_dirty then begin
        let mctx = [ ("matrix_group", itos g.g_group) ] in
        (* pass 1: per-row shape; collect basic-column ownership *)
        let owners = Hashtbl.create 16 in
        Array.iteri
          (fun i r ->
            let ctx =
              ("row", itos i) :: ("vars", xvars_to_string view r.g_vars) :: mctx
            in
            let member c = Array.exists (fun v -> v = c) r.g_vars in
            if r.g_active then begin
              if r.g_basic < 0 || not (member r.g_basic) then
                fail view ~invariant:"gauss-basic"
                  ~detail:"active row's basic column is missing or not a member"
                  (("basic", itos r.g_basic) :: ctx);
              if view.assigns.(r.g_basic) <> 0 && view.at_fixpoint && view.ok then
                fail view ~invariant:"gauss-basic"
                  ~detail:"active row's basic column is assigned at a clean fixpoint"
                  (("basic", itos r.g_basic) :: ctx);
              (match Hashtbl.find_opt owners r.g_basic with
              | Some j ->
                  fail view ~invariant:"gauss-basic"
                    ~detail:"two rows claim the same basic column"
                    (("basic", itos r.g_basic) :: ("other_row", itos j) :: ctx)
              | None -> Hashtbl.replace owners r.g_basic i);
              if r.g_w1 <> r.g_basic then
                fail view ~invariant:"gauss-watch"
                  ~detail:"active row's first watch is not its basic column"
                  (("w1", itos r.g_w1) :: ("basic", itos r.g_basic) :: ctx);
              if r.g_w2 < 0 || r.g_w2 = r.g_w1 || not (member r.g_w2) then
                fail view ~invariant:"gauss-watch"
                  ~detail:"active row's second watch is missing, duplicate or not a member"
                  (("w1", itos r.g_w1) :: ("w2", itos r.g_w2) :: ctx);
              if view.ok && view.at_fixpoint then begin
                let unassigned =
                  Array.fold_left
                    (fun n v -> if view.assigns.(v) = 0 then n + 1 else n)
                    0 r.g_vars
                in
                if unassigned < 2 then
                  fail view ~invariant:"gauss-fixpoint"
                    ~detail:
                      "active row is unit or fully assigned at a clean fixpoint (propagation incomplete)"
                    (("unassigned", itos unassigned) :: ctx)
              end
            end
            else begin
              (* detached = satisfied: fully assigned with matching parity *)
              let parity = ref false in
              Array.iter
                (fun v ->
                  if view.assigns.(v) = 0 then
                    fail view ~invariant:"gauss-detached"
                      ~detail:"detached row still has an unassigned variable"
                      (("unassigned_var", itos v) :: ctx);
                  if view.assigns.(v) > 0 then parity := not !parity)
                r.g_vars;
              if !parity <> r.g_rhs then
                fail view ~invariant:"gauss-detached"
                  ~detail:"detached row is not satisfied by the current assignment"
                  (("rhs", string_of_bool r.g_rhs) :: ctx)
            end)
          g.g_rows;
        (* pass 2: Jordan exclusivity — a basic column appears in no
           row but its owner (linear via the ownership table) *)
        Array.iteri
          (fun i r ->
            Array.iter
              (fun v ->
                match Hashtbl.find_opt owners v with
                | Some j when j <> i ->
                    fail view ~invariant:"gauss-basic"
                      ~detail:"basic column is not eliminated from every other row"
                      (("basic", itos v) :: ("owner_row", itos j) :: ("row", itos i)
                       :: mctx)
                | _ -> ())
              r.g_vars)
          g.g_rows
      end)
    view.matrices

let check_heap view =
  let size = Array.length view.heap in
  Array.iteri
    (fun i v ->
      if v < 1 || v > view.nvars then
        fail view ~invariant:"heap-index" ~detail:"order heap holds an unknown variable"
          [ ("slot", itos i); ("var", itos v) ];
      if view.heap_index.(v) <> i then
        fail view ~invariant:"heap-index"
          ~detail:"order heap slot disagrees with the variable's index map entry"
          [ ("slot", itos i); ("var", itos v); ("index", itos view.heap_index.(v)) ];
      if i > 0 then begin
        let parent = view.heap.((i - 1) / 2) in
        if view.activity.(parent) < view.activity.(v) then
          fail view ~invariant:"heap-property"
            ~detail:"order heap parent has lower activity than its child"
            [ ("slot", itos i);
              ("var", itos v);
              ("parent", itos parent);
              ("activity", string_of_float view.activity.(v));
              ("parent_activity", string_of_float view.activity.(parent)) ]
      end)
    view.heap;
  for v = 1 to view.nvars do
    let idx = view.heap_index.(v) in
    if idx >= size then
      fail view ~invariant:"heap-index" ~detail:"index map points outside the heap"
        [ ("var", itos v); ("index", itos idx) ];
    if idx >= 0 && view.heap.(idx) <> v then
      fail view ~invariant:"heap-index"
        ~detail:"index map entry does not point back at its variable"
        [ ("var", itos v); ("index", itos idx); ("slot_var", itos view.heap.(idx)) ];
    if view.assigns.(v) = 0 && idx < 0 then
      fail view ~invariant:"heap-membership"
        ~detail:"unassigned variable is missing from the order heap" [ ("var", itos v) ]
  done

let check_groups view =
  let bad_group g = g > view.num_groups || g < 0 in
  Array.iter
    (fun c ->
      if bad_group c.c_group then
        fail view ~invariant:"group-hygiene"
          ~detail:"live clause is tagged with a retracted or unknown group"
          [ ("clause", itos c.c_id);
            ("group", itos c.c_group);
            ("learnt", string_of_bool c.c_learnt) ])
    view.clauses;
  Array.iter
    (fun x ->
      if bad_group x.x_group then
        fail view ~invariant:"group-hygiene"
          ~detail:"live XOR is tagged with a retracted or unknown group"
          [ ("xor", itos x.x_id); ("group", itos x.x_group) ])
    view.xors;
  List.iter
    (fun g ->
      if bad_group g.g_group then
        fail view ~invariant:"group-hygiene"
          ~detail:"live Gauss matrix is tagged with a retracted or unknown group"
          [ ("matrix_group", itos g.g_group) ])
    view.matrices;
  for v = 1 to view.nvars do
    if view.assigns.(v) <> 0 && view.level.(v) = 0 && bad_group view.assign_group.(v) then
      fail view ~invariant:"group-hygiene"
        ~detail:"level-0 assignment is tagged with a retracted or unknown group"
        [ ("var", itos v); ("group", itos view.assign_group.(v)) ]
  done;
  List.iter
    (fun g ->
      if bad_group g then
        fail view ~invariant:"group-hygiene"
          ~detail:"lost-unit ledger references a retracted or unknown group"
          [ ("group", itos g) ])
    view.lost_unit_groups;
  let check_entries watches kind =
    Array.iter
      (fun entries ->
        List.iter
          (fun e ->
            if e.w_group > view.num_groups && not e.w_deleted then
              fail view ~invariant:"group-hygiene"
                ~detail:(kind ^ " watch entry carries a retracted group but is not deleted")
                [ ("id", itos e.w_id); ("group", itos e.w_group) ])
          entries)
      watches
  in
  check_entries view.watches "clause";
  check_entries view.xwatches "XOR"

(* ------------------------------------------------------------------ *)

let check view =
  check_vecs view;
  let ctbl = clause_table view in
  let xtbl = xor_table view in
  check_clause_watches view ctbl;
  check_xor_watches view xtbl;
  check_heap view;
  check_gauss view;
  if view.ok then begin
    check_trail view;
    check_reasons view ctbl xtbl;
    check_groups view;
    if view.at_fixpoint then begin
      check_two_watch view;
      check_xor_fixpoint view
    end
  end

let check_model view ~value =
  Array.iter
    (fun c ->
      if not (Array.exists (fun l -> value (var_of_lit l) = (l land 1 = 0)) c.c_lits) then
        fail view ~invariant:"model-audit"
          ~detail:"returned model falsifies an attached clause"
          [ ("clause", itos c.c_id);
            ("learnt", string_of_bool c.c_learnt);
            ("lits", lits_to_string view c.c_lits) ])
    view.clauses;
  Array.iter
    (fun x ->
      let parity = Array.fold_left (fun p v -> if value v then not p else p) false x.x_vars in
      if parity <> x.x_rhs then
        fail view ~invariant:"model-audit"
          ~detail:"returned model violates an attached XOR's parity"
          [ ("xor", itos x.x_id); ("vars", xvars_to_string view x.x_vars) ])
    view.xors;
  List.iter
    (fun g ->
      Array.iteri
        (fun i r ->
          let parity =
            Array.fold_left (fun p v -> if value v then not p else p) false r.g_vars
          in
          if parity <> r.g_rhs then
            fail view ~invariant:"model-audit"
              ~detail:"returned model violates a Gauss matrix row's parity"
              [ ("matrix_group", itos g.g_group);
                ("row", itos i);
                ("vars", xvars_to_string view r.g_vars) ])
        g.g_rows)
    view.matrices

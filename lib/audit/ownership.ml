type t = { owner : int; what : string }

let domain_id () = (Domain.self () :> int)

let create what = { owner = domain_id (); what }

let owner t = t.owner

let check t =
  if Config.is_enabled () then begin
    let d = domain_id () in
    if d <> t.owner then
      Violation.fail ~invariant:"domain-ownership"
        ~detail:("cross-domain access to " ^ t.what)
        [ ("resource", t.what);
          ("owner_domain", string_of_int t.owner);
          ("current_domain", string_of_int d) ]
  end

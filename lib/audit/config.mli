(** Runtime switch for the audit subsystem.

    Audit mode defaults to off (zero behavioural change); it turns on
    via [enable] (the CLI's [--audit]) or the [UNIGEN_AUDIT=1]
    environment variable, read once at program start. Hot-path sweeps
    are additionally sampled: call sites guard with {!tick}, which
    fires once every [period] calls per domain
    ([UNIGEN_AUDIT_PERIOD], default 64). *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val set_period : int -> unit
(** Set the hot-path sampling period (>= 1); raises
    {!Violation.Violation} otherwise. *)

val get_period : unit -> int

val tick : unit -> bool
(** [tick ()] is [true] when audit mode is on and this domain's call
    counter hits the sampling period — the guard for sweeps inside the
    search loop. Always [false] with audit off (one atomic read). *)

(** Domain-ownership tags.

    A tag records the domain that created a single-owner resource
    (solver, session, metrics shard). [check] is called on every
    touch; with audit mode on, a touch from any other domain raises a
    deterministic [domain-ownership] {!Violation.Violation} instead of
    a latent race. With audit off the check is one atomic read. *)

type t

val create : string -> t
(** [create what] tags the calling domain as owner; [what] names the
    resource in violation reports. *)

val owner : t -> int
(** Integer id of the owning domain. *)

val check : t -> unit
(** Raises {!Violation.Violation} when audit mode is on and the
    calling domain differs from the owner. *)

type clause_view = {
  c_id : int;
  c_lits : int array;
  c_learnt : bool;
  c_group : int;
}

type xor_view = {
  x_id : int;
  x_vars : int array;
  x_rhs : bool;
  x_group : int;
  x_wa : int;
  x_wb : int;
}

type watch_entry = {
  w_id : int;
  w_deleted : bool;
  w_group : int;
}

type reason_view =
  | R_none
  | R_clause of int
  | R_xor of int
  | R_gauss of int * int
  | R_dangling

type gauss_row_view = {
  g_vars : int array;
  g_rhs : bool;
  g_active : bool;
  g_basic : int;
  g_w1 : int;
  g_w2 : int;
}

type gauss_view = {
  g_group : int;
  g_dirty : bool;
  g_rows : gauss_row_view array;
}

type vec_view = { v_name : string; v_size : int; v_capacity : int }

type solver_view = {
  nvars : int;
  ok : bool;
  broken_by : int;
  num_groups : int;
  decision_level : int;
  qhead : int;
  at_fixpoint : bool;
  assigns : int array;
  level : int array;
  assign_group : int array;
  reason : reason_view array;
  trail : int array;
  trail_lim : int array;
  clauses : clause_view array;
  xors : xor_view array;
  matrices : gauss_view list;
  watches : watch_entry list array;
  xwatches : watch_entry list array;
  heap : int array;
  heap_index : int array;
  activity : float array;
  lost_unit_groups : int list;
  vecs : vec_view list;
}

let var_of_lit l = l lsr 1
let neg_lit l = l lxor 1

let lit_value view l =
  let a = view.assigns.(var_of_lit l) in
  if a = 0 then 0 else if (a > 0) = (l land 1 = 0) then 1 else -1

(** Plain-data snapshot of a CDCL solver, as seen by the auditor.

    [lib/audit] must not depend on [lib/sat] (the solver raises
    {!Violation.Violation} itself), so invariant checks run over this
    neutral view instead of the live solver record. The solver builds
    one with [Solver.audit_view]; arrays are copies, safe to retain.

    Conventions mirror the solver: literals are ints with variable
    [l lsr 1] and sign bit [l land 1] (even = positive); [assigns]
    holds 1 / -1 / 0 per variable; clause views carry the solver's
    stable clause id, and watch entries reference that id ([-1] for a
    detached record that only survives in a watch list through lazy
    deletion). *)

type clause_view = {
  c_id : int;
  c_lits : int array;  (** watched literals at positions 0 and 1 *)
  c_learnt : bool;
  c_group : int;
}

type xor_view = {
  x_id : int;
  x_vars : int array;
  x_rhs : bool;
  x_group : int;
  x_wa : int;  (** watched positions into [x_vars] *)
  x_wb : int;
}

type watch_entry = {
  w_id : int;  (** clause/xor id, or [-1] for an orphaned record *)
  w_deleted : bool;  (** the record's lazy-deletion flag *)
  w_group : int;
}

type reason_view =
  | R_none
  | R_clause of int
  | R_xor of int
  | R_gauss of int * int  (** (matrix group, row id) of a lazy reason *)
  | R_dangling  (** reason points at a record no longer attached *)

(** One row of an in-search Gauss matrix: variables ascending, watched
    / basic columns reported as variable ids ([-1] = none). Detached
    rows ([g_active = false]) are satisfied under the current trail. *)
type gauss_row_view = {
  g_vars : int array;
  g_rhs : bool;
  g_active : bool;
  g_basic : int;
  g_w1 : int;
  g_w2 : int;
}

type gauss_view = {
  g_group : int;
  g_dirty : bool;
      (** repair pending — watch / basic / detach checks are skipped *)
  g_rows : gauss_row_view array;
}

type vec_view = { v_name : string; v_size : int; v_capacity : int }

type solver_view = {
  nvars : int;
  ok : bool;
  broken_by : int;
  num_groups : int;
  decision_level : int;
  qhead : int;
  at_fixpoint : bool;
      (** propagation queue drained when the view was taken; gates the
          two-watch / XOR-watch checks, which only hold at fixpoints *)
  assigns : int array;
  level : int array;
  assign_group : int array;  (** only meaningful for level-0 facts *)
  reason : reason_view array;
  trail : int array;
  trail_lim : int array;
  clauses : clause_view array;  (** live problem + learnt clauses *)
  xors : xor_view array;  (** live XOR constraints *)
  matrices : gauss_view list;  (** in-search Gauss matrices, one per group *)
  watches : watch_entry list array;  (** indexed by literal *)
  xwatches : watch_entry list array;  (** indexed by variable *)
  heap : int array;  (** order-heap contents, root first *)
  heap_index : int array;  (** variable -> heap slot, [-1] if absent *)
  activity : float array;
  lost_unit_groups : int list;
  vecs : vec_view list;  (** size/capacity of every internal vector *)
}

val var_of_lit : int -> int
val neg_lit : int -> int

val lit_value : solver_view -> int -> int
(** 1 true, -1 false, 0 unassigned under [view.assigns]. *)

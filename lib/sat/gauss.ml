(* Packed-bitset Gauss-Jordan matrix, one per solver constraint group.
   See the .mli for the architecture; the load-bearing facts are:

   - Jordan reduced form: every active row owns an exclusive basic
     column, eliminated from all other rows. A combination of k >= 2
     active rows therefore carries >= k unassigned columns (each
     member's basic), so any unit implication of the row space is
     visible on a single row — propagation is complete at fixpoints.
   - Fully assigned rows are never elimination targets (a target must
     contain the unassigned new pivot), so a reason row's contents are
     frozen for as long as its implication is on the trail: reasons
     can be materialized lazily.
   - Backtracking needs no bit-level undo: eliminations preserve the
     row space and any basis is valid. Only detachment is undone (via
     the mark stack), and [repair] re-derives watches / basics /
     pending units from current assignments. *)

let c_row_reductions = Obs.Metrics.counter "solver.gauss_row_reductions"
let c_lazy_reasons = Obs.Metrics.counter "solver.gauss_lazy_reasons"
let c_detached_rows = Obs.Metrics.counter "solver.gauss_detached_rows"
let c_matrix_pushes = Obs.Metrics.counter "solver.gauss_matrix_pushes"
let c_matrix_pops = Obs.Metrics.counter "solver.gauss_matrix_pops"

let word_bits = Sys.int_size

type row = {
  mutable bits : int array; (* packed columns, [word_bits] per word *)
  mutable rhs : bool;
  mutable active : bool; (* false = detached (satisfied) *)
  mutable basic : int; (* exclusive basic column, -1 = none *)
  mutable w1 : int; (* watched columns, -1 = none *)
  mutable w2 : int;
  mutable queued : bool; (* on the reprocessing worklist *)
}

let dummy_row =
  { bits = [||]; rhs = false; active = false; basic = -1; w1 = -1; w2 = -1;
    queued = false }

type t = {
  xgroup : int;
  cols : int Vec.t; (* column -> variable *)
  mutable col_of_var : int array; (* variable -> column, -1 = absent *)
  rows : row Vec.t; (* never shrinks; rows die with the matrix *)
  undo_mark : int Vec.t; (* detach-undo stack: trail size at detach... *)
  undo_row : int Vec.t; (* ...and the detached row id (parallel) *)
  queue : int Vec.t; (* scratch worklist of row ids *)
  mutable dirty : bool;
  mutable rebuilding : bool; (* next repair is a post-pop rebuild *)
}

let lit_of_var v positive = (v lsl 1) lor (if positive then 0 else 1)

let create ~group =
  Obs.Metrics.incr c_matrix_pushes;
  { xgroup = group;
    cols = Vec.create ~dummy:0 ();
    col_of_var = Array.make 16 (-1);
    rows = Vec.create ~dummy:dummy_row ();
    undo_mark = Vec.create ~dummy:0 ();
    undo_row = Vec.create ~dummy:0 ();
    queue = Vec.create ~dummy:0 ();
    dirty = false;
    rebuilding = false }

let group m = m.xgroup
let num_rows m = Vec.size m.rows
let is_dirty m = m.dirty
let drop _m = Obs.Metrics.incr c_matrix_pops

let col_for m v =
  let n = Array.length m.col_of_var in
  if v >= n then begin
    let a = Array.make (max (v + 1) (2 * n)) (-1) in
    Array.blit m.col_of_var 0 a 0 n;
    m.col_of_var <- a
  end;
  match m.col_of_var.(v) with
  | -1 ->
      let c = Vec.size m.cols in
      Vec.push m.cols v;
      m.col_of_var.(v) <- c;
      c
  | c -> c

(* ------------------------------------------------------------------ *)
(* Row bit manipulation                                                *)

let mem r c =
  let w = c / word_bits in
  w < Array.length r.bits && r.bits.(w) land (1 lsl (c mod word_bits)) <> 0

let toggle_bit r c =
  let w = c / word_bits in
  if w >= Array.length r.bits then begin
    let a = Array.make (w + 1) 0 in
    Array.blit r.bits 0 a 0 (Array.length r.bits);
    r.bits <- a
  end;
  r.bits.(w) <- r.bits.(w) lxor (1 lsl (c mod word_bits))

let xor_into dst src =
  let ns = Array.length src.bits in
  if ns > Array.length dst.bits then begin
    let a = Array.make ns 0 in
    Array.blit dst.bits 0 a 0 (Array.length dst.bits);
    dst.bits <- a
  end;
  for i = 0 to ns - 1 do
    dst.bits.(i) <- dst.bits.(i) lxor src.bits.(i)
  done;
  dst.rhs <- dst.rhs <> src.rhs;
  Obs.Metrics.incr c_row_reductions

let iter_cols r f =
  Array.iteri
    (fun w word ->
      let bits = ref word in
      let c = ref (w * word_bits) in
      while !bits <> 0 do
        if !bits land 1 <> 0 then f !c;
        incr c;
        bits := !bits lsr 1
      done)
    r.bits

(* Unassigned count (with the first two unassigned columns) and the
   parity of the assigned-true variables of [r]. *)
let scan m ~assigns r =
  let n = ref 0 and u1 = ref (-1) and u2 = ref (-1) and parity = ref false in
  iter_cols r (fun c ->
      let a = assigns.(Vec.get m.cols c) in
      if a = 0 then begin
        incr n;
        if !u1 < 0 then u1 := c else if !u2 < 0 then u2 := c
      end
      else if a = 1 then parity := not !parity);
  (!n, !u1, !u2, !parity)

(* ------------------------------------------------------------------ *)
(* Incremental elimination                                             *)

let enqueue_row m i (r : row) =
  if not r.queued then begin
    r.queued <- true;
    Vec.push m.queue i
  end

let detach m i r ~mark =
  r.active <- false;
  Vec.push m.undo_mark mark;
  Vec.push m.undo_row i;
  Obs.Metrics.incr c_detached_rows

(* Eliminate [pr]'s basic column from every other row (queueing the
   modified targets for reclassification). Detached rows never match:
   they are fully assigned while the pivot column is unassigned. *)
let eliminate m ~pivot_id pr =
  let b = pr.basic in
  for i = 0 to Vec.size m.rows - 1 do
    if i <> pivot_id then begin
      let r = Vec.get m.rows i in
      if mem r b then begin
        xor_into r pr;
        enqueue_row m i r
      end
    end
  done

let basic_owner m ~except c =
  let owner = ref (-1) in
  for i = 0 to Vec.size m.rows - 1 do
    if i <> except && !owner < 0 && (Vec.get m.rows i).basic = c then owner := i
  done;
  !owner

(* Classify row [i] against the current assignment and restore its
   share of the matrix invariant. The first conflicting row is
   recorded in [conflict]; processing continues so the matrix stays
   structurally consistent (extra implied units remain sound). *)
let process_row m ~assigns ~trail_size ~enqueue ~conflict i r =
  if r.active then begin
    let n, u1, u2, parity = scan m ~assigns r in
    if n = 0 then begin
      if parity = r.rhs then detach m i r ~mark:(trail_size ())
      else begin
        (* violated: leave active, flag for repair after the backjump *)
        if !conflict < 0 then conflict := i;
        m.dirty <- true
      end
    end
    else if n = 1 then begin
      (* unit: propagate and detach as satisfied (the callback assigns
         the variable, so the row is fully assigned from here on) *)
      let v = Vec.get m.cols u1 in
      enqueue (lit_of_var v (r.rhs <> parity)) i;
      detach m i r ~mark:(trail_size ())
    end
    else begin
      let basic_ok =
        r.basic >= 0 && mem r r.basic && assigns.(Vec.get m.cols r.basic) = 0
      in
      if not basic_ok then begin
        (* pivot change: claim a fresh unassigned basic column *)
        (match basic_owner m ~except:i u1 with
        | -1 -> ()
        | j ->
            (* stale exclusivity (possible across detach/reactivate):
               dethrone the other claimant and reprocess it *)
            let o = Vec.get m.rows j in
            o.basic <- -1;
            if o.active then enqueue_row m j o);
        r.basic <- u1
      end;
      r.w1 <- r.basic;
      r.w2 <- (if u1 <> r.basic then u1 else u2);
      (* re-eliminate: a no-op scan when exclusivity already holds,
         and the self-healing step when it was lost while the row (or
         a later-added one) sat detached *)
      eliminate m ~pivot_id:i r
    end
  end

let drain m ~assigns ~trail_size ~enqueue ~conflict =
  while Vec.size m.queue > 0 do
    let i = Vec.pop m.queue in
    let r = Vec.get m.rows i in
    r.queued <- false;
    process_row m ~assigns ~trail_size ~enqueue ~conflict i r
  done

let result_of conflict = if !conflict >= 0 then Some !conflict else None

let add_row m ~assigns ~trail_size ~enqueue ~vars ~rhs =
  let r =
    { bits = [||]; rhs; active = true; basic = -1; w1 = -1; w2 = -1;
      queued = false }
  in
  List.iter (fun v -> toggle_bit r (col_for m v)) vars;
  (* reduce against the existing basis so the new row is expressed
     over non-basic columns only (keeps exclusivity global) *)
  for i = 0 to Vec.size m.rows - 1 do
    let r' = Vec.get m.rows i in
    if r'.active && r'.basic >= 0 && mem r r'.basic then xor_into r r'
  done;
  let id = Vec.size m.rows in
  Vec.push m.rows r;
  let conflict = ref (-1) in
  enqueue_row m id r;
  drain m ~assigns ~trail_size ~enqueue ~conflict;
  result_of conflict

let on_assign m ~assigns ~trail_size ~enqueue ~var =
  if var < Array.length m.col_of_var && m.col_of_var.(var) >= 0 then begin
    let c = m.col_of_var.(var) in
    let conflict = ref (-1) in
    for i = 0 to Vec.size m.rows - 1 do
      let r = Vec.get m.rows i in
      if r.active && (r.w1 = c || r.w2 = c) then enqueue_row m i r
    done;
    drain m ~assigns ~trail_size ~enqueue ~conflict;
    result_of conflict
  end
  else None

let repair m ~assigns ~trail_size ~enqueue =
  if not m.dirty then None
  else begin
    let run () =
      m.dirty <- false;
      let conflict = ref (-1) in
      for i = 0 to Vec.size m.rows - 1 do
        let r = Vec.get m.rows i in
        if r.active then enqueue_row m i r
      done;
      drain m ~assigns ~trail_size ~enqueue ~conflict;
      (* a conflict re-flags the matrix: the backjump that consumes it
         re-runs repair on a consistent footing *)
      result_of conflict
    in
    if m.rebuilding then begin
      m.rebuilding <- false;
      Obs.Trace.span ~cat:"sat" "gauss.matrix_rebuild" run
    end
    else run ()
  end

let cancel_to m ~trail_size =
  let changed = ref false in
  while
    Vec.size m.undo_mark > 0 && Vec.last m.undo_mark > trail_size
  do
    ignore (Vec.pop m.undo_mark);
    let i = Vec.pop m.undo_row in
    (Vec.get m.rows i).active <- true;
    changed := true
  done;
  if !changed then m.dirty <- true

let reset m =
  Vec.clear m.undo_mark;
  Vec.clear m.undo_row;
  Vec.clear m.queue;
  for i = 0 to Vec.size m.rows - 1 do
    let r = Vec.get m.rows i in
    r.active <- true;
    r.queued <- false
  done;
  m.dirty <- true;
  m.rebuilding <- true

(* ------------------------------------------------------------------ *)
(* Lazy reasons and snapshots                                          *)

let row_vars m ~row =
  let acc = ref [] in
  iter_cols (Vec.get m.rows row) (fun c -> acc := Vec.get m.cols c :: !acc);
  let a = Array.of_list !acc in
  Array.sort Int.compare a;
  a

(* The literal of [v] that is FALSE under the current assignment. *)
let false_lit ~assigns v = lit_of_var v (assigns.(v) <> 1)

let reason_lits m ~assigns ~row ~implied =
  Obs.Metrics.incr c_lazy_reasons;
  let iv = implied lsr 1 in
  let acc = ref [] in
  iter_cols (Vec.get m.rows row) (fun c ->
      let v = Vec.get m.cols c in
      if v <> iv then acc := false_lit ~assigns v :: !acc);
  Array.of_list (implied :: !acc)

let conflict_lits m ~assigns ~row =
  let acc = ref [] in
  iter_cols (Vec.get m.rows row) (fun c ->
      acc := false_lit ~assigns (Vec.get m.cols c) :: !acc);
  Array.of_list !acc

type row_dump = {
  d_vars : int array;
  d_rhs : bool;
  d_active : bool;
  d_basic : int;
  d_w1 : int;
  d_w2 : int;
}

let dump m =
  let var_of c = if c < 0 then -1 else Vec.get m.cols c in
  Array.init (Vec.size m.rows) (fun i ->
      let r = Vec.get m.rows i in
      { d_vars = row_vars m ~row:i;
        d_rhs = r.rhs;
        d_active = r.active;
        d_basic = var_of r.basic;
        d_w1 = var_of r.w1;
        d_w2 = var_of r.w2 })

(* ------------------------------------------------------------------ *)
(* Test-only fault injection                                           *)

module Corrupt = struct
  let find_row m p =
    let found = ref (-1) in
    for i = 0 to Vec.size m.rows - 1 do
      if !found < 0 && p (Vec.get m.rows i) then found := i
    done;
    if !found < 0 then None else Some (Vec.get m.rows !found)

  let flip_rhs m =
    match find_row m (fun r -> not r.active) with
    | None -> false
    | Some r ->
        r.rhs <- not r.rhs;
        true

  let steal_basic m =
    match find_row m (fun r -> r.active && r.basic >= 0) with
    | None -> false
    | Some r1 -> (
        match
          find_row m (fun r -> r.active && r.basic >= 0 && r != r1)
        with
        | None -> false
        | Some r2 ->
            r2.basic <- r1.basic;
            true)

  let false_detach m ~assigns =
    let has_unassigned r =
      let u = ref false in
      iter_cols r (fun c -> if assigns.(Vec.get m.cols c) = 0 then u := true);
      !u
    in
    match find_row m (fun r -> r.active && has_unassigned r) with
    | None -> false
    | Some r ->
        r.active <- false;
        true

  let drop_watch m =
    match find_row m (fun r -> r.active && r.w1 >= 0 && r.w1 <> r.w2) with
    | None -> false
    | Some r ->
        r.w2 <- r.w1;
        true
end

(** In-search incremental Gauss-Jordan elimination over the XOR rows
    of one constraint group (the BIRD architecture of CryptoMiniSat,
    CAV 2020 "Tinted, Detached, and Lazy CNF-XOR Solving").

    One [t] holds the packed GF(2) matrix of every XOR attached to a
    single solver group. Rows are bitsets over matrix-local columns
    (one column per distinct variable); each active row owns an
    exclusive {e basic} column that is eliminated from every other row
    (Jordan reduced form) and watches two unassigned columns. On
    assignment of a watched column the engine moves the watch, changes
    pivot (re-eliminating so that every implied unit surfaces as a
    single unit row), propagates, detaches satisfied rows, or reports
    a conflict. Reasons are {e lazy}: a propagation records only the
    (matrix, row) pair, and the parity reason clause is materialized
    from the row's current contents when the conflict analyzer asks —
    sound because fully assigned rows are never elimination targets,
    so a reason row's contents are frozen while its implication is on
    the trail.

    Backtracking restores state with a detach-undo stack (rows
    re-activate when the trail shrinks past their detach mark) plus a
    [dirty] flag: the next [repair] call re-establishes watches, basic
    columns and pending units, so no bit-level undo of eliminations is
    needed (eliminations preserve the row space, and any basis is
    valid). A group pop drops the popped group's matrix wholesale and
    [reset]s the surviving ones, composing with the solver's
    re-propagation from a cleared queue head.

    The engine is value-agnostic: callers pass the solver's [assigns]
    array (variable -> 1 / -1 / 0), a [trail_size] thunk for detach
    marks, and an [enqueue] callback [fun lit row -> ...] invoked for
    each implied literal (the variable is guaranteed unassigned at the
    moment of the call). Literals use the solver's int encoding
    (positive literal of [v] is [2v], negative [2v + 1]). *)

type t

val create : group:int -> t
(** Fresh empty matrix for [group]. Counts a [solver.gauss_matrix_pushes]. *)

val group : t -> int
val num_rows : t -> int

val is_dirty : t -> bool
(** Pending [repair] work (set by backtracking, [reset], and conflict
    returns). Propagation fixpoint claims only hold when clean. *)

val add_row :
  t ->
  assigns:int array ->
  trail_size:(unit -> int) ->
  enqueue:(int -> int -> unit) ->
  vars:int list ->
  rhs:bool ->
  int option
(** Insert the XOR [vars = rhs] (duplicate variables cancel), reduce
    it against the existing basic columns, give it a basic column of
    its own (eliminating that column from every other row) and
    classify it — attached, unit (propagated through [enqueue] and
    detached as satisfied), satisfied (detached), or conflicting.
    Returns the conflicting row's id, or [None]. *)

val on_assign :
  t ->
  assigns:int array ->
  trail_size:(unit -> int) ->
  enqueue:(int -> int -> unit) ->
  var:int ->
  int option
(** [var] was just assigned: process the rows watching its column
    (watch moves, pivot changes with re-elimination, unit
    propagations, satisfied detaches). Returns the first conflicting
    row's id, or [None]. Cheap no-op when [var] has no column. *)

val repair :
  t ->
  assigns:int array ->
  trail_size:(unit -> int) ->
  enqueue:(int -> int -> unit) ->
  int option
(** Re-establish the full matrix invariant after backtracking or
    [reset] (no-op when not dirty): every active row is re-scanned and
    re-watched, still-satisfied rows re-detach, pending units
    propagate, and rows whose basic column was lost or assigned pick a
    new pivot and re-eliminate. Returns the first conflicting row's
    id, or [None] (the matrix is clean afterwards iff no conflict). *)

val cancel_to : t -> trail_size:int -> unit
(** The trail is being shrunk to [trail_size]: re-activate every row
    detached at a larger mark and mark the matrix dirty if any was. *)

val reset : t -> unit
(** After a group pop invalidated trail marks wholesale: re-activate
    every row, clear the undo stack and mark the matrix dirty; the
    next [repair] runs as a full rebuild (traced as
    [gauss.matrix_rebuild]). *)

val drop : t -> unit
(** The owning group was popped and the matrix is being discarded:
    count a [solver.gauss_matrix_pops]. *)

val row_vars : t -> row:int -> int array
(** The variables of [row], ascending. *)

val reason_lits : t -> assigns:int array -> row:int -> implied:int -> int array
(** Materialize the lazy parity reason for [implied] (the true literal
    propagated from [row]): [implied] first, then the false literal of
    every other variable of the row. Counts a
    [solver.gauss_lazy_reasons]. *)

val conflict_lits : t -> assigns:int array -> row:int -> int array
(** The conflict clause of a violated fully-assigned row: the false
    literal of every variable. *)

(** Plain-data row snapshot for audits and tests. Columns are reported
    as variable ids ([-1] = none). *)
type row_dump = {
  d_vars : int array;  (** ascending *)
  d_rhs : bool;
  d_active : bool;  (** [false] = detached (satisfied) *)
  d_basic : int;
  d_w1 : int;
  d_w2 : int;
}

val dump : t -> row_dump array

(** Test-only fault injection (mutation tests for the audit
    sanitizer); each plants one corruption and reports whether it
    applied. *)
module Corrupt : sig
  val flip_rhs : t -> bool
  (** Negate the right-hand side of a detached (satisfied) row. *)

  val steal_basic : t -> bool
  (** Point one active row's basic column at another's. *)

  val false_detach : t -> assigns:int array -> bool
  (** Detach an active row that still has unassigned variables. *)

  val drop_watch : t -> bool
  (** Collapse an active row's two watches onto one column. *)
end

type outcome = {
  models : Cnf.Model.t list;
  exhausted : bool;
  timed_out : bool;
  conflicts : int;
  stats : Solver.stats;
  reused : bool;
}

(* Models are returned in canonical (key) order, not discovery order:
   a session-backed enumeration discovers witnesses in an order that
   depends on the solver's accumulated learnt clauses and activities,
   i.e. on the session's history. Complete cells are history-
   independent as SETS, so sorting makes the outcome — and everything
   downstream that indexes into it, like UniGen's uniform pick — a
   pure function of the formula, restoring bit-identity between the
   fresh and session paths and across parallel schedules. *)
let sort_models ms =
  List.sort (fun a b -> String.compare (Cnf.Model.key a) (Cnf.Model.key b)) ms

let empty_outcome ~reused ~stats =
  { models = []; exhausted = true; timed_out = false; conflicts = 0;
    stats; reused }

(* Row-reduce the XOR system before loading the solver: RREF preserves
   the solution set exactly and typically shortens dense hash rows a
   lot (a random m×n system in RREF has rows of expected length
   1 + (n − m)/2), which is where most of the CDCL search effort on
   hash-constrained formulas goes. This is the static counterpart of
   CryptoMiniSAT's in-search Gaussian elimination. *)
let reduce_xors (f : Cnf.Formula.t) =
  if Array.length f.Cnf.Formula.xors < 2 then `Reduced f
  else
    match Cnf.Xor_gauss.eliminate (Array.to_list f.Cnf.Formula.xors) with
    | Error `Unsat -> `Unsat
    | Ok r ->
        `Reduced
          { f with Cnf.Formula.xors = Array.of_list r.Cnf.Xor_gauss.rows }

let c_blocking_clauses = Obs.Metrics.counter "bsat.blocking_clauses"
let c_enumerations = Obs.Metrics.counter "bsat.enumerations"

(* The blocking-clause enumeration loop, shared by the one-shot and
   session paths. [add_block] persists a blocking clause; [verify] is
   the formula the witnesses must satisfy. *)
let enum_loop ?deadline ~limit ~blocking ~verify ~add_block ~truncate solver =
  Obs.Metrics.incr c_enumerations;
  let audit = Audit.is_enabled () in
  (* projected keys of the witnesses found so far: with audit mode on,
     every new witness is re-checked against the accumulated
     blocking-clause set (a repeat projection means a blocking clause
     was lost or never took effect) *)
  let seen_keys = Hashtbl.create (if audit then 64 else 1) in
  let rec loop acc found =
    if found >= limit then (List.rev acc, `Cut)
    else
      match Solver.solve ?deadline solver with
      | Solver.Unsat -> (List.rev acc, `Exhausted)
      | Solver.Unknown -> (List.rev acc, `Timeout)
      | Solver.Sat ->
          let m = truncate (Solver.model solver) in
          if not (Cnf.Model.satisfies verify m) then
            Audit.fail ~invariant:"model-audit"
              ~detail:"Bsat.enumerate: solver returned a witness falsifying the formula"
              [ ("witness",
                 String.concat " " (List.map string_of_int (Cnf.Model.to_dimacs m)));
                ("found_so_far", string_of_int found) ];
          if audit then begin
            let k = Cnf.Model.key (Cnf.Model.restrict m blocking) in
            if Hashtbl.mem seen_keys k then
              Audit.fail ~invariant:"blocking-set"
                ~detail:
                  "Bsat.enumerate: witness repeats a projection already excluded by a blocking clause"
                [ ("witness",
                   String.concat " " (List.map string_of_int (Cnf.Model.to_dimacs m)));
                  ("found_so_far", string_of_int found) ];
            Hashtbl.add seen_keys k ()
          end;
          (* block this witness on the projection *)
          let block =
            Array.to_list blocking
            |> List.map (fun v -> Cnf.Lit.make v (not (Cnf.Model.value m v)))
          in
          Obs.Metrics.incr c_blocking_clauses;
          add_block block;
          loop (m :: acc) (found + 1)
  in
  loop [] 0

let outcome_of ~reused ~stats (models, status) =
  {
    models = sort_models models;
    exhausted = status = `Exhausted;
    timed_out = status = `Timeout;
    conflicts = stats.Solver.conflicts;
    stats;
    reused;
  }

let enumerate ?deadline ?blocking_vars ?(gauss = true) ~limit (f : Cnf.Formula.t) =
  Obs.Trace.span ~cat:"sat" "bsat.enumerate"
    ~args:[ ("limit", string_of_int limit) ]
  @@ fun () ->
  let blocking =
    match blocking_vars with
    | Some vs -> vs
    | None -> Cnf.Formula.sampling_vars f
  in
  (* The in-search Gauss engine performs its own (incremental) Jordan
     reduction as rows are added, so the static pre-pass would be
     redundant work; it remains the 2-watch path's preparation. *)
  match (if gauss then `Reduced f else reduce_xors f) with
  | `Unsat -> empty_outcome ~reused:false ~stats:Solver.stats_zero
  | `Reduced reduced ->
      let solver = Solver.create ~gauss reduced in
      let res =
        enum_loop ?deadline ~limit ~blocking ~verify:f
          ~add_block:(Solver.add_clause solver)
          ~truncate:(fun m -> m)
          solver
      in
      outcome_of ~reused:false ~stats:(Solver.stats solver) res

let count_upto ?deadline ?gauss ~limit f =
  List.length (enumerate ?deadline ?gauss ~limit f).models

module Session = struct
  type t = {
    formula : Cnf.Formula.t; (* original (pre-RREF), for verification *)
    blocking : int array;
    solver : Solver.t option; (* None: base XOR system inconsistent *)
    base_vars : int; (* formula width, before activation variables *)
    gauss : bool; (* XOR engine: in-search matrix vs static RREF + 2-watch *)
    mutable calls : int;
    owner : Audit.Ownership.t; (* sessions are single-domain resources *)
  }

  let create ?blocking_vars ?(gauss = true) (f : Cnf.Formula.t) =
    let blocking =
      match blocking_vars with
      | Some vs -> vs
      | None -> Cnf.Formula.sampling_vars f
    in
    let solver =
      match (if gauss then `Reduced f else reduce_xors f) with
      | `Unsat -> None
      | `Reduced reduced -> Some (Solver.create ~gauss reduced)
    in
    { formula = f; blocking; solver; base_vars = f.Cnf.Formula.num_vars;
      gauss; calls = 0; owner = Audit.Ownership.create "Bsat.Session" }

  let calls s = s.calls
  let formula s = s.formula
  let blocking_vars s = s.blocking

  let stats s =
    Audit.Ownership.check s.owner;
    match s.solver with
    | None -> Solver.stats_zero
    | Some solver -> Solver.stats solver

  (* Reduce a hash layer on its own. The one-shot path row-reduces the
     base and the layer as one system; reducing them separately spans
     the same solution set, so the two paths agree on every outcome
     even though their CDCL traces differ. *)
  let reduce_layer xors =
    match xors with
    | [] | [ _ ] -> `Rows xors
    | _ -> (
        match Cnf.Xor_gauss.eliminate xors with
        | Error `Unsat -> `Unsat
        | Ok r -> `Rows r.Cnf.Xor_gauss.rows)

  let enumerate ?deadline ?(xors = []) ?(persist_blocking = false) ~limit s =
    Obs.Trace.span ~cat:"sat" "bsat.session.enumerate"
      ~args:
        [ ("limit", string_of_int limit);
          ("xor_rows", string_of_int (List.length xors)) ]
    @@ fun () ->
    Audit.Ownership.check s.owner;
    let reused = s.calls > 0 in
    s.calls <- s.calls + 1;
    match s.solver with
    | None -> empty_outcome ~reused ~stats:Solver.stats_zero
    | Some solver -> (
        let before = Solver.stats solver in
        (* Gauss engine: hand the raw layer to the matrix (a layer swap
           is a matrix push/pop, not a re-RREF — the matrix reduces
           each row against its basis as it arrives). *)
        match (if s.gauss then `Rows xors else reduce_layer xors) with
        | `Unsat ->
            empty_outcome ~reused
              ~stats:(Solver.stats_diff (Solver.stats solver) before)
        | `Rows rows ->
            let verify = Cnf.Formula.add_xors s.formula xors in
            let truncate m =
              if Cnf.Model.num_vars m = s.base_vars then m
              else Cnf.Model.make s.base_vars (fun v -> Cnf.Model.value m v)
            in
            (* Everything this call adds — the XOR layer and, unless
               persisted, the blocking clauses — lives in one group
               popped on the way out, leaving only learnt clauses
               about the base formula behind. *)
            Solver.push_group solver;
            let add_block block =
              if persist_blocking then Solver.add_clause solver block
              else Solver.add_group_clause solver block
            in
            let res =
              Fun.protect
                ~finally:(fun () ->
                  Obs.Trace.span ~cat:"sat" "xor_layer.pop" (fun () ->
                      Solver.pop_group solver))
                (fun () ->
                  Obs.Trace.span ~cat:"sat" "xor_layer.push"
                    ~args:[ ("rows", string_of_int (List.length rows)) ]
                    (fun () -> List.iter (Solver.add_group_xor solver) rows);
                  enum_loop ?deadline ~limit ~blocking:s.blocking ~verify
                    ~add_block ~truncate solver)
            in
            outcome_of ~reused
              ~stats:(Solver.stats_diff (Solver.stats solver) before)
              res)
end

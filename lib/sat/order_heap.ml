type t = {
  heap : int Vec.t; (* heap of variables *)
  indices : int array; (* var -> position in heap, or -1 *)
  activity : float array; (* var -> score, owned by the solver *)
}

let create n activity =
  { heap = Vec.create ~dummy:0 (); indices = Array.make (n + 1) (-1); activity }

let in_heap t v = v < Array.length t.indices && t.indices.(v) >= 0
let size t = Vec.size t.heap
let lt t a b = t.activity.(a) > t.activity.(b) (* max-heap: "less" = higher score *)

let percolate_up t i =
  let x = Vec.get t.heap i in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let p = Vec.get t.heap parent in
    if lt t x p then begin
      Vec.set t.heap !i p;
      t.indices.(p) <- !i;
      i := parent
    end
    else continue := false
  done;
  Vec.set t.heap !i x;
  t.indices.(x) <- !i

let percolate_down t i =
  let x = Vec.get t.heap i in
  let n = Vec.size t.heap in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 in
    if left >= n then continue := false
    else begin
      let right = left + 1 in
      let child =
        if right < n && lt t (Vec.get t.heap right) (Vec.get t.heap left) then right
        else left
      in
      let c = Vec.get t.heap child in
      if lt t c x then begin
        Vec.set t.heap !i c;
        t.indices.(c) <- !i;
        i := child
      end
      else continue := false
    end
  done;
  Vec.set t.heap !i x;
  t.indices.(x) <- !i

let insert t v =
  if not (in_heap t v) then begin
    Vec.push t.heap v;
    t.indices.(v) <- Vec.size t.heap - 1;
    percolate_up t (Vec.size t.heap - 1)
  end

let update t v = if in_heap t v then percolate_up t t.indices.(v)

let pop_max t =
  if Vec.size t.heap = 0 then None
  else begin
    let top = Vec.get t.heap 0 in
    let last = Vec.pop t.heap in
    t.indices.(top) <- -1;
    if Vec.size t.heap > 0 then begin
      Vec.set t.heap 0 last;
      t.indices.(last) <- 0;
      percolate_down t 0
    end;
    Some top
  end

let snapshot t =
  let heap = Array.init (Vec.size t.heap) (Vec.get t.heap) in
  (heap, Array.copy t.indices)

(* Test-only fault injection: exchange two heap slots WITHOUT updating
   the index map, so the heap/index agreement invariant breaks. *)
let corrupt_swap t i j =
  let n = Vec.size t.heap in
  if i < 0 || j < 0 || i >= n || j >= n || i = j then false
  else begin
    let a = Vec.get t.heap i and b = Vec.get t.heap j in
    Vec.set t.heap i b;
    Vec.set t.heap j a;
    true
  end

let rebuild t vars =
  Vec.iter (fun v -> t.indices.(v) <- -1) t.heap;
  Vec.clear t.heap;
  List.iter (insert t) vars

type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; size = 0; dummy }

let size t = t.size
let capacity t = Array.length t.data
let is_empty t = t.size = 0

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.size then invalid_arg "Vec.set";
  t.data.(i) <- x

let grow t =
  let data = Array.make (2 * Array.length t.data) t.dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push t x =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then invalid_arg "Vec.pop";
  t.size <- t.size - 1;
  let x = t.data.(t.size) in
  t.data.(t.size) <- t.dummy;
  x

let last t =
  if t.size = 0 then invalid_arg "Vec.last";
  t.data.(t.size - 1)

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0

let shrink t n =
  if n < 0 || n > t.size then invalid_arg "Vec.shrink";
  Array.fill t.data n (t.size - n) t.dummy;
  t.size <- n

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.size (fun i -> t.data.(i))

let exists p t =
  let rec go i = i < t.size && (p t.data.(i) || go (i + 1)) in
  go 0

let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    if p t.data.(i) then begin
      t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  Array.fill t.data !j (t.size - !j) t.dummy;
  t.size <- !j

let sort cmp t =
  let sub = Array.sub t.data 0 t.size in
  Array.sort cmp sub;
  Array.blit sub 0 t.data 0 t.size

(** Growable arrays (the workhorse container of the solver).

    A [Vec] owns a backing array that doubles on demand; elements past
    [size] hold the [dummy] supplied at creation and must not be
    observed. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val size : 'a t -> int
val capacity : 'a t -> int
(** Current backing-array length; [size t <= capacity t] always. *)

val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Removes and returns the last element; raises [Invalid_argument] on
    an empty vector. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink t n] drops elements so that exactly [n] remain. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool
val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only elements satisfying the predicate, preserving order. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit

(* Literals are raw ints throughout the solver: the positive literal of
   variable v is 2v, the negative one 2v + 1 (the Cnf.Lit encoding).
   Variable truth values are coded 1 (true), -1 (false), 0 (unassigned).

   Incremental interface: constraints are tagged with a *group*.
   Group 0 is the base formula; [push_group] opens a new group (a fresh
   activation variable guards its clauses, XORs are attached
   physically) and [pop_group] detaches everything the group
   contributed — its clauses and XORs, every learnt clause whose
   derivation used them, and every level-0 fact that depends on them.
   The dependency tracking is the [assign_group] array: a level-0
   assignment carries the maximum group over its reason constraint and
   the assignments it consumed, so "derived from group >= g" is a
   single integer comparison. *)

type clause = {
  cid : int; (* per-solver id, for audit reports and watch accounting *)
  lits : int array; (* positions 0 and 1 are the watched literals *)
  learnt : bool;
  mutable group : int; (* mutable only for Corrupt.stale_group *)
  mutable activity : float;
  mutable deleted : bool;
}

type xor_constraint = {
  xid : int;
  xvars : int array;
  mutable xrhs : bool; (* mutable only for Corrupt.flip_xor_parity *)
  xgroup : int;
  mutable xdeleted : bool;
  mutable wa : int; (* watched position in xvars *)
  mutable wb : int;
}

type reason =
  | No_reason
  | R_clause of clause
  | R_xor of xor_constraint
  | R_gauss of Gauss.t * int
      (* lazy parity reason: the clause is materialized from the row's
         current contents only when the conflict analyzer asks *)

type conflict =
  | C_clause of clause
  | C_xor of xor_constraint
  | C_gauss of Gauss.t * int

type result = Sat | Unsat | Unknown

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  xor_propagations : int;
  restarts : int;
  learnts : int;
}

let stats_zero =
  { conflicts = 0; decisions = 0; propagations = 0; xor_propagations = 0;
    restarts = 0; learnts = 0 }

let stats_add a b =
  {
    conflicts = a.conflicts + b.conflicts;
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    xor_propagations = a.xor_propagations + b.xor_propagations;
    restarts = a.restarts + b.restarts;
    learnts = a.learnts + b.learnts;
  }

let stats_diff a b =
  {
    conflicts = a.conflicts - b.conflicts;
    decisions = a.decisions - b.decisions;
    propagations = a.propagations - b.propagations;
    xor_propagations = a.xor_propagations - b.xor_propagations;
    restarts = a.restarts - b.restarts;
    learnts = a.learnts - b.learnts;
  }

let dummy_clause =
  { cid = -1; lits = [||]; learnt = false; group = 0; activity = 0.; deleted = true }

let dummy_xor =
  { xid = -1; xvars = [||]; xrhs = false; xgroup = 0; xdeleted = true; wa = 0; wb = 0 }

type t = {
  mutable nvars : int;
  mutable assigns : int array; (* var -> 1 / -1 / 0 *)
  mutable level : int array; (* var -> decision level of its assignment *)
  mutable reason : reason array; (* var -> why it was assigned *)
  mutable assign_group : int array; (* var -> group a level-0 fact depends on *)
  mutable polarity : bool array; (* var -> saved phase *)
  mutable activity : float array; (* var -> VSIDS score *)
  mutable seen : bool array; (* scratch for conflict analysis *)
  mutable watches : clause Vec.t array; (* lit -> clauses watching it *)
  mutable xwatches : xor_constraint Vec.t array; (* var -> xors watching it *)
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  xors : xor_constraint Vec.t;
  use_gauss : bool; (* XOR engine: in-search Gauss-Jordan vs 2-watch *)
  mutable matrices : Gauss.t list; (* one matrix per group, when gauss *)
  trail : int Vec.t; (* assigned literals, chronological *)
  trail_lim : int Vec.t; (* trail position at each decision *)
  mutable order : Order_heap.t;
  mutable qhead : int;
  mutable ok : bool;
  mutable broken_by : int;
      (* when [not ok]: smallest group whose removal could restore
         satisfiability of the store; 0 = base formula is unsat. *)
  mutable groups : int list; (* activation variables, innermost first *)
  mutable free_act_vars : int list; (* recycled activation variables *)
  mutable lost_units : (int * int) list;
      (* (group, lit) unit facts currently shadowed by a conflicting
         higher-group assignment; re-asserted when that group pops *)
  mutable failed : int list; (* failed assumptions of the last solve *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable model_valid : bool;
  mutable saved_model : Cnf.Model.t option;
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_xor_propagations : int;
  mutable n_restarts : int;
  mutable n_learnt_total : int;
  mutable max_learnts : float;
  mutable proof : Drat.step list option; (* reversed; None = disabled *)
  mutable next_cid : int; (* next clause/xor id for audit accounting *)
  owner : Audit.Ownership.t; (* creating domain; checked in audit mode *)
}

let fresh_cid t =
  let id = t.next_cid in
  t.next_cid <- id + 1;
  id

let lit_to_dimacs l = if l land 1 = 0 then l lsr 1 else -(l lsr 1)

let log_proof t lits =
  match t.proof with
  | None -> ()
  | Some steps -> t.proof <- Some (Drat.Add (List.map lit_to_dimacs lits) :: steps)

(* The empty clause may be derivable before logging was even enabled
   (top-level conflict during clause loading); emit it at most once. *)
let log_proof_empty_once t =
  match t.proof with
  | Some steps when not (List.mem (Drat.Add []) steps) ->
      t.proof <- Some (Drat.Add [] :: steps)
  | _ -> ()

let log_delete t lits =
  match t.proof with
  | None -> ()
  | Some steps ->
      t.proof <- Some (Drat.Delete (List.map lit_to_dimacs lits) :: steps)

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999
let restart_base = 100

let lit_var l = l lsr 1
let lit_neg l = l lxor 1
let lit_is_pos l = l land 1 = 0
let lit_of_var v positive = (v lsl 1) lor (if positive then 0 else 1)

let value_lit t l =
  let a = t.assigns.(l lsr 1) in
  if l land 1 = 0 then a else -a

(* Truth value of [l] ignoring level-0 assignments that depend on a
   group above [g] — the view a group-[g] constraint must be
   normalized against, since higher groups can pop out from under it.
   Only meaningful at decision level 0. *)
let value_lit_upto t g l =
  let v = l lsr 1 in
  if t.assigns.(v) = 0 || t.assign_group.(v) > g then 0 else value_lit t l

let decision_level t = Vec.size t.trail_lim

let create_empty ?(gauss = true) nvars =
  let activity = Array.make (nvars + 1) 0. in
  let t =
    {
      nvars;
      assigns = Array.make (nvars + 1) 0;
      level = Array.make (nvars + 1) 0;
      reason = Array.make (nvars + 1) No_reason;
      assign_group = Array.make (nvars + 1) 0;
      polarity = Array.make (nvars + 1) false;
      activity;
      seen = Array.make (nvars + 1) false;
      watches = Array.init ((2 * nvars) + 2) (fun _ -> Vec.create ~dummy:dummy_clause ());
      xwatches = Array.init (nvars + 1) (fun _ -> Vec.create ~dummy:dummy_xor ());
      clauses = Vec.create ~dummy:dummy_clause ();
      learnts = Vec.create ~dummy:dummy_clause ();
      xors = Vec.create ~dummy:dummy_xor ();
      use_gauss = gauss;
      matrices = [];
      trail = Vec.create ~dummy:0 ();
      trail_lim = Vec.create ~dummy:0 ();
      order = Order_heap.create nvars activity;
      qhead = 0;
      ok = true;
      broken_by = 0;
      groups = [];
      free_act_vars = [];
      lost_units = [];
      failed = [];
      var_inc = 1.0;
      cla_inc = 1.0;
      model_valid = false;
      saved_model = None;
      n_conflicts = 0;
      n_decisions = 0;
      n_propagations = 0;
      n_xor_propagations = 0;
      n_restarts = 0;
      n_learnt_total = 0;
      max_learnts = 0.;
      proof = None;
      next_cid = 0;
      owner = Audit.Ownership.create "Solver.t";
    }
  in
  for v = 1 to nvars do
    Order_heap.insert t.order v
  done;
  t

let okay t = t.ok
let num_vars t = t.nvars
let uses_gauss t = t.use_gauss
let conflicts t = t.n_conflicts
let decisions t = t.n_decisions
let propagations t = t.n_propagations
let xor_propagations t = t.n_xor_propagations
let restarts t = t.n_restarts
let num_clauses t = Vec.size t.clauses
let num_learnts t = Vec.size t.learnts
let num_groups t = List.length t.groups

let stats t =
  {
    conflicts = t.n_conflicts;
    decisions = t.n_decisions;
    propagations = t.n_propagations;
    xor_propagations = t.n_xor_propagations;
    restarts = t.n_restarts;
    learnts = t.n_learnt_total;
  }

let failed_assumptions t = List.rev_map Cnf.Lit.of_index t.failed

(* ------------------------------------------------------------------ *)
(* Correctness audit                                                   *)

let itos = string_of_int

(* Structured replacement for the old bare [assert (decision_level t = 0)]
   preconditions: always on (they guard API misuse, not internal state),
   but failing with the invariant name and a trail dump. *)
let require_root t fn =
  if Vec.size t.trail_lim <> 0 then
    Audit.fail ~invariant:"root-level-api"
      ~detail:(fn ^ " is only legal at decision level 0")
      [ ("function", fn);
        ("decision_level", itos (Vec.size t.trail_lim));
        ("trail", itos (Vec.size t.trail));
        ("qhead", itos t.qhead) ]

(* Snapshot the solver as the plain-data view the sanitizer checks.
   Audit-only code: linear in the solver state, never on by default. *)
let audit_view t : Audit.State.solver_view =
  let module S = Audit.State in
  let n = t.nvars in
  let clause_view (c : clause) =
    { S.c_id = c.cid; c_lits = Array.copy c.lits; c_learnt = c.learnt; c_group = c.group }
  in
  let clauses =
    Array.append
      (Array.init (Vec.size t.clauses) (fun i -> clause_view (Vec.get t.clauses i)))
      (Array.init (Vec.size t.learnts) (fun i -> clause_view (Vec.get t.learnts i)))
  in
  let xors =
    Array.init (Vec.size t.xors) (fun i ->
        let x = Vec.get t.xors i in
        { S.x_id = x.xid; x_vars = Array.copy x.xvars; x_rhs = x.xrhs;
          x_group = x.xgroup; x_wa = x.wa; x_wb = x.wb })
  in
  let watches =
    Array.init ((2 * n) + 2) (fun l ->
        List.rev
          (Vec.fold
             (fun acc (c : clause) ->
               { S.w_id = c.cid; w_deleted = c.deleted; w_group = c.group } :: acc)
             [] t.watches.(l)))
  in
  let xwatches =
    Array.init (n + 1) (fun v ->
        List.rev
          (Vec.fold
             (fun acc (x : xor_constraint) ->
               { S.w_id = x.xid; w_deleted = x.xdeleted; w_group = x.xgroup } :: acc)
             [] t.xwatches.(v)))
  in
  let reason =
    Array.init (n + 1) (fun v ->
        if v = 0 || t.assigns.(v) = 0 then S.R_none
        else
          match t.reason.(v) with
          | No_reason -> S.R_none
          | R_clause c -> if c.deleted then S.R_dangling else S.R_clause c.cid
          | R_xor x -> if x.xdeleted then S.R_dangling else S.R_xor x.xid
          | R_gauss (m, row) ->
              if List.memq m t.matrices && row < Gauss.num_rows m then
                S.R_gauss (Gauss.group m, row)
              else S.R_dangling)
  in
  let matrices =
    List.map
      (fun m ->
        { S.g_group = Gauss.group m;
          g_dirty = Gauss.is_dirty m;
          g_rows =
            Array.map
              (fun (r : Gauss.row_dump) ->
                { S.g_vars = r.d_vars; g_rhs = r.d_rhs; g_active = r.d_active;
                  g_basic = r.d_basic; g_w1 = r.d_w1; g_w2 = r.d_w2 })
              (Gauss.dump m) })
      t.matrices
  in
  let heap, heap_index = Order_heap.snapshot t.order in
  let vec_view name v = { S.v_name = name; v_size = Vec.size v; v_capacity = Vec.capacity v } in
  let vecs =
    let acc =
      ref
        [ vec_view "clauses" t.clauses;
          vec_view "learnts" t.learnts;
          vec_view "xors" t.xors;
          vec_view "trail" t.trail;
          vec_view "trail_lim" t.trail_lim ]
    in
    for l = 0 to (2 * n) + 1 do
      acc := vec_view "watches" t.watches.(l) :: !acc
    done;
    for v = 1 to n do
      acc := vec_view "xwatches" t.xwatches.(v) :: !acc
    done;
    !acc
  in
  { S.nvars = n;
    ok = t.ok;
    broken_by = t.broken_by;
    num_groups = List.length t.groups;
    decision_level = Vec.size t.trail_lim;
    qhead = t.qhead;
    at_fixpoint = t.qhead = Vec.size t.trail;
    assigns = Array.sub t.assigns 0 (n + 1);
    level = Array.sub t.level 0 (n + 1);
    assign_group = Array.sub t.assign_group 0 (n + 1);
    reason;
    trail = Array.init (Vec.size t.trail) (Vec.get t.trail);
    trail_lim = Array.init (Vec.size t.trail_lim) (Vec.get t.trail_lim);
    clauses;
    xors;
    matrices;
    watches;
    xwatches;
    heap;
    heap_index = Array.sub heap_index 0 (n + 1);
    activity = Array.sub t.activity 0 (n + 1);
    lost_unit_groups = List.map fst t.lost_units;
    vecs }

let check_invariants t =
  Audit.Ownership.check t.owner;
  Audit.Solver_invariants.check (audit_view t)

(* Sampled sweep for hot paths (the search loop's propagation
   fixpoints): free when audit mode is off. *)
let maybe_audit t = if Audit.tick () then check_invariants t

(* Model auditing runs on every Sat (not sampled), so it avoids the
   full view construction: direct evaluation over the attached store. *)
let audit_model t =
  match (t.model_valid, t.saved_model) with
  | true, Some m ->
      let value v = Cnf.Model.value m v in
      (* width-1 clauses are absorbed into level-0 trail facts rather
         than stored, so the root trail is part of the clause set *)
      let root_end =
        if Vec.size t.trail_lim = 0 then Vec.size t.trail
        else Vec.get t.trail_lim 0
      in
      for i = 0 to root_end - 1 do
        let l = Vec.get t.trail i in
        if value (lit_var l) <> lit_is_pos l then
          Audit.fail ~invariant:"model-audit"
            ~detail:"returned model contradicts a level-0 fact"
            [ ("lit", itos l); ("var", itos (lit_var l));
              ("trail_pos", itos i) ]
      done;
      let check_clause (c : clause) =
        if not (Array.exists (fun l -> value (lit_var l) = lit_is_pos l) c.lits) then
          Audit.fail ~invariant:"model-audit"
            ~detail:"returned model falsifies an attached clause"
            [ ("clause", itos c.cid);
              ("learnt", string_of_bool c.learnt);
              ("group", itos c.group);
              ("lits", String.concat " " (Array.to_list (Array.map itos c.lits))) ]
      in
      Vec.iter check_clause t.clauses;
      Vec.iter check_clause t.learnts;
      Vec.iter
        (fun (x : xor_constraint) ->
          let parity =
            Array.fold_left (fun p v -> if value v then not p else p) false x.xvars
          in
          if parity <> x.xrhs then
            Audit.fail ~invariant:"model-audit"
              ~detail:"returned model violates an attached XOR's parity"
              [ ("xor", itos x.xid);
                ("group", itos x.xgroup);
                ("vars", String.concat " " (Array.to_list (Array.map itos x.xvars))) ])
        t.xors;
      List.iter
        (fun m ->
          Array.iteri
            (fun row (r : Gauss.row_dump) ->
              let parity =
                Array.fold_left (fun p v -> if value v then not p else p) false r.d_vars
              in
              if parity <> r.d_rhs then
                Audit.fail ~invariant:"model-audit"
                  ~detail:"returned model violates a Gauss matrix row's parity"
                  [ ("matrix_group", itos (Gauss.group m));
                    ("row", itos row);
                    ("vars", String.concat " " (Array.to_list (Array.map itos r.d_vars))) ])
            (Gauss.dump m))
        t.matrices
  | _ -> invalid_arg "Solver.audit_model: last solve was not Sat"

(* Group hygiene is cheap enough to verify after every pop without
   building the full view: one linear scan of the attached store. *)
let check_group_hygiene_light t =
  let ng = List.length t.groups in
  let bad g = g > ng || g < 0 in
  let check_clause (c : clause) =
    if bad c.group then
      Audit.fail ~invariant:"group-hygiene"
        ~detail:"live clause is tagged with a retracted or unknown group"
        [ ("clause", itos c.cid);
          ("group", itos c.group);
          ("num_groups", itos ng);
          ("learnt", string_of_bool c.learnt) ]
  in
  Vec.iter check_clause t.clauses;
  Vec.iter check_clause t.learnts;
  Vec.iter
    (fun (x : xor_constraint) ->
      if bad x.xgroup then
        Audit.fail ~invariant:"group-hygiene"
          ~detail:"live XOR is tagged with a retracted or unknown group"
          [ ("xor", itos x.xid); ("group", itos x.xgroup); ("num_groups", itos ng) ])
    t.xors;
  List.iter
    (fun m ->
      if bad (Gauss.group m) then
        Audit.fail ~invariant:"group-hygiene"
          ~detail:"live Gauss matrix is tagged with a retracted or unknown group"
          [ ("matrix_group", itos (Gauss.group m)); ("num_groups", itos ng) ])
    t.matrices;
  for v = 1 to t.nvars do
    if t.assigns.(v) <> 0 && t.level.(v) = 0 && bad t.assign_group.(v) then
      Audit.fail ~invariant:"group-hygiene"
        ~detail:"level-0 assignment is tagged with a retracted or unknown group"
        [ ("var", itos v); ("group", itos t.assign_group.(v)); ("num_groups", itos ng) ]
  done;
  List.iter
    (fun (g, l) ->
      if bad g then
        Audit.fail ~invariant:"group-hygiene"
          ~detail:"lost-unit ledger references a retracted or unknown group"
          [ ("group", itos g); ("lit", itos l); ("num_groups", itos ng) ])
    t.lost_units

(* ------------------------------------------------------------------ *)
(* Variable growth (activation variables)                              *)

let grow t newcap =
  let old = Array.length t.assigns - 1 in
  if newcap > old then begin
    let cap = max newcap (2 * old) in
    let copy_int a = let b = Array.make (cap + 1) 0 in Array.blit a 0 b 0 (old + 1); b in
    t.assigns <- copy_int t.assigns;
    t.level <- copy_int t.level;
    t.assign_group <- copy_int t.assign_group;
    let reason = Array.make (cap + 1) No_reason in
    Array.blit t.reason 0 reason 0 (old + 1);
    t.reason <- reason;
    let polarity = Array.make (cap + 1) false in
    Array.blit t.polarity 0 polarity 0 (old + 1);
    t.polarity <- polarity;
    let seen = Array.make (cap + 1) false in
    Array.blit t.seen 0 seen 0 (old + 1);
    t.seen <- seen;
    let activity = Array.make (cap + 1) 0. in
    Array.blit t.activity 0 activity 0 (old + 1);
    t.activity <- activity;
    t.watches <-
      Array.init ((2 * cap) + 2) (fun i ->
          if i < Array.length t.watches then t.watches.(i)
          else Vec.create ~dummy:dummy_clause ());
    t.xwatches <-
      Array.init (cap + 1) (fun i ->
          if i < Array.length t.xwatches then t.xwatches.(i)
          else Vec.create ~dummy:dummy_xor ());
    (* the heap holds a reference to the activity array: rebuild it *)
    let order = Order_heap.create cap t.activity in
    for v = 1 to t.nvars do
      if t.assigns.(v) = 0 then Order_heap.insert order v
    done;
    t.order <- order
  end

let new_var t =
  let v = t.nvars + 1 in
  grow t v;
  t.nvars <- v;
  Order_heap.insert t.order v;
  v

(* ------------------------------------------------------------------ *)
(* Activity                                                            *)

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 1 to t.nvars do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Order_heap.update t.order v

let var_decay_all t = t.var_inc <- t.var_inc *. var_decay

let clause_bump t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (cl : clause) -> cl.activity <- cl.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let clause_decay_all t = t.cla_inc <- t.cla_inc *. clause_decay

(* ------------------------------------------------------------------ *)
(* Assignment management                                               *)

let enqueue ?(agroup = 0) t l reason =
  match value_lit t l with
  | 1 -> true
  | -1 -> false
  | _ ->
      let v = lit_var l in
      t.assigns.(v) <- (if lit_is_pos l then 1 else -1);
      t.level.(v) <- decision_level t;
      t.reason.(v) <- reason;
      if decision_level t = 0 then begin
        let g =
          match reason with
          | No_reason -> agroup
          | R_clause c ->
              Array.fold_left
                (fun acc q ->
                  let u = lit_var q in
                  if u = v then acc else max acc t.assign_group.(u))
                c.group c.lits
          | R_xor x ->
              Array.fold_left
                (fun acc u -> if u = v then acc else max acc t.assign_group.(u))
                x.xgroup x.xvars
          | R_gauss (m, row) ->
              Array.fold_left
                (fun acc u -> if u = v then acc else max acc t.assign_group.(u))
                (Gauss.group m)
                (Gauss.row_vars m ~row)
        in
        t.assign_group.(v) <- g
      end;
      Vec.push t.trail l;
      true

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = lit_var l in
      t.polarity.(v) <- lit_is_pos l;
      t.assigns.(v) <- 0;
      t.reason.(v) <- No_reason;
      Order_heap.insert t.order v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail;
    (* re-activate Gauss rows detached above the new trail bound; the
       matrices repair themselves at the next propagation *)
    List.iter (fun m -> Gauss.cancel_to m ~trail_size:bound) t.matrices
  end

(* ------------------------------------------------------------------ *)
(* Gauss engine glue                                                   *)

let gauss_enqueue t m lit row =
  t.n_xor_propagations <- t.n_xor_propagations + 1;
  ignore (enqueue t lit (R_gauss (m, row)))

let matrix_for t g =
  match List.find_opt (fun m -> Gauss.group m = g) t.matrices with
  | Some m -> m
  | None ->
      let m = Gauss.create ~group:g in
      t.matrices <- m :: t.matrices;
      m

(* ------------------------------------------------------------------ *)
(* Clause attachment                                                   *)

let attach_clause t c =
  Vec.push t.watches.(c.lits.(0)) c;
  Vec.push t.watches.(c.lits.(1)) c

let attach_xor t x =
  Vec.push t.xwatches.(x.xvars.(x.wa)) x;
  Vec.push t.xwatches.(x.xvars.(x.wb)) x

(* ------------------------------------------------------------------ *)
(* Propagation                                                         *)

exception Found_conflict of conflict

let xor_parity_assigned t x ~except =
  (* Parity of the assigned variables of [x], skipping position [except]
     (pass -1 to include everything). Unassigned variables contribute 0. *)
  let p = ref false in
  Array.iteri
    (fun i v ->
      if i <> except && t.assigns.(v) = 1 then p := not !p)
    x.xvars;
  !p

let propagate_clauses t p =
  (* [p] just became true: visit clauses watching ¬p. *)
  let false_lit = lit_neg p in
  let ws = t.watches.(false_lit) in
  let i = ref 0 and j = ref 0 in
  let n = Vec.size ws in
  (try
     while !i < n do
       let c = Vec.get ws !i in
       incr i;
       if c.deleted then () (* drop lazily *)
       else begin
         let lits = c.lits in
         if lits.(0) = false_lit then begin
           lits.(0) <- lits.(1);
           lits.(1) <- false_lit
         end;
         if value_lit t lits.(0) = 1 then begin
           Vec.set ws !j c;
           incr j
         end
         else begin
           (* look for a new literal to watch *)
           let len = Array.length lits in
           let k = ref 2 in
           while !k < len && value_lit t lits.(!k) = -1 do
             incr k
           done;
           if !k < len then begin
             lits.(1) <- lits.(!k);
             lits.(!k) <- false_lit;
             Vec.push t.watches.(lits.(1)) c
             (* not kept in this watch list *)
           end
           else begin
             (* unit or conflicting *)
             Vec.set ws !j c;
             incr j;
             if value_lit t lits.(0) = -1 then begin
               (* keep the remaining watches before failing *)
               while !i < n do
                 Vec.set ws !j (Vec.get ws !i);
                 incr i;
                 incr j
               done;
               Vec.shrink ws !j;
               raise (Found_conflict (C_clause c))
             end
             else ignore (enqueue t lits.(0) (R_clause c))
           end
         end
       end
     done;
     Vec.shrink ws !j
   with Found_conflict _ as e -> raise e)

let propagate_xors t p =
  let v0 = lit_var p in
  let ws = t.xwatches.(v0) in
  let i = ref 0 and j = ref 0 in
  let n = Vec.size ws in
  (try
     while !i < n do
       let x = Vec.get ws !i in
       incr i;
       if x.xdeleted then () (* drop lazily, like deleted clauses *)
       else begin
         let pos = if x.xvars.(x.wa) = v0 then x.wa else x.wb in
         let other_pos = if pos = x.wa then x.wb else x.wa in
         (* search for an unassigned replacement variable *)
         let len = Array.length x.xvars in
         let repl = ref (-1) in
         let k = ref 0 in
         while !repl < 0 && !k < len do
           if !k <> x.wa && !k <> x.wb && t.assigns.(x.xvars.(!k)) = 0 then repl := !k;
           incr k
         done;
         if !repl >= 0 then begin
           (* move this watch to the replacement *)
           if pos = x.wa then x.wa <- !repl else x.wb <- !repl;
           Vec.push t.xwatches.(x.xvars.(!repl)) x
         end
         else begin
           (* every variable except possibly [other] is assigned *)
           Vec.set ws !j x;
           incr j;
           let other = x.xvars.(other_pos) in
           if t.assigns.(other) = 0 then begin
             let parity_rest = xor_parity_assigned t x ~except:other_pos in
             let implied = if x.xrhs then not parity_rest else parity_rest in
             t.n_xor_propagations <- t.n_xor_propagations + 1;
             ignore (enqueue t (lit_of_var other implied) (R_xor x))
           end
           else begin
             let parity = xor_parity_assigned t x ~except:(-1) in
             if parity <> x.xrhs then begin
               while !i < n do
                 Vec.set ws !j (Vec.get ws !i);
                 incr i;
                 incr j
               done;
               Vec.shrink ws !j;
               raise (Found_conflict (C_xor x))
             end
           end
         end
       end
     done;
     Vec.shrink ws !j
   with Found_conflict _ as e -> raise e)

let propagate_gauss t p =
  let v = lit_var p in
  List.iter
    (fun m ->
      match
        Gauss.on_assign m ~assigns:t.assigns
          ~trail_size:(fun () -> Vec.size t.trail)
          ~enqueue:(gauss_enqueue t m) ~var:v
      with
      | None -> ()
      | Some row -> raise (Found_conflict (C_gauss (m, row))))
    t.matrices

(* Dirty matrices (after a backtrack, a group pop, or a Gauss
   conflict) re-establish their invariant before the queue drains. *)
let repair_gauss t =
  List.iter
    (fun m ->
      if Gauss.is_dirty m then
        match
          Gauss.repair m ~assigns:t.assigns
            ~trail_size:(fun () -> Vec.size t.trail)
            ~enqueue:(gauss_enqueue t m)
        with
        | None -> ()
        | Some row -> raise (Found_conflict (C_gauss (m, row))))
    t.matrices

let propagate t =
  try
    if t.matrices <> [] then repair_gauss t;
    while t.qhead < Vec.size t.trail do
      let p = Vec.get t.trail t.qhead in
      t.qhead <- t.qhead + 1;
      t.n_propagations <- t.n_propagations + 1;
      propagate_clauses t p;
      propagate_xors t p;
      if t.matrices <> [] then propagate_gauss t p
    done;
    None
  with Found_conflict c ->
    t.qhead <- Vec.size t.trail;
    Some c

(* ------------------------------------------------------------------ *)
(* Group accounting                                                    *)

(* Smallest group whose removal dissolves a level-0 conflict: the
   constraint's own group joined with the groups of the level-0 facts
   that falsify it. Only valid when every variable of the conflicting
   constraint is assigned at level 0. *)
let conflict_group_of t = function
  | C_clause c ->
      Array.fold_left
        (fun acc l -> max acc t.assign_group.(lit_var l))
        c.group c.lits
  | C_xor x ->
      Array.fold_left (fun acc v -> max acc t.assign_group.(v)) x.xgroup x.xvars
  | C_gauss (m, row) ->
      Array.fold_left
        (fun acc v -> max acc t.assign_group.(v))
        (Gauss.group m)
        (Gauss.row_vars m ~row)

let mark_broken t g =
  if t.ok then begin
    t.ok <- false;
    t.broken_by <- g
  end
  else t.broken_by <- min t.broken_by g;
  if t.broken_by = 0 then log_proof_empty_once t

let propagate_or_break t =
  match propagate t with
  | None -> ()
  | Some confl -> mark_broken t (conflict_group_of t confl)

(* ------------------------------------------------------------------ *)
(* Reasons as literal arrays (for conflict analysis)                   *)

(* For an XOR-implied literal, the reason clause is
     p ∨ ¬(u1 = b1) ∨ ... — every other variable of the XOR negated as
   currently assigned. The same construction with no implied literal
   yields the conflict clause of a violated XOR. *)
let xor_reason_lits t x ~implied =
  let acc = ref [] in
  Array.iter
    (fun v ->
      if implied < 0 || v <> lit_var implied then begin
        let a = t.assigns.(v) in
        (* the literal that is FALSE under the current assignment *)
        acc := lit_of_var v (a <> 1) :: !acc
      end)
    x.xvars;
  let others = Array.of_list !acc in
  if implied >= 0 then Array.append [| implied |] others else others

let conflict_lits t = function
  | C_clause c -> c.lits
  | C_xor x -> xor_reason_lits t x ~implied:(-1)
  | C_gauss (m, row) -> Gauss.conflict_lits m ~assigns:t.assigns ~row

let reason_lits t v =
  match t.reason.(v) with
  | No_reason -> invalid_arg "Solver.reason_lits: decision variable"
  | R_clause c -> c.lits (* invariant: c.lits.(0) is the implied literal *)
  | R_xor x ->
      let a = t.assigns.(v) in
      let implied = lit_of_var v (a = 1) in
      xor_reason_lits t x ~implied
  | R_gauss (m, row) ->
      let implied = lit_of_var v (t.assigns.(v) = 1) in
      Gauss.reason_lits m ~assigns:t.assigns ~row ~implied

(* ------------------------------------------------------------------ *)
(* Conflict analysis (first UIP) with simple clause minimization       *)

(* Returns (asserting lit, other kept lits, backtrack level, group):
   [group] is the maximum group over every constraint and level-0 fact
   consumed by the derivation — the group the learnt clause belongs
   to, so that popping any contributing group purges it. *)
let analyze t confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size t.trail - 1) in
  let current = decision_level t in
  let dgroup =
    ref
      (match confl with
      | C_clause c -> c.group
      | C_xor x -> x.xgroup
      | C_gauss (m, _) -> Gauss.group m)
  in
  let fold_reason_group = function
    | No_reason -> ()
    | R_clause c -> dgroup := max !dgroup c.group
    | R_xor x -> dgroup := max !dgroup x.xgroup
    | R_gauss (m, _) -> dgroup := max !dgroup (Gauss.group m)
  in
  let bump_reason_clause = function
    | C_clause c when c.learnt -> clause_bump t c
    | _ -> ()
  in
  bump_reason_clause confl;
  let process_lits lits start =
    let len = Array.length lits in
    for k = start to len - 1 do
      let q = lits.(k) in
      let v = lit_var q in
      if t.level.(v) = 0 then
        (* resolved away against a level-0 fact: the derivation now
           depends on that fact's group *)
        dgroup := max !dgroup t.assign_group.(v)
      else if not t.seen.(v) then begin
        t.seen.(v) <- true;
        var_bump t v;
        if t.level.(v) >= current then incr counter
        else learnt := q :: !learnt
      end
    done
  in
  process_lits (conflict_lits t confl) 0;
  let continue = ref true in
  while !continue do
    (* find the next seen literal on the trail *)
    while not t.seen.(lit_var (Vec.get t.trail !index)) do
      decr index
    done;
    let lit = Vec.get t.trail !index in
    decr index;
    let v = lit_var lit in
    t.seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      p := lit;
      continue := false
    end
    else begin
      (match t.reason.(v) with
      | R_clause c when c.learnt -> clause_bump t c
      | _ -> ());
      fold_reason_group t.reason.(v);
      process_lits (reason_lits t v) 1
    end
  done;
  let asserting = lit_neg !p in
  (* simple minimization: a literal is redundant if its reason is fully
     subsumed by the other literals of the learnt clause *)
  let learnt_list = !learnt in
  List.iter (fun q -> t.seen.(lit_var q) <- true) learnt_list;
  let redundant q =
    let v = lit_var q in
    match t.reason.(v) with
    | No_reason -> false
    | r ->
        let lits = reason_lits t v in
        let ok = ref true in
        Array.iteri
          (fun k rl ->
            if k > 0 then begin
              let u = lit_var rl in
              if t.level.(u) > 0 && not t.seen.(u) then ok := false
            end)
          lits;
        if !ok then begin
          (* the dropped literal's reason joins the derivation *)
          fold_reason_group r;
          Array.iteri
            (fun k rl ->
              if k > 0 then begin
                let u = lit_var rl in
                if t.level.(u) = 0 then dgroup := max !dgroup t.assign_group.(u)
              end)
            lits
        end;
        !ok
  in
  let kept = List.filter (fun q -> not (redundant q)) learnt_list in
  List.iter (fun q -> t.seen.(lit_var q) <- false) learnt_list;
  (* backtrack level = max level among kept literals *)
  let blevel = List.fold_left (fun acc q -> max acc t.level.(lit_var q)) 0 kept in
  (asserting, kept, blevel, !dgroup)

(* ------------------------------------------------------------------ *)
(* Learnt clause recording                                             *)

let record_learnt t ~group asserting others blevel =
  log_proof t (asserting :: others);
  t.n_learnt_total <- t.n_learnt_total + 1;
  cancel_until t blevel;
  match others with
  | [] ->
      (* unit learnt: asserting at level 0 *)
      if not (enqueue ~agroup:group t asserting No_reason) then
        mark_broken t (max group t.assign_group.(lit_var asserting))
  | _ ->
      (* place a literal of the backtrack level in watch position 1 *)
      let arr = Array.of_list (asserting :: others) in
      let best = ref 1 in
      for k = 2 to Array.length arr - 1 do
        if t.level.(lit_var arr.(k)) > t.level.(lit_var arr.(!best)) then best := k
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!best);
      arr.(!best) <- tmp;
      let c =
        { cid = fresh_cid t; lits = arr; learnt = true; group; activity = 0.; deleted = false }
      in
      clause_bump t c;
      attach_clause t c;
      Vec.push t.learnts c;
      ignore (enqueue t asserting (R_clause c))

(* ------------------------------------------------------------------ *)
(* Learnt database reduction                                           *)

let is_reason t c =
  Array.length c.lits > 0
  &&
  let v = lit_var c.lits.(0) in
  t.assigns.(v) <> 0
  && (match t.reason.(v) with R_clause c' -> c' == c | _ -> false)

let reduce_db t =
  Vec.sort (fun (a : clause) (b : clause) -> Float.compare a.activity b.activity) t.learnts;
  let n = Vec.size t.learnts in
  let limit = n / 2 in
  let removed = ref 0 in
  for i = 0 to n - 1 do
    let c = Vec.get t.learnts i in
    if
      !removed < limit
      && Array.length c.lits > 2
      && not (is_reason t c)
    then begin
      c.deleted <- true;
      log_delete t (Array.to_list c.lits);
      incr removed
    end
  done;
  Vec.filter_in_place (fun c -> not c.deleted) t.learnts
(* deleted clauses are skipped and dropped lazily during propagation *)

(* ------------------------------------------------------------------ *)
(* Adding constraints (decision level 0 only)                          *)

(* Assert the unit fact [l] belonging to [group], against the full
   current level-0 state. Unit facts have no clause object: the trail
   entry (with its [assign_group] tag) IS the storage, so the cases
   where the current state hides the fact need care. *)
let assert_unit_core t ~group l =
  match value_lit t l with
  | 1 ->
      (* already true — possibly via a higher group, in which case the
         fact must be re-tagged or it would vanish with that group *)
      let v = lit_var l in
      if t.assign_group.(v) > group then begin
        t.assign_group.(v) <- group;
        t.reason.(v) <- No_reason
      end
  | -1 ->
      (* falsified by a higher-group assignment (same-or-lower-group
         falsity was substituted away by the caller): conflict, and the
         fact itself must survive that group's pop *)
      let fg = t.assign_group.(lit_var l) in
      if fg > group then t.lost_units <- (group, l) :: t.lost_units;
      mark_broken t (max group fg)
  | _ ->
      ignore (enqueue ~agroup:group t l No_reason);
      if t.ok then propagate_or_break t

(* Install a clause of >= 2 literals, none of which is satisfied or
   falsified by assignments of groups <= c.group; higher-group level-0
   assignments may still touch it, so repair the watch invariant
   against the full state and propagate if it is unit. *)
let install_clause t c =
  let lits = c.lits in
  let len = Array.length lits in
  let nf = ref 0 in
  (try
     for k = 0 to len - 1 do
       if value_lit t lits.(k) <> -1 then begin
         let tmp = lits.(!nf) in
         lits.(!nf) <- lits.(k);
         lits.(k) <- tmp;
         incr nf;
         if !nf = 2 then raise Exit
       end
     done
   with Exit -> ());
  attach_clause t c;
  Vec.push t.clauses c;
  if !nf = 0 then
    (* all literals false under the full state: conflict attributable
       to the falsifying groups; the clause stays attached so that
       re-propagation after a pop revives it *)
    mark_broken t (conflict_group_of t (C_clause c))
  else if !nf = 1 && value_lit t lits.(0) = 0 then begin
    ignore (enqueue t lits.(0) (R_clause c));
    if t.ok then propagate_or_break t
  end

let install_xor t x =
  let len = Array.length x.xvars in
  let u1 = ref (-1) and u2 = ref (-1) in
  for k = 0 to len - 1 do
    if t.assigns.(x.xvars.(k)) = 0 then
      if !u1 < 0 then u1 := k else if !u2 < 0 then u2 := k
  done;
  if !u2 >= 0 then begin
    x.wa <- !u1;
    x.wb <- !u2;
    attach_xor t x;
    Vec.push t.xors x
  end
  else if !u1 >= 0 then begin
    (* unit under the full state (the assigned vars belong to higher
       groups — same-group ones were substituted by the caller) *)
    x.wa <- !u1;
    x.wb <- (if !u1 = 0 then 1 else 0);
    attach_xor t x;
    Vec.push t.xors x;
    let parity_rest = xor_parity_assigned t x ~except:!u1 in
    let implied = if x.xrhs then not parity_rest else parity_rest in
    t.n_xor_propagations <- t.n_xor_propagations + 1;
    ignore (enqueue t (lit_of_var x.xvars.(!u1) implied) (R_xor x));
    if t.ok then propagate_or_break t
  end
  else begin
    x.wa <- 0;
    x.wb <- (if len > 1 then 1 else 0);
    attach_xor t x;
    Vec.push t.xors x;
    let parity = xor_parity_assigned t x ~except:(-1) in
    if parity <> x.xrhs then mark_broken t (conflict_group_of t (C_xor x))
  end

(* Normalize raw int literals for insertion into [group]: sort, dedup,
   detect tautologies, substitute level-0 facts of groups <= [group].
   [None] = the clause is already satisfied (or tautological). *)
let normalize_for_group t group raw =
  let sorted = List.sort_uniq Int.compare raw in
  let rec scan acc = function
    | [] -> Some (List.rev acc)
    | l :: rest ->
        if List.mem (lit_neg l) rest then None
        else begin
          match value_lit_upto t group l with
          | 1 -> None
          | -1 -> scan acc rest
          | _ -> scan (l :: acc) rest
        end
  in
  scan [] sorted

let add_clause t lits =
  require_root t "Solver.add_clause";
  Audit.Ownership.check t.owner;
  if t.ok then begin
    let raw = List.map (fun l -> (Cnf.Lit.to_index l : int)) lits in
    match normalize_for_group t 0 raw with
    | None -> ()
    | Some [] -> mark_broken t 0
    | Some [ l ] -> assert_unit_core t ~group:0 l
    | Some (_ :: _ :: _ as ls) ->
        install_clause t
          {
            cid = fresh_cid t;
            lits = Array.of_list ls;
            learnt = false;
            group = 0;
            activity = 0.;
            deleted = false;
          }
  end

let add_xor_general t ~group (x : Cnf.Xor_clause.t) =
  if t.ok then begin
    (* substitute level-0 facts of groups <= [group] *)
    let rhs = ref x.rhs in
    let vars =
      Array.to_list x.vars
      |> List.filter (fun v ->
             if t.assigns.(v) <> 0 && t.assign_group.(v) <= group then begin
               if t.assigns.(v) = 1 then rhs := not !rhs;
               false
             end
             else true)
    in
    match vars with
    | [] -> if !rhs then mark_broken t group
    | [ v ] -> assert_unit_core t ~group (lit_of_var v !rhs)
    | _ :: _ :: _ when t.use_gauss ->
        let m = matrix_for t group in
        (match
           Gauss.add_row m ~assigns:t.assigns
             ~trail_size:(fun () -> Vec.size t.trail)
             ~enqueue:(gauss_enqueue t m) ~vars ~rhs:!rhs
         with
        | Some row -> mark_broken t (conflict_group_of t (C_gauss (m, row)))
        | None -> if t.ok then propagate_or_break t)
    | _ :: _ :: _ ->
        install_xor t
          {
            xid = fresh_cid t;
            xvars = Array.of_list vars;
            xrhs = !rhs;
            xgroup = group;
            xdeleted = false;
            wa = 0;
            wb = 1;
          }
  end

let add_xor t (x : Cnf.Xor_clause.t) =
  require_root t "Solver.add_xor";
  Audit.Ownership.check t.owner;
  if t.proof <> None then
    invalid_arg "Solver.add_xor: proof logging excludes XOR constraints";
  add_xor_general t ~group:0 x

let create ?gauss (f : Cnf.Formula.t) =
  let t = create_empty ?gauss f.num_vars in
  Array.iter (fun c -> add_clause t (Array.to_list c)) f.clauses;
  Array.iter (fun x -> add_xor t x) f.xors;
  t

(* ------------------------------------------------------------------ *)
(* Groups                                                              *)

let push_group t =
  require_root t "Solver.push_group";
  Audit.Ownership.check t.owner;
  if t.proof <> None then
    invalid_arg "Solver.push_group: proof logging excludes groups";
  let a =
    match t.free_act_vars with
    | v :: rest ->
        t.free_act_vars <- rest;
        v
    | [] -> new_var t
  in
  t.groups <- a :: t.groups

let add_group_clause t lits =
  require_root t "Solver.add_group_clause";
  match t.groups with
  | [] -> invalid_arg "Solver.add_group_clause: no group pushed"
  | a :: _ ->
      if t.ok then begin
        let g = List.length t.groups in
        let raw = List.map (fun l -> (Cnf.Lit.to_index l : int)) lits in
        match normalize_for_group t g raw with
        | None -> ()
        | Some [] ->
            (* the clause body is false given groups <= g: with the
               guard appended, this is the unit fact (a) at group g —
               solving under the activation assumption ¬a will report
               Unsat through the failed-assumption path *)
            assert_unit_core t ~group:g (lit_of_var a true)
        | Some ls ->
            install_clause t
              {
                cid = fresh_cid t;
                lits = Array.of_list (ls @ [ lit_of_var a true ]);
                learnt = false;
                group = g;
                activity = 0.;
                deleted = false;
              }
      end

let add_group_xor t (x : Cnf.Xor_clause.t) =
  require_root t "Solver.add_group_xor";
  match t.groups with
  | [] -> invalid_arg "Solver.add_group_xor: no group pushed"
  | _ :: _ -> add_xor_general t ~group:(List.length t.groups) x

let pop_group t =
  require_root t "Solver.pop_group";
  Audit.Ownership.check t.owner;
  match t.groups with
  | [] -> invalid_arg "Solver.pop_group: no group pushed"
  | a :: rest ->
      let g = List.length t.groups in
      t.groups <- rest;
      (* detach the group's constraints and every learnt clause whose
         derivation used them (group tags are monotone through
         resolution, so a single comparison suffices) *)
      Vec.iter (fun (c : clause) -> if c.group >= g then c.deleted <- true) t.clauses;
      Vec.filter_in_place (fun (c : clause) -> not c.deleted) t.clauses;
      Vec.iter (fun (c : clause) -> if c.group >= g then c.deleted <- true) t.learnts;
      Vec.filter_in_place (fun (c : clause) -> not c.deleted) t.learnts;
      Vec.iter (fun (x : xor_constraint) -> if x.xgroup >= g then x.xdeleted <- true) t.xors;
      Vec.filter_in_place (fun (x : xor_constraint) -> not x.xdeleted) t.xors;
      (* the popped group's matrix goes wholesale; survivors lose their
         trail-based detach marks (the trail is about to be filtered and
         re-propagated from qhead = 0), so they rebuild at next repair *)
      t.matrices <-
        List.filter
          (fun m ->
            if Gauss.group m >= g then begin
              Gauss.drop m;
              false
            end
            else begin
              Gauss.reset m;
              true
            end)
          t.matrices;
      (* drop level-0 facts that depended on the group *)
      Vec.filter_in_place
        (fun l ->
          let v = lit_var l in
          if t.assign_group.(v) >= g then begin
            t.polarity.(v) <- lit_is_pos l;
            t.assigns.(v) <- 0;
            t.reason.(v) <- No_reason;
            Order_heap.insert t.order v;
            false
          end
          else true)
        t.trail;
      t.qhead <- 0;
      t.free_act_vars <- a :: t.free_act_vars;
      if (not t.ok) && t.broken_by >= g then begin
        t.ok <- true;
        t.broken_by <- 0
      end;
      (* revive unit facts that were shadowed by the popped group *)
      let revive, keep =
        List.partition (fun (g0, _) -> g0 < g) t.lost_units
      in
      t.lost_units <- keep;
      (if t.ok then begin
         List.iter (fun (g0, l) -> if t.ok then assert_unit_core t ~group:g0 l) revive;
         if t.ok then propagate_or_break t
       end
       else
         (* still broken by a lower group: keep the units pending *)
         t.lost_units <- revive @ t.lost_units);
      (* group hygiene is exactly what a pop can break: scan it after
         every pop; the full (expensive) sweep is sampled *)
      if Audit.is_enabled () then begin
        check_group_hygiene_light t;
        if Audit.tick () then check_invariants t
      end

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

let pick_branch_var t =
  let rec go () =
    match Order_heap.pop_max t.order with
    | None -> None
    | Some v -> if t.assigns.(v) = 0 then Some v else go ()
  in
  go ()

(* Collect the subset of assumptions responsible for forcing ¬p, by
   walking the implication graph down from p's falsification. Called
   before backtracking, with [p] an assumption whose value is false. *)
let analyze_final t p =
  t.failed <- [ p ];
  let v0 = lit_var p in
  if t.level.(v0) > 0 then begin
    t.seen.(v0) <- true;
    let bottom = Vec.get t.trail_lim 0 in
    for i = Vec.size t.trail - 1 downto bottom do
      let l = Vec.get t.trail i in
      let v = lit_var l in
      if t.seen.(v) then begin
        t.seen.(v) <- false;
        match t.reason.(v) with
        | No_reason ->
            (* a decision below the assumption levels is itself an
               assumption: record it as assumed *)
            t.failed <- l :: t.failed
        | _ ->
            let lits = reason_lits t v in
            Array.iteri
              (fun k q ->
                if k > 0 then begin
                  let u = lit_var q in
                  if t.level.(u) > 0 then t.seen.(u) <- true
                end)
              lits
      end
    done;
    t.seen.(v0) <- false
  end

type search_outcome = S_sat | S_unsat | S_assump_failed | S_restart | S_timeout

let search t ~assumps ~budget ~deadline =
  let local_conflicts = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    match propagate t with
    | Some confl ->
        t.n_conflicts <- t.n_conflicts + 1;
        incr local_conflicts;
        if decision_level t = 0 then begin
          mark_broken t (conflict_group_of t confl);
          outcome := Some S_unsat
        end
        else begin
          let asserting, others, blevel, dgroup = analyze t confl in
          record_learnt t ~group:dgroup asserting others blevel;
          if not t.ok then outcome := Some S_unsat
          else begin
            var_decay_all t;
            clause_decay_all t
          end
        end
    | None ->
        maybe_audit t;
        if !local_conflicts >= budget then begin
          cancel_until t 0;
          outcome := Some S_restart
        end
        else if
          (match deadline with
          | Some d -> t.n_decisions land 255 = 0 && Unix.gettimeofday () > d
          | None -> false)
        then begin
          cancel_until t 0;
          outcome := Some S_timeout
        end
        else begin
          if float_of_int (Vec.size t.learnts) > t.max_learnts then reduce_db t;
          let dl = decision_level t in
          if dl < Array.length assumps then begin
            (* establish the next assumption before branching *)
            let p = assumps.(dl) in
            match value_lit t p with
            | 1 ->
                (* already true: open a dummy level so the indexing
                   assumption-level <-> decision-level stays aligned *)
                Vec.push t.trail_lim (Vec.size t.trail)
            | -1 ->
                analyze_final t p;
                outcome := Some S_assump_failed
            | _ ->
                t.n_decisions <- t.n_decisions + 1;
                Vec.push t.trail_lim (Vec.size t.trail);
                ignore (enqueue t p No_reason)
          end
          else
            match pick_branch_var t with
            | None -> outcome := Some S_sat
            | Some v ->
                t.n_decisions <- t.n_decisions + 1;
                Vec.push t.trail_lim (Vec.size t.trail);
                ignore (enqueue t (lit_of_var v t.polarity.(v)) No_reason)
        end
  done;
  match !outcome with
  | Some o -> o
  | None ->
      Audit.fail ~invariant:"search-outcome"
        ~detail:"search loop exited without recording an outcome"
        [ ("decision_level", itos (decision_level t));
          ("trail", itos (Vec.size t.trail));
          ("conflicts", itos t.n_conflicts) ]

let solve ?(conflict_limit = max_int) ?deadline ?(assumptions = []) t =
  Obs.Trace.span ~cat:"sat" "solver.solve" @@ fun () ->
  require_root t "Solver.solve";
  Audit.Ownership.check t.owner;
  maybe_audit t;
  t.model_valid <- false;
  t.failed <- [];
  if not t.ok then begin
    if t.broken_by = 0 then log_proof_empty_once t;
    Unsat
  end
  else begin
    let assumps =
      let acts = List.rev_map (fun a -> lit_of_var a false) t.groups in
      let user = List.map (fun l -> (Cnf.Lit.to_index l : int)) assumptions in
      Array.of_list (acts @ user)
    in
    match propagate t with
    | Some confl ->
        mark_broken t (conflict_group_of t confl);
        Unsat
    | None ->
        t.max_learnts <-
          max 1000. (float_of_int (Vec.size t.clauses) /. 3.);
        let start_conflicts = t.n_conflicts in
        let rec run i =
          if t.n_conflicts - start_conflicts >= conflict_limit then begin
            cancel_until t 0;
            Unknown
          end
          else begin
            let budget = Luby.budget ~base:restart_base i in
            match search t ~assumps ~budget ~deadline with
            | S_sat ->
                let m =
                  Cnf.Model.make t.nvars (fun v -> t.assigns.(v) = 1)
                in
                t.saved_model <- Some m;
                t.model_valid <- true;
                if Audit.is_enabled () then begin
                  if Audit.tick () then check_invariants t;
                  audit_model t
                end;
                cancel_until t 0;
                t.max_learnts <- t.max_learnts *. 1.1;
                Sat
            | S_unsat -> Unsat (* ok / broken_by already recorded *)
            | S_assump_failed ->
                cancel_until t 0;
                Unsat
            | S_timeout -> Unknown
            | S_restart ->
                t.n_restarts <- t.n_restarts + 1;
                run (i + 1)
          end
        in
        run 1
  end

let model t =
  match (t.model_valid, t.saved_model) with
  | true, Some m -> m
  | _ -> invalid_arg "Solver.model: last solve was not Sat"

let enable_proof_logging t =
  if Vec.size t.xors > 0 then
    invalid_arg "Solver.enable_proof_logging: XOR constraints present";
  if List.exists (fun m -> Gauss.num_rows m > 0) t.matrices then
    invalid_arg "Solver.enable_proof_logging: XOR constraints present";
  if t.groups <> [] then
    invalid_arg "Solver.enable_proof_logging: groups present";
  if t.proof = None then t.proof <- Some []

let proof t = match t.proof with None -> [] | Some steps -> List.rev steps

(* Test hook: plain-data snapshot of every matrix, keyed by group. *)
let gauss_dump t =
  List.rev_map (fun m -> (Gauss.group m, Gauss.dump m)) t.matrices

(* ------------------------------------------------------------------ *)
(* Test-only fault injection (mutation tests for the sanitizer)        *)

module Corrupt = struct
  let first_live_clause t =
    if Vec.size t.clauses > 0 then Some (Vec.get t.clauses 0)
    else if Vec.size t.learnts > 0 then Some (Vec.get t.learnts 0)
    else None

  let drop_watch t =
    match first_live_clause t with
    | None -> false
    | Some c ->
        Vec.filter_in_place (fun (c' : clause) -> c' != c) t.watches.(c.lits.(0));
        true

  let stale_group t =
    match first_live_clause t with
    | None -> false
    | Some c ->
        c.group <- List.length t.groups + 1;
        true

  let flip_xor_parity t =
    let found = ref false in
    Vec.iter
      (fun (x : xor_constraint) ->
        if (not !found) && Array.for_all (fun v -> t.assigns.(v) <> 0) x.xvars then begin
          x.xrhs <- not x.xrhs;
          found := true
        end)
      t.xors;
    !found

  let bump_trail_level t =
    if Vec.size t.trail = 0 then false
    else begin
      let v = lit_var (Vec.get t.trail 0) in
      t.level.(v) <- t.level.(v) + 1;
      true
    end

  let scramble_heap t = Order_heap.corrupt_swap t.order 0 1

  let flip_model_bit t =
    match (t.model_valid, t.saved_model) with
    | true, Some m when t.nvars >= 1 ->
        let m' =
          Cnf.Model.make t.nvars (fun v ->
              if v = 1 then not (Cnf.Model.value m 1) else Cnf.Model.value m v)
        in
        t.saved_model <- Some m';
        true
    | _ -> false

  let gauss_flip_rhs t = List.exists Gauss.Corrupt.flip_rhs t.matrices
  let gauss_steal_basic t = List.exists Gauss.Corrupt.steal_basic t.matrices

  let gauss_false_detach t =
    List.exists (fun m -> Gauss.Corrupt.false_detach m ~assigns:t.assigns) t.matrices

  let gauss_drop_watch t = List.exists Gauss.Corrupt.drop_watch t.matrices
end

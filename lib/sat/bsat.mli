(** Bounded model enumeration — the [BSAT(F, N)] subroutine of the
    paper: returns up to [N] distinct witnesses of [F].

    Distinctness (and the blocking clauses enforcing it) is measured
    on the [blocking_vars] projection, which defaults to the formula's
    sampling set. When the sampling set is an independent support this
    is exactly the paper's optimization of "blocking clauses restricted
    to variables in S": the enumerated witnesses are still pairwise
    distinct as full assignments, but the blocking clauses are short.

    Two entry points share the semantics: the one-shot {!enumerate}
    builds a fresh solver per call, while a {!Session.t} keeps one
    solver alive across calls, swapping XOR hash layers in and out via
    retractable constraint groups so that learnt clauses about the
    base formula are paid for once. The two paths return equal
    outcomes (models as sets, counts, exhaustion) on the same
    enumeration problem. *)

type outcome = {
  models : Cnf.Model.t list;
      (** in canonical (model-key) order — deliberately {e not}
          discovery order, so that the outcome is independent of
          solver history (fresh vs. warm session, serial vs.
          parallel schedule) whenever the witness set itself is *)
  exhausted : bool;  (** [true] iff no further witness exists *)
  timed_out : bool;  (** [true] iff the deadline interrupted the search *)
  conflicts : int;  (** solver conflicts spent on this enumeration *)
  stats : Solver.stats;  (** full solver-statistics delta for the call *)
  reused : bool;
      (** [true] when served by a session that had already run at
          least one enumeration (a warm-start hit) *)
}

val enumerate :
  ?deadline:float ->
  ?blocking_vars:int array ->
  ?gauss:bool ->
  limit:int ->
  Cnf.Formula.t ->
  outcome
(** [gauss] (default [true]) selects the XOR engine: in-search
    Gauss-Jordan elimination, or — when [false] — a one-shot static
    RREF followed by parity 2-watch propagation (the differential
    reference path). Both return equal outcomes; canonical model
    ordering makes them bit-identical.

    Every returned model is verified against the formula; a violation
    (a solver soundness bug) raises [Audit.Violation] with invariant
    [model-audit]. With audit mode on, each witness is additionally
    checked against the accumulated blocking-clause set (invariant
    [blocking-set]): a repeated projection is reported instead of
    silently skewing the enumeration. *)

val count_upto : ?deadline:float -> ?gauss:bool -> limit:int -> Cnf.Formula.t -> int
(** [count_upto ~limit f] is [min (number of distinct projected
    witnesses) limit]; convenience wrapper over {!enumerate}. *)

(** Persistent enumeration sessions: one CDCL solver reused across
    many [BSAT(F ∧ h, N)] calls that share the base formula [F] and
    vary only the XOR hash layer [h]. *)
module Session : sig
  type t

  val create : ?blocking_vars:int array -> ?gauss:bool -> Cnf.Formula.t -> t
  (** Load the base formula once (XORs row-reduced as in the one-shot
      path). [blocking_vars] defaults to the formula's sampling set
      and is fixed for the session's lifetime, as is the XOR engine
      choice [gauss] (default [true], as in {!enumerate}: with the
      Gauss engine an XOR-layer swap is a matrix push/pop; without it,
      each layer is statically row-reduced before attachment). *)

  val enumerate :
    ?deadline:float ->
    ?xors:Cnf.Xor_clause.t list ->
    ?persist_blocking:bool ->
    limit:int ->
    t ->
    outcome
  (** Enumerate up to [limit] witnesses of [base ∧ xors]. The XOR
      layer and the blocking clauses are pushed as one retractable
      group and popped before returning, so successive calls see the
      unmodified base formula plus whatever the solver learnt about
      it. With [persist_blocking] (default [false]) the blocking
      clauses are added to the base formula instead and keep excluding
      the returned witnesses from every later call — the incremental
      form of UniGen's loop-free sampling within one leaf. *)

  val calls : t -> int
  (** Number of [enumerate] calls served so far. *)

  val stats : t -> Solver.stats
  (** Cumulative statistics of the underlying solver. *)

  val formula : t -> Cnf.Formula.t
  val blocking_vars : t -> int array
end

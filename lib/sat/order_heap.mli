(** Indexed binary max-heap over variables, ordered by a mutable
    activity score — the VSIDS decision queue.

    The heap stores variable indices [1 .. n]; activities live in an
    external float array that callers mutate through {!update}. *)

type t

val create : int -> float array -> t
(** [create n activity] builds an empty heap for variables [1 .. n]
    with scores read from [activity] (indexed by variable). *)

val in_heap : t -> int -> bool
val insert : t -> int -> unit
(** No-op if the variable is already present. *)

val update : t -> int -> unit
(** Re-establish heap order after the variable's activity increased. *)

val pop_max : t -> int option
(** Remove and return the variable with the highest activity. *)

val size : t -> int
val rebuild : t -> int list -> unit
(** Clear and re-insert the given variables. *)

val snapshot : t -> int array * int array
(** [(heap, indices)] copies for the audit sweep: heap contents root
    first, and the full variable -> slot index map ([-1] = absent). *)

val corrupt_swap : t -> int -> int -> bool
(** @deprecated Test-only fault injection for the audit mutation
    tests: swaps two heap slots while deliberately leaving the index
    map stale. Returns [false] (state untouched) when the slots do not
    name two distinct in-range positions. Never call this outside
    tests. *)

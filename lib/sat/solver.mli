(** CDCL SAT solver with native XOR-constraint propagation and an
    incremental (assumption + constraint-group) interface.

    This is the CryptoMiniSAT stand-in the paper's implementation
    section calls for: a conflict-driven clause-learning solver
    (two-watched-literal propagation, first-UIP clause learning with
    minimization, VSIDS decision heuristic, phase saving, Luby
    restarts, activity-based learnt-clause deletion) extended with a
    parity engine that propagates XOR constraints through a
    two-watched-variable scheme, generating reason clauses on demand
    so that XOR-derived implications take part in clause learning.

    Clauses and XORs may only be added at decision level 0 (the solver
    backtracks to the root on every [solve] return, so interleaving
    [solve] / [add_clause] — the blocking-clause loop of BSAT — is
    always legal).

    {b Incremental solving.} [push_group] opens a retractable
    constraint group: clauses added with [add_group_clause] are
    guarded by a fresh activation literal (assumed false during
    [solve], so the clauses are active), XOR constraints added with
    [add_group_xor] are attached physically and tagged. [pop_group]
    detaches the group's constraints, every learnt clause whose
    derivation consumed them, and every root-level implication that
    depended on them — the solver afterwards answers exactly as if the
    group had never been pushed, while learnt clauses about the
    remaining formula survive. This is the mechanism BSAT sessions use
    to swap XOR hash layers without rebuilding the solver. *)

type t

type result = Sat | Unsat | Unknown
(** [Unknown] is returned when a conflict budget or deadline expires. *)

val create : ?gauss:bool -> Cnf.Formula.t -> t
(** Load a formula (clauses and XORs). [gauss] (default [true])
    selects the XOR propagation engine: in-search Gauss-Jordan
    elimination ({!Gauss}), or the parity 2-watch scheme when [false]
    (the differential reference path, [--no-gauss] on the CLI). Both
    engines produce identical verdicts and — through BSAT's canonical
    model ordering — bit-identical witness streams. *)

val create_empty : ?gauss:bool -> int -> t
(** [create_empty n] is a solver over variables [1 .. n] with no
    constraints yet. [gauss] as in {!create}. *)

val uses_gauss : t -> bool
(** Which XOR engine multi-variable XORs route to. *)

val okay : t -> bool
(** [false] once the clause set is known unsatisfiable at level 0 —
    including unsatisfiability caused by a pushed group, in which case
    popping that group restores [true]. *)

val num_vars : t -> int
(** Grows when activation variables are allocated by {!push_group}. *)

val new_var : t -> int
(** Allocate a fresh variable (above every existing one) and return
    it. Only legal at decision level 0. *)

val add_clause : t -> Cnf.Lit.t list -> unit
(** Add a clause to the base formula (group 0). May set
    [okay t = false]. Tautologies are ignored. Legal while groups are
    pushed: the clause persists across [pop_group]. *)

val add_xor : t -> Cnf.Xor_clause.t -> unit

val solve :
  ?conflict_limit:int -> ?deadline:float -> ?assumptions:Cnf.Lit.t list ->
  t -> result
(** [deadline] is an absolute [Unix.gettimeofday] instant.
    [assumptions] are temporarily enqueued as first decisions; when
    they make the formula unsatisfiable, [solve] returns [Unsat]
    without marking the solver broken and {!failed_assumptions}
    reports a responsible subset. *)

val failed_assumptions : t -> Cnf.Lit.t list
(** After [solve ~assumptions] returned [Unsat] by assumption
    conflict: a subset of the assumptions that is jointly
    unsatisfiable with the formula (including the failing assumption
    itself). Empty when the formula is unsatisfiable outright. May
    include internal activation literals when groups are pushed. *)

val model : t -> Cnf.Model.t
(** The satisfying assignment found by the last [solve]; raises
    [Invalid_argument] if the last call did not return [Sat]. *)

(** {2 Constraint groups} *)

val push_group : t -> unit
(** Open a new retractable constraint group (LIFO). Allocates (or
    recycles) an activation variable; [num_vars] may grow.
    @raise Invalid_argument if proof logging is active. *)

val pop_group : t -> unit
(** Retract the most recent group: its clauses and XORs are detached,
    learnt clauses derived from them are purged, root-level
    implications depending on them are un-assigned, and an UNSAT
    verdict caused by them is rescinded. The solver then behaves
    exactly as if the group had never been pushed.
    @raise Invalid_argument if no group is pushed. *)

val num_groups : t -> int

val add_group_clause : t -> Cnf.Lit.t list -> unit
(** Add a clause to the innermost group (guarded by its activation
    literal). @raise Invalid_argument if no group is pushed. *)

val add_group_xor : t -> Cnf.Xor_clause.t -> unit
(** Add an XOR constraint to the innermost group (attached physically,
    detached on pop — XOR parity semantics admit no guard literal).
    @raise Invalid_argument if no group is pushed. *)

(** {2 Proof logging} *)

val enable_proof_logging : t -> unit
(** Start recording learnt clauses as DRAT/RUP steps; an UNSAT verdict
    then ends the log with the empty clause, checkable by
    {!Drat.refutes} against the original formula. Only meaningful for
    one-shot solving of a pure-CNF formula: XOR constraints and
    constraint groups are refused, and clauses added {e after} a
    [solve] (blocking-clause loops) are new axioms the proof does not
    account for.
    @raise Invalid_argument if the solver holds XOR constraints or
    pushed groups. *)

val proof : t -> Drat.step list
(** Chronological proof log (empty when logging is disabled). *)

(** {2 Correctness audit}

    The solver participates in the [lib/audit] subsystem: API
    preconditions (root-level only) raise a structured
    [Audit.Violation] instead of [Assert_failure], and when audit mode
    is on ([Audit.enable] / [UNIGEN_AUDIT=1]) the solver additionally
    sweeps its internal invariants at propagation fixpoints (sampled
    by [Audit.tick]), at [solve] boundaries, and after every
    [pop_group], and re-checks every model against all attached
    clauses and XORs. With audit mode off none of this runs and
    behaviour is bit-identical. *)

val check_invariants : t -> unit
(** Force a full invariant sweep now (regardless of the audit flag);
    raises [Audit.Violation] on the first broken invariant. See
    [Audit.Solver_invariants] for the invariant catalogue. *)

val audit_view : t -> Audit.State.solver_view
(** The plain-data snapshot the sweep checks (exposed for tests). *)

val audit_model : t -> unit
(** Re-evaluate the last model against every attached clause and XOR;
    raises [Audit.Violation] on a falsified constraint and
    [Invalid_argument] if the last solve did not return [Sat]. *)

(** Test-only fault injection for the sanitizer's mutation tests: each
    function plants one specific corruption in live solver state and
    returns whether it applied (so property tests can discard
    non-applicable cases). Never call these outside tests. *)
module Corrupt : sig
  val drop_watch : t -> bool
  (** Remove a live clause from one of its two watch lists. *)

  val stale_group : t -> bool
  (** Tag a live clause with a group beyond the current group count. *)

  val flip_xor_parity : t -> bool
  (** Negate the right-hand side of a fully assigned attached XOR. *)

  val bump_trail_level : t -> bool
  (** Record a wrong decision level for the first trail entry. *)

  val scramble_heap : t -> bool
  (** Swap two order-heap slots without fixing the index map. *)

  val flip_model_bit : t -> bool
  (** Flip variable 1 in the saved model of the last [Sat] solve. *)

  val gauss_flip_rhs : t -> bool
  (** Negate the right-hand side of a detached Gauss matrix row. *)

  val gauss_steal_basic : t -> bool
  (** Point one Gauss row's basic column at another's (breaks the
      exclusive-pivot invariant). *)

  val gauss_false_detach : t -> bool
  (** Detach a Gauss row that still has unassigned variables. *)

  val gauss_drop_watch : t -> bool
  (** Collapse a Gauss row's two watches onto one column. *)
end

val gauss_dump : t -> (int * Gauss.row_dump array) list
(** Plain-data snapshot of every in-search Gauss matrix, as
    [(group, rows)] pairs (exposed for tests: session push/pop
    round-trips compare these). *)

(** {2 Statistics} *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  xor_propagations : int;
      (** implications enqueued by the XOR engine — Gauss matrix or
          parity 2-watch, whichever is active (a subset of
          [propagations]'s trail pops) *)
  restarts : int;
  learnts : int;  (** learnt clauses recorded, cumulative *)
}

val stats : t -> stats
(** Cumulative across [solve] calls (monotone counters, so per-call
    deltas are [stats_diff]-able). *)

val stats_zero : stats
val stats_add : stats -> stats -> stats
val stats_diff : stats -> stats -> stats
(** [stats_diff after before] — component-wise subtraction. *)

(** Cumulative counters, individually (kept for existing callers). *)

val conflicts : t -> int
val decisions : t -> int
val propagations : t -> int
val xor_propagations : t -> int
val restarts : t -> int
val num_clauses : t -> int
val num_learnts : t -> int

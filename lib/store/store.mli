(** Durable string-keyed blob store: the disk tier under the daemon's
    prepared-state cache.

    The expensive artifact of the sampling pipeline — a prepared state
    (ApproxMC count, κ/pivot window, enumerated easy-case witnesses) —
    is a deterministic function of its cache key, so it can be spilled
    once and reloaded by any later daemon generation or fleet replica
    sharing the spill directory. This module only moves opaque payload
    bytes; serializing a prepared state into a payload is the caller's
    business (see [Service.Spill]), which keeps the store free of any
    dependency on the solver stack.

    {b On-disk format} (versioned; see DESIGN.md "Durable store &
    fleet"): one file per key, named [md5(key).prep] inside the spill
    directory, containing

    {v unigen-store-v1 \n md5(body) \n body v}

    where [body = key \n payload_length \n payload]. The embedded key
    detects filename hash collisions and misplaced files; the digest
    detects truncation and bit rot.

    {b Crash safety}: every write goes through {!atomic_write} — the
    bytes land in a per-writer [.<pid>.tmp] sibling (private even when
    fleet replicas spill the same key into a shared directory), are
    fsynced, and are renamed over the final name, so a reader (or a
    crash) never observes a partial entry. The
    [durable-write-discipline] lint rule flags spill-file writes that
    bypass this helper. A failed {!put} degrades to RAM-only — it
    logs, counts [store.write_error] and returns — because an opt-in
    durability tier must never turn a full disk into a daemon crash.

    {b Corruption policy}: a load that fails verification moves the
    file into a [quarantine/] subdirectory (never raises) and reports
    a plain miss, so the caller falls back to a clean re-preparation.
    Evidence is bounded: only the {!quarantine_keep} most recently
    quarantined files are kept, so systematic corruption (e.g. codec
    version skew across a fleet upgrade) cannot grow the directory
    without bound.

    {b Disk budget}: after each {!put} the store evicts
    least-recently-used entries — by file mtime, which {!find} refreshes
    on every hit — until the directory fits [budget_bytes] again. The
    entry just written is never its own victim, so one oversized entry
    is kept rather than making the tier useless.

    {b Ownership}: not thread-safe by design. Like the cache above it,
    a store instance is owned by the scheduler's domain; every entry
    point checks an {!Audit.Ownership} tag so audit mode turns a
    cross-domain touch into a structured violation. (Fleet replicas are
    separate {e processes}; the atomic-rename discipline makes their
    sharing of one directory safe.)

    Metrics: [store.hit] / [store.miss] / [store.spill] /
    [store.corrupt] / [store.eviction] counters and the [store.bytes]
    gauge; loads and spills run inside [store.load] / [store.spill]
    trace spans. *)

type t

val default_budget_bytes : int
(** 256 MiB. *)

val quarantine_keep : int
(** How many quarantined files are retained (16); older evidence is
    pruned whenever a new file is quarantined. *)

val create : ?budget_bytes:int -> dir:string -> unit -> t
(** Open (and create, including parents) the spill directory, and
    sweep staging ([.tmp]) files old enough that no live writer can
    still own them — leftovers of a writer killed mid-spill.
    @raise Invalid_argument when [budget_bytes < 0].
    @raise Unix.Unix_error when the directory cannot be created. *)

val dir : t -> string
val budget_bytes : t -> int

val put : t -> key:string -> string -> unit
(** Spill one payload under [key] (keys must not contain newlines —
    cache keys never do), overwriting any previous entry, then enforce
    the disk budget. Crash-safe via {!atomic_write}. An I/O failure
    (disk full, permissions, directory vanished) does {e not} raise:
    it counts [store.write_error], logs a [store.spill_failed] warn
    event, and leaves the store unchanged — callers keep serving from
    RAM.
    @raise Invalid_argument when the key contains a newline. *)

val find : t -> key:string -> string option
(** Load and verify the payload for [key]. [None] when absent; a
    present-but-corrupt entry (bad magic, checksum mismatch, embedded
    key mismatch, truncation) is quarantined and also reported as
    [None]. A hit refreshes the entry's mtime (the LRU clock). *)

val mem : t -> key:string -> bool
(** The entry file exists (no verification, no mtime touch). *)

val remove : t -> key:string -> bool
(** Delete the entry outright; [false] when absent. *)

val quarantine : t -> key:string -> reason:string -> unit
(** Move [key]'s entry file into [quarantine/] and count it as
    corrupt — for callers that discover payload-level corruption the
    store's own checksum cannot see (e.g. a codec version mismatch).
    No-op when the file is already gone. *)

val entry_path : t -> key:string -> string
(** Where [key]'s entry lives on disk (for tests and smoke checks). *)

val length : t -> int
(** Number of live entries (quarantined files excluded). *)

val total_bytes : t -> int
(** Bytes held by live entries. *)

val atomic_write : dir:string -> path:string -> string -> unit
(** The one sanctioned write path for spill files: write to a
    per-writer temp sibling ([path.<pid>.tmp], so concurrent fleet
    replicas never truncate each other's staging file), fsync, rename
    over [path], then fsync [dir] so the rename itself survives a
    crash. On failure the temp file is unlinked and the original
    exception re-raised. Exposed so future writers of sidecar files
    under the spill directory use the same discipline. *)

let magic = "unigen-store-v1"
let entry_suffix = ".prep"
let tmp_suffix = ".tmp"
let quarantine_dirname = "quarantine"
let quarantine_keep = 16
let default_budget_bytes = 256 * 1024 * 1024
let stale_tmp_age_s = 3600.

let c_hits = Obs.Metrics.counter "store.hit"
let c_misses = Obs.Metrics.counter "store.miss"
let c_spills = Obs.Metrics.counter "store.spill"
let c_corrupt = Obs.Metrics.counter "store.corrupt"
let c_evictions = Obs.Metrics.counter "store.eviction"
let c_write_errors = Obs.Metrics.counter "store.write_error"

type t = { dir : string; budget_bytes : int; owner : Audit.Ownership.t }

let rec mkdir_p dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      let parent = Filename.dirname dir in
      if parent <> dir then begin
        mkdir_p parent;
        match Unix.mkdir dir 0o755 with
        | () -> ()
        | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end

(* A writer killed mid-spill leaves its private .tmp file behind; sweep
   ones old enough that no live writer can still own them (writes take
   milliseconds, the threshold is an hour). Recent temps may belong to
   an in-flight fleet peer sharing the directory, so they are kept. *)
let sweep_stale_tmps dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      let now = Unix.gettimeofday () in
      Array.iter
        (fun name ->
          if Filename.check_suffix name tmp_suffix then begin
            let path = Filename.concat dir name in
            match Unix.stat path with
            | { Unix.st_kind = Unix.S_REG; st_mtime; _ }
              when now -. st_mtime > stale_tmp_age_s -> (
                try Unix.unlink path with Unix.Unix_error _ -> ())
            | _ -> ()
            | exception Unix.Unix_error _ -> ()
          end)
        names

let create ?(budget_bytes = default_budget_bytes) ~dir () =
  if budget_bytes < 0 then
    invalid_arg "Store.create: budget_bytes must be >= 0";
  mkdir_p dir;
  sweep_stale_tmps dir;
  { dir; budget_bytes; owner = Audit.Ownership.create "durable store" }

let dir t = t.dir
let budget_bytes t = t.budget_bytes

let entry_path t ~key =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ entry_suffix)

(* ------------------------------------------------------------------ *)
(* Crash-safe writes. The one sanctioned write path for spill files:
   the durable-write-discipline lint rule flags open_out/output_*
   writes under lib/store and lib/service that bypass it. *)

let write_all fd data =
  let len = String.length data in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write_substring fd data !sent (len - !sent)
  done

let atomic_write ~dir ~path data =
  (* the temp name carries the writer's pid: fleet replicas share one
     spill directory, and a fixed [path ^ ".tmp"] would let two
     processes spilling the same key O_TRUNC each other's in-flight
     staging file — the rename could then publish a torn entry and the
     losing rename would raise ENOENT. A per-pid temp is private until
     the rename, which stays the only cross-process-visible step. *)
  let tmp = Printf.sprintf "%s.%d%s" path (Unix.getpid ()) tmp_suffix in
  (match
     let fd =
       Unix.openfile tmp
         [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
         0o644
     in
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () ->
         write_all fd data;
         Unix.fsync fd);
     Unix.rename tmp path
   with
  | () -> ()
  | exception e ->
      (try Unix.unlink tmp with Unix.Unix_error _ -> ());
      raise e);
  (* fsync the directory so the rename itself is durable; some
     filesystems refuse fsync on a directory fd — losing only the
     rename's durability, not atomicity — so errors are swallowed *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
      (try Unix.fsync dfd with Unix.Unix_error _ -> ());
      (try Unix.close dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Directory scan and budget enforcement *)

let live_entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if Filename.check_suffix name entry_suffix then
               let path = Filename.concat t.dir name in
               match Unix.stat path with
               | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                   Some (path, st_size, st_mtime)
               | _ -> None
               | exception Unix.Unix_error _ -> None
             else None)

let length t = List.length (live_entries t)

let total_bytes t =
  List.fold_left (fun acc (_, size, _) -> acc + size) 0 (live_entries t)

let set_bytes_gauge bytes =
  Obs.Metrics.set_gauge "store.bytes" (float_of_int bytes)

(* Evict least-recently-used entries (by mtime — find refreshes it on
   every hit) until the directory fits the budget again. [keep] — the
   entry just written — is never its own victim, so a single oversized
   entry is stored rather than bouncing. *)
let enforce_budget t ~keep =
  let entries =
    live_entries t
    |> List.sort (fun (pa, _, ma) (pb, _, mb) ->
           if Float.equal ma mb then String.compare pa pb
           else Float.compare ma mb)
  in
  let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 entries in
  let remaining = ref total in
  List.iter
    (fun (path, size, _) ->
      if !remaining > t.budget_bytes && path <> keep then begin
        match Unix.unlink path with
        | () ->
            remaining := !remaining - size;
            Obs.Metrics.incr c_evictions
        | exception Unix.Unix_error _ -> ()
      end)
    entries;
  set_bytes_gauge !remaining

(* ------------------------------------------------------------------ *)
(* Entry codec *)

let encode_entry ~key payload =
  let body =
    String.concat "\n" [ key; string_of_int (String.length payload); payload ]
  in
  magic ^ "\n" ^ Digest.to_hex (Digest.string body) ^ "\n" ^ body

(* Split one header line off [s] starting at [off]. *)
let header_line s off =
  match String.index_from_opt s off '\n' with
  | None -> None
  | Some nl -> Some (String.sub s off (nl - off), nl + 1)

let decode_entry ~key raw =
  match header_line raw 0 with
  | None -> Error "missing header"
  | Some (m, _) when m <> magic -> Error ("bad magic " ^ m)
  | Some (_, off) -> (
      match header_line raw off with
      | None -> Error "missing checksum line"
      | Some (digest, body_off) ->
          let body = String.sub raw body_off (String.length raw - body_off) in
          if Digest.to_hex (Digest.string body) <> digest then
            Error "checksum mismatch"
          else begin
            match header_line body 0 with
            | None -> Error "missing key line"
            | Some (k, _) when k <> key -> Error "key mismatch"
            | Some (_, off) -> (
                match header_line body off with
                | None -> Error "missing length line"
                | Some (len_line, payload_off) -> (
                    match int_of_string_opt len_line with
                    | None -> Error "malformed length"
                    | Some len ->
                        if String.length body - payload_off <> len then
                          Error "truncated payload"
                        else Ok (String.sub body payload_off len)))
          end)

(* ------------------------------------------------------------------ *)
(* Operations *)

(* Quarantined files are debugging evidence, not data: keep only the
   [quarantine_keep] most recent so systematic corruption — say a codec
   version skew across a fleet upgrade quarantining every old spill —
   cannot grow the directory without bound (the disk budget never
   scans quarantine/). *)
let prune_quarantine qdir =
  match Sys.readdir qdir with
  | exception Sys_error _ -> ()
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             let path = Filename.concat qdir name in
             match Unix.stat path with
             | { Unix.st_kind = Unix.S_REG; st_mtime; _ } ->
                 Some (path, st_mtime)
             | _ -> None
             | exception Unix.Unix_error _ -> None)
      |> List.sort (fun (pa, ma) (pb, mb) ->
             (* newest first; path tiebreak keeps the order total *)
             match Float.compare mb ma with
             | 0 -> String.compare pa pb
             | c -> c)
      |> List.iteri (fun i (path, _) ->
             if i >= quarantine_keep then
               try Unix.unlink path with Unix.Unix_error _ -> ())

let quarantine_path t path ~reason =
  let qdir = Filename.concat t.dir quarantine_dirname in
  (* quarantine runs on the load path and must never raise: if the
     subdirectory cannot be created the rename below fails too and the
     evidence is dropped rather than preserved *)
  (try mkdir_p qdir with Unix.Unix_error _ -> ());
  let dest = Filename.concat qdir (Filename.basename path) in
  (match Unix.rename path dest with
  | () ->
      (* refresh so pruning age reflects quarantine time, not spill time *)
      (try Unix.utimes dest 0.0 0.0 with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> (
      try Unix.unlink path with Unix.Unix_error _ -> ()));
  prune_quarantine qdir;
  Obs.Metrics.incr c_corrupt;
  Obs.Log.event ~level:Obs.Log.Warn "store.quarantine"
    [
      ("file", Obs.Report.String (Filename.basename path));
      ("reason", Obs.Report.String reason);
    ]

let quarantine t ~key ~reason =
  Audit.Ownership.check t.owner;
  let path = entry_path t ~key in
  if Sys.file_exists path then quarantine_path t path ~reason

let put t ~key payload =
  Audit.Ownership.check t.owner;
  if String.contains key '\n' then
    invalid_arg "Store.put: key must not contain newlines";
  Obs.Trace.span ~cat:"store" "store.spill"
    ~args:[ ("bytes", string_of_int (String.length payload)) ]
  @@ fun () ->
  let path = entry_path t ~key in
  match atomic_write ~dir:t.dir ~path (encode_entry ~key payload) with
  | () ->
      Obs.Metrics.incr c_spills;
      enforce_budget t ~keep:path
  | exception ((Unix.Unix_error _ | Sys_error _) as e) ->
      (* a full or read-only disk must not take the daemon down with a
         computed response in hand: the opt-in durability tier degrades
         to RAM-only (the entry is already in the LRU above us) instead
         of turning a transient disk error into a crash *)
      Obs.Metrics.incr c_write_errors;
      Obs.Log.event ~level:Obs.Log.Warn "store.spill_failed"
        [
          ("file", Obs.Report.String (Filename.basename path));
          ("error", Obs.Report.String (Printexc.to_string e));
        ]

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let find t ~key =
  Audit.Ownership.check t.owner;
  let path = entry_path t ~key in
  match read_file path with
  | None ->
      Obs.Metrics.incr c_misses;
      None
  | Some raw -> (
      Obs.Trace.span ~cat:"store" "store.load"
        ~args:[ ("bytes", string_of_int (String.length raw)) ]
      @@ fun () ->
      match decode_entry ~key raw with
      | Ok payload ->
          (* refresh the LRU clock; both timestamps 0.0 = "now" *)
          (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
          Obs.Metrics.incr c_hits;
          Some payload
      | Error reason ->
          quarantine_path t path ~reason;
          None)

let mem t ~key = Sys.file_exists (entry_path t ~key)

let remove t ~key =
  Audit.Ownership.check t.owner;
  match Unix.unlink (entry_path t ~key) with
  | () -> true
  | exception Unix.Unix_error _ -> false

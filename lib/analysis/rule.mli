(** Rule-engine API: a rule is a named, documented check with a
    severity and a phase — per-file (sees one tokenized source) or
    whole-repo (sees every source plus the design document, for
    cross-file checks like span pairing and the metric-name
    registry). Rules emit bare {!hit}s; the engine stamps them with
    the rule's name and severity to build {!Findings.t}s, so a rule
    cannot mislabel its own output. *)

(** One tokenized source file plus the per-file indexes every rule
    shares: the code-only token stream, the newline-offset table and
    the (lazily built) masked text. *)
type source = {
  path : string;  (** repo-relative, '/'-separated *)
  text : string;
  tokens : Token.t array;  (** full stream, comments included *)
  code : Token.t array;  (** comments dropped *)
  lines : Token.Lines.t;
  masked : string Lazy.t;
  mli_exists : bool;  (** a sibling [.mli] exists (repo scan) or is
                          declared (inline fixtures) *)
}

val load : ?mli_exists:bool -> path:string -> string -> source
(** Tokenize [text] once; [mli_exists] defaults to [false]. *)

type context = { sources : source list; design_doc : string option }

type hit = { file : string; line : int; message : string }

type phase = File of (source -> hit list) | Repo of (context -> hit list)

type t = {
  name : string;
  severity : Findings.severity;
  doc : string;  (** one-line rationale, surfaced in SARIF rule metadata *)
  phase : phase;
}

(** {2 Token-matching helpers}

    All operate on a [code] array (comments dropped). "Contiguous"
    means zero bytes between tokens, mirroring the old lint's
    substring semantics: [Hashtbl.create] matches, [Hashtbl . create]
    does not. *)

val is_word : Token.t -> string -> bool
(** The token is an [Ident]/[Uident] with exactly this text. *)

val prev_dotted : Token.t array -> int -> bool
(** The code token before index [i] is a ['.'] contiguous with token
    [i] — i.e. [i] is a qualified-path tail, not a path head. *)

val matches_qualified : Token.t array -> int -> string list -> bool
(** [matches_qualified code i ["Hashtbl"; "create"]]: the contiguous
    dotted path starting (as a head) at [i] is exactly these
    components. *)

val ends_qualified : Token.t array -> int -> string list -> int option
(** Like {!matches_qualified} but the path may carry extra leading
    qualifiers ([Parallel.Executor.submit] ends with
    [["Executor"; "submit"]]). Returns the index past the path's last
    token on a match. *)

val dotted_path_at : Token.t array -> int -> (string * int) option
(** The maximal contiguous dotted identifier path headed at [i]
    ([b.cancelled], [t.lock]) and the index past its last token;
    [None] when [i] is not an identifier head. *)

val item_starts : source -> int array
(** Indices into [code] where a top-level structure item begins: a
    column-0 [let]/[module]/[type]/[open]/[exception]/[external]/
    [include]/[val]. Rules use consecutive entries as lexical-scope
    boundaries ("same top-level item"). *)

val item_span : int array -> Token.t array -> int -> int * int
(** [(lo, hi)] code-index half-open range of the top-level item
    containing code index [i]. *)

val first_string_after : Token.t array -> int -> limit:int -> string option
(** First [String] literal among the [limit] code tokens after [i] —
    the name argument of a registration call, skipping labelled
    arguments; [None] when the name is computed. *)

(** The lint allowlist: one [rule path] pair per line, [#] starts a
    comment. An allowlisted finding is reported but does not block.
    Every entry must keep a live finding: {!stale} entries (the file
    header has always demanded their removal, manually) are turned
    into blocking [stale-allowlist] findings by the engine. *)

type entry = { rule : string; file : string; lineno : int }

type t = { path : string; entries : entry list }

val empty : t

val of_string : ?path:string -> string -> (t, string) result
(** Parse allowlist text; [Error] describes the first malformed line.
    [path] is recorded for reporting (defaults to
    ["scripts/lint_allowlist.txt"]). *)

val load : string -> (t, string) result
(** Read and parse the file at [path]; a missing file is the empty
    allowlist. *)

val covers : t -> rule:string -> file:string -> bool

val stale : t -> Findings.t list -> entry list
(** Entries matched by no finding in the (already allowlist-marked)
    list. *)

(** SARIF 2.1.0 emitter for CI annotation. One run, one tool
    ([unigen-lint]) carrying rule metadata (id, short description,
    default level), one result per finding with a physical location;
    allowlisted findings carry an accepted [suppressions] entry so CI
    renders them as suppressed instead of failing. Severity maps
    [Error]->[error], [Warn]->[warning], [Info]->[note]. *)

val level_of_severity : Findings.severity -> string

val to_string : rules:Rule.t list -> Findings.t list -> string
(** The complete SARIF document as a JSON string. [rules] supplies the
    [tool.driver.rules] metadata table; findings whose rule is not in
    the table (e.g. the engine-synthesized [stale-allowlist]) still
    emit valid results. *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let in_lib f = starts_with "lib/" f
let in_prng f = starts_with "lib/prng/" f
let in_hot f = starts_with "lib/sat/" f || starts_with "lib/cnf/" f

(* Inner-loop modules where even buffered formatting is off-budget. *)
let print_hot_files =
  [ "lib/sat/solver.ml"; "lib/sat/vec.ml"; "lib/sat/order_heap.ml";
    "lib/sat/gauss.ml"; "lib/sat/bsat.ml"; "lib/cnf/lit.ml";
    "lib/cnf/clause.ml"; "lib/cnf/model.ml" ]

let hit file (tok : Token.t) message : Rule.hit =
  { file; line = tok.line; message }

(* ------------------------------------------------------------------ *)

let random_outside_prng : Rule.t =
  {
    name = "random-outside-prng";
    severity = Findings.Error;
    doc =
      "All randomness must flow through Rng streams (lib/prng) so runs \
       are reproducible under any worker count; a stray Random call \
       silently breaks witness determinism.";
    phase =
      Rule.File
        (fun src ->
          if
            (in_lib src.path || starts_with "bin/" src.path)
            && not (in_prng src.path)
          then begin
            let acc = ref [] in
            Array.iteri
              (fun i tok ->
                if Rule.is_word tok "Random" && not (Rule.prev_dotted src.code i)
                then
                  acc :=
                    hit src.path tok
                      "use of stdlib Random outside lib/prng breaks \
                       deterministic seeding"
                    :: !acc)
              src.code;
            List.rev !acc
          end
          else []);
  }

let poly_compare_hot : Rule.t =
  {
    name = "poly-compare-hot";
    severity = Findings.Warn;
    doc =
      "Polymorphic compare / Hashtbl.hash on the solver hot path is slow \
       (generic traversal) and wrong on cyclic or functional values; use \
       Int.compare / String.compare / module comparators. Definition \
       sites (let compare a b = ...) are exempt.";
    phase =
      Rule.File
        (fun src ->
          if not (in_hot src.path) then []
          else begin
            let acc = ref [] in
            Array.iteri
              (fun i (tok : Token.t) ->
                if Rule.is_word tok "compare" && not (Rule.prev_dotted src.code i)
                then begin
                  (* definition of a monomorphic comparator: [let
                     compare] / [and compare] on one line *)
                  let defn =
                    i > 0
                    &&
                    let p = src.code.(i - 1) in
                    (Rule.is_word p "let" || Rule.is_word p "and")
                    && p.line = tok.line
                  in
                  if not defn then
                    acc :=
                      hit src.path tok
                        "polymorphic compare on the solver hot path; use a \
                         typed comparator"
                      :: !acc
                end;
                if Rule.matches_qualified src.code i [ "Hashtbl"; "hash" ] then
                  acc :=
                    hit src.path tok
                      "polymorphic Hashtbl.hash on the solver hot path; \
                       supply a typed hash"
                    :: !acc)
              src.code;
            List.rev !acc
          end);
  }

let global_mutable_table : Rule.t =
  {
    name = "global-mutable-table";
    severity = Findings.Error;
    doc =
      "A top-level Hashtbl.create in lib/ is shared mutable state that \
       can escape into Domain_pool tasks without domain-local storage; \
       mutex-guarded-by-construction tables are allowlisted with a \
       justification.";
    phase =
      Rule.File
        (fun src ->
          if not (in_lib src.path) then []
          else begin
            let masked = Lazy.force src.masked in
            let acc = ref [] in
            Array.iteri
              (fun i (tok : Token.t) ->
                if Rule.matches_qualified src.code i [ "Hashtbl"; "create" ]
                then begin
                  (* top-level bindings only: the line containing the
                     call must itself be a column-0 [let ] (the repo
                     style keeps top-level table bindings on one
                     line). An indented [Hashtbl.create] is per-call
                     state inside a function, not a shared table. *)
                  let bol = Token.Lines.bol_of src.lines tok.off in
                  if
                    bol + 4 <= String.length masked
                    && String.sub masked bol 4 = "let "
                  then
                    acc :=
                      hit src.path tok
                        "top-level mutable Hashtbl shared across domains; \
                         use Domain.DLS or justify in the allowlist"
                      :: !acc
                end)
              src.code;
            List.rev !acc
          end);
  }

let missing_mli : Rule.t =
  {
    name = "missing-mli";
    severity = Findings.Warn;
    doc =
      "Every lib/**/*.ml must have a matching .mli; unabstracted modules \
       leak representation details across layers.";
    phase =
      Rule.File
        (fun src ->
          if in_lib src.path && not src.mli_exists then
            [ { Rule.file = src.path;
                line = 1;
                message =
                  "library module without an interface; add a .mli to pin \
                   the public surface" } ]
          else []);
  }

let print_hot_path : Rule.t =
  {
    name = "print-hot-path";
    severity = Findings.Warn;
    doc =
      "No Printf/Format in the solver's inner modules — observability \
       goes through lib/obs so output cost is gated behind the \
       metrics/tracing switches; debug pretty-printers are allowlisted.";
    phase =
      Rule.File
        (fun src ->
          if not (List.mem src.path print_hot_files) then []
          else begin
            let acc = ref [] in
            Array.iteri
              (fun i tok ->
                List.iter
                  (fun name ->
                    if Rule.is_word tok name && not (Rule.prev_dotted src.code i)
                    then
                      acc :=
                        hit src.path tok
                          (name
                         ^ " on a solver hot path; route output through \
                            lib/obs")
                        :: !acc)
                  [ "Printf"; "Format" ])
              src.code;
            List.rev !acc
          end);
  }

(* ------------------------------------------------------------------ *)
(* Span pairing: async trace spans (Trace.span_begin / Trace.span_end)
   are paired by name across call sites, not lexically scoped; a begin
   whose name has no end site anywhere in the repo renders as a span
   that never closes in the Chrome trace. Checked globally over
   literal span names. *)

(* The span-name literal of a call at byte [pos]: the first string
   literal after the call that is a positional argument — i.e. not
   preceded by ':' (a ~cat:"..." label), '('/',' (inside an ~args
   list), '=' (a default value) or '^' (concatenation). Scans the raw
   source so positions align with token offsets. *)
let span_name_after src pos =
  let n = String.length src in
  let limit = min n (pos + 400) in
  let rec prev_nonspace j =
    if j < 0 then ' '
    else
      match src.[j] with
      | ' ' | '\t' | '\n' | '\r' -> prev_nonspace (j - 1)
      | c -> c
  in
  let rec find i =
    if i >= limit then None
    else if src.[i] = '"' then begin
      match prev_nonspace (i - 1) with
      | ':' | '(' | ',' | '=' | '^' -> find (skip_literal i)
      | _ ->
          let j = ref (i + 1) in
          while !j < n && src.[!j] <> '"' do incr j done;
          if !j < n then Some (String.sub src (i + 1) (!j - i - 1)) else None
    end
    else find (i + 1)
  and skip_literal i =
    let j = ref (i + 1) in
    while !j < n && src.[!j] <> '"' do incr j done;
    !j + 1
  in
  find pos

let unmatched_span : Rule.t =
  {
    name = "unmatched-span";
    severity = Findings.Error;
    doc =
      "Async trace spans are paired by literal name across the whole \
       repo; a span_begin with no span_end site (or vice versa) never \
       closes in the Chrome trace.";
    phase =
      Rule.Repo
        (fun ctx ->
          let begins = ref [] and ends = ref [] in
          List.iter
            (fun (src : Rule.source) ->
              Array.iter
                (fun (tok : Token.t) ->
                  let collect name acc =
                    (* method position: a qualifying dot before the
                       token is fine (Obs.Trace.span_begin) *)
                    if Rule.is_word tok name then
                      match span_name_after src.text tok.off with
                      | Some span -> acc := (span, (src.path, tok.line)) :: !acc
                      | None -> () (* definition site or computed name *)
                  in
                  collect "span_begin" begins;
                  collect "span_end" ends)
                src.code)
            ctx.sources;
          let names l = List.map fst l in
          let missing from against verb =
            List.filter_map
              (fun (name, (file, line)) ->
                if List.mem name (names against) then None
                else
                  Some
                    { Rule.file;
                      line;
                      message =
                        Printf.sprintf
                          "async span %S has no %s site; the Chrome trace \
                           pair 'b'/'e' never closes"
                          name verb })
              from
          in
          missing !begins !ends "span_end" @ missing !ends !begins "span_begin");
  }

let all =
  [ random_outside_prng; poly_compare_hot; global_mutable_table; missing_mli;
    print_hot_path; unmatched_span ]

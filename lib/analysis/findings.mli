(** Structured lint findings: severity, location, message, allowlist
    status, plus the JSON rendering the lint has always emitted (now
    with a [severity] field). *)

type severity = Error | Warn | Info

val severity_to_string : severity -> string
(** ["error"], ["warn"], ["info"]. *)

type t = {
  rule : string;
  severity : severity;
  file : string;  (** repo-relative path *)
  line : int;  (** 1-based *)
  message : string;
  allowlisted : bool;
}

val make :
  rule:string -> severity:severity -> file:string -> line:int -> string -> t

val compare : t -> t -> int
(** Sort key: file, then line, then rule, then message — a total,
    deterministic order so output is stable across runs. *)

val blocking : t -> bool
(** A finding fails the lint when it is not allowlisted and its
    severity is [Error] or [Warn]; [Info] findings are advisory. *)

val json_escape : string -> string

val to_json : t -> string
(** One finding as a single-line JSON object. *)

val list_to_json : t list -> string
(** The findings array, matching the historical lint stdout format. *)

(** Concurrency / determinism rules the old substring scanner could
    not express. All are lexical approximations over the token stream
    — each rule's doc states the approximation — tuned so the clean
    repo lints with zero blocking findings while each seeded
    violation in [test/test_analysis.ml]'s mutation fixtures fires. *)

val domain_escape : Rule.t
(** Top-level [ref]/[Hashtbl]/[Queue]/[Buffer] state used inside the
    lexical extent of a closure handed to [Executor.submit] /
    [Domain_pool.submit]/[map]/[iteri] without [Atomic]/[Mutex]/DLS
    mediation: the worker domains race the owner on it. *)

val atomic_rmw : Rule.t
(** An [Atomic.get x] followed by [Atomic.set x] on the same name in
    one top-level item is a lost-update window; use
    [compare_and_set] / [fetch_and_add]. *)

val blocking_in_owner_loop : Rule.t
(** [Unix.sleep]/[Unix.sleepf]/[Thread.delay] anywhere in the owner
    select-loop modules (lib/service/server.ml, scheduler.ml), or
    blocking I/O inside a [~finish:] thunk (finish thunks run on the
    owning domain): one stalled call goes deaf to every socket. *)

val mutex_discipline : Rule.t
(** A [Mutex.lock m] whose top-level item has neither a
    [Mutex.unlock m] nor a [Fun.protect]: an exception between lock
    and unlock leaves [m] held forever. *)

val metric_name_registry : Rule.t
(** Every [Metrics.*] / [Log.event] name literal in lib/ and bin/
    must be registered at exactly one site repo-wide and appear in
    DESIGN.md's observability-name registry, like the existing span
    pairing. ([Obs.Window]s carry no name argument, so the rule has
    nothing to check for them.) *)

val all : Rule.t list

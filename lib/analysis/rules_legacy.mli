(** The six original lint rules, ported from the ad-hoc substring
    scanner in the old [bin/lint.ml] onto the token stream. Findings
    reproduce the old scanner's (rule, file, line) triples exactly on
    the current repo — the port changes the mechanism, not the
    verdicts (checked byte-for-byte at porting time; the fixtures in
    [test/test_analysis.ml] pin the semantics). *)

val random_outside_prng : Rule.t
val poly_compare_hot : Rule.t
val global_mutable_table : Rule.t
val missing_mli : Rule.t
val print_hot_path : Rule.t
val unmatched_span : Rule.t

val all : Rule.t list

type entry = { rule : string; file : string; lineno : int }
type t = { path : string; entries : entry list }

let empty = { path = "scripts/lint_allowlist.txt"; entries = [] }

let of_string ?(path = "scripts/lint_allowlist.txt") text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok { path; entries = List.rev acc }
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        with
        | [] -> go (lineno + 1) acc rest
        | [ rule; file ] -> go (lineno + 1) ({ rule; file; lineno } :: acc) rest
        | _ ->
            Error
              (Printf.sprintf "%s:%d: malformed allowlist line: %s" path lineno
                 line))
  in
  go 1 [] lines

let load path =
  if not (Sys.file_exists path) then Ok empty
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    of_string ~path text
  end

let covers t ~rule ~file =
  List.exists (fun e -> e.rule = rule && e.file = file) t.entries

let stale t (findings : Findings.t list) =
  List.filter
    (fun e ->
      not
        (List.exists
           (fun (f : Findings.t) -> f.rule = e.rule && f.file = e.file)
           findings))
    t.entries

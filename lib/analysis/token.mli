(** Lexical token stream for the static analyzer.

    A small, dependency-free scanner for the subset of OCaml lexical
    structure the lint rules care about: identifiers (lowercase and
    capitalized), numeric literals, the three string-literal forms
    ([".."], [{|..|}], [{id|..|id}]), character literals, nesting
    comments (with strings-inside-comments handled per the manual),
    and single-character operator/punctuation tokens. Every token
    carries its byte offset, length and 1-based line, so rules report
    precise positions without rescanning the source.

    This replaces the old lint's ad-hoc substring scans and its
    [mask_source] masker, which did not understand quoted strings — a
    ["*)"] or ["\""] inside [{|...|}] desynchronized masking for the
    rest of the file. The tokenizer lexes quoted strings properly, so
    {!mask} stays aligned (see the regression fixtures in
    [test/test_analysis.ml]). *)

(** Newline-offset index: byte offset -> line in O(log lines), built
    once per file instead of the old O(n) rescans per finding (which
    were quadratic over files with many findings). *)
module Lines : sig
  type t

  val make : string -> t

  val line_of : t -> int -> int
  (** 1-based line containing byte offset [pos]. *)

  val bol_of : t -> int -> int
  (** Byte offset of the beginning of the line containing [pos]. *)

  val count : t -> int
end

type kind =
  | Ident of string  (** lowercase identifier or keyword *)
  | Uident of string  (** capitalized identifier *)
  | Number of string  (** integer or float literal *)
  | String of string  (** ["..."]: contents, escapes unprocessed *)
  | Quoted of string  (** [{id|...|id}]: contents *)
  | Char of string  (** char literal, contents between the quotes *)
  | Comment of string  (** [(* ... *)] including nested, full text *)
  | Op of char  (** single operator / punctuation character *)

type t = { kind : kind; off : int; len : int; line : int }

val scan : string -> t array * Lines.t
(** Tokenize the whole source. Comments appear in the stream (rules
    that only want code use {!code}). Unterminated literals or
    comments extend to end of input rather than raising: lint input is
    arbitrary work-in-progress source. *)

val code : t array -> t array
(** The stream with [Comment] tokens dropped. *)

val mask : string -> t array -> string
(** The source with every comment, string, quoted-string and char
    literal blanked to spaces (newlines preserved so offsets and line
    numbers survive). Byte-compatible with the old lint's
    [mask_source] on sources without quoted strings, and — unlike it —
    correct on sources with them. *)

val is_ident_char : char -> bool

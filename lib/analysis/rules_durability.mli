(** Durability rules for the spill-file write path (see {!Store}). *)

val durable_write_discipline : Rule.t
(** Any buffered channel writer ([open_out]/[open_out_bin]/
    [open_out_gen]/[output_string]/[output_bytes]/[output_char]/
    [output_substring], bare or qualified through [Stdlib]/
    [Out_channel]/[Printf]) inside [lib/store/] or [lib/service/] is
    flagged unless it sits in the top-level [atomic_write] binding —
    the one sanctioned writer, which stages bytes in a temp file,
    fsyncs and renames so spill entries are never observed torn. A
    lexical approximation: it cannot see a channel's destination path,
    so it scopes by layer instead, where every file write is a
    spill-directory write. *)

val all : Rule.t list

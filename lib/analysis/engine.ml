type report = {
  findings : Findings.t list;
  files : int;
  allowlisted : int;
  blocking : int;
}

let default_rules =
  Rules_legacy.all @ Rules_concurrency.all @ Rules_durability.all

let analyze ?(allowlist = Allowlist.empty) ?design_doc ~rules sources =
  let ctx = { Rule.sources; design_doc } in
  let findings =
    List.concat_map
      (fun (r : Rule.t) ->
        let hits =
          match r.phase with
          | Rule.File check -> List.concat_map check sources
          | Rule.Repo check -> check ctx
        in
        List.map
          (fun (h : Rule.hit) ->
            Findings.make ~rule:r.name ~severity:r.severity ~file:h.file
              ~line:h.line h.message)
          hits)
      rules
  in
  let findings =
    List.map
      (fun (f : Findings.t) ->
        if Allowlist.covers allowlist ~rule:f.rule ~file:f.file then
          { f with allowlisted = true }
        else f)
      findings
  in
  let stale =
    List.map
      (fun (e : Allowlist.entry) ->
        Findings.make ~rule:"stale-allowlist" ~severity:Findings.Error
          ~file:allowlist.path ~line:e.lineno
          (Printf.sprintf
             "allowlist entry '%s %s' matches no live finding; remove it"
             e.rule e.file))
      (Allowlist.stale allowlist findings)
  in
  let findings = List.sort Findings.compare (stale @ findings) in
  {
    findings;
    files = List.length sources;
    allowlisted =
      List.length (List.filter (fun (f : Findings.t) -> f.allowlisted) findings);
    blocking = List.length (List.filter Findings.blocking findings);
  }

(* ------------------------------------------------------------------ *)
(* Repo walking *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let ml_files root =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.is_directory abs then
      Array.iter
        (fun entry ->
          if entry <> "_build" && entry.[0] <> '.' then
            walk (if rel = "" then entry else rel ^ "/" ^ entry))
        (Sys.readdir abs)
    else if Filename.check_suffix rel ".ml" then acc := rel :: !acc
  in
  List.iter
    (fun d -> if Sys.file_exists (Filename.concat root d) then walk d)
    [ "lib"; "bin"; "test" ];
  List.sort String.compare !acc

let load_repo ~root =
  List.map
    (fun rel ->
      let text = read_file (Filename.concat root rel) in
      let mli_exists = Sys.file_exists (Filename.concat root (rel ^ "i")) in
      Rule.load ~mli_exists ~path:rel text)
    (ml_files root)

let run ?allowlist ?design_doc ?(rules = default_rules) ~root () =
  analyze ?allowlist ?design_doc ~rules (load_repo ~root)

module Lines = struct
  (* starts.(i) = byte offset of the first char of line i+1 *)
  type t = { starts : int array; len : int }

  let make src =
    let n = String.length src in
    let acc = ref [ 0 ] in
    for i = 0 to n - 1 do
      if src.[i] = '\n' then acc := (i + 1) :: !acc
    done;
    { starts = Array.of_list (List.rev !acc); len = n }

  let line_of t pos =
    let pos = if pos < 0 then 0 else if pos > t.len then t.len else pos in
    (* greatest i with starts.(i) <= pos *)
    let lo = ref 0 and hi = ref (Array.length t.starts - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.starts.(mid) <= pos then lo := mid else hi := mid - 1
    done;
    !lo + 1

  let bol_of t pos = t.starts.(line_of t pos - 1)
  let count t = Array.length t.starts
end

type kind =
  | Ident of string
  | Uident of string
  | Number of string
  | String of string
  | Quoted of string
  | Char of string
  | Comment of string
  | Op of char

type t = { kind : kind; off : int; len : int; line : int }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'

(* Past the closing quote of a ["..."] literal whose opening quote is
   at [i]; stops at end of input if unterminated. *)
let skip_string src n i =
  let j = ref (i + 1) in
  let esc = ref false in
  while !j < n && (!esc || src.[!j] <> '"') do
    esc := (not !esc) && src.[!j] = '\\';
    incr j
  done;
  min n (!j + 1)

(* At [{], recognise a quoted-string opener (brace, lowercase
   delimiter identifier, pipe): returns the delimiter (possibly
   empty) and the offset of the first content byte, or [None] when
   the brace is ordinary punctuation. *)
let quoted_opener src n i =
  if i >= n || src.[i] <> '{' then None
  else begin
    let j = ref (i + 1) in
    while !j < n && is_lower src.[!j] do incr j done;
    if !j < n && src.[!j] = '|' then
      Some (String.sub src (i + 1) (!j - i - 1), !j + 1)
    else None
  end

(* Past the pipe-delim-brace closer of a quoted string whose content
   starts at [start]; also returns the content end offset. *)
let skip_quoted src n delim start =
  let closer = "|" ^ delim ^ "}" in
  let cl = String.length closer in
  let j = ref start in
  let stop = ref (-1) in
  while !stop < 0 && !j + cl <= n do
    if String.sub src !j cl = closer then stop := !j else incr j
  done;
  if !stop < 0 then (n, n) else (!stop, !stop + cl)

let scan src =
  let n = String.length src in
  let lines = Lines.make src in
  let toks = ref [] in
  let line = ref 1 in
  let emit kind off stop =
    toks := { kind; off; len = stop - off; line = !line } :: !toks;
    for k = off to stop - 1 do
      if k < n && src.[k] = '\n' then incr line
    done
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* nesting comment; a string inside it is skipped as a string
         (its contents may hold an unbalanced closer) *)
      let depth = ref 1 in
      let j = ref (!i + 2) in
      while !depth > 0 && !j < n do
        if src.[!j] = '(' && !j + 1 < n && src.[!j + 1] = '*' then begin
          incr depth; j := !j + 2
        end
        else if src.[!j] = '*' && !j + 1 < n && src.[!j + 1] = ')' then begin
          decr depth; j := !j + 2
        end
        else if src.[!j] = '"' then j := skip_string src n !j
        else
          match quoted_opener src n !j with
          | Some (delim, start) -> j := snd (skip_quoted src n delim start)
          | None -> incr j
      done;
      emit (Comment (String.sub src !i (!j - !i))) !i !j;
      i := !j
    end
    else if c = '"' then begin
      let stop = skip_string src n !i in
      let content_stop = if stop > !i + 1 then stop - 1 else !i + 1 in
      emit (String (String.sub src (!i + 1) (content_stop - !i - 1))) !i stop;
      i := stop
    end
    else if c = '{' && quoted_opener src n !i <> None then begin
      let delim, start = Option.get (quoted_opener src n !i) in
      let content_stop, stop = skip_quoted src n delim start in
      emit (Quoted (String.sub src start (content_stop - start))) !i stop;
      i := stop
    end
    else if c = '\'' && !i + 1 < n && src.[!i + 1] = '\\' then begin
      (* escaped char literal: '\n', '\\', '\123', '\xFF' *)
      let j = ref (!i + 2) in
      while !j < n && src.[!j] <> '\'' do incr j done;
      let stop = min n (!j + 1) in
      emit (Char (String.sub src (!i + 1) (stop - !i - 2))) !i stop;
      i := stop
    end
    else if c = '\'' && !i + 2 < n && src.[!i + 2] = '\'' then begin
      (* plain char literal 'x'; a lone quote is a type variable and
         falls through to the operator case *)
      emit (Char (String.sub src (!i + 1) 1)) !i (!i + 3);
      i := !i + 3
    end
    else if is_ident_char c && not (is_digit c) && c <> '\'' then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let text = String.sub src !i (!j - !i) in
      let kind = if c >= 'A' && c <= 'Z' then Uident text else Ident text in
      emit kind !i !j;
      i := !j
    end
    else if is_digit c then begin
      (* digits, ident chars (hex, [_] separators, type suffixes), a
         decimal dot (but not [..]) and a sign directly after an
         exponent: 1_000, 0xFF, 1.5e-3 each lex as one token *)
      let j = ref !i in
      let continue = ref true in
      while !continue && !j < n do
        let d = src.[!j] in
        if is_ident_char d then incr j
        else if d = '.' && not (!j + 1 < n && src.[!j + 1] = '.') then incr j
        else if
          (d = '+' || d = '-')
          && !j > !i
          && (src.[!j - 1] = 'e' || src.[!j - 1] = 'E')
        then incr j
        else continue := false
      done;
      emit (Number (String.sub src !i (!j - !i))) !i !j;
      i := !j
    end
    else begin
      emit (Op c) !i (!i + 1);
      i := !i + 1
    end
  done;
  (Array.of_list (List.rev !toks), lines)

let code toks =
  Array.of_seq
    (Seq.filter
       (fun t -> match t.kind with Comment _ -> false | _ -> true)
       (Array.to_seq toks))

let mask src toks =
  let out = Bytes.of_string src in
  let blank_range off len =
    for k = off to off + len - 1 do
      if k < Bytes.length out && Bytes.get out k <> '\n' then
        Bytes.set out k ' '
    done
  in
  Array.iter
    (fun t ->
      match t.kind with
      | Comment _ | String _ | Quoted _ | Char _ -> blank_range t.off t.len
      | _ -> ())
    toks;
  Bytes.to_string out

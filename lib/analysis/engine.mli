(** The analyzer pipeline: run a rule set over tokenized sources,
    stamp and sort findings deterministically, apply the allowlist,
    convert stale allowlist entries into blocking findings, and
    summarize. Pure over its inputs — [test/test_analysis.ml] drives
    it with inline fixtures; [bin/lint.ml] drives it with
    {!load_repo}. *)

type report = {
  findings : Findings.t list;  (** sorted by file, line, rule, message *)
  files : int;
  allowlisted : int;
  blocking : int;
}

val default_rules : Rule.t list
(** The six legacy rules plus the concurrency/determinism set plus the
    durable-write-discipline rule. *)

val analyze :
  ?allowlist:Allowlist.t ->
  ?design_doc:string ->
  rules:Rule.t list ->
  Rule.source list ->
  report
(** Stale allowlist entries surface as [stale-allowlist] error
    findings located at the allowlist file itself; they are never
    allowlistable. *)

val load_repo : root:string -> Rule.source list
(** Every [.ml] under [lib/], [bin/] and [test/] (skipping [_build]
    and dotted directories), tokenized, with [mli_exists] filled from
    the filesystem, sorted by path. *)

val run :
  ?allowlist:Allowlist.t ->
  ?design_doc:string ->
  ?rules:Rule.t list ->
  root:string ->
  unit ->
  report
(** {!load_repo} + {!analyze} with {!default_rules}. *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let hit file (tok : Token.t) message : Rule.hit =
  { file; line = tok.line; message }

let lower_ident (tok : Token.t) =
  match tok.kind with Token.Ident s when s <> "" -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* domain-escape *)

(* Top-level mutable bindings: a column-0 [let NAME = ALLOC ...] (or
   [let NAME : ty = ALLOC ...]) whose right-hand side starts with a
   mutable constructor. [let f x = ... Hashtbl.create ...] is a
   per-call allocation, not shared state, and is skipped because the
   name is followed by parameters rather than [=]/[:]. *)
let top_mutables (src : Rule.source) starts =
  let code = src.code in
  let n = Array.length code in
  let mutable_alloc k =
    (Rule.is_word code.(k) "ref" && not (Rule.prev_dotted code k))
    || Rule.ends_qualified code k [ "Hashtbl"; "create" ] <> None
    || Rule.ends_qualified code k [ "Queue"; "create" ] <> None
    || Rule.ends_qualified code k [ "Buffer"; "create" ] <> None
  in
  let names = ref [] in
  Array.iter
    (fun s ->
      let _, hi = Rule.item_span starts code s in
      if Rule.is_word code.(s) "let" && s + 2 < n then
        match lower_ident code.(s + 1) with
        | Some name
          when code.(s + 2).kind = Token.Op '='
               || code.(s + 2).kind = Token.Op ':' -> begin
            (* first token after the binding's [=], skipping opening
               parens *)
            let j = ref (s + 2) in
            while !j < hi && code.(!j).kind <> Token.Op '=' do incr j done;
            incr j;
            while !j < hi && code.(!j).kind = Token.Op '(' do incr j done;
            if !j < hi && mutable_alloc !j then names := name :: !names
          end
        | _ -> ())
    starts;
  !names

let spawn_paths =
  [ [ "Executor"; "submit" ]; [ "Domain_pool"; "submit" ];
    [ "Domain_pool"; "map" ]; [ "Domain_pool"; "iteri" ] ]

let domain_escape : Rule.t =
  {
    name = "domain-escape";
    severity = Findings.Error;
    doc =
      "Top-level mutable state (ref/Hashtbl/Queue/Buffer) used inside \
       work submitted to Executor/Domain_pool without Atomic/Mutex/DLS \
       mediation: worker domains race the owner on it. Lexical \
       approximation: flagged when the name occurs after the submit \
       call within the same top-level item and no Mutex.lock or \
       Domain.DLS use precedes the occurrence.";
    phase =
      Rule.File
        (fun src ->
          let code = src.code in
          let starts = Rule.item_starts src in
          match top_mutables src starts with
          | [] -> []
          | mutables ->
              let acc = ref [] in
              Array.iteri
                (fun i _ ->
                  if
                    List.exists
                      (fun p -> Rule.ends_qualified code i p <> None)
                      spawn_paths
                  then begin
                    let _, hi = Rule.item_span starts code i in
                    List.iter
                      (fun name ->
                        let reported = ref false in
                        let mediated = ref false in
                        for j = i + 1 to hi - 1 do
                          if
                            Rule.ends_qualified code j [ "Mutex"; "lock" ]
                            <> None
                            || Rule.is_word code.(j) "DLS"
                          then mediated := true;
                          if
                            (not !reported) && (not !mediated)
                            && Rule.is_word code.(j) name
                            && not (Rule.prev_dotted code j)
                          then begin
                            reported := true;
                            acc :=
                              hit src.path code.(j)
                                (Printf.sprintf
                                   "top-level mutable '%s' reached from a \
                                    closure passed to %s without \
                                    Atomic/Mutex/DLS mediation; worker \
                                    domains race the owner on it"
                                   name
                                   (match Rule.dotted_path_at code i with
                                   | Some (p, _) -> p
                                   | None -> "a domain spawn"))
                              :: !acc
                          end
                        done)
                      mutables
                  end)
                code;
              List.rev !acc);
  }

(* ------------------------------------------------------------------ *)
(* atomic-read-modify-write *)

let atomic_arg code i op =
  match Rule.ends_qualified code i [ "Atomic"; op ] with
  | None -> None
  | Some stop -> (
      match Rule.dotted_path_at code stop with
      | Some (name, _) -> Some name
      | None -> None (* parenthesized or computed cell *))

let atomic_rmw : Rule.t =
  {
    name = "atomic-read-modify-write";
    severity = Findings.Warn;
    doc =
      "An Atomic.get x followed by Atomic.set x on the same cell in one \
       top-level item is a lost-update window between the read and the \
       write; use Atomic.compare_and_set or Atomic.fetch_and_add. Items \
       that already use a CAS/fetch primitive on the cell are exempt.";
    phase =
      Rule.File
        (fun src ->
          let code = src.code in
          let starts = Rule.item_starts src in
          let acc = ref [] in
          let n = Array.length code in
          let i = ref 0 in
          while !i < n do
            let lo, hi = Rule.item_span starts code !i in
            let gets = ref [] and rmw = ref [] in
            for j = lo to hi - 1 do
              (match atomic_arg code j "get" with
              | Some name -> gets := (name, j) :: !gets
              | None -> ());
              List.iter
                (fun op ->
                  match atomic_arg code j op with
                  | Some name -> rmw := name :: !rmw
                  | None -> ())
                [ "compare_and_set"; "fetch_and_add"; "exchange" ];
              match atomic_arg code j "set" with
              | Some name
                when List.exists (fun (g, gj) -> g = name && gj < j) !gets
                     && not (List.mem name !rmw) ->
                  acc :=
                    hit src.path code.(j)
                      (Printf.sprintf
                         "Atomic.get/Atomic.set pair on '%s' in one scope \
                          is a lost-update window; use compare_and_set or \
                          fetch_and_add"
                         name)
                    :: !acc
              | _ -> ()
            done;
            i := max (!i + 1) hi
          done;
          List.rev !acc);
  }

(* ------------------------------------------------------------------ *)
(* blocking-in-owner-loop *)

let owner_loop_files = [ "lib/service/server.ml"; "lib/service/scheduler.ml" ]
let sleep_paths = [ [ "Unix"; "sleep" ]; [ "Unix"; "sleepf" ]; [ "Thread"; "delay" ] ]

let blocking_io_paths =
  sleep_paths
  @ [ [ "Unix"; "read" ]; [ "Unix"; "write" ]; [ "Unix"; "select" ] ]

(* The paren-balanced extent of the closure following a [~finish:]
   label: code-index range of [( ... )]. *)
let finish_thunk_extent code i =
  let n = Array.length code in
  if
    i + 2 < n
    && code.(i).Token.kind = Token.Op '~'
    && Rule.is_word code.(i + 1) "finish"
    && code.(i + 2).Token.kind = Token.Op ':'
  then begin
    let j = ref (i + 3) in
    if !j < n && code.(!j).Token.kind = Token.Op '(' then begin
      let depth = ref 1 in
      let k = ref (!j + 1) in
      while !depth > 0 && !k < n do
        (match code.(!k).Token.kind with
        | Token.Op '(' -> incr depth
        | Token.Op ')' -> decr depth
        | _ -> ());
        incr k
      done;
      Some (!j + 1, !k - 1)
    end
    else None
  end
  else None

let blocking_in_owner_loop : Rule.t =
  {
    name = "blocking-in-owner-loop";
    severity = Findings.Error;
    doc =
      "The service owner domain runs the select loop and every executor \
       finish thunk; a sleep anywhere in its modules, or blocking I/O \
       inside a ~finish: closure, stalls every connection at once. Put \
       slow work in the ~work closure (worker domains) instead.";
    phase =
      Rule.File
        (fun src ->
          if not (List.mem src.path owner_loop_files) then []
          else begin
            let code = src.code in
            let acc = ref [] in
            Array.iteri
              (fun i _ ->
                List.iter
                  (fun p ->
                    if Rule.ends_qualified code i p <> None then
                      acc :=
                        hit src.path code.(i)
                          (String.concat "." p
                         ^ " in an owner-loop module stalls the select \
                            loop; sleep belongs on worker domains or in \
                            select timeouts")
                        :: !acc)
                  sleep_paths;
                match finish_thunk_extent code i with
                | None -> ()
                | Some (lo, hi) ->
                    for j = lo to hi - 1 do
                      List.iter
                        (fun p ->
                          if Rule.ends_qualified code j p <> None then
                            acc :=
                              hit src.path code.(j)
                                (String.concat "." p
                               ^ " inside a ~finish: thunk runs on the \
                                  owner domain; finish thunks must only \
                                  touch owner state")
                              :: !acc)
                        blocking_io_paths
                    done)
              code;
            List.rev !acc
          end);
  }

(* ------------------------------------------------------------------ *)
(* mutex-discipline *)

let mutex_discipline : Rule.t =
  {
    name = "mutex-discipline";
    severity = Findings.Warn;
    doc =
      "A Mutex.lock whose top-level item has neither a Mutex.unlock of \
       the same lock nor a Fun.protect: an exception between lock and \
       unlock leaves the mutex held forever and the next contender \
       deadlocked. Lexical approximation over the enclosing item.";
    phase =
      Rule.File
        (fun src ->
          let code = src.code in
          let starts = Rule.item_starts src in
          let acc = ref [] in
          Array.iteri
            (fun i _ ->
              match Rule.ends_qualified code i [ "Mutex"; "lock" ] with
              | None -> ()
              | Some stop -> (
                  match Rule.dotted_path_at code stop with
                  | None -> () (* computed lock expression *)
                  | Some (name, _) ->
                      let lo, hi = Rule.item_span starts code i in
                      let ok = ref false in
                      for j = lo to hi - 1 do
                        (match
                           Rule.ends_qualified code j [ "Mutex"; "unlock" ]
                         with
                        | Some ustop -> (
                            match Rule.dotted_path_at code ustop with
                            | Some (uname, _) when uname = name -> ok := true
                            | _ -> ())
                        | None -> ());
                        if Rule.ends_qualified code j [ "Fun"; "protect" ] <> None
                        then ok := true
                      done;
                      if not !ok then
                        acc :=
                          hit src.path code.(i)
                            (Printf.sprintf
                               "Mutex.lock %s without a matching unlock on \
                                every path in this scope; add Mutex.unlock \
                                %s or wrap in Fun.protect ~finally"
                               name name)
                          :: !acc))
            code;
          List.rev !acc);
  }

(* ------------------------------------------------------------------ *)
(* metric-name-registry *)

let registration_paths =
  [ [ "Metrics"; "counter" ]; [ "Metrics"; "gauge" ];
    [ "Metrics"; "set_gauge" ]; [ "Metrics"; "histogram" ];
    [ "Log"; "event" ] ]

(* The name literal of a registration call: the first string literal
   within a short window after the path, stopping at a statement
   boundary so a computed name is not confused with a later literal. *)
let name_literal code stop =
  let n = Array.length code in
  let rec go j left =
    if left = 0 || j >= n then None
    else
      match code.(j).Token.kind with
      | Token.String s -> Some (s, code.(j))
      | Token.Op ';' -> None
      | _ -> go (j + 1) (left - 1)
  in
  go stop 12

let metric_name_registry : Rule.t =
  {
    name = "metric-name-registry";
    severity = Findings.Error;
    doc =
      "Every Metrics.*/Log.event name literal in lib/ and bin/ must be \
       registered at exactly one site repo-wide and be listed in \
       DESIGN.md's observability-name registry, like the existing span \
       pairing; a duplicate or undocumented name makes dashboards and \
       log queries silently wrong. (Obs.Window carries no name \
       argument, so windows have nothing to register.)";
    phase =
      Rule.Repo
        (fun ctx ->
          let sites = ref [] in
          List.iter
            (fun (src : Rule.source) ->
              if starts_with "lib/" src.path || starts_with "bin/" src.path
              then
                Array.iteri
                  (fun i _ ->
                    List.iter
                      (fun p ->
                        match Rule.ends_qualified src.code i p with
                        | None -> ()
                        | Some stop -> (
                            match name_literal src.code stop with
                            | None -> () (* computed name *)
                            | Some (name, tok) ->
                                sites :=
                                  (name, src.path, tok.Token.line) :: !sites))
                      registration_paths)
                  src.code)
            ctx.sources;
          let sites = List.rev !sites in
          let acc = ref [] in
          let seen = Hashtbl.create 32 in
          List.iter
            (fun (name, file, line) ->
              (match Hashtbl.find_opt seen name with
              | Some (f0, l0) ->
                  acc :=
                    { Rule.file;
                      line;
                      message =
                        Printf.sprintf
                          "observability name %S is already registered at \
                           %s:%d; names must be unique repo-wide"
                          name f0 l0 }
                    :: !acc
              | None -> Hashtbl.add seen name (file, line));
              match ctx.design_doc with
              | Some doc when not (contains doc name) ->
                  acc :=
                    { Rule.file;
                      line;
                      message =
                        Printf.sprintf
                          "observability name %S is not in DESIGN.md's \
                           registry; add it to the static-analysis \
                           catalogue"
                          name }
                    :: !acc
              | _ -> ())
            sites;
          List.rev !acc);
  }

let all =
  [ domain_escape; atomic_rmw; blocking_in_owner_loop; mutex_discipline;
    metric_name_registry ]

type severity = Error | Warn | Info

let severity_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
  allowlisted : bool;
}

let make ~rule ~severity ~file ~line message =
  { rule; severity; file; line; message; allowlisted = false }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match String.compare a.rule b.rule with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let blocking f =
  (not f.allowlisted) && (match f.severity with Error | Warn -> true | Info -> false)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"rule\": \"%s\", \"severity\": \"%s\", \"file\": \"%s\", \"line\": %d, \
     \"allowlisted\": %b, \"message\": \"%s\"}"
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.file) f.line f.allowlisted (json_escape f.message)

let list_to_json fs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      Buffer.add_string b (to_json f))
    fs;
  Buffer.add_string b (if fs = [] then "]\n" else "\n]\n");
  Buffer.contents b

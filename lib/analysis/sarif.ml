let level_of_severity = function
  | Findings.Error -> "error"
  | Findings.Warn -> "warning"
  | Findings.Info -> "note"

let esc = Findings.json_escape

let rule_json (r : Rule.t) =
  Printf.sprintf
    "{\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}, \
     \"defaultConfiguration\": {\"level\": \"%s\"}}"
    (esc r.name) (esc r.doc)
    (level_of_severity r.severity)

let result_json (f : Findings.t) =
  let suppressions =
    if f.allowlisted then
      ", \"suppressions\": [{\"kind\": \"external\", \"status\": \
       \"accepted\", \"justification\": \"scripts/lint_allowlist.txt\"}]"
    else ""
  in
  Printf.sprintf
    "{\"ruleId\": \"%s\", \"level\": \"%s\", \"message\": {\"text\": \
     \"%s\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
     {\"uri\": \"%s\"}, \"region\": {\"startLine\": %d}}}]%s}"
    (esc f.rule)
    (level_of_severity f.severity)
    (esc f.message) (esc f.file) f.line suppressions

let to_string ~rules findings =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "{\n  \"$schema\": \
     \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \
     \"2.1.0\",\n  \"runs\": [{\n    \"tool\": {\"driver\": {\"name\": \
     \"unigen-lint\", \"informationUri\": \
     \"https://github.com/unigen/unigen\", \"rules\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "      ";
      Buffer.add_string b (rule_json r))
    rules;
  Buffer.add_string b "\n    ]}},\n    \"results\": [\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "      ";
      Buffer.add_string b (result_json f))
    findings;
  Buffer.add_string b "\n    ]\n  }]\n}\n";
  Buffer.contents b

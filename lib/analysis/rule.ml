type source = {
  path : string;
  text : string;
  tokens : Token.t array;
  code : Token.t array;
  lines : Token.Lines.t;
  masked : string Lazy.t;
  mli_exists : bool;
}

let load ?(mli_exists = false) ~path text =
  let tokens, lines = Token.scan text in
  {
    path;
    text;
    tokens;
    code = Token.code tokens;
    lines;
    masked = lazy (Token.mask text tokens);
    mli_exists;
  }

type context = { sources : source list; design_doc : string option }
type hit = { file : string; line : int; message : string }
type phase = File of (source -> hit list) | Repo of (context -> hit list)

type t = {
  name : string;
  severity : Findings.severity;
  doc : string;
  phase : phase;
}

(* ------------------------------------------------------------------ *)
(* Token helpers *)

let is_word (tok : Token.t) w =
  match tok.kind with
  | Token.Ident s | Token.Uident s -> s = w
  | _ -> false

let is_ident (tok : Token.t) =
  match tok.kind with Token.Ident _ | Token.Uident _ -> true | _ -> false

let ident_text (tok : Token.t) =
  match tok.kind with Token.Ident s | Token.Uident s -> s | _ -> ""

let contiguous (a : Token.t) (b : Token.t) = a.off + a.len = b.off
let is_dot (tok : Token.t) = tok.kind = Token.Op '.'

let prev_dotted code i =
  i > 0 && is_dot code.(i - 1) && contiguous code.(i - 1) code.(i)

(* the path continues at [i] with a contiguous [.ident] pair *)
let path_step code i =
  i + 2 <= Array.length code - 1
  && is_dot code.(i + 1)
  && contiguous code.(i) code.(i + 1)
  && is_ident code.(i + 2)
  && contiguous code.(i + 1) code.(i + 2)

let dotted_path_at code i =
  if i >= Array.length code || (not (is_ident code.(i))) || prev_dotted code i
  then None
  else begin
    let buf = Buffer.create 16 in
    Buffer.add_string buf (ident_text code.(i));
    let j = ref i in
    while path_step code !j do
      Buffer.add_char buf '.';
      Buffer.add_string buf (ident_text code.(!j + 2));
      j := !j + 2
    done;
    Some (Buffer.contents buf, !j + 1)
  end

let matches_qualified code i parts =
  match dotted_path_at code i with
  | Some (path, _) -> path = String.concat "." parts
  | None -> false

let ends_qualified code i parts =
  match dotted_path_at code i with
  | Some (path, stop) ->
      let want = String.concat "." parts in
      let pl = String.length path and wl = String.length want in
      if
        pl >= wl
        && String.sub path (pl - wl) wl = want
        && (pl = wl || path.[pl - wl - 1] = '.')
      then Some stop
      else None
  | None -> None

let item_keyword = function
  | "let" | "module" | "type" | "open" | "exception" | "external"
  | "include" | "val" ->
      true
  | _ -> false

let item_starts src =
  let acc = ref [] in
  Array.iteri
    (fun i (tok : Token.t) ->
      if
        tok.off = Token.Lines.bol_of src.lines tok.off
        && (match tok.kind with
           | Token.Ident s -> item_keyword s
           | _ -> false)
      then acc := i :: !acc)
    src.code;
  Array.of_list (List.rev !acc)

let item_span starts code i =
  let n = Array.length starts in
  let lo = ref 0 and hi = ref (Array.length code) in
  for k = 0 to n - 1 do
    if starts.(k) <= i then begin
      lo := starts.(k);
      hi := if k + 1 < n then starts.(k + 1) else Array.length code
    end
  done;
  (!lo, !hi)

let first_string_after code i ~limit =
  let n = Array.length code in
  let rec go j left =
    if left = 0 || j >= n then None
    else
      match code.(j).Token.kind with
      | Token.String s -> Some s
      | _ -> go (j + 1) (left - 1)
  in
  go (i + 1) limit

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* The layers that touch spill directories: the store itself and the
   service stack that injects/consumes it. Everything else (CLI report
   writers, bench output, the DIMACS writer) is out of scope — only
   files a restarted daemon or a fleet peer will re-read must be
   crash-safe. *)
let in_scope f = starts_with "lib/store/" f || starts_with "lib/service/" f

(* Buffered channel writers. [Unix.write]/[write_substring] are not
   listed: unbuffered writes are exactly what [atomic_write] itself is
   built from, and the temp+rename discipline, not the syscall, is
   what the rule enforces. *)
let write_fns =
  [
    "open_out";
    "open_out_bin";
    "open_out_gen";
    "output_string";
    "output_bytes";
    "output_char";
    "output_substring";
  ]

(* Qualified heads under which the same writers live. *)
let write_heads = [ "Stdlib"; "Out_channel"; "Printf" ]

let hit file (tok : Token.t) message : Rule.hit =
  { file; line = tok.line; message }

let durable_write_discipline : Rule.t =
  {
    name = "durable-write-discipline";
    severity = Findings.Error;
    doc =
      "Files under a spill directory must be written through \
       Store.atomic_write (temp file + fsync + atomic rename): a buffered \
       open_out/output_* in the store or service layer can leave a torn \
       entry that a restarted daemon or a fleet peer then reads. The one \
       exemption is the top-level atomic_write binding itself.";
    phase =
      Rule.File
        (fun src ->
          if not (in_scope src.path) then []
          else begin
            let items = Rule.item_starts src in
            let inside_atomic_write i =
              let lo, _ = Rule.item_span items src.code i in
              lo + 1 < Array.length src.code
              && Rule.is_word src.code.(lo) "let"
              && Rule.is_word src.code.(lo + 1) "atomic_write"
            in
            let acc = ref [] in
            Array.iteri
              (fun i (tok : Token.t) ->
                let matched =
                  match Rule.dotted_path_at src.code i with
                  | None -> false
                  | Some (path, _) -> (
                      match String.split_on_char '.' path with
                      | [ w ] -> List.mem w write_fns
                      | [ head; w ] ->
                          List.mem head write_heads && List.mem w write_fns
                      | _ -> false)
                in
                if matched && not (inside_atomic_write i) then
                  acc :=
                    hit src.path tok
                      "buffered channel write in the durable-store path; \
                       route spill-file bytes through Store.atomic_write so \
                       a crash can never leave a torn entry"
                    :: !acc)
              src.code;
            List.rev !acc
          end);
  }

let all = [ durable_write_discipline ]

(** ApproxMC — the (ε, δ) approximate model counter of Chakraborty,
    Meel, Vardi (CP 2013), re-implemented from the published
    pseudocode. UniGen invokes it (line 9 of Algorithm 1) with
    tolerance 0.8 and confidence 0.8 to locate the candidate range of
    hash sizes.

    Guarantee: Pr[ |R_F|/(1+ε) ≤ estimate ≤ (1+ε)·|R_F| ] ≥ 1 − δ.

    Counting is performed over the formula's sampling set (the
    projection); when the sampling set is an independent support this
    equals the full model count, which is how UniGen uses it. *)

type result = {
  estimate : float;  (** the median-of-iterations estimate of |R_F| *)
  log2_estimate : float;
  exact : bool;
      (** [true] when the formula was small enough that the count is
          exact (enumeration finished below the pivot). *)
  core_iterations : int;  (** successful ApproxMCCore runs *)
  failed_iterations : int;
  solver_stats : Sat.Solver.stats;
      (** aggregate CDCL statistics over every BSAT call of the count *)
  reuse_hits : int;
      (** BSAT calls served by a warm solver session (0 on the fresh
          path and in the exact easy case) *)
}

type error = Unsat | Timed_out

val pivot_of_epsilon : float -> int
(** ⌈ 2·e^(3/2)·(1 + 1/ε)² ⌉ — the cell-size threshold of the CP 2013
    analysis. *)

val iterations_of_delta : float -> int
(** ⌈ 35·log2(3/δ) ⌉ — the number of median iterations. *)

val count :
  ?deadline:float ->
  ?leapfrog:bool ->
  ?incremental:bool ->
  ?gauss:bool ->
  ?iterations:int ->
  ?jobs:int ->
  ?pool:Parallel.Domain_pool.t ->
  rng:Rng.t ->
  epsilon:float ->
  delta:float ->
  Cnf.Formula.t ->
  (result, error) Result.t
(** [incremental] (default [true]) runs each ApproxMCCore iteration on
    a persistent solver session: one solver per iteration, reused
    across all hash sizes [i] with only the XOR layer swapped. The
    estimate is identical to the fresh-solver path ([~incremental:
    false], the differential reference) — hash draws and cell-size
    decisions are unchanged — but base-formula clauses are learnt once
    per iteration instead of once per hash size.

    [gauss] (default [true]) selects the XOR engine of every BSAT call:
    in-search Gauss-Jordan elimination, or — with [~gauss:false] — a
    static RREF followed by parity 2-watch propagation (the
    differential reference engine). The estimate is identical either
    way.

    [leapfrog] (default [false]) starts each core iteration's search
    for the hash size near the previous success instead of from 1 —
    the CP 2013 heuristic that the UniGen paper explicitly disables
    because it voids the guarantees. It exists for the ablation bench.
    [iterations] overrides {!iterations_of_delta} (used by benches to
    trade confidence for time; the default is the faithful value).

    [jobs]/[pool] switch the median loop to the parallel discipline:
    one master seed is drawn from [rng], iteration [i] runs on the
    private stream [(master, i)] (see {!Rng.of_stream}), and the
    iterations execute across the pool ([jobs] fresh workers, or a
    caller-owned pool). Because each iteration is an independent
    XOR-hashed count and the median is taken over index-ordered
    results, the estimate is a pure function of [rng]'s state —
    identical for [~jobs:1] and [~jobs:n]. Omitting both keeps the
    legacy single-stream serial draw order. [leapfrog] forces the
    serial path (each iteration's start depends on the previous one).
    @raise Invalid_argument when [jobs < 1]. *)

type result = {
  estimate : float;
  log2_estimate : float;
  exact : bool;
  core_iterations : int;
  failed_iterations : int;
  solver_stats : Sat.Solver.stats;
  reuse_hits : int;
}

type error = Unsat | Timed_out

let pivot_of_epsilon epsilon =
  if epsilon <= 0.0 then invalid_arg "Approxmc: epsilon must be positive";
  int_of_float (Float.ceil (2.0 *. Float.exp 1.5 *. ((1.0 +. (1.0 /. epsilon)) ** 2.0)))

let iterations_of_delta delta =
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Approxmc: delta in (0,1)";
  int_of_float (Float.ceil (35.0 *. (Float.log (3.0 /. delta) /. Float.log 2.0)))

let median l =
  match List.sort Float.compare l with
  | [] -> invalid_arg "median of empty list"
  | sorted ->
      let n = List.length sorted in
      List.nth sorted (n / 2)

exception Deadline

let check_deadline deadline =
  match deadline with
  | Some d when Unix.gettimeofday () > d -> raise Deadline
  | _ -> ()

type core_out = {
  co_res : (float * int) option; (* (estimate, hash size) or failure *)
  co_stats : Sat.Solver.stats;
  co_reuse : int;
}

let c_hash_draws = Obs.Metrics.counter "approxmc.hash_draws"
let h_cell_size = Obs.Metrics.histogram "approxmc.cell_size"

(* One ApproxMCCore run. With [incremental] (the default) a single
   solver session serves every hash size [i] of the try_size loop:
   only the XOR layer is swapped between sizes, so clauses learnt
   about the base formula at size i speed up size i+1. The fresh and
   session paths agree on every (count, exhausted) decision — the
   hash draws are identical and complete cells are history-independent
   — so the returned estimate is the same. *)
let core ?deadline ?(incremental = true) ?(gauss = true) ~rng ~pivot ~start f =
  Obs.Trace.span ~cat:"counting" "approxmc.core" @@ fun () ->
  let sampling = Cnf.Formula.sampling_vars f in
  let n = Array.length sampling in
  let session =
    if incremental then Some (Sat.Bsat.Session.create ~gauss f) else None
  in
  let stats = ref Sat.Solver.stats_zero in
  let reuse = ref 0 in
  let run_bsat i =
    Obs.Trace.span ~cat:"counting" "approxmc.hash_size"
      ~args:[ ("m", string_of_int i) ]
    @@ fun () ->
    Obs.Metrics.incr c_hash_draws;
    let h = Hashing.Hxor.sample rng ~vars:sampling ~m:i in
    let out =
      match session with
      | Some s ->
          Sat.Bsat.Session.enumerate ?deadline
            ~xors:(Hashing.Hxor.constraints h) ~limit:(pivot + 1) s
      | None ->
          let g = Cnf.Formula.add_xors f (Hashing.Hxor.constraints h) in
          Sat.Bsat.enumerate ?deadline ~gauss ~limit:(pivot + 1) g
    in
    stats := Sat.Solver.stats_add !stats out.Sat.Bsat.stats;
    if out.Sat.Bsat.reused then incr reuse;
    Obs.Metrics.observe h_cell_size
      (float_of_int (List.length out.Sat.Bsat.models));
    out
  in
  let rec try_size i =
    check_deadline deadline;
    if i > n then None
    else begin
      let out = run_bsat i in
      if out.Sat.Bsat.timed_out then raise Deadline;
      let count = List.length out.Sat.Bsat.models in
      if count >= 1 && count <= pivot && out.Sat.Bsat.exhausted then
        Some (float_of_int count *. (2.0 ** float_of_int i), i)
      else try_size (i + 1)
    end
  in
  let res = try_size start in
  { co_res = res; co_stats = !stats; co_reuse = !reuse }

(* The t ApproxMCCore iterations are mutually independent XOR-hashed
   counts, so they parallelise without changing the estimator: run
   iteration [i] on the private stream (master, i) and take the median
   over the index-ordered successes. The estimate is then a pure
   function of the master seed — identical for every worker count. *)
let iterate_parallel ?deadline ?jobs ?pool ~incremental ~gauss ~rng ~pivot ~t f =
  let master = Int64.to_int (Rng.bits64 rng) land max_int in
  let one index =
    let rng = Rng.of_stream ~seed:master index in
    match core ?deadline ~incremental ~gauss ~rng ~pivot ~start:1 f with
    | { co_res = Some e; co_stats; co_reuse } -> `Estimate (e, co_stats, co_reuse)
    | { co_res = None; co_stats; co_reuse } -> `Failed (co_stats, co_reuse)
    | exception Deadline -> `Deadline
  in
  let indices = Array.init t Fun.id in
  match (pool, jobs) with
  | Some p, _ -> Parallel.Domain_pool.map p one indices
  | None, Some jobs when jobs > 1 ->
      Parallel.Domain_pool.with_pool ~jobs (fun p ->
          Parallel.Domain_pool.map p one indices)
  | None, _ -> Array.map one indices

let count ?deadline ?(leapfrog = false) ?(incremental = true) ?(gauss = true)
    ?iterations ?jobs ?pool ~rng ~epsilon ~delta f =
  Obs.Trace.span ~cat:"counting" "approxmc.count" @@ fun () ->
  (match jobs with
  | Some j when j < 1 -> invalid_arg "Approxmc.count: jobs must be >= 1"
  | _ -> ());
  let pivot = pivot_of_epsilon epsilon in
  let t = match iterations with Some t -> t | None -> iterations_of_delta delta in
  try
    (* Easy case: few enough witnesses to enumerate exactly. *)
    let out = Sat.Bsat.enumerate ?deadline ~gauss ~limit:(pivot + 1) f in
    if out.Sat.Bsat.timed_out then Error Timed_out
    else begin
      let n0 = List.length out.Sat.Bsat.models in
      if n0 = 0 then Error Unsat
      else if out.Sat.Bsat.exhausted then
        Ok
          {
            estimate = float_of_int n0;
            log2_estimate = Float.log (float_of_int n0) /. Float.log 2.0;
            exact = true;
            core_iterations = 0;
            failed_iterations = 0;
            solver_stats = out.Sat.Bsat.stats;
            reuse_hits = 0;
          }
      else begin
        let estimates = ref [] in
        let failures = ref 0 in
        let agg_stats = ref out.Sat.Bsat.stats in
        let reuse_hits = ref 0 in
        let fold st ru =
          agg_stats := Sat.Solver.stats_add !agg_stats st;
          reuse_hits := !reuse_hits + ru
        in
        if (jobs <> None || pool <> None) && not leapfrog then begin
          (* deterministic stream-per-iteration discipline; leapfrog is
             inherently sequential (each start depends on the previous
             iteration) and keeps the serial path below *)
          let outcomes =
            iterate_parallel ?deadline ?jobs ?pool ~incremental ~gauss ~rng ~pivot
              ~t f
          in
          Array.iter
            (function
              | `Estimate ((e, _), st, ru) ->
                  fold st ru;
                  estimates := e :: !estimates
              | `Failed (st, ru) ->
                  fold st ru;
                  incr failures
              | `Deadline -> raise Deadline)
            outcomes
        end
        else begin
          let prev_i = ref 1 in
          for _ = 1 to t do
            let start = if leapfrog then max 1 (!prev_i - 1) else 1 in
            let co = core ?deadline ~incremental ~gauss ~rng ~pivot ~start f in
            fold co.co_stats co.co_reuse;
            match co.co_res with
            | Some (e, i) ->
                prev_i := i;
                estimates := e :: !estimates
            | None -> incr failures
          done
        end;
        match !estimates with
        | [] -> Error Timed_out (* all iterations failed: no usable estimate *)
        | es ->
            let est = median es in
            Ok
              {
                estimate = est;
                log2_estimate = Float.log est /. Float.log 2.0;
                exact = false;
                core_iterations = List.length es;
                failed_iterations = !failures;
                solver_stats = !agg_stats;
                reuse_hits = !reuse_hits;
              }
      end
    end
  with Deadline -> Error Timed_out

exception Overflow

let c_cache_hits = Obs.Metrics.counter "exact.component_cache_hits"
let c_cache_misses = Obs.Metrics.counter "exact.component_cache_misses"

(* Internally clauses are sorted lists of signed DIMACS literals. *)

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then raise Overflow
  else a * b

let pow2 k =
  if k >= 62 then raise Overflow;
  1 lsl k

(* Set of variables occurring in a clause list. *)
let clause_vars clauses =
  let s = Hashtbl.create 64 in
  List.iter (List.iter (fun l -> Hashtbl.replace s (abs l) ())) clauses;
  s

(* Assign literal [l] true: drop satisfied clauses, shrink the rest.
   Returns [None] on an empty (falsified) clause. *)
let assign l clauses =
  let rec go acc = function
    | [] -> Some acc
    | c :: rest ->
        if List.mem l c then go acc rest
        else
          let c' = List.filter (fun x -> x <> -l) c in
          if c' = [] then None else go (c' :: acc) rest
  in
  go [] clauses

let canonical clauses =
  let cls = List.map (List.sort Int.compare) clauses in
  let cls = List.sort compare cls in
  String.concat ";"
    (List.map (fun c -> String.concat "," (List.map string_of_int c)) cls)

(* Split a clause list into connected components of its
   variable-interaction graph, via union-find on variables. *)
let components clauses =
  let parent = Hashtbl.create 64 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None ->
        Hashtbl.add parent v v;
        v
    | Some p -> if p = v then v else begin
        let r = find p in
        Hashtbl.replace parent v r;
        r
      end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun c ->
      match c with
      | [] -> ()
      | l :: rest ->
          let v0 = abs l in
          List.iter (fun l' -> union v0 (abs l')) rest)
    clauses;
  let buckets = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let root = match c with [] -> 0 | l :: _ -> find (abs l) in
      let cur = try Hashtbl.find buckets root with Not_found -> [] in
      Hashtbl.replace buckets root (c :: cur))
    clauses;
  Hashtbl.fold (fun _ cls acc -> cls :: acc) buckets []

(* [solutions clauses] = number of assignments over exactly the
   variables occurring in [clauses] that satisfy all of them. *)
let solutions ~budget cache clauses =
  let rec go clauses =
    match clauses with
    | [] -> 1
    | _ when List.exists (fun c -> c = []) clauses -> 0
    | _ -> begin
        decr budget;
        if !budget <= 0 then failwith "Exact_counter: decision budget exhausted";
        (* unit propagation: each forced variable contributes factor 1,
           but satisfied clauses may drop other variables from scope —
           those become free and multiply by 2 each. *)
        match List.find_opt (fun c -> List.length c = 1) clauses with
        | Some [ l ] -> begin
            let before = Hashtbl.length (clause_vars clauses) in
            match assign l clauses with
            | None -> 0
            | Some rest ->
                let after = Hashtbl.length (clause_vars rest) in
                let vanished = before - 1 - after in
                checked_mul (go_components rest) (pow2 vanished)
          end
        | Some _ -> assert false
        | None ->
            (* branch on the most frequent variable *)
            let occ = Hashtbl.create 64 in
            List.iter
              (List.iter (fun l ->
                   let v = abs l in
                   Hashtbl.replace occ v (1 + Option.value ~default:0 (Hashtbl.find_opt occ v))))
              clauses;
            let v, _ =
              Hashtbl.fold
                (fun v c ((_, best) as acc) -> if c > best then (v, c) else acc)
                occ (0, -1)
            in
            let before = Hashtbl.length occ in
            let branch l =
              match assign l clauses with
              | None -> 0
              | Some rest ->
                  let after = Hashtbl.length (clause_vars rest) in
                  let vanished = before - 1 - after in
                  checked_mul (go_components rest) (pow2 vanished)
            in
            let pos = branch v in
            let neg = branch (-v) in
            if pos > max_int - neg then raise Overflow;
            pos + neg
      end
  and go_components clauses =
    match clauses with
    | [] -> 1
    | _ ->
        let comps = components clauses in
        List.fold_left
          (fun acc comp -> checked_mul acc (cached comp))
          1 comps
  and cached comp =
    let key = canonical comp in
    match Hashtbl.find_opt cache key with
    | Some n ->
        Obs.Metrics.incr c_cache_hits;
        n
    | None ->
        Obs.Metrics.incr c_cache_misses;
        let n = go comp in
        Hashtbl.add cache key n;
        n
  in
  go_components clauses

let to_clause_lists (f : Cnf.Formula.t) =
  Array.to_list f.clauses |> List.map Cnf.Clause.to_dimacs

let count_with ?(max_decisions = 10_000_000) (f : Cnf.Formula.t) extra =
  let f = Cnf.Formula.blast_xors f in
  let clauses = extra @ to_clause_lists f in
  (* tautologies would break the occurrence bookkeeping: drop them *)
  let clauses =
    List.filter_map
      (fun c ->
        match Cnf.Clause.normalize (Cnf.Clause.of_dimacs c) with
        | None -> None
        | Some c' -> Some (Cnf.Clause.to_dimacs c'))
      clauses
  in
  let budget = ref max_decisions in
  let cache = Hashtbl.create 1024 in
  let core = solutions ~budget cache clauses in
  let occupied = Hashtbl.length (clause_vars clauses) in
  let free = f.num_vars - occupied in
  if free < 0 then invalid_arg "Exact_counter: clause variable out of range";
  checked_mul core (pow2 free)

let count ?max_decisions f = count_with ?max_decisions f []

let count_restricted ?max_decisions f assumptions =
  let extra = List.map (fun l -> [ Cnf.Lit.to_dimacs l ]) assumptions in
  count_with ?max_decisions f extra
